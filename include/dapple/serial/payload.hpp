#pragma once
/// \file payload.hpp
/// \brief Refcounted immutable byte buffers for the zero-copy data path.
///
/// The paper's channel model (§3.2 "Messages", §3.1 fan-out outboxes)
/// serializes a message *once* and delivers copies to every bound inbox.
/// `Payload` makes that literal: the encoded message body lives in one
/// refcounted immutable allocation, and a fan-out send shares it across all
/// destinations — each destination adds only a small owned header.
///
/// `WireBuffer` is the (header, shared payload) pair the layers below pass
/// around: the reliable layer keeps one per un-acked frame (retransmit state
/// is a ref bump, not a frame copy) and gathers header + body into a
/// datagram only at transmit time.  See DESIGN.md §10 "Data-path copy
/// discipline" for who owns bytes at each layer.

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace dapple {

/// Immutable, refcounted byte buffer.  Copying a Payload is a reference
/// bump; the bytes are never duplicated.  An empty Payload views "".
class Payload {
 public:
  Payload() = default;

  /// Takes ownership of `bytes` (no copy beyond the move).
  explicit Payload(std::string bytes)
      : bytes_(std::make_shared<const std::string>(std::move(bytes))) {}

  /// Copies `bytes` into a fresh buffer.
  static Payload copyOf(std::string_view bytes) {
    return Payload(std::string(bytes));
  }

  std::string_view view() const {
    return bytes_ ? std::string_view(*bytes_) : std::string_view();
  }

  std::size_t size() const { return bytes_ ? bytes_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// Number of WireBuffers / Payloads sharing these bytes (diagnostics;
  /// racy under concurrent copies, exact when quiescent).
  long refCount() const { return bytes_ ? bytes_.use_count() : 0; }

 private:
  std::shared_ptr<const std::string> bytes_;
};

/// One wire unit awaiting transmission: a small owned header followed by a
/// shared immutable body.  `size()` is what goes on the wire; the bytes are
/// materialized (gathered) only by `appendTo`/`assemble` at transmit time.
class WireBuffer {
 public:
  WireBuffer() = default;

  /// Header-only buffer (control frames).
  explicit WireBuffer(std::string head) : head_(std::move(head)) {}

  WireBuffer(std::string head, Payload body)
      : head_(std::move(head)), body_(std::move(body)) {}

  const std::string& head() const { return head_; }
  const Payload& body() const { return body_; }

  std::size_t size() const { return head_.size() + body_.size(); }
  bool empty() const { return size() == 0; }

  /// Gathers header + body onto the end of `out` (the scatter/gather step;
  /// the single point where payload bytes are copied onto the wire).
  void appendTo(std::string& out) const {
    out.append(head_);
    out.append(body_.view());
  }

  /// Materializes the full wire bytes.
  std::string assemble() const {
    std::string out;
    out.reserve(size());
    appendTo(out);
    return out;
  }

 private:
  std::string head_;
  Payload body_;
};

}  // namespace dapple
