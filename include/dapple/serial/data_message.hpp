#pragma once
/// \file data_message.hpp
/// \brief Generic key/value message for applications that do not want to
/// declare a bespoke Message subclass per payload shape.

#include <string>
#include <string_view>
#include <utility>

#include "dapple/serial/message.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// A message carrying a `kind` discriminator string plus a Value map body.
/// Used heavily by the example applications and the RPC layer.
class DataMessage : public MessageBase<DataMessage> {
 public:
  static constexpr std::string_view kTypeName = "dapple.Data";

  DataMessage() = default;
  explicit DataMessage(std::string kind, ValueMap body = {})
      : kind_(std::move(kind)), body_(std::move(body)) {}

  const std::string& kind() const { return kind_; }
  void setKind(std::string kind) { kind_ = std::move(kind); }

  /// Whole-body access.
  const ValueMap& body() const { return body_; }
  ValueMap& body() { return body_; }

  /// Field access; `get` throws StateError when the field is absent.
  void set(const std::string& key, Value value) {
    body_[key] = std::move(value);
  }
  const Value& get(const std::string& key) const {
    const auto it = body_.find(key);
    if (it == body_.end()) {
      throw StateError("DataMessage['" + kind_ + "']: missing field '" + key +
                       "'");
    }
    return it->second;
  }
  bool has(const std::string& key) const { return body_.count(key) != 0; }

  void encodeFields(WireWriter& w) const override {
    w.writeString(kind_);
    Value(body_).encode(w);
  }
  void decodeFields(WireReader& r) override {
    kind_ = r.readString();
    body_ = Value::decode(r).asMap();
  }

 private:
  std::string kind_;
  ValueMap body_;
};

}  // namespace dapple
