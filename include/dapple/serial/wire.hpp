#pragma once
/// \file wire.hpp
/// \brief Text wire format: typed tokens in a printable string.
///
/// The paper (§3.2 "Messages") serializes objects to *strings* before they
/// cross the network.  We use a compact token stream that is fully printable
/// except for raw string payloads, which are length-prefixed so no escaping
/// is ever needed:
///
///   i-42        signed integer            u17         unsigned integer
///   d1.5e3      double (shortest exact)   b0 / b1     boolean
///   s5:hello    string (length:bytes)     l3 e e e    list of 3 elements
///   n           null
///
/// Tokens are separated by a single space.  The format round-trips exactly
/// (doubles via shortest-representation `std::to_chars`).

#include <cstdint>
#include <string>
#include <string_view>

#include "dapple/util/error.hpp"

namespace dapple {

/// Serializes typed tokens into a string.
class TextWriter {
 public:
  void writeI64(std::int64_t v);
  void writeU64(std::uint64_t v);
  void writeF64(double v);
  void writeBool(bool v);
  void writeString(std::string_view v);
  /// Writes only the `s<len>:` header of a string token whose `len` payload
  /// bytes the caller appends out-of-band (e.g. gathered from a shared
  /// `Payload` at transmit time).  The text returned by str() is a valid
  /// token stream only once exactly `len` raw bytes follow it.
  void beginString(std::size_t len);
  void writeNull();
  /// Starts a list of exactly `count` elements; the caller then writes
  /// `count` values (which may themselves be lists).
  void beginList(std::size_t count);
  /// Starts a map of exactly `count` entries; the caller then writes `count`
  /// (string key, value) pairs.
  void beginMap(std::size_t count);

  /// The accumulated wire text.
  const std::string& str() const& { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  void sep();
  std::string out_;
};

/// Parses typed tokens from a wire string.  Every read checks the token tag
/// and throws SerializationError on mismatch or truncation.
class TextReader {
 public:
  explicit TextReader(std::string_view wire) : wire_(wire) {}

  std::int64_t readI64();
  std::uint64_t readU64();
  double readF64();
  bool readBool();
  std::string readString();
  /// Zero-copy readString: the returned view aliases the wire buffer this
  /// reader was constructed over and is valid only while that buffer lives.
  /// Use for header fields and payloads that are fully consumed before the
  /// buffer is released (envelope decode, frame parse).
  std::string_view readStringView();
  void readNull();
  /// Reads a list header and returns the element count.
  std::size_t beginList();
  /// Reads a map header and returns the entry count.
  std::size_t beginMap();

  /// Tag character of the next token without consuming it; '\0' at end.
  char peek() const;

  /// True when all input has been consumed.
  bool atEnd() const { return pos_ >= wire_.size(); }

 private:
  [[noreturn]] void fail(const std::string& what) const;
  char take();
  std::string_view wire_;
  std::size_t pos_ = 0;
};

}  // namespace dapple
