#pragma once
/// \file wire.hpp
/// \brief Wire formats: one writer/reader pair, two codecs.
///
/// The paper (§3.2 "Messages") serializes objects to *strings* before they
/// cross the network.  The stack supports two concrete encodings behind the
/// same `WireWriter`/`WireReader` surface, selected by `WireCodec`:
///
/// **Text** — the debug/compat codec (the original wire format, and still
/// the default).  Typed tokens in a printable string, fully printable except
/// raw string payloads, which are length-prefixed so no escaping is needed:
///
///   i-42        signed integer            u17         unsigned integer
///   d1.5e3      double (shortest exact)   b0 / b1     boolean
///   s5:hello    string (length:bytes)     l3 e e e    list of 3 elements
///   n           null                      m2 k v k v  map of 2 entries
///
/// Tokens are separated by a single space.  The format round-trips exactly
/// (doubles via shortest-representation `std::to_chars`).
///
/// **Binary** — the fast codec benches and new deployments run.  A frame
/// starts with the preamble byte 0xDB (no text frame can: text tokens start
/// with a lowercase ASCII tag letter), followed by tagged tokens:
///
///   0xE0                    null
///   0xE1 / 0xE2             bool false / true
///   0xE3 <zigzag varint>    signed integer (LEB128 of zigzag(v))
///   0xE4 <varint>           unsigned integer (LEB128)
///   0xE5 <8 bytes LE>       double (IEEE-754 bits, little-endian)
///   0xE6 <varint len> bytes string (length-prefixed, raw)
///   0xE7 <varint count>     list header, `count` elements follow
///   0xE8 <varint count>     map header, `count` (string key, value) pairs
///
/// There are no separators.  Varints are LEB128: 7 value bits per byte,
/// high bit = continuation, at most 10 bytes for 64-bit values.
///
/// The preamble doubles as per-frame negotiation: a reader auto-detects the
/// codec of each frame from its first byte, so peers configured differently
/// interoperate without a handshake, and nested frames (a message body
/// inside an envelope string token, a Value inside a WAL record) may use a
/// different codec than their carrier.
///
/// Layout note: the binary token paths are defined inline below — they are
/// a handful of byte pushes, and the data path (reliable frame heads,
/// session messages, WAL records, field decode) runs one call per token.
/// The text paths stay out-of-line in wire.cpp; text is the compat codec
/// and is not on the fast path.

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

#include "dapple/util/error.hpp"

namespace dapple {

/// Which concrete encoding a writer emits.  Readers never need this: every
/// frame self-identifies through the preamble byte.
enum class WireCodec : std::uint8_t {
  kText = 0,    ///< printable tokens — debug/compat, the default
  kBinary = 1,  ///< tagged varint/raw tokens — the fast path
};

/// First byte of every binary frame.  Text frames always begin with a
/// lowercase ASCII tag letter, so this byte unambiguously marks binary.
inline constexpr char kBinaryPreamble = static_cast<char>(0xDB);

/// "text" / "binary" — for config notes, bench rows, and fuzz summaries.
const char* wireCodecName(WireCodec codec);

namespace wire_detail {

// Binary token tags.  Chosen well outside printable ASCII so a hex dump of
// a binary frame reads unambiguously; the values are wire ABI (wire_dump.py
// mirrors them).
inline constexpr unsigned char kBinNull = 0xE0;
inline constexpr unsigned char kBinFalse = 0xE1;
inline constexpr unsigned char kBinTrue = 0xE2;
inline constexpr unsigned char kBinI64 = 0xE3;
inline constexpr unsigned char kBinU64 = 0xE4;
inline constexpr unsigned char kBinF64 = 0xE5;
inline constexpr unsigned char kBinStr = 0xE6;
inline constexpr unsigned char kBinList = 0xE7;
inline constexpr unsigned char kBinMap = 0xE8;

constexpr std::uint64_t zigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

constexpr std::int64_t zigzagDecode(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

}  // namespace wire_detail

/// Serializes typed tokens into a string under the chosen codec.
///
/// Two buffer modes: the default constructor owns its output string; the
/// scratch constructor borrows a caller-owned growable buffer (clearing it
/// first) so hot paths — `Outbox` fan-out, `ReliableEndpoint` frame
/// assembly, the WAL append loop — can recycle one allocation per
/// thread/strand instead of churning a fresh `std::string` per message.
/// The borrowed buffer must outlive the writer; `str()` returns a reference
/// into it.
class WireWriter {
 public:
  explicit WireWriter(WireCodec codec = WireCodec::kText)
      : out_(&owned_), codec_(codec) {
    if (codec_ == WireCodec::kBinary) out_->push_back(kBinaryPreamble);
  }

  /// Borrow `scratch` as the output buffer (its capacity is recycled; its
  /// previous contents are cleared).
  WireWriter(WireCodec codec, std::string& scratch)
      : out_(&scratch), codec_(codec) {
    out_->clear();
    if (codec_ == WireCodec::kBinary) out_->push_back(kBinaryPreamble);
  }

  WireWriter(const WireWriter&) = delete;
  WireWriter& operator=(const WireWriter&) = delete;

  void writeI64(std::int64_t v) {
    if (codec_ == WireCodec::kBinary) {
      putTagVarint(wire_detail::kBinI64, wire_detail::zigzagEncode(v));
    } else {
      writeI64Text(v);
    }
  }

  void writeU64(std::uint64_t v) {
    if (codec_ == WireCodec::kBinary) {
      putTagVarint(wire_detail::kBinU64, v);
    } else {
      writeU64Text(v);
    }
  }

  void writeF64(double v) {
    if (codec_ == WireCodec::kBinary) {
      char buf[9];
      buf[0] = static_cast<char>(wire_detail::kBinF64);
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
      for (int i = 0; i < 8; ++i) {
        buf[1 + i] = static_cast<char>((bits >> (8 * i)) & 0xff);
      }
      out_->append(buf, 9);
    } else {
      writeF64Text(v);
    }
  }

  void writeBool(bool v) {
    if (codec_ == WireCodec::kBinary) {
      out_->push_back(
          static_cast<char>(v ? wire_detail::kBinTrue : wire_detail::kBinFalse));
    } else {
      writeBoolText(v);
    }
  }

  void writeString(std::string_view v) {
    beginString(v.size());
    out_->append(v);
  }

  /// Writes only the string-token header (text: `s<len>:`, binary:
  /// 0xE6 + varint) whose `len` payload bytes the caller appends
  /// out-of-band (e.g. gathered from a shared `Payload` at transmit time).
  /// The bytes returned by str() are a valid token stream only once exactly
  /// `len` raw bytes follow them.
  void beginString(std::size_t len) {
    if (codec_ == WireCodec::kBinary) {
      putTagVarint(wire_detail::kBinStr, len);
    } else {
      beginStringText(len);
    }
  }

  void writeNull() {
    if (codec_ == WireCodec::kBinary) {
      out_->push_back(static_cast<char>(wire_detail::kBinNull));
    } else {
      writeNullText();
    }
  }

  /// Starts a list of exactly `count` elements; the caller then writes
  /// `count` values (which may themselves be lists).
  void beginList(std::size_t count) {
    if (codec_ == WireCodec::kBinary) {
      putTagVarint(wire_detail::kBinList, count);
    } else {
      beginListText(count);
    }
  }

  /// Starts a map of exactly `count` entries; the caller then writes `count`
  /// (string key, value) pairs.
  void beginMap(std::size_t count) {
    if (codec_ == WireCodec::kBinary) {
      putTagVarint(wire_detail::kBinMap, count);
    } else {
      beginMapText(count);
    }
  }

  WireCodec codec() const { return codec_; }

  /// The accumulated wire bytes (owned or borrowed buffer).
  const std::string& str() const& { return *out_; }
  /// Moves the bytes out (leaves a borrowed scratch buffer empty but valid).
  std::string str() && { return std::move(*out_); }

 private:
  /// Tag byte + LEB128 varint, staged in a stack buffer and appended in one
  /// call — one capacity check instead of one per byte.
  void putTagVarint(unsigned char tag, std::uint64_t v) {
    char buf[11];
    buf[0] = static_cast<char>(tag);
    std::size_t n = 1;
    while (v >= 0x80) {
      buf[n++] = static_cast<char>((v & 0x7f) | 0x80);
      v >>= 7;
    }
    buf[n++] = static_cast<char>(v);
    out_->append(buf, n);
  }

  // Text-codec slow paths (wire.cpp).
  void writeI64Text(std::int64_t v);
  void writeU64Text(std::uint64_t v);
  void writeF64Text(double v);
  void writeBoolText(bool v);
  void beginStringText(std::size_t len);
  void writeNullText();
  void beginListText(std::size_t count);
  void beginMapText(std::size_t count);
  void sep();

  std::string owned_;
  std::string* out_;
  WireCodec codec_;
};

/// Parses typed tokens from a wire buffer.  The codec is auto-detected from
/// the first byte (0xDB -> binary, anything else -> text).  Every read
/// checks the token tag and throws SerializationError — carrying the byte
/// offset — on mismatch or truncation; no malformed input is ever UB.
class WireReader {
 public:
  explicit WireReader(std::string_view wire) : wire_(wire) {
    if (!wire_.empty() &&
        static_cast<unsigned char>(wire_[0]) ==
            static_cast<unsigned char>(kBinaryPreamble)) {
      codec_ = WireCodec::kBinary;
      pos_ = 1;
    }
  }

  std::int64_t readI64() {
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinI64) fail("expected i64 token");
      return wire_detail::zigzagDecode(takeVarint());
    }
    return readI64Text();
  }

  std::uint64_t readU64() {
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinU64) fail("expected u64 token");
      return takeVarint();
    }
    return readU64Text();
  }

  double readF64() {
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinF64) fail("expected f64 token");
      if (wire_.size() - pos_ < 8) fail("truncated f64");
      std::uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(wire_[pos_ + i]))
                << (8 * i);
      }
      pos_ += 8;
      return std::bit_cast<double>(bits);
    }
    return readF64Text();
  }

  bool readBool() {
    if (codec_ == WireCodec::kBinary) {
      const unsigned char tag = takeByte();
      if (tag == wire_detail::kBinFalse) return false;
      if (tag == wire_detail::kBinTrue) return true;
      fail("expected bool token");
    }
    return readBoolText();
  }

  std::string readString() { return std::string(readStringView()); }

  /// Zero-copy readString: the returned view aliases the wire buffer this
  /// reader was constructed over and is valid only while that buffer lives.
  /// Use for header fields and payloads that are fully consumed before the
  /// buffer is released (envelope decode, frame parse).
  std::string_view readStringView() {
    std::size_t len = 0;
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinStr) fail("expected string token");
      len = static_cast<std::size_t>(takeVarint());
    } else {
      len = readStringHeaderText();
    }
    if (wire_.size() - pos_ < len) fail("truncated string payload");
    std::string_view out = wire_.substr(pos_, len);
    pos_ += len;
    return out;
  }

  void readNull() {
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinNull) fail("expected null token");
      return;
    }
    readNullText();
  }

  /// Reads a list header and returns the element count.
  std::size_t beginList() {
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinList) fail("expected list token");
      return static_cast<std::size_t>(takeVarint());
    }
    return beginListText();
  }

  /// Reads a map header and returns the entry count.
  std::size_t beginMap() {
    if (codec_ == WireCodec::kBinary) {
      if (takeByte() != wire_detail::kBinMap) fail("expected map token");
      return static_cast<std::size_t>(takeVarint());
    }
    return beginMapText();
  }

  /// Canonical tag character of the next token without consuming it —
  /// 'i', 'u', 'd', 'b', 's', 'n', 'l', 'm' under EITHER codec (binary tag
  /// bytes map back to their text tag letters, so dispatch code is
  /// codec-independent); '\0' at end; '?' for an unrecognized binary tag.
  char peek() const;

  /// The codec this buffer was detected as.
  WireCodec codec() const { return codec_; }

  /// True when all input has been consumed.
  bool atEnd() const { return pos_ >= wire_.size(); }

  /// Current byte offset into the wire buffer — for callers layering their
  /// own errors on top (they should carry the offset too).
  std::size_t offset() const { return pos_; }

 private:
  [[noreturn]] void fail(const char* what) const;

  unsigned char takeByte() {
    if (pos_ >= wire_.size()) fail("unexpected end of input");
    return static_cast<unsigned char>(wire_[pos_++]);
  }

  std::uint64_t takeVarint() {
    // Local cursor: one load of the bounds, no member write per byte.
    const char* const data = wire_.data();
    const std::size_t end = wire_.size();
    std::size_t p = pos_;
    std::uint64_t value = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
      if (p >= end) {
        pos_ = p;
        fail("unexpected end of input");
      }
      const auto byte = static_cast<unsigned char>(data[p++]);
      value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        pos_ = p;
        // The 10th byte holds the top single bit; anything above it would
        // have been dropped by the shift — reject instead of truncating.
        if (shift == 63 && byte > 1) fail("varint overflow");
        return value;
      }
    }
    pos_ = p;
    fail("varint overflow");
  }

  // Text-codec slow paths (wire.cpp).
  char take();
  std::int64_t readI64Text();
  std::uint64_t readU64Text();
  double readF64Text();
  bool readBoolText();
  std::size_t readStringHeaderText();
  void readNullText();
  std::size_t beginListText();
  std::size_t beginMapText();

  std::string_view wire_;
  std::size_t pos_ = 0;
  WireCodec codec_ = WireCodec::kText;
};

}  // namespace dapple
