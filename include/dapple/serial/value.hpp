#pragma once
/// \file value.hpp
/// \brief Dynamically typed value: the payload currency of generic messages,
/// RPC arguments, and persistent dapplet state.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"

namespace dapple {

class Value;
using ValueList = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;

/// A JSON-like dynamic value (null, bool, int64, double, string, list, map)
/// with exact round-tripping through the text wire format.
class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool v) : data_(v) {}
  Value(int v) : data_(static_cast<std::int64_t>(v)) {}
  Value(long v) : data_(static_cast<std::int64_t>(v)) {}
  Value(long long v) : data_(static_cast<std::int64_t>(v)) {}
  Value(unsigned v) : data_(static_cast<std::int64_t>(v)) {}
  Value(double v) : data_(v) {}
  Value(const char* v) : data_(std::string(v)) {}
  Value(std::string v) : data_(std::move(v)) {}
  Value(std::string_view v) : data_(std::string(v)) {}
  Value(ValueList v) : data_(std::move(v)) {}
  Value(ValueMap v) : data_(std::move(v)) {}

  bool isNull() const { return std::holds_alternative<std::monostate>(data_); }
  bool isBool() const { return std::holds_alternative<bool>(data_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(data_); }
  bool isDouble() const { return std::holds_alternative<double>(data_); }
  bool isString() const { return std::holds_alternative<std::string>(data_); }
  bool isList() const { return std::holds_alternative<ValueList>(data_); }
  bool isMap() const { return std::holds_alternative<ValueMap>(data_); }

  bool asBool() const { return get<bool>("bool"); }
  std::int64_t asInt() const { return get<std::int64_t>("int"); }
  double asDouble() const {
    if (isInt()) return static_cast<double>(asInt());
    return get<double>("double");
  }
  const std::string& asString() const { return get<std::string>("string"); }
  const ValueList& asList() const { return get<ValueList>("list"); }
  ValueList& asList() { return getMut<ValueList>("list"); }
  const ValueMap& asMap() const { return get<ValueMap>("map"); }
  ValueMap& asMap() { return getMut<ValueMap>("map"); }

  /// Map convenience: value at `key`, or throws StateError when absent.
  const Value& at(const std::string& key) const;
  /// Map convenience: true when this is a map containing `key`.
  bool contains(const std::string& key) const;

  void encode(WireWriter& w) const;
  static Value decode(WireReader& r);

  /// Encodes to a standalone wire string / decodes a standalone wire string
  /// (codec auto-detected from the frame's first byte).
  std::string toWire(WireCodec codec = WireCodec::kText) const;
  static Value fromWire(std::string_view wire);

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }

 private:
  template <typename T>
  const T& get(const char* name) const {
    const T* p = std::get_if<T>(&data_);
    if (!p) throw SerializationError(std::string("Value: not a ") + name);
    return *p;
  }
  template <typename T>
  T& getMut(const char* name) {
    T* p = std::get_if<T>(&data_);
    if (!p) throw SerializationError(std::string("Value: not a ") + name);
    return *p;
  }

  std::variant<std::monostate, bool, std::int64_t, double, std::string,
               ValueList, ValueMap>
      data_;
};

}  // namespace dapple
