#pragma once
/// \file message.hpp
/// \brief Polymorphic message base class and the type registry that
/// reconstructs typed messages from wire strings.
///
/// Paper §3.2 "Messages": *"Objects that are sent from one process to
/// another are subclasses of a message class.  An object that is sent by a
/// process is converted into a string, sent across the network, and then
/// reconstructed back into its original type by the receiving process."*
///
/// Usage:
/// ```
/// struct Hello : dapple::MessageBase<Hello> {
///   static constexpr std::string_view kTypeName = "example.Hello";
///   std::string who;
///   void encodeFields(WireWriter& w) const override { w.writeString(who); }
///   void decodeFields(WireReader& r) override { who = r.readString(); }
/// };
/// DAPPLE_REGISTER_MESSAGE(Hello);   // at namespace scope in one .cpp
/// ```

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"

namespace dapple {

/// Abstract base for everything that crosses a channel.
class Message {
 public:
  virtual ~Message() = default;

  /// Globally unique type name; the registry key.
  virtual std::string_view typeName() const = 0;

  /// Serializes the fields (not the type name) to `w`.
  virtual void encodeFields(WireWriter& w) const = 0;

  /// Reconstructs the fields from `r`; the object was default-constructed.
  virtual void decodeFields(WireReader& r) = 0;

  /// Deep copy.  `MessageBase` provides this automatically.
  virtual std::unique_ptr<Message> clone() const = 0;
};

/// CRTP helper supplying `typeName()` and `clone()` from
/// `Derived::kTypeName` and the copy constructor.
template <typename Derived>
class MessageBase : public Message {
 public:
  std::string_view typeName() const final { return Derived::kTypeName; }

  std::unique_ptr<Message> clone() const final {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

/// Process-wide registry mapping type names to factories.  Registration is
/// typically done once at static-initialization time via
/// DAPPLE_REGISTER_MESSAGE; lookups are lock-protected and cheap.
class MessageRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Message>()>;

  static MessageRegistry& instance();

  /// Registers `factory` under `name`; re-registration of the same name is
  /// idempotent (required because static registrars may run in several
  /// translation units of one binary).
  void add(std::string_view name, Factory factory);

  /// Creates a default-constructed message of the named type; throws
  /// SerializationError if unknown.
  std::unique_ptr<Message> create(std::string_view name) const;

  /// True if `name` has a registered factory.
  bool knows(std::string_view name) const;

  template <typename T>
  void addType() {
    add(T::kTypeName, [] { return std::make_unique<T>(); });
  }

 private:
  MessageRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Serializes `msg` (type name + fields) to a standalone wire string under
/// `codec` (text stays the default for cross-version compat).
std::string encodeMessage(const Message& msg,
                          WireCodec codec = WireCodec::kText);

/// Scratch-buffer variant: encodes into `scratch` (recycling its capacity)
/// and returns a view of the encoded bytes.
std::string_view encodeMessageInto(const Message& msg, WireCodec codec,
                                   std::string& scratch);

/// Reconstructs a message of its original type from `wire`; the codec is
/// auto-detected from the frame's first byte.
std::unique_ptr<Message> decodeMessage(std::string_view wire);

/// Downcast helper: returns the message as `T&` or throws
/// SerializationError naming the actual type.
template <typename T>
const T& messageAs(const Message& msg) {
  const T* p = dynamic_cast<const T*>(&msg);
  if (!p) {
    throw SerializationError("expected message type " +
                             std::string(T::kTypeName) + ", got " +
                             std::string(msg.typeName()));
  }
  return *p;
}

template <typename T>
T& messageAs(Message& msg) {
  return const_cast<T&>(messageAs<T>(static_cast<const Message&>(msg)));
}

namespace detail {
template <typename T>
struct MessageRegistrar {
  MessageRegistrar() { MessageRegistry::instance().addType<T>(); }
};
}  // namespace detail

}  // namespace dapple

#define DAPPLE_DETAIL_CAT2(a, b) a##b
#define DAPPLE_DETAIL_CAT(a, b) DAPPLE_DETAIL_CAT2(a, b)

/// Registers `Type` with the global registry at static-init time.  Place at
/// namespace scope in exactly one translation unit per type.
#define DAPPLE_REGISTER_MESSAGE(Type)                                  \
  static const ::dapple::detail::MessageRegistrar<Type>                \
      DAPPLE_DETAIL_CAT(dappleRegistrar_, __COUNTER__){};
