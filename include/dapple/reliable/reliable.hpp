#pragma once
/// \file reliable.hpp
/// \brief Reliable, ordered message streams over an unreliable datagram
/// transport.
///
/// Paper §3.2: *"The initial implementation uses UDP, and it includes a
/// layer to ensure that messages are delivered in the order they were
/// sent"* and *"if a message is not delivered within a specified time an
/// exception is raised."*  This module is that layer.
///
/// Each (destination node, stream id) pair is an independent FIFO stream:
/// the sender numbers frames, retransmits unacknowledged frames on a timer,
/// and reports a delivery failure when a frame stays unacknowledged past
/// `deliveryTimeout`.  The receiver acknowledges cumulatively (plus a
/// selective-ack list), buffers out-of-order frames, drops duplicates, and
/// delivers payloads strictly in send order.
///
/// The core layer maps each channel (outbox -> inbox) onto one stream, which
/// yields exactly the paper's channel semantics: FIFO per channel, arbitrary
/// relative order across channels.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dapple/net/transport.hpp"
#include "dapple/obs/metrics.hpp"
#include "dapple/serial/payload.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

/// Tuning knobs for the ordering layer.
struct ReliableConfig {
  /// Timer granularity for the retransmission scan.
  Duration tickInterval = milliseconds(5);
  /// A frame unacknowledged for this long is retransmitted.
  Duration rto = milliseconds(40);
  /// A frame unacknowledged for this long fails the stream ("the specified
  /// time" of the paper's delivery exception).
  Duration deliveryTimeout = seconds(5);
  /// Exponential RTO backoff cap (rto, 2*rto, ... up to this).
  Duration maxRto = milliseconds(500);
  /// Acks are coalesced: one cumulative+SACK block per receive stream is
  /// emitted after this many frame arrivals fold into it.
  std::uint32_t ackEvery = 8;
  /// A pending ack older than this is flushed by the next timer tick, so
  /// the worst-case ack delay is ackDelay + tickInterval.  Keep that sum
  /// under `rto`: the sender is timer-driven (no fast retransmit), so a
  /// deferred SACK still reaches it before the retransmission fires.
  Duration ackDelay = milliseconds(2);
  /// When true, pending ack blocks ride inside outgoing DATA frames to the
  /// same peer instead of costing their own datagram.  Off makes every
  /// DATA frame's bytes independent of ack timing (deterministic replay
  /// under content-hashed link randomness — the scenario fuzzer disables
  /// piggybacking for exactly that reason).
  bool ackPiggyback = true;
};

/// One destination of a fan-out send: the target node plus the
/// per-destination prefix of the application payload.  The shared body
/// passed to `sendMany` follows the head on the wire; the pair is stored
/// un-assembled so retransmit state shares the body allocation.
struct OutSend {
  NodeAddress dst;
  std::string head;
};

/// Reliable/ordered façade over one raw `Endpoint`.  All members are
/// thread-safe.
class ReliableEndpoint {
 public:
  /// In-order delivery callback: (source node, stream id, payload).
  /// Invoked on transport threads; must not block for long.  The payload
  /// view is valid only for the duration of the call: in-order frames are
  /// delivered as views straight into the transport's receive buffer
  /// (zero-copy); only frames that had to be buffered out of order were
  /// copied once.
  using DeliverFn = std::function<void(const NodeAddress& src,
                                       std::uint64_t streamId,
                                       std::string_view payload)>;

  /// Invoked once when a stream exceeds its delivery timeout.  After the
  /// callback the stream is marked failed and subsequent send() calls on it
  /// throw DeliveryError until resetStream().
  using FailFn = std::function<void(const NodeAddress& dst,
                                    std::uint64_t streamId,
                                    const std::string& reason)>;

  /// `metrics`, when given, must outlive this endpoint; the layer records
  /// `reliable.*` counters/histograms (ack latency, reorder depth) and
  /// `reliable` trace events into it.  Null disables instrumentation.
  /// `clock` drives the retransmission timer, timestamps and flush waits
  /// (null selects `ClockSource::system()`); must outlive this endpoint.
  explicit ReliableEndpoint(std::shared_ptr<Endpoint> raw,
                            ReliableConfig config = {},
                            obs::MetricsRegistry* metrics = nullptr,
                            ClockSource* clock = nullptr);
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  NodeAddress address() const;

  void setDeliver(DeliverFn fn);
  void setOnFailure(FailFn fn);

  /// Queues `payload` on stream (`dst`, `streamId`) and transmits it.
  /// Returns the frame's sequence number.  Throws DeliveryError if the
  /// stream has already failed.
  std::uint64_t send(const NodeAddress& dst, std::uint64_t streamId,
                     std::string payload);

  /// Fan-out send: queues `sends[i].head + body` on stream
  /// (`sends[i].dst`, `streamId`) for every destination.  The body is the
  /// refcounted shared buffer — it is encoded once by the caller, shared by
  /// every destination's retransmit state, and its bytes are copied exactly
  /// once per wire transmission (at frame-assembly time).  All first
  /// transmissions go out as one `Endpoint::sendBatch` submit.  Returns the
  /// per-destination sequence numbers.  Admission is all-or-nothing: if any
  /// target stream has already failed, throws DeliveryError and queues
  /// nothing.
  std::vector<std::uint64_t> sendMany(std::vector<OutSend> sends,
                                      std::uint64_t streamId, Payload body);

  /// Blocks until every queued frame on every stream has been acknowledged,
  /// or `timeout` elapses.  Returns true when fully flushed.
  bool flush(Duration timeout);

  /// Clears the failed flag and pending frames of a stream so it can be
  /// used again (e.g. after a partition heals).
  void resetStream(const NodeAddress& dst, std::uint64_t streamId);

  /// Stops the retransmission timer and closes the raw endpoint.
  void close();

  struct Stats {
    std::uint64_t dataSent = 0;        ///< first transmissions
    std::uint64_t retransmits = 0;     ///< timer-driven resends
    std::uint64_t delivered = 0;       ///< payloads handed to DeliverFn
    std::uint64_t duplicates = 0;      ///< received frames dropped as dups
    /// Ack block emissions — one per receive stream per flush, whether the
    /// block rode in a standalone ACK datagram or piggybacked on DATA.
    std::uint64_t acksSent = 0;
    /// Standalone ACK datagrams (the denominator the ack-coalescing bench
    /// compares against delivered frames).
    std::uint64_t ackFramesSent = 0;
    /// Frame arrivals folded into an already-pending ack block; each one is
    /// an ack datagram the pre-coalescing design would have sent.
    std::uint64_t acksCoalesced = 0;
    /// Duplicate DATA frames whose re-ack was deferred to the coalesced
    /// flush instead of answered with an immediate datagram (the ack-storm
    /// fix: a burst of dups used to cost one ack datagram each).
    std::uint64_t dupAcksSuppressed = 0;
    /// Payload byte materializations: one per frame assembled onto the wire
    /// (send + retransmit) plus one per frame buffered out of order on
    /// receive.  The zero-copy invariant is copies ~= wire transmissions,
    /// independent of fan-out width.
    std::uint64_t payloadCopies = 0;
    std::uint64_t outOfOrderBuffered = 0;
    std::uint64_t failures = 0;        ///< streams declared failed
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
