#pragma once
/// \file reliable.hpp
/// \brief Reliable, ordered message streams over an unreliable datagram
/// transport.
///
/// Paper §3.2: *"The initial implementation uses UDP, and it includes a
/// layer to ensure that messages are delivered in the order they were
/// sent"* and *"if a message is not delivered within a specified time an
/// exception is raised."*  This module is that layer.
///
/// Each (destination node, stream id) pair is an independent FIFO stream:
/// the sender numbers frames, retransmits unacknowledged frames on a timer,
/// and reports a delivery failure when a frame stays unacknowledged past
/// `deliveryTimeout`.  The receiver acknowledges cumulatively (plus a
/// selective-ack list), buffers out-of-order frames, drops duplicates, and
/// delivers payloads strictly in send order.
///
/// The core layer maps each channel (outbox -> inbox) onto one stream, which
/// yields exactly the paper's channel semantics: FIFO per channel, arbitrary
/// relative order across channels.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "dapple/net/transport.hpp"
#include "dapple/obs/metrics.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

/// Tuning knobs for the ordering layer.
struct ReliableConfig {
  /// Timer granularity for the retransmission scan.
  Duration tickInterval = milliseconds(5);
  /// A frame unacknowledged for this long is retransmitted.
  Duration rto = milliseconds(40);
  /// A frame unacknowledged for this long fails the stream ("the specified
  /// time" of the paper's delivery exception).
  Duration deliveryTimeout = seconds(5);
  /// Exponential RTO backoff cap (rto, 2*rto, ... up to this).
  Duration maxRto = milliseconds(500);
};

/// Reliable/ordered façade over one raw `Endpoint`.  All members are
/// thread-safe.
class ReliableEndpoint {
 public:
  /// In-order delivery callback: (source node, stream id, payload).
  /// Invoked on transport threads; must not block for long.
  using DeliverFn = std::function<void(const NodeAddress& src,
                                       std::uint64_t streamId,
                                       std::string payload)>;

  /// Invoked once when a stream exceeds its delivery timeout.  After the
  /// callback the stream is marked failed and subsequent send() calls on it
  /// throw DeliveryError until resetStream().
  using FailFn = std::function<void(const NodeAddress& dst,
                                    std::uint64_t streamId,
                                    const std::string& reason)>;

  /// `metrics`, when given, must outlive this endpoint; the layer records
  /// `reliable.*` counters/histograms (ack latency, reorder depth) and
  /// `reliable` trace events into it.  Null disables instrumentation.
  /// `clock` drives the retransmission timer, timestamps and flush waits
  /// (null selects `ClockSource::system()`); must outlive this endpoint.
  explicit ReliableEndpoint(std::shared_ptr<Endpoint> raw,
                            ReliableConfig config = {},
                            obs::MetricsRegistry* metrics = nullptr,
                            ClockSource* clock = nullptr);
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  NodeAddress address() const;

  void setDeliver(DeliverFn fn);
  void setOnFailure(FailFn fn);

  /// Queues `payload` on stream (`dst`, `streamId`) and transmits it.
  /// Returns the frame's sequence number.  Throws DeliveryError if the
  /// stream has already failed.
  std::uint64_t send(const NodeAddress& dst, std::uint64_t streamId,
                     std::string payload);

  /// Blocks until every queued frame on every stream has been acknowledged,
  /// or `timeout` elapses.  Returns true when fully flushed.
  bool flush(Duration timeout);

  /// Clears the failed flag and pending frames of a stream so it can be
  /// used again (e.g. after a partition heals).
  void resetStream(const NodeAddress& dst, std::uint64_t streamId);

  /// Stops the retransmission timer and closes the raw endpoint.
  void close();

  struct Stats {
    std::uint64_t dataSent = 0;        ///< first transmissions
    std::uint64_t retransmits = 0;     ///< timer-driven resends
    std::uint64_t delivered = 0;       ///< payloads handed to DeliverFn
    std::uint64_t duplicates = 0;      ///< received frames dropped as dups
    std::uint64_t acksSent = 0;
    std::uint64_t outOfOrderBuffered = 0;
    std::uint64_t failures = 0;        ///< streams declared failed
  };
  Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
