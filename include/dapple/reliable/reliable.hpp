#pragma once
/// \file reliable.hpp
/// \brief Reliable, ordered message streams over an unreliable datagram
/// transport.
///
/// Paper §3.2: *"The initial implementation uses UDP, and it includes a
/// layer to ensure that messages are delivered in the order they were
/// sent"* and *"if a message is not delivered within a specified time an
/// exception is raised."*  This module is that layer.
///
/// Each (destination node, stream id) pair is an independent FIFO stream:
/// the sender numbers frames, retransmits unacknowledged frames on a timer,
/// and reports a delivery failure when a frame stays unacknowledged past
/// `deliveryTimeout`.  The receiver acknowledges cumulatively (plus a
/// selective-ack list), buffers out-of-order frames, drops duplicates, and
/// delivers payloads strictly in send order.
///
/// The core layer maps each channel (outbox -> inbox) onto one stream, which
/// yields exactly the paper's channel semantics: FIFO per channel, arbitrary
/// relative order across channels.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dapple/net/transport.hpp"
#include "dapple/obs/metrics.hpp"
#include "dapple/serial/payload.hpp"
#include "dapple/serial/wire.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

/// Tuning knobs for the ordering layer.
///
/// The sender is adaptive (DESIGN.md §11): the retransmission timeout is
/// estimated per peer (Jacobson SRTT/RTTVAR, Karn's rule) and each stream
/// runs a slow-start + AIMD congestion window.  The *fixed-RTO, unwindowed*
/// behaviour of the original layer is still expressible through this struct
/// — pin `minRto == rto == maxRto` and raise `initialCwnd`/`maxCwnd` past
/// the offered load — which is exactly how `bench_transport` reproduces the
/// old sender as its baseline.
struct ReliableConfig {
  /// Timer granularity for the retransmission scan.
  Duration tickInterval = milliseconds(5);
  /// Initial retransmission timeout, used for a peer until the first RTT
  /// sample lands.  After that the RTO is srtt + 4*rttvar, clamped to
  /// [minRto, maxRto].
  Duration rto = milliseconds(40);
  /// A frame unacknowledged for this long after admission fails the stream
  /// ("the specified time" of the paper's delivery exception).  Frames
  /// still queued behind the congestion window count too: admission starts
  /// the delivery clock, not the first wire transmission.
  Duration deliveryTimeout = seconds(5);
  /// RTO floor.  Must stay comfortably above the receiver's worst-case ack
  /// deferral (ackDelay + tickInterval) or delayed acks masquerade as
  /// losses; `normalized()` enforces that.
  Duration minRto = milliseconds(15);
  /// Exponential per-frame backoff cap (RTO, 2*RTO, ... up to this).
  Duration maxRto = milliseconds(500);
  /// Congestion window at stream creation and after resetStream, in frames.
  std::uint32_t initialCwnd = 4;
  /// Congestion window ceiling, in frames.
  std::uint32_t maxCwnd = 256;
  /// Duplicate-SACK evidence threshold for fast retransmit: a pending frame
  /// that stays unacked while this many later ack blocks cover higher
  /// sequence numbers is retransmitted immediately instead of waiting out
  /// its timer.  Set very high (e.g. UINT32_MAX) to disable.
  std::uint32_t fastRetransmitDups = 3;
  /// Acks are coalesced: one cumulative+SACK block per receive stream is
  /// emitted after this many frame arrivals fold into it.
  std::uint32_t ackEvery = 8;
  /// A pending ack older than this is flushed by the next timer tick, so
  /// the worst-case ack delay is ackDelay + tickInterval.  `normalized()`
  /// keeps that sum under half the (initial and minimum) rto so a deferred
  /// SACK still reaches the sender before its retransmission fires.
  Duration ackDelay = milliseconds(2);
  /// When true, pending ack blocks ride inside outgoing DATA frames to the
  /// same peer instead of costing their own datagram.  Off makes every
  /// DATA frame's bytes independent of ack timing (deterministic replay
  /// under content-hashed link randomness — the scenario fuzzer disables
  /// piggybacking for exactly that reason).
  bool ackPiggyback = true;
  /// When true the endpoint spawns no retransmission-timer thread; the
  /// owner drives the scan by calling `ReliableEndpoint::tick()` every
  /// `tickInterval` instead.  This is how reactor-mode dapplets run: one
  /// shared timer wheel paces every endpoint's ticks, so ten thousand
  /// dapplets cost zero timer threads (DappletConfig::runtime.reactor sets
  /// this automatically).
  bool externalTick = false;
  /// Wire codec for outgoing frames (DATA heads and ACKs).  Incoming frames
  /// are always auto-detected from the per-frame preamble byte, so peers
  /// configured differently interoperate; text stays the default for
  /// cross-version compat and human-readable captures.
  WireCodec codec = WireCodec::kText;

  /// Returns a copy with inconsistent knob combinations clamped to safe
  /// values.  Each adjustment appends one human-readable line to `notes`
  /// (when given); `ReliableEndpoint` runs this at construction and emits
  /// every note as a `reliable`/`config.clamp` trace event, so a
  /// misconfiguration that used to cause silent spurious-retransmit storms
  /// now shows up in the trace ring instead.
  ReliableConfig normalized(std::vector<std::string>* notes = nullptr) const;
};

/// One destination of a fan-out send: the target node plus the
/// per-destination prefix of the application payload.  The shared body
/// passed to `sendMany` follows the head on the wire; the pair is stored
/// un-assembled so retransmit state shares the body allocation.
struct OutSend {
  NodeAddress dst;
  std::string head;
};

/// Reliable/ordered façade over one raw `Endpoint`.  All members are
/// thread-safe.
class ReliableEndpoint {
 public:
  /// In-order delivery callback: (source node, stream id, payload).
  /// Invoked on transport threads; must not block for long.  The payload
  /// view is valid only for the duration of the call: in-order frames are
  /// delivered as views straight into the transport's receive buffer
  /// (zero-copy); only frames that had to be buffered out of order were
  /// copied once.
  using DeliverFn = std::function<void(const NodeAddress& src,
                                       std::uint64_t streamId,
                                       std::string_view payload)>;

  /// Invoked once when a stream exceeds its delivery timeout.  After the
  /// callback the stream is marked failed and subsequent send() calls on it
  /// throw DeliveryError until resetStream().
  using FailFn = std::function<void(const NodeAddress& dst,
                                    std::uint64_t streamId,
                                    const std::string& reason)>;

  /// `metrics`, when given, must outlive this endpoint; the layer records
  /// `reliable.*` counters/histograms (ack latency, reorder depth) and
  /// `reliable` trace events into it.  Null disables instrumentation.
  /// `clock` drives the retransmission timer, timestamps and flush waits
  /// (null selects `ClockSource::system()`); must outlive this endpoint.
  explicit ReliableEndpoint(std::shared_ptr<Endpoint> raw,
                            ReliableConfig config = {},
                            obs::MetricsRegistry* metrics = nullptr,
                            ClockSource* clock = nullptr);
  ~ReliableEndpoint();

  ReliableEndpoint(const ReliableEndpoint&) = delete;
  ReliableEndpoint& operator=(const ReliableEndpoint&) = delete;

  NodeAddress address() const;

  void setDeliver(DeliverFn fn);
  void setOnFailure(FailFn fn);

  /// Single-destination convenience: a one-element sendMany (same batched
  /// surface underneath — one transport submit, shared accounting).  Queues
  /// `payload` on stream (`dst`, `streamId`) and transmits it.  Returns the
  /// frame's sequence number.  Throws DeliveryError if the stream has
  /// already failed.
  std::uint64_t send(const NodeAddress& dst, std::uint64_t streamId,
                     std::string payload);

  /// Fan-out send: queues `sends[i].head + body` on stream
  /// (`sends[i].dst`, `streamId`) for every destination.  The body is the
  /// refcounted shared buffer — it is encoded once by the caller, shared by
  /// every destination's retransmit state, and its bytes are copied exactly
  /// once per wire transmission (at frame-assembly time).  All first
  /// transmissions go out as one `Endpoint::sendBatch` submit.  Returns the
  /// per-destination sequence numbers.  Admission is all-or-nothing: if any
  /// target stream has already failed, or any head+body cannot fit the
  /// transport's datagram limit (`Endpoint::maxDatagramSize` — such a frame
  /// is undeliverable by construction and would only surface as a delivery
  /// timeout), throws DeliveryError and queues nothing.
  std::vector<std::uint64_t> sendMany(std::vector<OutSend> sends,
                                      std::uint64_t streamId, Payload body);

  /// Outcome of a `flushEx` wait.
  enum class FlushOutcome {
    kFlushed,   ///< every queued frame on every stream was acknowledged
    kFailed,    ///< nothing left in flight, but >=1 stream failed (its
                ///< pending frames were discarded, not delivered)
    kTimedOut,  ///< frames still unacknowledged when `timeout` elapsed
  };

  /// Blocks until no frame is left in flight or queued on any stream, or
  /// `timeout` elapses.  Distinguishes "drained because everything was
  /// acknowledged" (kFlushed) from "drained because a stream failed and
  /// dropped its frames" (kFailed — sticky until `resetStream` clears the
  /// failed streams).
  FlushOutcome flushEx(Duration timeout);

  /// Blocks until every queued frame on every stream has been acknowledged
  /// or discarded by a stream failure, or `timeout` elapses.  Returns true
  /// when nothing is left in flight.  NOTE: a failed stream counts as
  /// drained — its frames were dropped, not delivered — so `true` does NOT
  /// certify delivery; use `flushEx` to tell the two apart.
  bool flush(Duration timeout);

  /// Clears the failed flag and pending frames of a stream so it can be
  /// used again (e.g. after a partition heals).
  void resetStream(const NodeAddress& dst, std::uint64_t streamId);

  /// One retransmission-scan pass: RTO/fast-retransmit checks, delivery
  /// timeouts, delayed-ack flush.  With the internal timer thread this runs
  /// automatically every `tickInterval`; under `externalTick` the owner
  /// (the dapplet's reactor timer) calls it instead.  Safe from any thread;
  /// a no-op after close().
  void tick();

  /// Stops the retransmission timer and closes the raw endpoint.
  void close();

  struct Stats {
    std::uint64_t dataSent = 0;        ///< first transmissions
    std::uint64_t retransmits = 0;     ///< resends (timer-driven + fast)
    /// Resends triggered by duplicate-SACK evidence before the timer fired.
    std::uint64_t fastRetransmits = 0;
    /// RTT samples folded into a peer's SRTT/RTTVAR estimate (Karn's rule:
    /// retransmitted frames never sample).
    std::uint64_t rttSamples = 0;
    /// Frames admitted but parked behind the congestion window instead of
    /// transmitted immediately.
    std::uint64_t windowDeferred = 0;
    /// Payload bytes of first transmissions / of resends / handed to the
    /// DeliverFn.  retransmitBytes / dataBytes is the retransmit-efficiency
    /// ratio the fuzz oracle and bench_transport bound.
    std::uint64_t dataBytes = 0;
    std::uint64_t retransmitBytes = 0;
    std::uint64_t deliveredBytes = 0;
    std::uint64_t delivered = 0;       ///< payloads handed to DeliverFn
    std::uint64_t duplicates = 0;      ///< received frames dropped as dups
    /// Ack block emissions — one per receive stream per flush, whether the
    /// block rode in a standalone ACK datagram or piggybacked on DATA.
    std::uint64_t acksSent = 0;
    /// Standalone ACK datagrams (the denominator the ack-coalescing bench
    /// compares against delivered frames).
    std::uint64_t ackFramesSent = 0;
    /// Frame arrivals folded into an already-pending ack block; each one is
    /// an ack datagram the pre-coalescing design would have sent.
    std::uint64_t acksCoalesced = 0;
    /// Duplicate DATA frames whose re-ack was deferred to the coalesced
    /// flush instead of answered with an immediate datagram (the ack-storm
    /// fix: a burst of dups used to cost one ack datagram each).
    std::uint64_t dupAcksSuppressed = 0;
    /// Payload byte materializations: one per frame assembled onto the wire
    /// (send + retransmit) plus one per frame buffered out of order on
    /// receive.  The zero-copy invariant is copies ~= wire transmissions,
    /// independent of fan-out width.
    std::uint64_t payloadCopies = 0;
    std::uint64_t outOfOrderBuffered = 0;
    std::uint64_t failures = 0;        ///< streams declared failed
  };
  Stats stats() const;

  /// Point-in-time view of one peer's RTT estimator (tests/debugging).
  struct PeerProbe {
    bool hasRtt = false;  ///< at least one clean (Karn-valid) sample landed
    Duration srtt{};
    Duration rttvar{};
    Duration rto{};  ///< current effective RTO (initial rto until hasRtt)
  };
  PeerProbe probePeer(const NodeAddress& peer) const;

  /// Point-in-time view of one send stream's window (tests/debugging).
  struct StreamProbe {
    bool exists = false;
    bool failed = false;
    double cwnd = 0;          ///< congestion window, frames
    std::uint64_t ssthresh = 0;
    std::size_t inFlight = 0;  ///< transmitted, unacked
    std::size_t queued = 0;    ///< admitted, waiting for window space
  };
  StreamProbe probeStream(const NodeAddress& dst, std::uint64_t streamId) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
