#pragma once
/// \file trace.hpp
/// \brief Structured trace events in a fixed-capacity overwrite ring.
///
/// Where metrics (metrics.hpp) aggregate, traces narrate: one `TraceEvent`
/// per control-plane incident — a session round, a stream failure, an
/// eviction, a retransmission burst — so "why was this session slow" can be
/// answered after the fact without logs.  The ring holds the last
/// `capacity` events; older events are overwritten, never blocked on.
/// Emission takes one short mutex (events are control-plane rate, not
/// per-message rate) and never allocates while holding other locks.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "dapple/util/time.hpp"

namespace dapple::obs {

/// One recorded incident.  `category` must be a string literal (it is
/// stored by pointer); `name`/`detail` are copied.
struct TraceEvent {
  std::uint64_t seq = 0;       ///< emission index since ring construction
  std::int64_t atMicros = 0;   ///< steady-clock µs since ring construction
  const char* category = "";   ///< subsystem, e.g. "session", "reliable"
  std::string name;            ///< event, e.g. "invite.reject"
  std::string detail;          ///< free-form context (member, reason, ...)
  std::int64_t a = 0;          ///< numeric payload (latency, id, count...)
  std::int64_t b = 0;          ///< second numeric payload
};

/// Bounded ring of TraceEvents with overwrite-oldest semantics.
/// All members are thread-safe.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = 512);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records an event, overwriting the oldest once the ring is full.
  /// `category` MUST be a string literal or otherwise outlive the ring.
  void emit(const char* category, std::string name, std::string detail = "",
            std::int64_t a = 0, std::int64_t b = 0);

  /// The retained events, oldest first.  At most `capacity()` entries; the
  /// `seq` field exposes how many were overwritten before the window.
  std::vector<TraceEvent> events() const;

  /// Total events ever emitted (retained + overwritten).
  std::uint64_t emitted() const;

  /// Events lost to overwrite: `emitted() - events().size()`.
  std::uint64_t overwritten() const;

  std::size_t capacity() const { return capacity_; }

  /// Drops all retained events (emitted() keeps counting from where it was).
  void clear();

  /// Events as a JSON array, oldest first:
  /// `[{"seq":n,"at_us":n,"category":"...","name":"...","detail":"...",
  ///    "a":n,"b":n}, ...]`.
  std::string toJson() const;

 private:
  const std::size_t capacity_;
  const TimePoint epoch_;
  mutable std::mutex mutex_;
  std::deque<TraceEvent> ring_;  // oldest at front; pop_front on overflow
  std::uint64_t next_ = 0;       // next seq to assign == emitted()
};

}  // namespace dapple::obs
