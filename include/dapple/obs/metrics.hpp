#pragma once
/// \file metrics.hpp
/// \brief Lock-cheap metrics: counters, gauges, and log-scale histograms.
///
/// The paper's channels have "arbitrary and independent" delays (§3.2), so a
/// production deployment cannot be tuned by guesswork: retry knobs, heartbeat
/// intervals and queue sizing all need measurement of the live message path.
/// This module is that instrumentation plane.  Design rules:
///
///  * **Recording is wait-free.**  Every metric is a handful of relaxed
///    atomics; no mutex is taken on the hot path.  Call sites resolve a
///    metric once (`registry.counter("x")` returns a stable reference) and
///    then only touch atomics.
///  * **Registration is rare and locked.**  Creating/looking up metrics by
///    name takes the registry mutex; components do this at construction.
///  * **Snapshots are consistent enough.**  `snapshot()` reads each atomic
///    once; counters are monotonic so readers see a value that was true at
///    some instant near the call.
///
/// Histograms use fixed log2 buckets: bucket 0 holds the value 0 and bucket
/// `i >= 1` holds values in `[2^(i-1), 2^i)`.  Bucket boundaries are exact
/// and identical across processes, so histograms can be merged by adding
/// bucket counts — no configuration to agree on.

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "dapple/obs/trace.hpp"

namespace dapple::obs {

/// Monotonic event counter.  Wait-free; relaxed memory order is enough
/// because readers only need eventual, not causal, visibility.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value with a high-water helper (queue depths, fan-out).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raises the gauge to `v` if `v` is larger (monotonic high-water mark).
  void recordMax(std::int64_t v) noexcept {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// One histogram's state at a point in time (see Histogram for the bucket
/// scheme).  Plain data; serializable via MetricsSnapshot.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 65;  // bit_width(u64) in [0, 64]

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  /// Upper bound of bucket `i` (inclusive): 0 for bucket 0, else 2^i - 1.
  static std::uint64_t bucketUpperBound(std::size_t i) {
    if (i == 0) return 0;
    if (i >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << i) - 1;
  }

  /// Conservative quantile estimate: the upper bound of the bucket holding
  /// the q-th sample (q in [0,1]).  Within a factor of 2 of the true value,
  /// which is enough to pick timeouts and spot regressions.
  std::uint64_t quantile(double q) const {
    if (count == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    const auto rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count - 1));  // 0-based sample index
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += buckets[i];
      if (seen > rank) return bucketUpperBound(i);
    }
    return max;
  }
};

/// Fixed log2-bucket histogram.  Recording is 4 relaxed atomic ops (bucket,
/// count, sum, max); values are dimensionless — callers pick a unit and
/// encode it in the metric name (`*_us`, `*_bytes`, ...).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  /// Bucket index of `value`: `std::bit_width` — 0 for 0, else
  /// 1 + floor(log2(value)), so bucket i covers [2^(i-1), 2^i).
  static std::size_t bucketOf(std::uint64_t value) noexcept {
    return static_cast<std::size_t>(std::bit_width(value));
  }

  void record(std::uint64_t value) noexcept {
    buckets_[bucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (value > cur && !max_.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot s;
    s.count = count_.load(std::memory_order_relaxed);
    s.sum = sum_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kBuckets; ++i) {
      s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Every metric of one registry at a point in time, plus dump helpers.
/// Mergeable so a process can aggregate per-dapplet and per-network views.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Merges `other` in: counters add, gauges take the max (they are almost
  /// always high-water marks), histograms add bucket-wise.  Keys may be
  /// rewritten with `prefix` (e.g. "net." for a network's view).
  void merge(const MetricsSnapshot& other, const std::string& prefix = "");

  /// One metric per line, sorted by name — for logs and terminals.
  std::string toText() const;

  /// Machine-readable dump: `{"counters": {...}, "gauges": {...},
  /// "histograms": {"name": {"count": n, "sum": n, "max": n, "p50": n,
  /// "p99": n, "buckets": [[upper_bound, count], ...]}}}`.  Zero buckets are
  /// omitted.
  std::string toJson() const;
};

/// Names metrics and owns their storage.  Metric references returned by
/// `counter`/`gauge`/`histogram` stay valid for the registry's lifetime, so
/// components resolve them once at construction and record lock-free after.
/// All members are thread-safe.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t traceCapacity = 512)
      : trace_(traceCapacity) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric.  Looking a name up as two different
  /// metric kinds throws MetricsError.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// The registry's structured trace-event ring (see trace.hpp).
  TraceRing& trace() { return trace_; }
  const TraceRing& trace() const { return trace_; }

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  // deques: stable element addresses under growth.
  std::deque<Counter> counterStore_;
  std::deque<Gauge> gaugeStore_;
  std::deque<Histogram> histogramStore_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, Histogram*> histograms_;
  TraceRing trace_;
};

}  // namespace dapple::obs
