#pragma once
/// \file address.hpp
/// \brief Node addresses: the (IP address, port) pairs the paper uses to
/// identify dapplets.

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace dapple {

/// Address of a dapplet process: an IPv4 host (or a simulated host id) plus
/// a port.  Paper §3.1: "Associated with each dapplet is an Internet address
/// (i.e. IP address and port id)".
struct NodeAddress {
  std::uint32_t host = 0;  ///< IPv4 in host byte order, or a simulator id.
  std::uint16_t port = 0;

  friend bool operator==(const NodeAddress&, const NodeAddress&) = default;
  friend auto operator<=>(const NodeAddress&, const NodeAddress&) = default;

  bool valid() const { return host != 0 || port != 0; }

  /// Renders "a.b.c.d:port".
  std::string toString() const;

  /// Parses "a.b.c.d:port"; throws AddressError on malformed input.
  static NodeAddress parse(std::string_view text);

  /// A packed 48-bit key, convenient for hashing and wire encoding.
  std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(host) << 16) | port;
  }
  static NodeAddress fromPacked(std::uint64_t p) {
    return NodeAddress{static_cast<std::uint32_t>(p >> 16),
                       static_cast<std::uint16_t>(p & 0xffff)};
  }
};

}  // namespace dapple

template <>
struct std::hash<dapple::NodeAddress> {
  std::size_t operator()(const dapple::NodeAddress& a) const noexcept {
    return std::hash<std::uint64_t>{}(a.packed() * 0x9e3779b97f4a7c15ull);
  }
};
