#pragma once
/// \file transport.hpp
/// \brief Datagram transport abstraction.
///
/// A `Network` produces `Endpoint`s; an endpoint sends unreliable,
/// unordered, possibly duplicated datagrams to other endpoints of the same
/// network.  Two implementations ship with the library:
///
///  * `SimNetwork`  — deterministic in-process simulator with per-link
///                    delay, jitter, loss and duplication (the "Internet"
///                    stand-in; see sim.hpp);
///  * `UdpNetwork`  — real UDP sockets on localhost (udp.hpp).
///
/// Everything above this interface (the reliable ordering layer, inboxes,
/// outboxes, sessions, services) is transport-agnostic, mirroring the
/// paper's separation between the network layer and the distributed
/// computing layer.

#include <cstddef>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dapple/net/address.hpp"

namespace dapple {

/// One datagram of a batched submit (see Endpoint::sendBatch).
struct Datagram {
  NodeAddress dst;
  std::string payload;
};

/// One attachment point to a network.  Thread-safe.
class Endpoint {
 public:
  /// Receive callback.  Invoked on a network-owned thread; implementations
  /// must be fast and must not call back into `send` recursively deeper
  /// than one level.  The payload view is valid only for the duration of
  /// the call — copy it if it must outlive the callback (zero-copy receive:
  /// transports hand out views of their receive buffers).
  using Handler = std::function<void(const NodeAddress& src,
                                     std::string_view payload)>;

  virtual ~Endpoint() = default;

  /// The address peers use to reach this endpoint.
  virtual NodeAddress address() const = 0;

  /// THE send primitive: hands every datagram of `batch` to the network in
  /// one call.  Each datagram is fire-and-forget — it may be dropped,
  /// delayed arbitrarily, duplicated, or reordered relative to any other
  /// send, including others in the same batch.  Batching is purely a cost
  /// model: the reliable layer's fan-out send, retransmission scan and
  /// coalesced-ack flush submit bursts so they cost one syscall (`sendmmsg`
  /// on UDP) or one lock acquisition (simulator) instead of one per
  /// datagram.  Undeliverable datagrams (oversize, transient socket errors)
  /// count as loss — they are dropped and tallied, never thrown.
  virtual void sendBatch(std::vector<Datagram> batch) = 0;

  /// Single-datagram convenience: a one-element sendBatch.  Same contract,
  /// same loss accounting — kept non-virtual so every transport has exactly
  /// one send path to implement and instrument.
  void send(const NodeAddress& dst, std::string payload) {
    std::vector<Datagram> batch;
    batch.push_back(Datagram{dst, std::move(payload)});
    sendBatch(std::move(batch));
  }

  /// Largest payload this transport can carry in one datagram.  A larger
  /// send is undeliverable by construction and is counted as loss (see
  /// sendBatch).  Layers that still have a caller to fail — the reliable
  /// layer's send admission — check against this bound and throw
  /// synchronously instead of letting a doomed payload surface as an
  /// eventual delivery timeout.  Default: unbounded (the simulator carries
  /// any size).
  virtual std::size_t maxDatagramSize() const {
    return std::numeric_limits<std::size_t>::max();
  }

  /// Installs the receive handler.  Must be called before traffic arrives;
  /// datagrams received while no handler is installed are dropped.
  virtual void setHandler(Handler handler) = 0;

  /// Detaches from the network; subsequent sends are no-ops and no further
  /// handler invocations occur after close() returns.
  virtual void close() = 0;
};

/// Factory for endpoints sharing one datagram fabric.
class Network {
 public:
  virtual ~Network() = default;

  /// Opens an endpoint.  `port == 0` picks an unused port automatically.
  /// Throws NetworkError / AddressError on failure (port in use, etc.).
  virtual std::shared_ptr<Endpoint> open(std::uint16_t port = 0) = 0;

  /// Opens an endpoint on a specific host where the network supports host
  /// placement (the simulator); other networks ignore `host`.
  virtual std::shared_ptr<Endpoint> openAt(std::uint32_t host,
                                           std::uint16_t port = 0) {
    (void)host;
    return open(port);
  }
};

}  // namespace dapple
