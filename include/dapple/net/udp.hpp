#pragma once
/// \file udp.hpp
/// \brief Real UDP transport (paper §3.2: "The initial implementation uses
/// UDP").
///
/// Binds endpoints to 127.0.0.1 so the full stack — serialization, the
/// reliable ordering layer, inboxes/outboxes, sessions, services — runs over
/// genuine kernel sockets.  The `SimNetwork` is used when WAN behaviour
/// (delay/loss/partition) must be injected; both implement the same
/// `Network` interface.

#include <cstdint>
#include <memory>

#include "dapple/net/transport.hpp"
#include "dapple/obs/metrics.hpp"

namespace dapple {

/// UDP/IPv4 network on the loopback interface.
class UdpNetwork : public Network {
 public:
  UdpNetwork();
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and starts
  /// a receiver thread.  Throws NetworkError on socket failure.
  std::shared_ptr<Endpoint> open(std::uint16_t port = 0) override;

  /// Socket-level traffic counters, aggregated across every endpoint this
  /// network opened (cumulative; endpoints keep counting until closed).
  struct Stats {
    std::uint64_t sent = 0;        ///< datagrams handed to sendto()
    std::uint64_t received = 0;    ///< datagrams handed to the handler
    std::uint64_t sendErrors = 0;  ///< sendto() failures (treated as loss)
  };
  Stats stats() const;

  /// stats() as a mergeable snapshot (`udp.*` counters).
  obs::MetricsSnapshot metrics() const;

 private:
  class EndpointImpl;
  struct Counters;
  std::shared_ptr<Counters> counters_;
};

}  // namespace dapple
