#pragma once
/// \file udp.hpp
/// \brief Real UDP transport (paper §3.2: "The initial implementation uses
/// UDP").
///
/// Binds endpoints to 127.0.0.1 so the full stack — serialization, the
/// reliable ordering layer, inboxes/outboxes, sessions, services — runs over
/// genuine kernel sockets.  The `SimNetwork` is used when WAN behaviour
/// (delay/loss/partition) must be injected; both implement the same
/// `Network` interface.

#include <memory>

#include "dapple/net/transport.hpp"

namespace dapple {

/// UDP/IPv4 network on the loopback interface.
class UdpNetwork : public Network {
 public:
  UdpNetwork();
  ~UdpNetwork() override;

  UdpNetwork(const UdpNetwork&) = delete;
  UdpNetwork& operator=(const UdpNetwork&) = delete;

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port) and starts
  /// a receiver thread.  Throws NetworkError on socket failure.
  std::shared_ptr<Endpoint> open(std::uint16_t port = 0) override;

 private:
  class EndpointImpl;
};

}  // namespace dapple
