#pragma once
/// \file sim.hpp
/// \brief In-process simulated datagram network.
///
/// This is the substitute for the paper's world-wide Internet testbed
/// (Caltech / Rice / Tennessee): a datagram fabric whose links have
/// configurable one-way delay, uniform jitter, loss probability and
/// duplication probability, all driven by a seeded deterministic RNG.  It
/// exhibits exactly the behaviours the paper requires the upper layers to
/// tolerate (§2.2 "Coping with a Varied Network Environment", §3.2
/// "Message delays in channels are arbitrary ... the delay is independent of
/// the delay experienced by other messages"):
///
///  * arbitrary, independent per-message delays (reordering emerges from
///    jitter),
///  * undelivered messages (loss, partitions),
///  * duplicated messages.
///
/// Hosts are small integer ids; use `openAt(host, port)` to place several
/// endpoints on one simulated machine and `setHostLink` to model WAN delays
/// between sites.

#include <cstdint>
#include <memory>

#include "dapple/net/transport.hpp"
#include "dapple/obs/metrics.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

/// Per-link behaviour.  Effective one-way delay of a datagram is
/// `delay + U[0, jitter)`, scaled by the network's time scale.
struct LinkParams {
  microseconds delay{0};
  microseconds jitter{0};
  double lossProb = 0.0;
  double dupProb = 0.0;
};

/// Deterministic simulated datagram network.  All members are thread-safe.
class SimNetwork : public Network {
 public:
  struct Options {
    /// Multiplies all link delays (e.g. 0.01 runs a "50 ms WAN" scenario
    /// 100x faster in real time; irrelevant under a virtual clock).
    double timeScale = 1.0;
    /// Time source for datagram due-times and the delivery thread's waits.
    /// Null selects `ClockSource::system()`; inject a
    /// `testkit::VirtualClock` for zero-wall-clock-sleep delivery.
    ClockSource* clock = nullptr;
    /// Schedule-independent stochastic decisions: loss/duplication/jitter
    /// for a datagram are drawn from a hash of (seed, src, dst, payload,
    /// retransmission ordinal) instead of a shared sequential RNG.  Two runs
    /// then make identical per-datagram decisions even when unrelated
    /// traffic interleaves differently — the property the scenario fuzzer's
    /// byte-identical replay digest rests on.
    bool hashedLinkRandomness = false;
  };

  /// `seed` drives every stochastic decision; `timeScale` multiplies all
  /// link delays (use e.g. 0.01 to run a "50 ms WAN" scenario 100x faster).
  explicit SimNetwork(std::uint64_t seed = 1, double timeScale = 1.0);

  SimNetwork(std::uint64_t seed, const Options& options);
  ~SimNetwork() override;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Opens an endpoint on host 1.
  std::shared_ptr<Endpoint> open(std::uint16_t port = 0) override;

  /// Opens an endpoint on a specific simulated host.
  std::shared_ptr<Endpoint> openAt(std::uint32_t host,
                                   std::uint16_t port = 0) override;

  /// Link parameters applied when no more specific entry exists.
  void setDefaultLink(const LinkParams& params);

  /// Directional host-pair override (src host -> dst host).
  void setHostLink(std::uint32_t srcHost, std::uint32_t dstHost,
                   const LinkParams& params);

  /// Symmetric convenience: sets both directions.
  void setHostLinkBetween(std::uint32_t hostA, std::uint32_t hostB,
                          const LinkParams& params);

  /// Cuts (or heals) all traffic between two hosts.  Datagrams sent while
  /// partitioned are silently dropped — the "network fault" of §2.2.
  void setPartition(std::uint32_t hostA, std::uint32_t hostB,
                    bool partitioned);

  /// Crash-stop injection: abruptly closes the endpoint bound at `addr`
  /// (as if its process died — no FIN, no handshake; subsequent datagrams
  /// to it count as undeliverable).  Returns true when an endpoint was
  /// killed, false when the address was not bound.
  bool kill(const NodeAddress& addr);

  /// Kills every endpoint on a simulated host — whole-machine failure.
  /// Returns the number of endpoints killed.
  std::size_t killHost(std::uint32_t host);

  /// Traffic counters (cumulative since construction).
  struct Stats {
    std::uint64_t sent = 0;        ///< datagrams handed to the network
    std::uint64_t delivered = 0;   ///< handler invocations
    std::uint64_t dropped = 0;     ///< lost to lossProb or partitions
    std::uint64_t duplicated = 0;  ///< extra copies injected
    std::uint64_t undeliverable = 0;  ///< destination endpoint absent
  };
  Stats stats() const;

  /// stats() as a mergeable snapshot (`sim.*` counters), so a test or bench
  /// can fold the fabric's view into a dapplet's metrics() dump.  Once the
  /// network is quiescent the counters satisfy
  /// `delivered + undeliverable == sent - dropped + duplicated`.
  obs::MetricsSnapshot metrics() const;

  /// Number of datagrams currently queued for future delivery.
  std::size_t inFlight() const;

  /// Blocks until the network has no queued datagrams or `timeout` elapses;
  /// returns true when quiescent.  Useful for draining tests.
  bool awaitQuiescent(Duration timeout);

 private:
  class EndpointImpl;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
