#pragma once
/// \file seed.hpp
/// \brief Seed plumbing for stochastic tests.
///
/// Every seeded test takes its seed from `testSeed(fallback)`: the checked-in
/// fallback keeps CI deterministic, while `DAPPLE_TEST_SEED=N ctest ...`
/// re-runs the whole suite's stochastic tests under a different seed without
/// recompiling.  Pair it with `DAPPLE_SEED_TRACE` so any assertion failure
/// prints the seed needed to reproduce it.

#include <cstdint>
#include <cstdlib>

namespace dapple::testkit {

/// Returns `DAPPLE_TEST_SEED` from the environment when set to a valid
/// decimal number, `fallback` otherwise.
inline std::uint64_t testSeed(std::uint64_t fallback) {
  const char* env = std::getenv("DAPPLE_TEST_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return fallback;
  return static_cast<std::uint64_t>(v);
}

}  // namespace dapple::testkit

/// Attaches the active seed to every assertion failure in the enclosing
/// scope (gtest only; expands to nothing elsewhere).
#if defined(GTEST_API_)
#define DAPPLE_SEED_TRACE(seed) \
  SCOPED_TRACE(::testing::Message() << "DAPPLE_TEST_SEED=" << (seed))
#else
#define DAPPLE_SEED_TRACE(seed) \
  do {                          \
  } while (false)
#endif
