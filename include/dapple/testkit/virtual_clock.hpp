#pragma once
/// \file virtual_clock.hpp
/// \brief Discrete-event virtual time for deterministic tests.
///
/// `VirtualClock` is a `ClockSource` whose timeline only moves when it is
/// safe to move it: every thread registered as a *worker* (transport
/// delivery threads, retransmission timers, dapplet-spawned workers) must be
/// parked in a clocked wait.  At that moment nothing in the system can make
/// progress except by time passing, so the clock jumps straight to the
/// earliest pending deadline — a retransmission tick, a heartbeat, a
/// `receiveFor` timeout, a simulated datagram's due time — wakes its
/// waiters, and repeats.  A five-second fault scenario therefore runs in
/// milliseconds of wall time, and "sleeping" tests stop sleeping.
///
/// Threads *not* registered as workers (the test driver) are *guests*:
/// their clocked waits park and wake like everyone else's, but a running
/// guest never blocks advancement.  A guest blocked in `receive(2s)` with
/// nothing due simply has its deadline become the next event.
///
/// `at()`/`after()` schedule callbacks at exact virtual times (on the
/// clock's scheduler thread) — the hook for fault injection: kill a host at
/// t+300ms, heal a partition at t+800ms, with perfect repeatability.
///
/// Two driving modes:
///  * auto-advance (default): a scheduler thread advances whenever the
///    system quiesces.  Existing tests convert by constructing the clock,
///    pointing `DappletConfig::clock` and `SimNetwork` at it, and replacing
///    real sleeps with `clock.sleepFor` — blocking drivers just work.
///  * manual (`Options{.autoAdvance = false}`): the test calls
///    `advanceTo`/`advanceBy`; precise unit-test control.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "dapple/util/time.hpp"

namespace dapple::testkit {

/// Deterministic virtual-time ClockSource.  All members are thread-safe.
class VirtualClock final : public ClockSource {
 public:
  struct Options {
    /// Virtual timeline origin (arbitrary; fixed so runs are comparable).
    TimePoint start = TimePoint{} + std::chrono::hours(1);
    /// Start the scheduler thread that advances on quiescence.
    bool autoAdvance = true;
  };

  VirtualClock();
  explicit VirtualClock(Options options);
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// Tear-down order matters: destroy every component using this clock
  /// (dapplets, networks) before the clock itself.
  ~VirtualClock() override;

  // --- ClockSource --------------------------------------------------------

  TimePoint now() const override;
  void sleepFor(Duration d) override;
  bool waitUntilImpl(std::unique_lock<std::mutex>& lock,
                     std::condition_variable& cv, TimePoint deadline, PredFn pred,
                     void* ctx) override;
  void parkUntil(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                 TimePoint deadline) override;
  void notifyOne(std::condition_variable& cv) override;
  void notifyAll(std::condition_variable& cv) override;
  void interruptAll() override;
  void beginWorker() override;
  void endWorker() override;
  void announceWorker() override;

  // --- scheduling ---------------------------------------------------------

  /// Runs `fn` on the scheduler thread when virtual time reaches `t`
  /// (immediately-due alarms fire at the next advancement step).  `fn` may
  /// block on clocked waits of OTHER threads' making but must not itself
  /// wait on this clock's timeline moving — time is paused while it runs.
  void at(TimePoint t, std::function<void()> fn);

  /// `at(now() + d, fn)`.
  void after(Duration d, std::function<void()> fn);

  // --- manual driving (autoAdvance = false) -------------------------------

  /// Steps through every deadline/alarm due up to `t` in order, then sets
  /// the clock to `t`.  Does not wait for workers to quiesce between steps;
  /// use `settle()` for that.
  void advanceTo(TimePoint t);
  void advanceBy(Duration d);

  /// Blocks (in real time) until every registered worker is parked in a
  /// clocked wait — i.e. the system can only progress by advancing time.
  /// Returns false if `realTimeout` (wall clock) expires first.
  bool settle(Duration realTimeout = seconds(10));

  /// Number of registered workers (diagnostics).
  std::size_t workerCount() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple::testkit
