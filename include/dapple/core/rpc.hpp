#pragma once
/// \file rpc.hpp
/// \brief RPC on top of inboxes and messages.
///
/// Paper §3.2 "Communication Layer Features": *"Associate an inbox b with
/// an object p.  Messages in b are directions to invoke appropriate methods
/// on p.  Associate a thread with b and p; the thread receives a message
/// from b and then invokes the method specified in the message on p.  Thus
/// the address of the inbox serves as a global pointer to an object
/// associated with the inbox, and messages serve the role of asynchronous
/// RPCs.  Synchronous RPCs are implemented as pairwise asynchronous RPCs."*
///
/// `RpcServer` is the (inbox, object, thread) triple; `RpcClient` issues
/// `notify` (asynchronous) and `call` (synchronous = request plus reply,
/// correlated by id).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "dapple/core/dapplet.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// Serves methods on an object reachable through one inbox ("the address of
/// the inbox serves as a global pointer").
class RpcServer {
 public:
  using Method = std::function<Value(const Value& args)>;

  /// Creates the serving inbox (named `inboxName`) and starts the dispatch
  /// thread on `dapplet`.
  explicit RpcServer(Dapplet& dapplet, const std::string& inboxName = "rpc");
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Registers a method.  Exceptions thrown by `fn` are marshalled back to
  /// the synchronous caller as Error.
  void bind(const std::string& method, Method fn);

  /// The global pointer clients use to reach this object.
  InboxRef ref() const;

  struct Stats {
    std::uint64_t callsServed = 0;
    std::uint64_t notifiesServed = 0;
    std::uint64_t errors = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Client stub bound to one remote RpcServer.
class RpcClient {
 public:
  /// `server` is the target server's inbox ref.
  RpcClient(Dapplet& dapplet, InboxRef server);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Binds an additional server inbox.  `notify` then fans out to every
  /// bound server through the one request outbox (the body is encoded once
  /// and shared, per DESIGN.md §10).  `call` expects a single reply and
  /// should only be used on a client bound to exactly one server.
  void addServer(InboxRef server);

  /// Asynchronous RPC: fire-and-forget method invocation, delivered to
  /// every bound server.
  void notify(const std::string& method, const Value& args);

  /// Synchronous RPC ("pairwise asynchronous"): sends the request and
  /// blocks for the reply.  Throws TimeoutError when no reply arrives in
  /// time and Error when the server reports a failure.
  Value call(const std::string& method, const Value& args,
             Duration timeout = seconds(5));

 private:
  static Value unpack(const Value& rsp, const std::string& method);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
