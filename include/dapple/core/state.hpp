#pragma once
/// \file state.hpp
/// \brief Persistent dapplet state with per-session scoped views and an
/// interference guard.
///
/// Paper §2.2 "Persistent State Across Multiple Temporary Sessions":
///  * state outlives sessions ("an appointments calendar that disappears
///    when an appointment is made has no value") — `StateStore` persists to
///    a file in the text wire format;
///  * each session "only has access to portions of the state relevant to
///    that session" — a `StateView` restricts access to the session's
///    declared read/write key sets;
///  * "two sessions must not be allowed to proceed concurrently if one
///    modifies variables accessed by the other" — `InterferenceGuard`
///    admits a new session only when its write set is disjoint from every
///    live session's read+write sets and its read set is disjoint from
///    every live write set.
///
/// Crash recovery (DESIGN.md §12): a store can journal its mutations
/// instead of rewriting its whole file on every put — install a mutation
/// hook via `setMutationHook` and `services/recovery`'s `DurableState`
/// appends each mutation to a write-ahead log, compacting via
/// checkpoint + truncate.

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dapple/serial/value.hpp"
#include "dapple/util/error.hpp"

namespace dapple {

/// Thread-safe persistent key/value store.
class StateStore {
 public:
  /// Warning sink for non-fatal recovery events (corrupt file fallback).
  /// Receives a one-line human-readable description.
  using WarnFn = std::function<void(const std::string&)>;

  /// Observes every mutation, invoked *under the store lock* immediately
  /// after it is applied, so the hook sees mutations in exactly the order
  /// they took effect.  `value` is the new value for a put and nullptr for
  /// an erase.  The hook must not call back into this store.
  using MutationHook =
      std::function<void(const std::string& key, const Value* value)>;

  /// `filePath` may be empty for a memory-only store.  When nonempty and
  /// the file exists, the constructor loads it; a corrupt file is moved
  /// aside to `<filePath>.corrupt` and the store starts empty (reported
  /// through `warn` — a crash can happen at any byte, so an unreadable
  /// store must degrade, not abort the process).
  explicit StateStore(std::string filePath = "", WarnFn warn = nullptr);

  /// Returns the value at `key`; throws StateError when absent.
  Value get(const std::string& key) const;

  /// Returns the value at `key`, or `fallback` when absent.
  Value getOr(const std::string& key, Value fallback) const;

  void put(const std::string& key, Value value);
  bool has(const std::string& key) const;
  void erase(const std::string& key);
  std::vector<std::string> keys() const;

  /// Installs `hook` (see MutationHook).  When `autosaveOnMutate` is false
  /// put()/erase() no longer rewrite the backing file — the hook's journal
  /// is then the durability mechanism and explicit save()/checkpoints
  /// persist the full image.  Pass nullptr to uninstall (restores
  /// autosave).
  void setMutationHook(MutationHook hook, bool autosaveOnMutate = true);

  /// Full copy of the current contents.
  ValueMap snapshot() const;

  /// Runs `fn` over the contents *under the store lock*, so the observed
  /// image is atomic with respect to concurrent mutations AND with the
  /// mutation hook's journal: every journal record is either reflected in
  /// the image or ordered after it.  `fn` must not call back into this
  /// store.  Checkpoint compaction (snapshot + WAL truncate) uses this.
  void withSnapshot(const std::function<void(const ValueMap&)>& fn) const;

  /// Replaces the entire contents without invoking the mutation hook or
  /// saving — the recovery replay path (checkpoint image + WAL tail).
  void replaceAll(ValueMap data);

  /// Writes the store to its file (no-op for memory-only stores).  Called
  /// automatically by put()/erase() so state survives process death at any
  /// point, matching the paper's persistence requirement.  The write is
  /// atomic and durable: temp file + fsync + rename + directory fsync — a
  /// crash mid-save leaves either the old image or the new one, never a
  /// torn file.
  void save() const;

  /// Re-reads the file, replacing in-memory contents.  Throws StateError
  /// when the file cannot be opened; a *corrupt* file (unparseable wire
  /// text, e.g. a partial write by a pre-atomic-save version) is moved
  /// aside and the store falls back to empty, with a warning.
  void load();

  /// Backing file ("" for memory-only stores).
  const std::string& filePath() const { return filePath_; }

 private:
  void saveLocked() const;
  void afterMutationLocked(const std::string& key, const Value* value);

  mutable std::mutex mutex_;
  std::string filePath_;
  WarnFn warn_;
  MutationHook hook_;
  bool autosaveOnMutate_ = true;
  ValueMap data_;
};

/// Read/write key sets of one session over one dapplet's state.
struct AccessSets {
  std::set<std::string> reads;
  std::set<std::string> writes;

  /// True when running `other` concurrently with *this would interfere:
  /// someone writes what the other one accesses.
  bool interferesWith(const AccessSets& other) const;
};

/// Admission control for concurrent sessions over one dapplet's state.
/// Thread-safe.
class InterferenceGuard {
 public:
  /// Attempts to admit `sessionId` with the given access sets; returns
  /// false (and admits nothing) when it interferes with a live session.
  bool tryClaim(const std::string& sessionId, AccessSets sets);

  /// Releases a session's claim; unknown ids are ignored.
  void release(const std::string& sessionId);

  /// Live session ids (diagnostics).
  std::vector<std::string> active() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, AccessSets> active_;
};

/// A session's window onto a StateStore: reads must be within
/// reads ∪ writes, writes within writes; anything else throws StateError.
class StateView {
 public:
  StateView(StateStore& store, AccessSets sets)
      : store_(store), sets_(std::move(sets)) {}

  Value get(const std::string& key) const;
  Value getOr(const std::string& key, Value fallback) const;
  void put(const std::string& key, Value value);
  bool has(const std::string& key) const;

  const AccessSets& sets() const { return sets_; }

 private:
  void checkRead(const std::string& key) const;
  void checkWrite(const std::string& key) const;

  StateStore& store_;
  AccessSets sets_;
};

}  // namespace dapple
