#pragma once
/// \file state.hpp
/// \brief Persistent dapplet state with per-session scoped views and an
/// interference guard.
///
/// Paper §2.2 "Persistent State Across Multiple Temporary Sessions":
///  * state outlives sessions ("an appointments calendar that disappears
///    when an appointment is made has no value") — `StateStore` persists to
///    a file in the text wire format;
///  * each session "only has access to portions of the state relevant to
///    that session" — a `StateView` restricts access to the session's
///    declared read/write key sets;
///  * "two sessions must not be allowed to proceed concurrently if one
///    modifies variables accessed by the other" — `InterferenceGuard`
///    admits a new session only when its write set is disjoint from every
///    live session's read+write sets and its read set is disjoint from
///    every live write set.

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "dapple/serial/value.hpp"
#include "dapple/util/error.hpp"

namespace dapple {

/// Thread-safe persistent key/value store.
class StateStore {
 public:
  /// `filePath` may be empty for a memory-only store.  When nonempty and
  /// the file exists, the constructor loads it.
  explicit StateStore(std::string filePath = "");

  /// Returns the value at `key`; throws StateError when absent.
  Value get(const std::string& key) const;

  /// Returns the value at `key`, or `fallback` when absent.
  Value getOr(const std::string& key, Value fallback) const;

  void put(const std::string& key, Value value);
  bool has(const std::string& key) const;
  void erase(const std::string& key);
  std::vector<std::string> keys() const;

  /// Writes the store to its file (no-op for memory-only stores).  Called
  /// automatically by put()/erase() so state survives process death at any
  /// point, matching the paper's persistence requirement.
  void save() const;

  /// Re-reads the file, replacing in-memory contents.
  void load();

 private:
  void saveLocked() const;

  mutable std::mutex mutex_;
  std::string filePath_;
  ValueMap data_;
};

/// Read/write key sets of one session over one dapplet's state.
struct AccessSets {
  std::set<std::string> reads;
  std::set<std::string> writes;

  /// True when running `other` concurrently with *this would interfere:
  /// someone writes what the other one accesses.
  bool interferesWith(const AccessSets& other) const;
};

/// Admission control for concurrent sessions over one dapplet's state.
/// Thread-safe.
class InterferenceGuard {
 public:
  /// Attempts to admit `sessionId` with the given access sets; returns
  /// false (and admits nothing) when it interferes with a live session.
  bool tryClaim(const std::string& sessionId, AccessSets sets);

  /// Releases a session's claim; unknown ids are ignored.
  void release(const std::string& sessionId);

  /// Live session ids (diagnostics).
  std::vector<std::string> active() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, AccessSets> active_;
};

/// A session's window onto a StateStore: reads must be within
/// reads ∪ writes, writes within writes; anything else throws StateError.
class StateView {
 public:
  StateView(StateStore& store, AccessSets sets)
      : store_(store), sets_(std::move(sets)) {}

  Value get(const std::string& key) const;
  Value getOr(const std::string& key, Value fallback) const;
  void put(const std::string& key, Value value);
  bool has(const std::string& key) const;

  const AccessSets& sets() const { return sets_; }

 private:
  void checkRead(const std::string& key) const;
  void checkWrite(const std::string& key) const;

  StateStore& store_;
  AccessSets sets_;
};

}  // namespace dapple
