#pragma once
/// \file reactor.hpp
/// \brief The event-driven dapplet runtime: a small pool of event-loop
/// threads plus a hashed timer wheel.
///
/// The paper's world-wide system assumes a host serves many dapplets
/// cheaply, but the original runtime burned three-plus threads per dapplet
/// (retransmission timer, liveness heartbeat loop, session dispatch loop).
/// The `Reactor` inverts that: a fixed pool of loop threads (default
/// `hw_concurrency`, configurable down to 1) executes every dapplet as a
/// state machine — message handlers installed with `Inbox::onMessage` and
/// timer callbacks armed with `after`/`every` — so tens of thousands of
/// dapplets share a bounded thread count (`bench_swarm` is the gate).
///
/// Scheduling model:
///  * The pool is sharded: each loop thread owns its own ready queue and its
///    own hashed timer wheel (slot ring + absolute-deadline ticks, the
///    classic "rounds" wheel), so steady-state timer traffic never crosses a
///    shared lock.  `post`/`after`/`every` assign work round-robin; a
///    periodic timer re-arms on its owning loop.
///  * Timers are tick-quantized: a timer armed with delay `d` fires at the
///    first wheel tick at or after `now + d` (granularity
///    `Options::tickGranularity`, default 1 ms).  Zero-delay timers fire on
///    the next tick.
///  * Every wait is routed through the injected `ClockSource`, and loop
///    threads register as clock workers, so the same reactor runs unmodified
///    under `testkit::VirtualClock` — the virtual clock parks the loops at
///    quiescence and jumps straight to the next wheel deadline, which keeps
///    the testkit and the scenario fuzzer deterministic.
///
/// Callback contract: handlers run on loop threads and must not block
/// indefinitely (a blocked handler stalls every dapplet sharded onto that
/// loop).  Long blocking work still belongs on `Dapplet::spawn` threads —
/// the legacy threaded mode remains fully supported.

#include <cstdint>
#include <functional>
#include <memory>

#include "dapple/util/time.hpp"

namespace dapple {

/// Event-loop pool + timer wheel.  All members are thread-safe.
class Reactor {
 public:
  struct Options {
    /// Loop threads; 0 selects `std::thread::hardware_concurrency()`.
    unsigned threads = 0;
    /// Timer wheel slots per loop (ring size; timers further out than
    /// `slots * tickGranularity` simply wait extra revolutions).
    std::size_t wheelSlots = 256;
    /// Wheel tick quantum.  Timer deadlines are rounded up to the next tick.
    Duration tickGranularity = milliseconds(1);
    /// Time source for the wheel and all loop waits.  Null selects
    /// `ClockSource::system()`; inject a `testkit::VirtualClock` to run the
    /// reactor in virtual time.  Must outlive the reactor.
    ClockSource* clock = nullptr;
  };

  /// Handle to a scheduled timer.  Default-constructed handles are inert.
  /// Copyable; all copies refer to the same timer.
  class TimerHandle {
   public:
    TimerHandle() = default;

    /// Cancels the timer.  Safe from any thread, including from inside the
    /// timer's own callback (a periodic timer that cancels itself does not
    /// re-arm).  When called from *outside* the timer's callback, cancel()
    /// additionally waits for any in-flight invocation to finish, so after
    /// it returns the callback is guaranteed not to be running and never to
    /// run again — the guarantee teardown paths need before freeing state
    /// the callback captures.  Idempotent.
    void cancel();

    /// True while the timer is scheduled or running (false once cancelled,
    /// once a one-shot has fired, or on a default-constructed handle).
    bool active() const;

   private:
    friend class Reactor;
    struct Timer;
    explicit TimerHandle(std::shared_ptr<Timer> timer)
        : timer_(std::move(timer)) {}
    /// Weak so a callback that captures its own handle (the self-cancel
    /// idiom) cannot keep the timer alive in a reference cycle.
    std::weak_ptr<Timer> timer_;
  };

  /// Default options: hw_concurrency loops, 256-slot wheel, 1 ms ticks,
  /// system clock.
  Reactor();
  explicit Reactor(const Options& options);

  /// Stops and joins the pool (see stop()).
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Enqueues `fn` to run as soon as possible on a loop thread.
  void post(std::function<void()> fn);

  /// Runs `fn` once, `delay` from now (rounded up to the next wheel tick).
  TimerHandle after(Duration delay, std::function<void()> fn);

  /// Runs `fn` every `period`, first firing one period from now.  A slow
  /// callback delays subsequent firings rather than bunching them: the next
  /// deadline is pushed past "now" in whole periods, never scheduled in the
  /// past.
  TimerHandle every(Duration period, std::function<void()> fn);

  /// Stops the pool: pending timers are dropped, queued tasks are discarded,
  /// loop threads are joined.  Idempotent.  Callbacks already executing run
  /// to completion before the corresponding loop exits.
  void stop();

  /// Number of loop threads.
  std::size_t threadCount() const;

  /// The clock the wheel runs on (the injected one, or the system clock).
  ClockSource& clock() const;

  struct Stats {
    std::uint64_t tasksRun = 0;       ///< post() callbacks executed
    std::uint64_t timersFired = 0;    ///< timer callbacks executed
    std::uint64_t timersCancelled = 0;  ///< timers removed before firing
    std::size_t timersPending = 0;    ///< currently scheduled timers
  };
  Stats stats() const;

 private:
  struct Loop;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
