#pragma once
/// \file dapplet.hpp
/// \brief The dapplet runtime: one process of a collaborative distributed
/// application.
///
/// Paper §3.1: *"A calendar dapplet is a process: it operates in a single
/// address space ... and it communicates with other processes through
/// ports."*  A `Dapplet` owns an endpoint (its IP address + port), a set of
/// inboxes and outboxes, worker threads, and the Lamport clock that the
/// message layer maintains (§4.2).  Several dapplets can live in one OS
/// process (each with its own endpoint), which is how the tests, examples
/// and benches build whole distributed sessions in a single binary over
/// either the simulated network or real UDP sockets.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dapple/core/inbox.hpp"
#include "dapple/core/lamport_clock.hpp"
#include "dapple/core/outbox.hpp"
#include "dapple/core/reactor.hpp"
#include "dapple/net/transport.hpp"
#include "dapple/obs/metrics.hpp"
#include "dapple/reliable/reliable.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// Placement and transport tuning for one dapplet.
struct DappletConfig {
  /// Simulated host id (ignored by UdpNetwork).
  std::uint32_t host = 1;
  /// Port to bind; 0 picks one automatically.
  std::uint16_t port = 0;
  /// Ordering-layer parameters (retransmission, delivery timeout).
  ReliableConfig reliable{};

  /// Wire codec for everything this dapplet *sends*: message envelopes,
  /// session control frames, RPC bodies, and (folded into
  /// `reliable.codec` by `normalized()`) the ordering layer's DATA/ACK
  /// frames.  Incoming traffic is always auto-detected per frame from the
  /// preamble byte, so a binary dapplet and a text dapplet interoperate in
  /// one session.  Text is the default (cross-version compat, readable
  /// captures); set `WireCodec::kBinary` for the fast path.
  WireCodec wireCodec = WireCodec::kText;

  /// Failure-detector knobs (consumed by services/liveness): how often a
  /// LivenessMonitor on this dapplet sends heartbeats to watched peers, and
  /// how long a peer may stay silent before it is suspected crashed.
  /// (Nested like `reliable` — one struct per policy domain.  The old flat
  /// `heartbeatInterval`/`suspectTimeout` aliases were removed after one
  /// deprecation release; spell them `liveness.heartbeatInterval` etc.)
  struct LivenessConfig {
    Duration heartbeatInterval = std::chrono::milliseconds(50);
    Duration suspectTimeout = std::chrono::milliseconds(250);
  };
  LivenessConfig liveness{};

  /// Event-driven runtime knobs (one struct per policy domain, like
  /// `reliable` and `liveness`).
  struct RuntimeConfig {
    /// Shared event-loop pool this dapplet schedules on: its reliable-layer
    /// retransmission ticks run on the reactor's timer wheel instead of a
    /// dedicated thread, and services (liveness, session agent, RPC server)
    /// register `Inbox::onMessage` handlers instead of spawning dispatch
    /// loops.  Many dapplets share one reactor — that is the point: one
    /// process hosts tens of thousands of dapplets on `hw_concurrency`
    /// threads (see bench_swarm).  Null selects the legacy threaded mode;
    /// `Dapplet::after`/`every`/`Inbox::onMessage` then lazily create a
    /// small dapplet-owned reactor.  Must outlive the dapplet.
    Reactor* reactor = nullptr;
    /// Loop threads for the lazily-created owned reactor (only consulted
    /// when `reactor` is null and an async API is first used).
    unsigned ownedThreads = 1;
  };
  RuntimeConfig runtime{};

  /// Capacity of the dapplet's trace-event ring (see obs/trace.hpp).
  std::size_t traceCapacity = 512;

  /// Time source for every timer, timeout and sleep in this dapplet (the
  /// reliable layer, inbox waits, liveness, initiator backoff, services).
  /// Null selects `ClockSource::system()`; tests inject a
  /// `testkit::VirtualClock` to run fault scenarios in virtual time.  Must
  /// outlive the dapplet.
  ClockSource* clock = nullptr;

  /// Historical shim from the flat-knob era, kept one release as the
  /// documented place config normalization happens.  Today it clamps
  /// nonsense runtime knobs (`ownedThreads == 0` becomes 1) and folds the
  /// runtime mode into the reliable layer: a dapplet scheduled on a shared
  /// reactor drives its retransmission scan from the reactor's timer wheel,
  /// so the per-endpoint timer thread is switched off.  The deprecated flat
  /// liveness fields it used to fold into `liveness` are gone.
  DappletConfig normalized() const {
    DappletConfig out = *this;
    if (out.runtime.ownedThreads == 0) out.runtime.ownedThreads = 1;
    if (out.runtime.reactor != nullptr) out.reliable.externalTick = true;
    // One knob governs the whole dapplet: the ordering layer inherits the
    // dapplet-level codec choice.
    out.reliable.codec = out.wireCodec;
    return out;
  }
};

/// One distributed process.  Thread-safe; typically long-lived relative to
/// the sessions it participates in.
class Dapplet {
 public:
  /// Opens an endpoint on `network` and starts the message layer.
  Dapplet(Network& network, std::string name, DappletConfig config = {});
  ~Dapplet();

  Dapplet(const Dapplet&) = delete;
  Dapplet& operator=(const Dapplet&) = delete;

  /// Human-readable identity used in directories and sessions.
  const std::string& name() const { return name_; }

  /// This dapplet's Internet address (IP + port / simulated host + port).
  NodeAddress address() const;

  /// Total order tie-breaker ("ties are broken in favor of the process with
  /// the lower id", §4.2): the packed endpoint address, unique per dapplet.
  std::uint64_t id() const { return address().packed(); }

  /// The message layer's logical clock (§4.2).
  LamportClock& clock() { return clock_; }

  /// The wall/virtual time source every component of this dapplet waits on
  /// (see DappletConfig::clock).  Never null.
  ClockSource& clockSource() const { return *clockSource_; }

  // --- inboxes -----------------------------------------------------------

  /// Creates an inbox; `name` may be "" for an anonymous inbox or a unique
  /// string name (throws AddressError on duplicates).  The returned
  /// reference stays valid until destroyInbox/stop.
  Inbox& createInbox(const std::string& name = "");

  /// Looks up a named inbox; throws AddressError when absent.
  Inbox& inbox(const std::string& name);

  /// True when a named inbox exists.
  bool hasInbox(const std::string& name) const;

  /// Closes and removes an inbox.  Blocked receivers wake with
  /// ShutdownError.  The caller must ensure no other thread retains the
  /// reference afterwards.
  void destroyInbox(const std::string& name);

  /// Overload for anonymous inboxes.
  void destroyInbox(Inbox& box);

  // --- outboxes ----------------------------------------------------------

  /// Creates an outbox (optionally named; throws AddressError on duplicate
  /// names).  Valid until destroyOutbox/stop.
  Outbox& createOutbox(const std::string& name = "");

  /// Looks up a named outbox; throws AddressError when absent.
  Outbox& outbox(const std::string& name);

  /// True when a named outbox exists.
  bool hasOutbox(const std::string& name) const;

  /// Removes an outbox and drops its bindings.
  void destroyOutbox(const std::string& name);

  /// Overload for anonymous outboxes.
  void destroyOutbox(Outbox& box);

  // --- threads -------------------------------------------------------------

  /// Runs `fn` on a dapplet-owned thread; the stop token fires at stop().
  void spawn(std::function<void(std::stop_token)> fn);

  // --- event-driven runtime ------------------------------------------------

  /// The reactor this dapplet schedules on: the one injected via
  /// `DappletConfig::runtime.reactor`, or a lazily-created dapplet-owned
  /// pool (`runtime.ownedThreads` loops on this dapplet's clock) the first
  /// time an async API is used.  The owned reactor is stopped by stop().
  Reactor& reactor();

  /// Runs `fn` once, `delay` from now, on a reactor loop thread.  Callbacks
  /// must not block for long (they share the loop with every other dapplet
  /// on the reactor); use spawn() for blocking work.
  Reactor::TimerHandle after(Duration delay, std::function<void()> fn);

  /// Runs `fn` every `period` on a reactor loop thread, until the handle is
  /// cancelled or the dapplet stops.
  Reactor::TimerHandle every(Duration period, std::function<void()> fn);

  /// Stops the dapplet: closes every inbox (waking blocked receivers with
  /// ShutdownError), requests stop on spawned threads, joins them, and
  /// closes the endpoint.  Idempotent.  Must NOT be called from a reactor
  /// callback (a handler or timer running on a loop thread): teardown waits
  /// out the in-flight retransmit tick before destroying the reliable
  /// layer, and from a loop thread that wait degrades to asynchronous
  /// cancellation — a tick on another loop could still be executing while
  /// the endpoint is torn down.  The same constraint applies to ~Dapplet.
  void stop();

  /// Crash-stop fault injection: abruptly closes the endpoint FIRST — no
  /// further packets (data, ACKs, heartbeats, UNLINK handshakes) leave this
  /// process — then tears down inboxes and workers.  Peers see only silence,
  /// exactly as if the process had died.  Idempotent; safe alongside stop().
  void crash();

  // --- service hooks -------------------------------------------------------

  /// Observes (and may consume) every delivery before it is enqueued.
  /// Return true to consume the message — it will not reach the inbox.
  /// Invoked on the transport thread; must be fast.  Used by the snapshot
  /// service to intercept markers and record channel state.
  using DeliveryTap = std::function<bool(Inbox& target, Delivery& delivery)>;
  void setDeliveryTap(DeliveryTap tap);

  /// Blocks until all sent messages have been acknowledged (or timeout).
  bool flush(Duration timeout);

  /// Notified when the reliable layer declares a stream to `dst` dead
  /// (delivery timeout exhausted).  Invoked on the transport tick thread
  /// WITHOUT the dapplet lock, so listeners may reset streams or send.
  /// Listeners cannot be removed; register once per long-lived component.
  using PeerFailureListener = std::function<void(
      const NodeAddress& dst, std::uint64_t outboxId, const std::string& reason)>;
  void addPeerFailureListener(PeerFailureListener listener);

  /// The configuration this dapplet was created with, normalized (note:
  /// `port` is the requested port; use address() for the bound one).
  const DappletConfig& config() const { return config_; }

  // --- observability -------------------------------------------------------

  /// The dapplet-wide metrics registry.  Components (session agent,
  /// services, applications) create named counters/gauges/histograms here at
  /// construction and record wait-free afterwards.
  obs::MetricsRegistry& metricsRegistry() { return metricsRegistry_; }
  const obs::MetricsRegistry& metricsRegistry() const {
    return metricsRegistry_;
  }

  /// Structured trace-event ring (shorthand for metricsRegistry().trace()).
  obs::TraceRing& trace() { return metricsRegistry_.trace(); }

  /// Point-in-time snapshot of every layer's metrics, under one namespace:
  /// `net.*` (transport datagrams), `reliable.*` (retransmits, acks,
  /// delivery latency, reorder depth), `core.*` (sends, deliveries, fan-out,
  /// inbox backlog high-water), plus whatever components registered
  /// (`session.*`, `liveness.*`, `tokens.*`, ...).  Dump with
  /// `metrics().toText()` or `metrics().toJson()`.
  obs::MetricsSnapshot metrics() const;

  struct Stats {
    std::uint64_t messagesSent = 0;       ///< per-channel copies sent
    std::uint64_t messagesDelivered = 0;  ///< enqueued to inboxes
    std::uint64_t unroutable = 0;         ///< no such inbox
    std::uint64_t consumedByTap = 0;
  };
  Stats stats() const;

  /// The ordering layer (exposed for benches and diagnostics).
  ReliableEndpoint& transport() { return *reliable_; }

  /// Introspection: a Value describing this dapplet — name, address,
  /// clock, traffic stats, and every live port with its queue depth /
  /// fan-out.  Serializable, so monitoring tooling can ship it around
  /// like any other message payload.
  Value describe() const;

 private:
  friend class Outbox;

  /// Fan-out send used by Outbox::send.
  void sendFromOutbox(std::uint64_t outboxId,
                      const std::vector<InboxRef>& destinations,
                      const Message& msg);

  void onDeliver(const NodeAddress& src, std::uint64_t streamId,
                 std::string_view payload);
  void onStreamFailure(const NodeAddress& dst, std::uint64_t streamId,
                       const std::string& reason);

  struct Impl;
  const std::string name_;
  const DappletConfig config_;
  ClockSource* clockSource_;
  LamportClock clock_;
  // Declared before reliable_/impl_: both record into the registry during
  // teardown, so it must outlive them.
  obs::MetricsRegistry metricsRegistry_;
  std::unique_ptr<ReliableEndpoint> reliable_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dapple
