#pragma once
/// \file session.hpp
/// \brief Sessions: temporary networks of dapplets (paper §1, §3.1).
///
/// A `SessionAgent` makes a dapplet able to *participate* in sessions: it
/// owns the control inbox ("session.ctl"), enforces the access-control list
/// and the interference guard, creates/destroys the session's ports, and
/// runs the application role on a dedicated thread.
///
/// An `Initiator` *establishes* sessions: given a plan (members from an
/// address `Directory`, a port topology, per-member state access sets and
/// parameters) it runs the INVITE/WIRE/START protocol, can grow or shrink a
/// live session, gathers the members' DONE results, and finally UNLINKs
/// everyone.

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/core/directory.hpp"
#include "dapple/core/peer_monitor.hpp"
#include "dapple/core/session_msgs.hpp"
#include "dapple/core/state.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// Name of the control inbox every session-capable dapplet exposes.
inline constexpr const char* kSessionControlInbox = "session.ctl";

class SessionAgent;

/// The environment a role function runs in: the session's ports, peers,
/// parameters, scoped state view, and a stop token that fires on unlink.
class SessionContext {
 public:
  const std::string& sessionId() const { return sessionId_; }
  const std::string& app() const { return app_; }
  /// This member's name within the session.
  const std::string& self() const { return self_; }
  /// All member names (initiator order).
  const std::vector<std::string>& peers() const { return peers_; }
  /// Member-specific parameters (from the invite).
  const Value& params() const { return params_; }
  /// Session-wide parameters (from START).
  const Value& sessionParams() const;

  /// Session-local inbox, by the name given in the invite.
  Inbox& inbox(const std::string& name) const;
  /// Session-local outbox, by the name used in the wiring plan.
  Outbox& outbox(const std::string& name) const;
  bool hasInbox(const std::string& name) const;
  bool hasOutbox(const std::string& name) const;

  /// The session's window onto the dapplet's persistent state.  Throws
  /// StateError when the agent was built without a StateStore.
  StateView& state() const;

  /// The hosting dapplet (for clocks, spawning helpers, etc.).
  Dapplet& dapplet() const { return dapplet_; }

  /// Fires when the initiator unlinks or aborts the session.
  std::stop_token stopToken() const;

  /// Sets the value reported to the initiator in this member's DONE.
  void setResult(Value result);

 private:
  friend class SessionAgent;
  struct Record;
  SessionContext(Dapplet& dapplet, std::shared_ptr<Record> record);

  Dapplet& dapplet_;
  std::shared_ptr<Record> record_;
  std::string sessionId_;
  std::string app_;
  std::string self_;
  std::vector<std::string> peers_;
  Value params_;
};

/// Makes a dapplet able to accept session invitations and run roles.
class SessionAgent {
 public:
  /// The code a member runs once the session starts.
  using RoleFn = std::function<void(SessionContext&)>;

  struct Config {
    /// Initiator names allowed to link this dapplet into sessions; empty
    /// means "allow everyone".  Paper §3.1: a dapplet "may reject the
    /// request because the requesting dapplet was not on its access control
    /// list".
    std::set<std::string> acl;
    /// Persistent state shared across sessions (may be null).
    StateStore* store = nullptr;
    /// Optional failure detector (typically a LivenessMonitor).  When set,
    /// the agent advertises its heartbeat inbox in INVITE replies, watches
    /// each session's initiator, and unlinks sessions whose initiator is
    /// suspected dead.  Must outlive the agent.
    PeerMonitor* monitor = nullptr;
    /// Crash recovery (DESIGN.md §12): when true (requires `store`, which
    /// should be a `recovery::DurableState`'s journaled store) the agent
    /// journals each linked session's metadata under reserved
    /// "dapple.sess/<id>" keys so that after a kill, `rejoinPersisted()`
    /// can re-enter those sessions via the REJOIN handshake.
    bool durableSessions = false;
    /// This process's restart counter (`DurableState::incarnation()`).
    /// Carried in REJOIN so the initiator can order a restart against
    /// stale eviction events.
    std::uint64_t incarnation = 0;
  };

  explicit SessionAgent(Dapplet& dapplet) : SessionAgent(dapplet, Config{}) {}
  SessionAgent(Dapplet& dapplet, Config config);
  ~SessionAgent();

  SessionAgent(const SessionAgent&) = delete;
  SessionAgent& operator=(const SessionAgent&) = delete;

  /// Registers the role to run for sessions of application `app`.
  void registerApp(const std::string& app, RoleFn role);

  /// The control inbox other dapplets put in their directories.
  InboxRef controlRef() const;

  /// The interference guard (exposed for tests and diagnostics).
  InterferenceGuard& guard();

  /// Ids of currently linked sessions.
  std::vector<std::string> activeSessions() const;

  /// Crash-recovery re-entry (Config::durableSessions): for every session
  /// journaled in the store by a previous incarnation, re-creates the
  /// session's inboxes and role record, then sends REJOIN to its initiator
  /// (retrying with backoff until acked, rejected, or attempts exhaust —
  /// the initiator replies with WIRE + START, after which the role re-runs
  /// from the recovered state).  Call after registering the apps.  Returns
  /// the session ids for which a rejoin was initiated.
  std::vector<std::string> rejoinPersisted();

  struct Stats {
    std::uint64_t invitesAccepted = 0;
    std::uint64_t invitesRejectedAcl = 0;
    std::uint64_t invitesRejectedInterference = 0;
    std::uint64_t invitesRejectedUnknownApp = 0;
    std::uint64_t sessionsCompleted = 0;
    std::uint64_t sessionsUnlinked = 0;
    std::uint64_t peersEvicted = 0;       ///< MEMBER_DOWN notices processed
    std::uint64_t initiatorsLost = 0;     ///< sessions dropped: initiator died
    std::uint64_t rejoinsSent = 0;        ///< REJOIN requests initiated
    std::uint64_t peersRejoined = 0;      ///< MEMBER_UP notices processed
  };
  Stats stats() const;

 private:
  friend class SessionContext;
  struct Impl;
  // Shared because role threads outlive dispatch and must keep Impl alive.
  std::shared_ptr<Impl> impl_;
};

/// Establishes, grows, shrinks, and terminates sessions from any dapplet.
class Initiator {
 public:
  /// `monitor` (optional, typically a LivenessMonitor) lets the initiator
  /// watch member liveness: a suspected member is evicted via failMember().
  /// Must outlive the initiator.
  explicit Initiator(Dapplet& dapplet, PeerMonitor* monitor = nullptr);
  ~Initiator();

  Initiator(const Initiator&) = delete;
  Initiator& operator=(const Initiator&) = delete;

  /// One member of a session plan.
  struct MemberPlan {
    std::string name;             ///< member name within the session
    InboxRef control;             ///< the member's session-control inbox
    std::vector<std::string> inboxes;   ///< session inboxes to create
    std::vector<std::string> readKeys;  ///< declared state reads
    std::vector<std::string> writeKeys; ///< declared state writes
    Value params;                 ///< member-specific parameters
  };

  /// A directed port edge: `fromMember`'s outbox -> `toMember`'s inbox.
  struct Edge {
    std::string fromMember;
    std::string fromOutbox;
    std::string toMember;
    std::string toInbox;
  };

  /// A whole session plan.
  struct Plan {
    std::string app;
    std::vector<MemberPlan> members;
    std::vector<Edge> edges;
    Value params;                 ///< session-wide parameters
    Duration phaseTimeout = seconds(10);
    /// Setup retry policy: INVITE/WIRE/START are re-sent to unresponsive
    /// members up to `setupAttempts` times, waiting a jittered exponential
    /// backoff (`retryBase`, `2*retryBase`, ...) between attempts, all
    /// bounded by `phaseTimeout`.  One attempt = no retries.
    std::size_t setupAttempts = 4;
    Duration retryBase = milliseconds(200);
  };

  /// Outcome of establish().
  struct Result {
    bool ok = false;
    std::string sessionId;
    /// member name -> rejection reason (empty map on success).
    std::map<std::string, std::string> rejections;
  };

  /// Convenience: builds MemberPlan control refs by looking names up in an
  /// address directory (Figure 2's "invokes and sends address directory").
  static MemberPlan member(const Directory& directory,
                           const std::string& name,
                           std::vector<std::string> inboxes,
                           Value params = Value(ValueMap{}));

  /// Runs INVITE -> WIRE -> START.  Blocking; on any rejection or timeout
  /// the accepted members are sent ABORT-style unlinks and `ok` is false.
  Result establish(const Plan& plan);

  /// Waits until every member of `sessionId` reported DONE — or was evicted
  /// as crashed — then returns member -> result values.  An evicted member's
  /// entry is a map `{peerDown: true, member: <name>, reason: <verdict>}`,
  /// so callers get partial results naming the failed member instead of a
  /// timeout.  Throws TimeoutError when survivors are still running at the
  /// deadline and SessionError for unknown sessions.
  std::map<std::string, Value> awaitCompletion(const std::string& sessionId,
                                               Duration timeout);

  /// Declares `member` of `sessionId` crashed: evicts it, broadcasts
  /// MEMBER_DOWN to the survivors (whose blocked receives fail fast with
  /// PeerDownError), and annotates awaitCompletion's result.  Invoked
  /// automatically by the liveness monitor and by reliable-stream failures;
  /// public so applications and tests can evict explicitly.  Idempotent;
  /// unknown sessions/members are ignored.
  void failMember(const std::string& sessionId, const std::string& member,
                  const std::string& reason);

  /// Members of `sessionId` evicted so far (name -> reason).
  std::map<std::string, std::string> downMembers(
      const std::string& sessionId) const;

  /// Broadcasts UNLINK, ending the session.  Idempotent.
  void terminate(const std::string& sessionId, const std::string& reason = "");

  /// Grows a live session: invites `member`, wires `newEdges` (which may
  /// reference existing members on either end), and sends the newcomer
  /// START.  Returns false with no change on rejection.
  bool addMember(const std::string& sessionId, const MemberPlan& member,
                 const std::vector<Edge>& newEdges, Duration timeout);

  /// Shrinks a live session: unlinks `member` and drops every binding that
  /// targets its inboxes.
  void removeMember(const std::string& sessionId, const std::string& member);

 private:
  struct Impl;
  // Shared because failure hooks (liveness monitor, dapplet stream-failure
  // listeners) hold weak references that may fire after destruction.
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
