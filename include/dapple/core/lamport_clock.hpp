#pragma once
/// \file lamport_clock.hpp
/// \brief Lamport logical clock built into the message layer.
///
/// Paper §4.2: *"Our message-passing layer is designed to provide local
/// clocks that satisfy the global snapshot criterion"* — every message sent
/// when the sender's clock is T is received when the receiver's clock
/// exceeds T.  The dapplet runtime calls `tick()` on every send (the
/// timestamp travels in the envelope) and `observe()` on every receive,
/// which is exactly Lamport's algorithm, so the criterion holds by
/// construction.

#include <atomic>
#include <cstdint>

namespace dapple {

/// Monotonic logical clock.  All operations are lock-free and thread-safe.
class LamportClock {
 public:
  /// Current clock value (no event).
  std::uint64_t now() const { return value_.load(std::memory_order_acquire); }

  /// Local/send event: advances the clock and returns the new value, which
  /// stamps the outgoing message.
  std::uint64_t tick() {
    return value_.fetch_add(1, std::memory_order_acq_rel) + 1;
  }

  /// Receive event for a message stamped `ts`: sets the clock to
  /// max(local, ts) + 1 and returns the new value.  Guarantees the
  /// receiver's clock exceeds the sender's timestamp (the global snapshot
  /// criterion).
  std::uint64_t observe(std::uint64_t ts) {
    std::uint64_t cur = value_.load(std::memory_order_acquire);
    std::uint64_t next;
    do {
      next = (cur > ts ? cur : ts) + 1;
    } while (!value_.compare_exchange_weak(cur, next,
                                           std::memory_order_acq_rel,
                                           std::memory_order_acquire));
    return next;
  }

  /// Ensures the clock is at least `t` (used by checkpoint coordination).
  void advanceTo(std::uint64_t t) {
    std::uint64_t cur = value_.load(std::memory_order_acquire);
    while (cur < t && !value_.compare_exchange_weak(
                          cur, t, std::memory_order_acq_rel,
                          std::memory_order_acquire)) {
    }
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace dapple
