#pragma once
/// \file directory.hpp
/// \brief Address directory used by initiators to set up sessions.
///
/// Paper §3.1 / Figure 2: *"the center director invokes an initiator
/// dapplet and passes it a directory of addresses (e.g. Internet IP
/// addresses and ports) of component dapplets that are to be linked
/// together into a session."*  The directory maps participant names to the
/// global addresses of their session-control inboxes.  It serializes to a
/// Value so it can itself travel in messages.  (How the directory is
/// *maintained* is out of scope — exactly as in the paper.)

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "dapple/core/inbox_ref.hpp"
#include "dapple/serial/value.hpp"
#include "dapple/util/error.hpp"

namespace dapple {

/// Name -> session-control-inbox address map.  Thread-safe.
class Directory {
 public:
  Directory() = default;
  Directory(const Directory& other);
  Directory& operator=(const Directory& other);

  /// Registers (or replaces) an entry.
  void put(const std::string& name, const InboxRef& ref);

  /// Looks up a name; throws AddressError when absent.
  InboxRef lookup(const std::string& name) const;

  bool has(const std::string& name) const;
  void removeEntry(const std::string& name);
  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Serialization (a map of name -> "host:port/#id|name" triplets packed
  /// into Values).
  Value toValue() const;
  static Directory fromValue(const Value& value);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, InboxRef> entries_;
};

}  // namespace dapple
