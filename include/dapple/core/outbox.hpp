#pragma once
/// \file outbox.hpp
/// \brief Outboxes: the send side of the paper's communication model.
///
/// Paper §3.2 methods: `add(ipa)` (bind an inbox, creating a FIFO channel),
/// `delete(ipa)` (unbind; throws if not bound), `send(msg)` (copy along
/// every channel; delivery failure raises an exception), `destination()`
/// (the bound list).  One outbox may bind arbitrarily many inboxes and vice
/// versa; each channel is FIFO while inter-channel order is arbitrary.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dapple/core/inbox_ref.hpp"
#include "dapple/serial/message.hpp"
#include "dapple/util/error.hpp"

namespace dapple {

class Dapplet;

/// A send port owned by a dapplet.  All members are thread-safe.
/// Create via `Dapplet::createOutbox`.
class Outbox {
 public:
  Outbox(const Outbox&) = delete;
  Outbox& operator=(const Outbox&) = delete;

  /// Unique id within the dapplet; identifies this outbox's channels on the
  /// wire.
  std::uint64_t id() const { return id_; }

  /// String name ("" when anonymous).
  const std::string& name() const { return name_; }

  // --- the paper's API ---------------------------------------------------

  /// Binds `ref`: appends it to the destination list if not already there
  /// (idempotent, as specified) and establishes a FIFO channel to it.
  void add(const InboxRef& ref);

  /// Unbinds `ref`; throws AddressError when it is not bound (the paper's
  /// `delete`, renamed because `delete` is reserved in C++).
  void remove(const InboxRef& ref);

  /// Unbinds every destination living at `node` (used when a peer dapplet
  /// is declared crashed).  Returns the number of bindings dropped; never
  /// throws on absence.
  std::size_t removeNode(const NodeAddress& node);

  /// Sends a copy of `msg` along every channel.  One logical-clock send
  /// event stamps all copies.  Throws DeliveryError if a previous message
  /// on one of this outbox's channels exceeded the delivery timeout.
  void send(const Message& msg);

  /// The list of bound inboxes (the paper's `destination()`).
  std::vector<InboxRef> destinations() const;

  /// Clears a delivery failure (e.g. after a partition heals): resets the
  /// underlying channel streams and re-enables send().
  void reset();

  /// Number of bound inboxes.
  std::size_t fanout() const;

  /// Monotonic counter bumped by every add/remove/removeNode; lets callers
  /// detect binding churn without comparing lists.
  std::uint64_t destinationsVersion() const;

 private:
  friend class Dapplet;

  Outbox(Dapplet& owner, std::uint64_t id, std::string name)
      : owner_(owner), id_(id), name_(std::move(name)) {}

  Dapplet& owner_;
  const std::uint64_t id_;
  const std::string name_;

  mutable std::mutex mutex_;
  /// Immutable snapshot, replaced copy-on-write by add/remove/removeNode.
  /// send() grabs a reference under the lock — a pointer bump, not a list
  /// copy — so the send fast path cost is independent of fan-out width.
  std::shared_ptr<const std::vector<InboxRef>> destinations_ =
      std::make_shared<const std::vector<InboxRef>>();
  std::uint64_t version_ = 0;
  bool failed_ = false;
  std::string failReason_;
};

}  // namespace dapple
