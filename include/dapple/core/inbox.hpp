#pragma once
/// \file inbox.hpp
/// \brief Inboxes: the receive side of the paper's communication model.
///
/// Paper §3.2 specifies exactly three application-layer methods:
/// `isEmpty()`, `awaitNonEmpty()` and `receive()`.  We add timed and
/// non-blocking variants plus typed conveniences, and each delivery carries
/// the metadata the services need (logical send/receive timestamps and the
/// source channel), which the paper's clock and snapshot services rely on.
///
/// Receive-surface conventions (beyond the paper's trio):
///  * `receiveFor(timeout)` / `receiveAs<T>(timeout)` / `tryReceive()` are
///    the canonical surface: "nothing arrived" is reported in the return
///    value (`std::nullopt`), never by exception.
///  * The throwing `receive(timeout)` overload is deprecated; callers that
///    treat a missed deadline as failure throw `TimeoutError` themselves (or
///    use `receiveAs<T>(timeout)`, which still throws for them).
///  * All receives throw ShutdownError once the inbox is closed-and-drained
///    and PeerDownError when a peer-failure alert is pending (see raise()).
///  * `onMessage(handler)` switches the inbox to event-driven delivery on
///    the dapplet's `Reactor` — no blocked thread at all.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "dapple/core/inbox_ref.hpp"
#include "dapple/serial/message.hpp"
#include "dapple/util/error.hpp"
#include "dapple/util/sync_queue.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

class Dapplet;

/// One received message plus its channel metadata.
struct Delivery {
  std::unique_ptr<Message> message;
  std::uint64_t sentAt = 0;      ///< sender's Lamport clock at send
  std::uint64_t receivedAt = 0;  ///< receiver's Lamport clock after receipt
  NodeAddress srcNode;           ///< sending dapplet's address
  std::uint64_t srcOutbox = 0;   ///< sending outbox id (identifies channel)

  /// Typed access; throws SerializationError naming the actual type.
  template <typename T>
  const T& as() const& {
    return messageAs<T>(*message);
  }

  /// On rvalues (`inbox.receive(t).as<T>()`) a reference would dangle once
  /// the temporary Delivery dies at the end of the full expression, so this
  /// overload returns a copy instead — `const auto& m = ...receive().as<T>()`
  /// then binds to a lifetime-extended temporary and stays valid.
  template <typename T>
  T as() const&& {
    return messageAs<T>(*message);
  }
};

/// A message queue owned by a dapplet.  All members are thread-safe.
/// Create via `Dapplet::createInbox`.
///
/// Held by shared_ptr inside the dapplet so drain tasks posted to a shared
/// reactor can pin the inbox (`shared_from_this`) — a task still queued when
/// the dapplet dies runs against a live (closed, empty) inbox instead of a
/// dangling pointer.
class Inbox : public std::enable_shared_from_this<Inbox> {
 public:
  Inbox(const Inbox&) = delete;
  Inbox& operator=(const Inbox&) = delete;

  /// Numeric local reference (nonzero, unique within the dapplet).
  std::uint32_t localId() const { return localId_; }

  /// String name ("" when anonymous).
  const std::string& name() const { return name_; }

  /// Global address other dapplets can bind outboxes to.
  const InboxRef& ref() const { return ref_; }

  // --- the paper's API ---------------------------------------------------

  /// True when no message is queued.
  bool isEmpty() const { return queue_.empty(); }

  /// Suspends the caller until the inbox is nonempty.  Throws ShutdownError
  /// if the dapplet stops while waiting.
  void awaitNonEmpty() {
    if (!queue_.awaitNonEmpty()) throw ShutdownError("inbox closed");
  }

  /// Suspends until nonempty, then removes and returns the head message.
  Delivery receive() { return queue_.pop(); }

  // --- extensions ----------------------------------------------------------

  /// \deprecated Timed receive that throws TimeoutError when nothing
  /// arrives in time.  Use `receiveFor(timeout)` (nullopt on timeout) or
  /// `receiveAs<T>(timeout)` instead; this overload is kept one release for
  /// out-of-tree callers.
  [[deprecated(
      "use receiveFor(timeout) or receiveAs<T>(timeout)")]] Delivery
  receive(Duration timeout) {
    auto d = queue_.popFor(timeout);
    if (!d) {
      throw TimeoutError("inbox '" + name_ + "' receive timed out");
    }
    return std::move(*d);
  }

  /// Timed receive without the timeout exception: nullopt when nothing
  /// arrives in time.  Closed inboxes and pending peer-failure alerts still
  /// throw (ShutdownError / PeerDownError) — those are failures, not
  /// timeouts.
  std::optional<Delivery> receiveFor(Duration timeout) {
    return queue_.popFor(timeout);
  }

  /// Typed receive: blocks, then decodes the head message as `T` (throws
  /// SerializationError naming the actual type on mismatch).
  template <typename T>
  T receiveAs() {
    return receive().template as<T>();
  }

  /// Typed timed receive; throws TimeoutError when nothing arrives in time
  /// (a decode target is expected, so here the missed deadline IS the
  /// failure — unlike receiveFor, which reports it as nullopt).
  template <typename T>
  T receiveAs(Duration timeout) {
    auto d = queue_.popFor(timeout);
    if (!d) {
      throw TimeoutError("inbox '" + name_ + "' receive timed out");
    }
    return std::move(*d).template as<T>();
  }

  /// Non-blocking receive.
  std::optional<Delivery> tryReceive() { return queue_.tryPop(); }

  // --- event-driven delivery (reactor mode) --------------------------------

  /// Per-delivery callback; runs on a reactor loop thread.
  using MessageHandler = std::function<void(Delivery)>;

  /// Installs (or, with nullptr, removes) the message handler.  While a
  /// handler is installed, deliveries are drained to it on the dapplet's
  /// `Reactor` — in arrival order, one invocation at a time (a strand), with
  /// no thread blocked in between.  Messages already queued are delivered
  /// too.  The handler runs *outside* the install lock, so installing or
  /// replacing a handler never blocks behind a slow invocation (a handler
  /// replaced mid-drain may still receive the remainder of the current
  /// batch).  Removal is the synchronous barrier: `onMessage(nullptr)`
  /// returns only once any in-flight handler invocation has finished, so
  /// the caller may free state the handler captures.  Calling onMessage
  /// from inside the handler throws Error — it would deadlock the removal
  /// barrier.
  ///
  /// Peer-failure alerts (raise()) are not routed to the handler — reactor
  /// consumers observe failures via `Dapplet::addPeerFailureListener`.
  /// Blocking receives remain functional alongside a handler but compete
  /// for the same messages; mixing the two on one inbox is discouraged.
  void onMessage(MessageHandler handler) {
    std::unique_lock lock(handlerMutex_);
    if (draining_ && drainThread_ == std::this_thread::get_id()) {
      throw Error("inbox '" + name_ +
                  "': onMessage called from inside the message handler");
    }
    handler_ = std::move(handler);
    hasHandler_.store(handler_ != nullptr, std::memory_order_release);
    if (handler_) {
      maybeScheduleDrain();
    } else {
      // Removal barrier: wait until no handler invocation is in flight.
      drainCv_.wait(lock, [this] { return !draining_; });
    }
  }

  /// True while a message handler is installed.
  bool hasHandler() const {
    return hasHandler_.load(std::memory_order_acquire);
  }

  /// Timed awaitNonEmpty; false on timeout.
  bool awaitNonEmptyFor(Duration timeout) {
    return queue_.awaitNonEmptyFor(timeout);
  }

  /// Number of queued messages.
  std::size_t size() const { return queue_.size(); }

  /// Largest queue depth ever observed — the backlog high-water mark that
  /// Dapplet::metrics() aggregates into `core.inbox_queue_hwm`.
  std::size_t queueHighWater() const { return queue_.highWater(); }

  /// Visits every queued (delivered but not yet received) message in order
  /// without consuming.  Used by snapshot state functions that must count
  /// inbox backlog as part of local state.  `fn` must not touch this inbox.
  void forEachQueued(const std::function<void(const Delivery&)>& fn) const {
    queue_.forEach(fn);
  }

  /// Posts a peer-failure alert with **drain-then-throw ordering**: queued
  /// messages — including deliveries that arrive *after* the alert, e.g.
  /// survivor traffic racing the eviction notice — always drain first; only
  /// an empty-queue receive consumes the alert and throws PeerDownError with
  /// `reason`.  Raised by the session agent when a member feeding this inbox
  /// crashes.
  void raise(std::string reason) { queue_.raise(std::move(reason)); }

  /// Closes the inbox: blocked receivers wake with ShutdownError and later
  /// deliveries are dropped.  Used during session unlink and dapplet stop.
  void close() { queue_.close(); }

  /// True once close() has been called.
  bool isClosed() const { return queue_.closed(); }

 private:
  friend class Dapplet;

  Inbox(std::uint32_t localId, std::string name, InboxRef ref)
      : localId_(localId), name_(std::move(name)), ref_(std::move(ref)) {}

  /// Routes this inbox's waits through the dapplet's clock (virtual time in
  /// tests).  Called by Dapplet::createInbox before the inbox is visible.
  void setClockSource(ClockSource* clock) { queue_.setClockSource(clock); }

  /// Installs the task poster drains are scheduled through (the dapplet's
  /// reactor).  Called by Dapplet::createInbox before the inbox is visible;
  /// the poster must stay callable for the inbox's lifetime.
  void setScheduler(std::function<void(std::function<void()>)> poster) {
    poster_ = std::move(poster);
  }

  /// Deliveries to a closed inbox are silently dropped.  After raise() the
  /// push still queues normally (drain-then-throw: the data outranks the
  /// pending alert).
  void push(Delivery delivery) {
    if (queue_.tryPush(std::move(delivery))) maybeScheduleDrain();
  }

  /// Schedules one drain task unless one is already pending.  The exchange
  /// makes the drain a strand: at most one runs or is queued at a time, so
  /// handler invocations for this inbox never overlap and stay FIFO.  The
  /// task pins the inbox (see class comment) — reactors outlive dapplets.
  void maybeScheduleDrain() {
    if (!hasHandler_.load(std::memory_order_acquire) || !poster_) return;
    if (drainScheduled_.exchange(true, std::memory_order_acq_rel)) return;
    poster_([self = shared_from_this()] { self->drain(); });
  }

  /// Runs on a reactor loop: feeds up to kDrainBatch queued deliveries to
  /// the handler, then reschedules itself if more remain — the batch bound
  /// keeps one flooded inbox from starving the other dapplets sharded onto
  /// the same loop.  The handler is copied out and invoked *outside*
  /// `handlerMutex_` (the strand property comes from drainScheduled_, not
  /// the mutex), so install/replace never blocks behind a batch;
  /// `draining_` + `drainCv_` give onMessage(nullptr) its removal barrier.
  void drain() {
    constexpr int kDrainBatch = 64;
    MessageHandler handler;
    {
      std::scoped_lock lock(handlerMutex_);
      handler = handler_;
      if (handler) {
        draining_ = true;
        drainThread_ = std::this_thread::get_id();
      }
    }
    if (handler) {
      try {
        // The hasHandler_ re-check ends the batch early once an uninstall
        // is parked on the barrier — it should wait out one invocation, not
        // the whole batch.
        for (int i = 0;
             i < kDrainBatch && hasHandler_.load(std::memory_order_acquire);
             ++i) {
          auto d = queue_.tryPop();
          if (!d) break;
          handler(std::move(*d));
        }
      } catch (...) {
        // A throwing handler must not strand the strand: release the
        // barrier, clear the flag, let the remaining backlog reschedule,
        // and surface the exception to the reactor loop (which logs it).
        finishDrain();
        drainScheduled_.store(false, std::memory_order_release);
        if (!queue_.empty()) maybeScheduleDrain();
        throw;
      }
      finishDrain();
    }
    drainScheduled_.store(false, std::memory_order_release);
    // Re-check after clearing the flag: a push that lost the exchange race
    // above relies on this tail check to re-arm.
    if (!queue_.empty()) maybeScheduleDrain();
  }

  /// Clears the in-flight-handler marker and wakes a parked uninstall.
  void finishDrain() {
    std::scoped_lock lock(handlerMutex_);
    draining_ = false;
    drainThread_ = std::thread::id{};
    drainCv_.notify_all();
  }

  const std::uint32_t localId_;
  const std::string name_;
  const InboxRef ref_;
  SyncQueue<Delivery> queue_;
  std::mutex handlerMutex_;  ///< guards handler_/draining_/drainThread_
  MessageHandler handler_;   ///< guarded by handlerMutex_
  std::condition_variable drainCv_;  ///< signalled when a batch finishes
  bool draining_ = false;            ///< a handler invocation is in flight
  std::thread::id drainThread_{};    ///< thread running the current batch
  std::atomic<bool> hasHandler_{false};
  std::atomic<bool> drainScheduled_{false};
  std::function<void(std::function<void()>)> poster_;
};

}  // namespace dapple
