#pragma once
/// \file inbox.hpp
/// \brief Inboxes: the receive side of the paper's communication model.
///
/// Paper §3.2 specifies exactly three application-layer methods:
/// `isEmpty()`, `awaitNonEmpty()` and `receive()`.  We add timed and
/// non-blocking variants plus typed conveniences, and each delivery carries
/// the metadata the services need (logical send/receive timestamps and the
/// source channel), which the paper's clock and snapshot services rely on.
///
/// Receive-surface conventions (beyond the paper's trio):
///  * `receiveFor(timeout)` / `tryReceive()` report "nothing arrived" in the
///    return value (`std::nullopt`), never by exception — use these in retry
///    loops.
///  * `receive(timeout)` throws TimeoutError — use it when a missed deadline
///    IS the failure.
///  * All receives throw ShutdownError once the inbox is closed-and-drained
///    and PeerDownError when a peer-failure alert is pending (see raise()).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "dapple/core/inbox_ref.hpp"
#include "dapple/serial/message.hpp"
#include "dapple/util/error.hpp"
#include "dapple/util/sync_queue.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

class Dapplet;

/// One received message plus its channel metadata.
struct Delivery {
  std::unique_ptr<Message> message;
  std::uint64_t sentAt = 0;      ///< sender's Lamport clock at send
  std::uint64_t receivedAt = 0;  ///< receiver's Lamport clock after receipt
  NodeAddress srcNode;           ///< sending dapplet's address
  std::uint64_t srcOutbox = 0;   ///< sending outbox id (identifies channel)

  /// Typed access; throws SerializationError naming the actual type.
  template <typename T>
  const T& as() const& {
    return messageAs<T>(*message);
  }

  /// On rvalues (`inbox.receive(t).as<T>()`) a reference would dangle once
  /// the temporary Delivery dies at the end of the full expression, so this
  /// overload returns a copy instead — `const auto& m = ...receive().as<T>()`
  /// then binds to a lifetime-extended temporary and stays valid.
  template <typename T>
  T as() const&& {
    return messageAs<T>(*message);
  }
};

/// A message queue owned by a dapplet.  All members are thread-safe.
/// Create via `Dapplet::createInbox`.
class Inbox {
 public:
  Inbox(const Inbox&) = delete;
  Inbox& operator=(const Inbox&) = delete;

  /// Numeric local reference (nonzero, unique within the dapplet).
  std::uint32_t localId() const { return localId_; }

  /// String name ("" when anonymous).
  const std::string& name() const { return name_; }

  /// Global address other dapplets can bind outboxes to.
  const InboxRef& ref() const { return ref_; }

  // --- the paper's API ---------------------------------------------------

  /// True when no message is queued.
  bool isEmpty() const { return queue_.empty(); }

  /// Suspends the caller until the inbox is nonempty.  Throws ShutdownError
  /// if the dapplet stops while waiting.
  void awaitNonEmpty() {
    if (!queue_.awaitNonEmpty()) throw ShutdownError("inbox closed");
  }

  /// Suspends until nonempty, then removes and returns the head message.
  Delivery receive() { return queue_.pop(); }

  // --- extensions ----------------------------------------------------------

  /// Timed receive; throws TimeoutError when nothing arrives in time.
  Delivery receive(Duration timeout) {
    auto d = queue_.popFor(timeout);
    if (!d) {
      throw TimeoutError("inbox '" + name_ + "' receive timed out");
    }
    return std::move(*d);
  }

  /// Timed receive without the timeout exception: nullopt when nothing
  /// arrives in time.  Closed inboxes and pending peer-failure alerts still
  /// throw (ShutdownError / PeerDownError) — those are failures, not
  /// timeouts.
  std::optional<Delivery> receiveFor(Duration timeout) {
    return queue_.popFor(timeout);
  }

  /// Typed receive: blocks, then decodes the head message as `T` (throws
  /// SerializationError naming the actual type on mismatch).
  template <typename T>
  T receiveAs() {
    return receive().template as<T>();
  }

  /// Typed timed receive; throws TimeoutError like receive(timeout).
  template <typename T>
  T receiveAs(Duration timeout) {
    return receive(timeout).template as<T>();
  }

  /// Non-blocking receive.
  std::optional<Delivery> tryReceive() { return queue_.tryPop(); }

  /// Timed awaitNonEmpty; false on timeout.
  bool awaitNonEmptyFor(Duration timeout) {
    return queue_.awaitNonEmptyFor(timeout);
  }

  /// Number of queued messages.
  std::size_t size() const { return queue_.size(); }

  /// Largest queue depth ever observed — the backlog high-water mark that
  /// Dapplet::metrics() aggregates into `core.inbox_queue_hwm`.
  std::size_t queueHighWater() const { return queue_.highWater(); }

  /// Visits every queued (delivered but not yet received) message in order
  /// without consuming.  Used by snapshot state functions that must count
  /// inbox backlog as part of local state.  `fn` must not touch this inbox.
  void forEachQueued(const std::function<void(const Delivery&)>& fn) const {
    queue_.forEach(fn);
  }

  /// Posts a peer-failure alert with **drain-then-throw ordering**: queued
  /// messages — including deliveries that arrive *after* the alert, e.g.
  /// survivor traffic racing the eviction notice — always drain first; only
  /// an empty-queue receive consumes the alert and throws PeerDownError with
  /// `reason`.  Raised by the session agent when a member feeding this inbox
  /// crashes.
  void raise(std::string reason) { queue_.raise(std::move(reason)); }

  /// Closes the inbox: blocked receivers wake with ShutdownError and later
  /// deliveries are dropped.  Used during session unlink and dapplet stop.
  void close() { queue_.close(); }

  /// True once close() has been called.
  bool isClosed() const { return queue_.closed(); }

 private:
  friend class Dapplet;

  Inbox(std::uint32_t localId, std::string name, InboxRef ref)
      : localId_(localId), name_(std::move(name)), ref_(std::move(ref)) {}

  /// Routes this inbox's waits through the dapplet's clock (virtual time in
  /// tests).  Called by Dapplet::createInbox before the inbox is visible.
  void setClockSource(ClockSource* clock) { queue_.setClockSource(clock); }

  /// Deliveries to a closed inbox are silently dropped.  After raise() the
  /// push still queues normally (drain-then-throw: the data outranks the
  /// pending alert).
  void push(Delivery delivery) { queue_.tryPush(std::move(delivery)); }

  const std::uint32_t localId_;
  const std::string name_;
  const InboxRef ref_;
  SyncQueue<Delivery> queue_;
};

}  // namespace dapple
