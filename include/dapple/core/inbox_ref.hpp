#pragma once
/// \file inbox_ref.hpp
/// \brief Global inbox addresses.
///
/// Paper §3.2: *"Each inbox has a global address: the address of its dapplet
/// (i.e. its IP address and port) and a local reference within the dapplet
/// process"* and, as a convenience, an inbox may instead be addressed by
/// *"its unique dapplet address ... and a string in place of its local id"*.
/// `InboxRef` covers both forms: when `localId != 0` it is a numeric
/// reference; otherwise `name` is resolved by the receiving dapplet.

#include <cstdint>
#include <string>

#include "dapple/net/address.hpp"
#include "dapple/serial/wire.hpp"

namespace dapple {

/// Global address of one inbox.
struct InboxRef {
  NodeAddress node;          ///< owning dapplet's address
  std::uint32_t localId = 0; ///< numeric local reference, 0 = use name
  std::string name;          ///< string name (may be empty when localId set)

  friend bool operator==(const InboxRef&, const InboxRef&) = default;

  bool valid() const { return node.valid() && (localId != 0 || !name.empty()); }

  std::string toString() const {
    return node.toString() + "/" +
           (localId != 0 ? ("#" + std::to_string(localId)) : name);
  }

  void encode(WireWriter& w) const {
    w.writeU64(node.packed());
    w.writeU64(localId);
    w.writeString(name);
  }

  static InboxRef decode(WireReader& r) {
    InboxRef ref;
    ref.node = NodeAddress::fromPacked(r.readU64());
    ref.localId = static_cast<std::uint32_t>(r.readU64());
    ref.name = r.readString();
    return ref;
  }
};

class Value;  // serial/value.hpp

/// Value conversions so refs can travel inside generic payloads (RPC args,
/// DataMessage bodies, directories).
Value inboxRefToValue(const InboxRef& ref);
InboxRef inboxRefFromValue(const Value& value);

}  // namespace dapple

template <>
struct std::hash<dapple::InboxRef> {
  std::size_t operator()(const dapple::InboxRef& ref) const noexcept {
    std::size_t h = std::hash<dapple::NodeAddress>{}(ref.node);
    h ^= std::hash<std::uint32_t>{}(ref.localId) + 0x9e3779b9 + (h << 6);
    h ^= std::hash<std::string>{}(ref.name) + 0x9e3779b9 + (h << 6);
    return h;
  }
};
