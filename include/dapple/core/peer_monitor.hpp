#pragma once
/// \file peer_monitor.hpp
/// \brief Abstract failure-detector interface consumed by the session layer.
///
/// The session machinery (SessionAgent, Initiator) lives in the core layer
/// and must not depend on any concrete service, so crash detection is
/// expressed through this small interface.  The liveness service
/// (`dapple/services/liveness`) provides the heartbeat-based implementation;
/// tests may plug in scripted fakes.
///
/// Identity model: a watched peer is its dapplet's `InboxRef` — heartbeats
/// are matched to watches by the sender's NodeAddress, so peers need not
/// agree on names.  Watch keys are caller-chosen strings (the initiator uses
/// "sessionId/memberName"), which lets one peer be watched independently by
/// several sessions.

#include <functional>
#include <string>

#include "dapple/core/inbox_ref.hpp"

namespace dapple {

/// Crash (suspect) detector for a set of watched peers.  Implementations
/// must be thread-safe; callbacks fire on the implementation's own thread
/// and must not block for long.
class PeerMonitor {
 public:
  virtual ~PeerMonitor() = default;

  /// Callback invoked with the watch key and the watched ref.
  using PeerFn = std::function<void(const std::string& key, const InboxRef& peer)>;

  /// The inbox other monitors should send heartbeats to.  Exchanged during
  /// session setup (InviteMsg/InviteReplyMsg `livenessRef` fields).
  virtual InboxRef ref() const = 0;

  /// Starts watching `peer` under `key`; re-watching an existing key
  /// replaces the previous entry and resets its failure state.
  virtual void watch(const std::string& key, const InboxRef& peer) = 0;

  /// Stops watching `key` (no-op when absent).  No callbacks fire for the
  /// key after unwatch returns.
  virtual void unwatch(const std::string& key) = 0;

  /// Registers a callback fired once per transition into "suspected".
  virtual void onSuspect(PeerFn fn) = 0;

  /// Registers a callback fired when a suspected peer proves alive again.
  virtual void onAlive(PeerFn fn) = 0;
};

}  // namespace dapple
