#pragma once
/// \file session_msgs.hpp
/// \brief Wire messages of the session establishment protocol.
///
/// The protocol (paper §3.1, Figure 2) runs in three phases driven by the
/// initiator:
///
///   1. INVITE   -> each member checks its ACL and the interference guard,
///                  creates the session's inboxes, replies INVITE_REPLY
///                  (accept with the created inbox addresses, or reject
///                  with a reason).
///   2. WIRE     -> each member creates outboxes and binds them to peer
///                  inboxes per the topology; replies WIRE_REPLY.
///   3. START    -> members launch their role logic.  On completion a
///                  member sends DONE; the initiator finally broadcasts
///                  UNLINK ("when a session terminates, component dapplets
///                  unlink themselves from each other").  ABORT rolls back
///                  a half-established session.  WIRE/UNBIND may also be
///                  sent mid-session to grow or shrink it.

#include <map>
#include <string>
#include <vector>

#include "dapple/core/inbox_ref.hpp"
#include "dapple/serial/message.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

namespace wiredetail {

void encodeStrings(WireWriter& w, const std::vector<std::string>& v);
std::vector<std::string> decodeStrings(WireReader& r);
void encodeRefMap(WireWriter& w, const std::map<std::string, InboxRef>& m);
std::map<std::string, InboxRef> decodeRefMap(WireReader& r);

}  // namespace wiredetail

/// One outbox's wiring: bind `outboxName` to every ref in `targets`.
struct Binding {
  std::string outboxName;
  std::vector<InboxRef> targets;
  friend bool operator==(const Binding&, const Binding&) = default;
};

/// Phase 1: the initiator asks a dapplet to join a session.
class InviteMsg : public MessageBase<InviteMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Invite";

  std::string sessionId;
  std::string app;               ///< role registry key at the member
  std::string initiatorName;     ///< checked against the member's ACL
  std::string memberName;        ///< the invitee's name within the session
  InboxRef replyTo;              ///< the initiator's reply inbox
  std::vector<std::string> inboxesToCreate;  ///< session-local inbox names
  std::vector<std::string> readKeys;   ///< declared state read set
  std::vector<std::string> writeKeys;  ///< declared state write set
  Value params;                  ///< app-specific parameters
  InboxRef livenessRef;          ///< initiator's heartbeat inbox (may be
                                 ///< invalid when it runs no detector)

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Phase 1 reply.
class InviteReplyMsg : public MessageBase<InviteReplyMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.InviteReply";

  std::string sessionId;
  std::string memberName;
  bool accepted = false;
  std::string reason;  ///< set when rejected
  std::map<std::string, InboxRef> inboxRefs;  ///< created session inboxes
  InboxRef livenessRef;  ///< member's heartbeat inbox (may be invalid)

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Phase 2: bind outboxes to peer inboxes.  Also used mid-session to grow
/// the topology (bindings are additive).
class WireMsg : public MessageBase<WireMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Wire";

  std::string sessionId;
  std::vector<Binding> bindings;

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Phase 2 reply.
class WireReplyMsg : public MessageBase<WireReplyMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.WireReply";

  std::string sessionId;
  std::string memberName;
  bool ok = false;
  std::string reason;

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Phase 3: run.
class StartMsg : public MessageBase<StartMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Start";

  std::string sessionId;
  std::vector<std::string> peers;  ///< all member names, initiator-ordered
  Value params;

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Member -> initiator: my role finished, with an app-defined result.
class DoneMsg : public MessageBase<DoneMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Done";

  std::string sessionId;
  std::string memberName;
  Value result;

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Initiator -> member: tear the session down and unlink.
class UnlinkMsg : public MessageBase<UnlinkMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Unlink";

  std::string sessionId;
  std::string reason;  ///< "" for normal termination

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Initiator -> surviving members: a member crash-stopped and has been
/// evicted.  Receivers drop bindings to the dead node and fail blocked
/// receives on the session's inboxes with PeerDownError so roles do not
/// hang out the full delivery timeout.
class MemberDownMsg : public MessageBase<MemberDownMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.MemberDown";

  std::string sessionId;
  std::string memberName;   ///< the evicted member
  std::uint64_t node = 0;   ///< NodeAddress::packed() of the dead dapplet
  std::string reason;       ///< detector verdict (liveness / stream failure)

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Restarted member -> initiator: crash-recovery REJOIN request
/// (DESIGN.md §12).  A dapplet that reloaded a journaled session from its
/// durable state asks to be re-admitted: `incarnation` orders the request
/// against stale eviction events (eviction and rejoin are idempotent per
/// incarnation), `control` is the restarted agent's session-control inbox
/// (it lives at a new node address), and `inboxRefs` are the re-created
/// session inboxes the initiator should re-wire peers to.
class RejoinMsg : public MessageBase<RejoinMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Rejoin";

  std::string sessionId;
  std::string memberName;
  std::uint64_t incarnation = 0;  ///< restart counter (1 = first boot)
  InboxRef control;               ///< restarted agent's control inbox
  std::map<std::string, InboxRef> inboxRefs;  ///< re-created session inboxes
  InboxRef livenessRef;  ///< member's heartbeat inbox (may be invalid)

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Initiator -> restarted member: REJOIN verdict.  On accept the initiator
/// follows up with WIRE (re-bind the member's outboxes) and START (re-run
/// its role); on reject the member discards the journaled session.
class RejoinAckMsg : public MessageBase<RejoinAckMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.RejoinAck";

  std::string sessionId;
  std::string memberName;
  std::uint64_t incarnation = 0;  ///< echoes the request
  bool accepted = false;
  std::string reason;  ///< set when rejected

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Initiator -> surviving members: an evicted member rejoined at a new
/// address (the inverse of MemberDownMsg).  Survivors' stale bindings were
/// already re-pointed by an accompanying WIRE; this is the narration event
/// (metrics/trace) and lets apps observe recovery.
class MemberUpMsg : public MessageBase<MemberUpMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.MemberUp";

  std::string sessionId;
  std::string memberName;   ///< the rejoined member
  std::uint64_t node = 0;   ///< NodeAddress::packed() of the new process
  std::uint64_t incarnation = 0;

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

/// Mid-session shrink: drop specific outbox->inbox bindings.
class UnbindMsg : public MessageBase<UnbindMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.session.Unbind";

  std::string sessionId;
  std::vector<Binding> bindings;

  void encodeFields(WireWriter& w) const override;
  void decodeFields(WireReader& r) override;
};

}  // namespace dapple
