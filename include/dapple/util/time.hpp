#pragma once
/// \file time.hpp
/// \brief Clock aliases, a tiny stopwatch, and the injectable `ClockSource`.
///
/// Every component that sleeps, times out, or schedules (the reliable
/// layer's retransmission timer, `SyncQueue`/`Inbox::receiveFor` deadlines,
/// liveness heartbeats, initiator backoff, `SimNetwork` delivery) reads time
/// and parks threads exclusively through a `ClockSource`.  Production code
/// uses `ClockSource::system()` (a thin veneer over `steady_clock` and the
/// usual condition-variable waits); tests inject
/// `dapple::testkit::VirtualClock`, whose waits park on a discrete-event
/// scheduler so a whole fault scenario runs in virtual time with zero
/// wall-clock sleeps.
///
/// Contract for clocked components: pair every wait with a notify routed
/// through the *same* clock (`notifyOne`/`notifyAll`/`interruptAll`).  A raw
/// `cv.notify_*()` on a condition variable that clocked waiters park on is a
/// lost wakeup under a virtual clock.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <type_traits>

namespace dapple {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::seconds;

/// `now + timeout` without signed overflow: anything that would pass
/// `TimePoint::max()` saturates to it (an effectively-infinite deadline).
inline TimePoint saturatingDeadline(TimePoint now, Duration timeout) {
  if (timeout >= TimePoint::max() - now) return TimePoint::max();
  return now + timeout;
}

/// The time abstraction all waiting code is written against.  Callers keep
/// their own mutex/condition-variable pairs; the clock only decides how a
/// wait parks and what "now" means.  All members are thread-safe.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// Current time on this clock's timeline.
  virtual TimePoint now() const = 0;

  /// Blocks the calling thread for `d` on this clock's timeline.
  virtual void sleepFor(Duration d) = 0;

  /// Non-capturing predicate trampoline used by the virtual interface; use
  /// the templated `waitUntil`/`waitFor`/`wait` wrappers below.
  using PredFn = bool (*)(void*);

  /// `cv.wait_until(lock, deadline, pred)` routed through the clock.
  /// Returns `pred()` at exit (false = timed out with pred still false).
  /// `deadline == TimePoint::max()` waits untimed.
  virtual bool waitUntilImpl(std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv, TimePoint deadline,
                             PredFn pred, void* ctx) = 0;

  /// One `cv.wait_until(lock, deadline)` without a predicate: returns on a
  /// routed notify, on reaching `deadline`, or spuriously.  For manual
  /// re-check loops that interleave timed waits with other conditions.
  virtual void parkUntil(std::unique_lock<std::mutex>& lock,
                         std::condition_variable& cv, TimePoint deadline) = 0;

  /// Notifies waiters parked on `cv` *through this clock*.
  virtual void notifyOne(std::condition_variable& cv) = 0;
  virtual void notifyAll(std::condition_variable& cv) = 0;

  /// Wakes every clocked waiter once so blocked loops re-check their stop
  /// conditions (used by Dapplet::stop/crash).  No-op on the system clock,
  /// where plain timeouts already guarantee progress.
  virtual void interruptAll() {}

  /// Worker accounting: a *worker* thread is one whose forward progress is
  /// driven purely by messages and timers (transport delivery threads,
  /// retransmission timers, spawned dapplet workers).  A virtual clock only
  /// advances time when every registered worker is parked in a clocked wait,
  /// so registration is what makes compute "instantaneous" in virtual time.
  /// No-ops on the system clock.
  virtual void beginWorker() {}
  virtual void endWorker() {}

  /// Called by the *spawning* thread immediately before it starts a thread
  /// that will `beginWorker()`.  Closes the startup race: between the spawn
  /// and the new thread's registration the worker is invisible, and a
  /// virtual clock that considered that window quiescent could leap
  /// arbitrarily far (e.g. past a delivery timeout before the retransmit
  /// timer ever ran).  An announced-but-unregistered worker blocks
  /// advancement until its `beginWorker()` lands.  No-op on the system
  /// clock.
  virtual void announceWorker() {}

  /// RAII worker registration for thread bodies.
  class WorkerScope {
   public:
    explicit WorkerScope(ClockSource& clock) : clock_(clock) {
      clock_.beginWorker();
    }
    ~WorkerScope() { clock_.endWorker(); }
    WorkerScope(const WorkerScope&) = delete;
    WorkerScope& operator=(const WorkerScope&) = delete;

   private:
    ClockSource& clock_;
  };

  // --- templated sugar over the PredFn interface -------------------------

  template <typename Pred>
  bool waitUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, TimePoint deadline,
                 Pred&& pred) {
    using P = std::remove_reference_t<Pred>;
    return waitUntilImpl(
        lock, cv, deadline, [](void* ctx) { return (*static_cast<P*>(ctx))(); },
        &pred);
  }

  template <typename Rep, typename Period, typename Pred>
  bool waitFor(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
               std::chrono::duration<Rep, Period> timeout, Pred&& pred) {
    return waitUntil(
        lock, cv,
        saturatingDeadline(now(),
                           std::chrono::duration_cast<Duration>(timeout)),
        std::forward<Pred>(pred));
  }

  /// Untimed `cv.wait(lock, pred)` routed through the clock.
  template <typename Pred>
  void wait(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
            Pred&& pred) {
    waitUntil(lock, cv, TimePoint::max(), std::forward<Pred>(pred));
  }

  template <typename Rep, typename Period>
  void parkFor(std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
               std::chrono::duration<Rep, Period> timeout) {
    parkUntil(lock, cv,
              saturatingDeadline(now(),
                                 std::chrono::duration_cast<Duration>(timeout)));
  }

  /// The process-wide wall-clock implementation (steady_clock + plain
  /// condition-variable waits).
  static ClockSource& system();
};

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  Duration elapsed() const { return Clock::now() - start_; }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

  std::int64_t elapsedMicros() const {
    return std::chrono::duration_cast<microseconds>(elapsed()).count();
  }

 private:
  TimePoint start_;
};

}  // namespace dapple
