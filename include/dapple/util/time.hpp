#pragma once
/// \file time.hpp
/// \brief Clock aliases and a tiny stopwatch used by benches and timeouts.

#include <chrono>
#include <cstdint>

namespace dapple {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Duration = Clock::duration;

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::seconds;

/// Monotonic stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  Duration elapsed() const { return Clock::now() - start_; }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

  std::int64_t elapsedMicros() const {
    return std::chrono::duration_cast<microseconds>(elapsed()).count();
  }

 private:
  TimePoint start_;
};

}  // namespace dapple
