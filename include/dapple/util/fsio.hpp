#pragma once
/// \file fsio.hpp
/// \brief Durable file writes for the persistence layer.
///
/// Crash-recovery durability (DESIGN.md §12) needs two primitives the
/// standard library does not give us: an *atomic* full-file replace (a
/// crash at any byte leaves either the old image or the new one) and an
/// *fsync'd* write (the data is on stable storage before the caller
/// proceeds).  `StateStore::save`, the recovery WAL's checkpoint files and
/// `GlobalSnapshot::saveTo` all route through these helpers.

#include <string>
#include <string_view>

namespace dapple {

/// Atomically and durably replaces the file at `path` with `bytes`:
/// writes `<path>.tmp`, fsyncs it, renames it over `path`, then fsyncs the
/// containing directory so the rename itself survives a crash.  Throws
/// StateError on any I/O failure.
void atomicWriteFile(const std::string& path, std::string_view bytes);

/// Fsyncs the directory containing `path` (making a completed rename or
/// create durable).  Failures are ignored on filesystems that refuse
/// directory fsync; real write errors surface on the data fsync instead.
void fsyncParentDir(const std::string& path);

}  // namespace dapple
