#pragma once
/// \file sync_queue.hpp
/// \brief Blocking multi-producer/multi-consumer queue.
///
/// This is the concurrency workhorse behind `Inbox`: a mutex+condvar queue
/// with closable semantics (a closed queue wakes all waiters with
/// `ShutdownError` once drained) and timed pops.
///
/// All blocking and waking routes through a `ClockSource` (the system clock
/// by default), so a queue attached to a `testkit::VirtualClock` parks its
/// waiters on virtual time: `popFor(5s)` in a test costs no wall-clock time.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "dapple/util/error.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

/// Unbounded blocking FIFO queue.  All members are thread-safe.
template <typename T>
class SyncQueue {
 public:
  SyncQueue() = default;
  SyncQueue(const SyncQueue&) = delete;
  SyncQueue& operator=(const SyncQueue&) = delete;

  /// Injects the clock that waits park on and notifies route through.
  /// Call before any concurrent use (e.g. right after construction).
  void setClockSource(ClockSource* clock) {
    std::scoped_lock lock(mutex_);
    clock_ = clock != nullptr ? clock : &ClockSource::system();
  }

  /// Appends an item; wakes one waiter.  Throws ShutdownError if closed.
  /// Pushing after raise() is allowed: queued data always drains before the
  /// alert fires (see raise()).
  void push(T item) {
    ClockSource* clk;
    {
      std::scoped_lock lock(mutex_);
      if (closed_) throw ShutdownError("push on closed queue");
      items_.push_back(std::move(item));
      if (items_.size() > highWater_) highWater_ = items_.size();
      clk = clock_;
    }
    clk->notifyOne(nonempty_);
  }

  /// Appends an item unless the queue is closed; returns false (dropping
  /// the item) when closed.
  bool tryPush(T item) {
    ClockSource* clk;
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > highWater_) highWater_ = items_.size();
      clk = clock_;
    }
    clk->notifyOne(nonempty_);
    return true;
  }

  /// Blocks until an item is available, then removes and returns it.
  /// Throws ShutdownError when the queue is closed and drained, or
  /// PeerDownError when an alert is pending and no data remains.
  T pop() {
    std::unique_lock lock(mutex_);
    clock_->wait(lock, nonempty_, [this] { return wakeLocked(); });
    return takeLocked();
  }

  /// Like pop(), but gives up after `timeout` and returns nullopt.
  template <typename Rep, typename Period>
  std::optional<T> popFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    if (!clock_->waitFor(lock, nonempty_, timeout,
                         [this] { return wakeLocked(); })) {
      return std::nullopt;
    }
    if (items_.empty() && closed_) throw ShutdownError("queue closed");
    return takeLocked();
  }

  /// Removes and returns the head if present, without blocking.
  std::optional<T> tryPop() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Blocks until the queue is nonempty (or closed) without consuming.
  /// Returns true if an item is available, false if closed-and-empty.
  /// Throws PeerDownError when only an alert is pending.
  bool awaitNonEmpty() {
    std::unique_lock lock(mutex_);
    clock_->wait(lock, nonempty_, [this] { return wakeLocked(); });
    throwAlertIfOnlyAlertLocked();
    return !items_.empty();
  }

  /// Timed variant of awaitNonEmpty(); false on timeout or closed-and-empty.
  template <typename Rep, typename Period>
  bool awaitNonEmptyFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    clock_->waitFor(lock, nonempty_, timeout, [this] { return wakeLocked(); });
    throwAlertIfOnlyAlertLocked();
    return !items_.empty();
  }

  bool empty() const {
    std::scoped_lock lock(mutex_);
    return items_.empty();
  }

  /// Visits every queued item (head to tail) under the queue lock.  `fn`
  /// must not call back into this queue.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    std::scoped_lock lock(mutex_);
    for (const T& item : items_) fn(item);
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  /// Largest queue depth ever observed (after a push).  Maintained under the
  /// queue lock, so reading it costs nothing extra on the hot path.
  std::size_t highWater() const {
    std::scoped_lock lock(mutex_);
    return highWater_;
  }

  /// Marks the queue closed: pushes start throwing, waiters drain remaining
  /// items and then receive ShutdownError.  Idempotent.
  void close() {
    ClockSource* clk;
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
      clk = clock_;
    }
    clk->notifyAll(nonempty_);
  }

  bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  /// Posts an out-of-band failure alert.  **Drain-then-throw ordering**:
  /// data queued at raise() time — and data pushed *after* raise(), e.g.
  /// late deliveries from surviving peers — always drains first; only when
  /// the queue is empty does a blocked (or subsequent) pop/await consume one
  /// alert and throw PeerDownError carrying `reason`.  Consume-once: each
  /// raise() fails exactly one blocking call, so survivors of a dead peer see
  /// the failure promptly without looping on it forever.
  void raise(std::string reason) {
    ClockSource* clk;
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return;  // shutdown already wakes everyone
      alerts_.push_back(std::move(reason));
      clk = clock_;
    }
    clk->notifyAll(nonempty_);
  }

  /// Number of pending (unconsumed) alerts.
  std::size_t pendingAlerts() const {
    std::scoped_lock lock(mutex_);
    return alerts_.size();
  }

 private:
  bool wakeLocked() const {
    return !items_.empty() || !alerts_.empty() || closed_;
  }

  void throwAlertIfOnlyAlertLocked() {
    if (items_.empty() && !alerts_.empty()) {
      std::string reason = std::move(alerts_.front());
      alerts_.pop_front();
      throw PeerDownError(reason);
    }
  }

  T takeLocked() {
    throwAlertIfOnlyAlertLocked();
    if (items_.empty()) throw ShutdownError("queue closed");
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable nonempty_;
  ClockSource* clock_ = &ClockSource::system();
  std::deque<T> items_;
  std::deque<std::string> alerts_;
  std::size_t highWater_ = 0;
  bool closed_ = false;
};

}  // namespace dapple
