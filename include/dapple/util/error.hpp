#pragma once
/// \file error.hpp
/// \brief Exception hierarchy for the dapple distributed-system library.
///
/// The paper specifies several situations in which "an exception is raised":
/// a message not delivered within a specified time, `delete` of an inbox
/// address that is not bound, `release` of tokens that are not held, and
/// detection of deadlock by the token managers.  Each of those situations has
/// a dedicated exception type here so applications can react selectively.

#include <stdexcept>
#include <string>

namespace dapple {

/// Root of all exceptions thrown by the dapple library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A blocking operation exceeded its deadline (e.g. `Inbox::receive` with a
/// timeout, or a synchronous RPC whose reply never arrived).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// A message handed to `Outbox::send` could not be delivered within the
/// configured delivery timeout (paper §3.2: "if a message is not delivered
/// within a specified time an exception is raised").
class DeliveryError : public Error {
 public:
  explicit DeliveryError(const std::string& what) : Error(what) {}
};

/// An address argument was malformed, unknown, or not bound (paper §3.2:
/// `delete(ipa)` "throws an exception" when the address is not in the list).
class AddressError : public Error {
 public:
  explicit AddressError(const std::string& what) : Error(what) {}
};

/// Failure to encode or decode a message (unknown type name, malformed wire
/// text, field type mismatch).
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what) : Error(what) {}
};

/// Session establishment or membership failure (rejected link request,
/// unknown session, protocol violation).
class SessionError : public Error {
 public:
  explicit SessionError(const std::string& what) : Error(what) {}
};

/// A link request or state access was refused by an access-control list.
class AccessDeniedError : public Error {
 public:
  explicit AccessDeniedError(const std::string& what) : Error(what) {}
};

/// Violation of the token rules (paper §4.1): releasing tokens that are not
/// in `holdsTokens`, requesting a non-existent colour, or breaking the
/// conservation invariant.
class TokenError : public Error {
 public:
  explicit TokenError(const std::string& what) : Error(what) {}
};

/// The token managers detected a deadlock among pending requests
/// (paper §4.1: "If the token managers detect a deadlock an exception is
/// raised").
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// Illegal access to persistent state: key outside a session view, or a
/// write through a read-only view.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// The component has been stopped; blocking calls wake up with this error.
class ShutdownError : public Error {
 public:
  explicit ShutdownError(const std::string& what) : Error(what) {}
};

/// A session peer was declared dead (crash-stop) by the liveness detector or
/// by a reliable-stream failure.  Blocked receives on inboxes fed by that
/// peer raise this instead of waiting out the full delivery timeout.
class PeerDownError : public Error {
 public:
  explicit PeerDownError(const std::string& what) : Error(what) {}
};

/// A socket-level failure in the real UDP transport.
class NetworkError : public Error {
 public:
  explicit NetworkError(const std::string& what) : Error(what) {}
};

/// Misuse of the metrics registry: one name looked up as two different
/// metric kinds (a counter cannot also be a histogram).
class MetricsError : public Error {
 public:
  explicit MetricsError(const std::string& what) : Error(what) {}
};

}  // namespace dapple
