#pragma once
/// \file log.hpp
/// \brief Minimal thread-safe leveled logger.
///
/// The logger is deliberately tiny: a global level, an optional sink
/// override, and line-at-a-time atomic emission.  Logging below the global
/// level costs one relaxed atomic load.

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace dapple::log {

enum class Level : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the current global level (default: kWarn, so tests and benches
/// stay quiet unless asked).
Level level() noexcept;

/// Sets the global level.
void setLevel(Level lvl) noexcept;

/// Replaces the sink.  The sink receives fully formatted lines (no trailing
/// newline) and must be thread-safe or internally synchronized; passing an
/// empty function restores the default stderr sink.
void setSink(std::function<void(Level, std::string_view)> sink);

/// Emits one line at `lvl` if `lvl >= level()`.
void write(Level lvl, std::string_view component, std::string_view text);

/// True when a message at `lvl` would be emitted.
inline bool enabled(Level lvl) noexcept { return lvl >= level(); }

namespace detail {

class LineBuilder {
 public:
  LineBuilder(Level lvl, std::string_view component)
      : lvl_(lvl), component_(component) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(lvl_, component_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level lvl_;
  std::string_view component_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace dapple::log

/// Streams a log line, e.g. `DAPPLE_LOG(kDebug, "net") << "sent " << n;`.
/// The stream expression is evaluated only when the level is enabled.
#define DAPPLE_LOG(lvl, component)                                        \
  if (!::dapple::log::enabled(::dapple::log::Level::lvl)) {               \
  } else                                                                  \
    ::dapple::log::detail::LineBuilder(::dapple::log::Level::lvl, (component))
