#pragma once
/// \file strings.hpp
/// \brief Small string helpers shared across the library.

#include <string>
#include <string_view>
#include <vector>

namespace dapple {

/// Splits `text` on `sep`; adjacent separators yield empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` begins with `prefix`.
inline bool startsWith(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

/// Renders bytes as lowercase hex (debugging aid).
std::string toHex(std::string_view bytes);

}  // namespace dapple
