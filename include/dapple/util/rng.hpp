#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random generator used by the simulated
/// network and by workload generators.
///
/// Everything stochastic in the library (link loss, delay jitter, workload
/// arrival, synthetic calendars) is driven by an explicitly seeded `Rng`, so
/// simulations and tests are reproducible.  The generator is xoshiro256**
/// seeded through SplitMix64; both are public-domain algorithms.

#include <cstdint>
#include <limits>

namespace dapple {

/// Deterministic 64-bit PRNG (xoshiro256**).  Satisfies the essentials of
/// UniformRandomBitGenerator so it can be used with <random> distributions,
/// though the convenience members below avoid unspecified stdlib behaviour
/// for cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the state from `seed` via SplitMix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound); `bound` must be nonzero.  The modulo
  /// bias (< bound/2^64) is negligible for simulation purposes and the
  /// result is fully deterministic across platforms.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p` (clamped to [0, 1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed value with the given mean (> 0), useful for
  /// queueing-style arrival processes and WAN delay tails.
  double exponential(double mean);

  /// Splits off an independently seeded child generator; handy for giving
  /// each simulated link its own stream.
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace dapple
