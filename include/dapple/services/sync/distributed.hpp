#pragma once
/// \file distributed.hpp
/// \brief Synchronization constructs for threads in *different* dapplets.
///
/// Paper §4.3: *"We are extending these designs to allow synchronizations
/// between threads in different dapplets in different address spaces."*
/// This module delivers that extension:
///
///  * `DistributedBarrier` — coordinator-based multiway synchronization
///    (also the paper's §2.2 "multiway synchronization" servlet);
///  * `DistributedSingleAssignment` — a write-once value replicated to all
///    members on set; readers block;
///  * a distributed semaphore is simply a `TokenManager` colour: acquire =
///    `request({{color, 1}})`, release = `release({{color, 1}})` — see
///    `DistributedSemaphore` below for the thin wrapper.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/services/tokens/token_manager.hpp"

namespace dapple {

/// Barrier across dapplets.  Member 0 of the ref vector coordinates: it
/// collects ARRIVE from everyone and broadcasts RELEASE.  Reusable
/// (generation counted).
class DistributedBarrier {
 public:
  /// Creates the barrier inbox ("bar.<name>") on `dapplet`.
  DistributedBarrier(Dapplet& dapplet, const std::string& name);
  ~DistributedBarrier();

  DistributedBarrier(const DistributedBarrier&) = delete;
  DistributedBarrier& operator=(const DistributedBarrier&) = delete;

  InboxRef ref() const;

  /// Wires the member; `members[0]` is the coordinator.
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex);

  /// Blocks until every member has arrived at the same generation.
  /// Returns the completed generation.  Throws TimeoutError.
  std::uint64_t arriveAndWait(Duration timeout = seconds(30));

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Write-once value shared by a group of dapplets.  Any member may set();
/// the value is broadcast and all members' get() unblock.  A second set()
/// anywhere throws Error on the setter whose message arrives second
/// (first-writer-wins, resolved by the paper's timestamp order).
class DistributedSingleAssignment {
 public:
  DistributedSingleAssignment(Dapplet& dapplet, const std::string& name);
  ~DistributedSingleAssignment();

  DistributedSingleAssignment(const DistributedSingleAssignment&) = delete;
  DistributedSingleAssignment& operator=(const DistributedSingleAssignment&) =
      delete;

  InboxRef ref() const;
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex);

  /// Proposes the value.  The earliest-timestamped proposal wins
  /// everywhere; a losing set() returns false.
  bool set(const Value& value);

  /// Blocks until some member's set() has propagated here.
  Value get(Duration timeout = seconds(30)) const;

  bool isSet() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Distributed counting semaphore backed by a token colour — the canonical
/// "tokens as capabilities" usage of §4.1.
class DistributedSemaphore {
 public:
  /// `manager` must be attached; `color` must have been seeded with the
  /// semaphore's initial count at its home member.
  DistributedSemaphore(TokenManager& manager, TokenColor color)
      : manager_(manager), color_(std::move(color)) {}

  void acquire(std::int64_t n = 1, Duration timeout = seconds(30)) {
    manager_.request({{color_, n}}, timeout);
  }

  void release(std::int64_t n = 1) { manager_.release({{color_, n}}); }

  const TokenColor& color() const { return color_; }

 private:
  TokenManager& manager_;
  TokenColor color_;
};

}  // namespace dapple
