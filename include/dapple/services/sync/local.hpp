#pragma once
/// \file local.hpp
/// \brief Verified synchronization constructs for threads *within* a
/// dapplet (paper §4.3, citing the authors' reliable thread libraries):
/// counting semaphore, reusable barrier, single-assignment variable, and a
/// bounded channel.  All are condition-variable based with predicate waits.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "dapple/util/error.hpp"
#include "dapple/util/time.hpp"

namespace dapple {

/// Counting semaphore with timed acquire.
class Semaphore {
 public:
  explicit Semaphore(std::ptrdiff_t initial = 0) : count_(initial) {
    if (initial < 0) throw Error("semaphore: negative initial count");
  }

  void acquire() {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return count_ > 0; });
    --count_;
  }

  /// Returns false on timeout.
  bool tryAcquireFor(Duration timeout) {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [this] { return count_ > 0; })) {
      return false;
    }
    --count_;
    return true;
  }

  bool tryAcquire() {
    std::scoped_lock lock(mutex_);
    if (count_ == 0) return false;
    --count_;
    return true;
  }

  void release(std::ptrdiff_t n = 1) {
    {
      std::scoped_lock lock(mutex_);
      count_ += n;
    }
    if (n == 1) {
      cv_.notify_one();
    } else {
      cv_.notify_all();
    }
  }

  std::ptrdiff_t value() const {
    std::scoped_lock lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::ptrdiff_t count_;
};

/// Reusable (generation-counted) barrier for a fixed party count.
class Barrier {
 public:
  explicit Barrier(std::size_t parties) : parties_(parties) {
    if (parties == 0) throw Error("barrier: zero parties");
  }

  /// Blocks until `parties` threads have arrived; then all are released and
  /// the barrier resets for the next round.  Returns the generation index
  /// that was completed.
  std::size_t arriveAndWait() {
    std::unique_lock lock(mutex_);
    const std::size_t generation = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return generation;
    }
    cv_.wait(lock, [this, generation] { return generation_ != generation; });
    return generation;
  }

  std::size_t parties() const { return parties_; }

 private:
  const std::size_t parties_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t arrived_ = 0;
  std::size_t generation_ = 0;
};

/// Write-once variable; readers block until it is set.
template <typename T>
class SingleAssignment {
 public:
  /// Sets the value; a second set throws Error (single assignment!).
  void set(T value) {
    {
      std::scoped_lock lock(mutex_);
      if (value_) throw Error("single-assignment variable already set");
      value_.emplace(std::move(value));
    }
    cv_.notify_all();
  }

  /// Blocks until set, then returns a copy.
  T get() const {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return value_.has_value(); });
    return *value_;
  }

  /// Timed get; throws TimeoutError.
  T get(Duration timeout) const {
    std::unique_lock lock(mutex_);
    if (!cv_.wait_for(lock, timeout,
                      [this] { return value_.has_value(); })) {
      throw TimeoutError("single-assignment get timed out");
    }
    return *value_;
  }

  bool isSet() const {
    std::scoped_lock lock(mutex_);
    return value_.has_value();
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  std::optional<T> value_;
};

/// Fixed-capacity FIFO channel between threads.
template <typename T>
class BoundedChannel {
 public:
  explicit BoundedChannel(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw Error("bounded channel: zero capacity");
  }

  /// Blocks while full; throws ShutdownError once closed.
  void put(T item) {
    std::unique_lock lock(mutex_);
    notFull_.wait(lock,
                  [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) throw ShutdownError("channel closed");
    items_.push_back(std::move(item));
    notEmpty_.notify_one();
  }

  /// Blocks while empty; throws ShutdownError once closed and drained.
  T take() {
    std::unique_lock lock(mutex_);
    notEmpty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) throw ShutdownError("channel closed");
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  std::optional<T> tryTake() {
    std::scoped_lock lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return item;
  }

  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
  }

  std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notEmpty_;
  std::condition_variable notFull_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dapple
