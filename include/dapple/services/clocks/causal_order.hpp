#pragma once
/// \file causal_order.hpp
/// \brief Causally-ordered multicast built on vector clocks.
///
/// The cheaper sibling of `TotalOrderGroup`: messages are delivered
/// respecting happened-before (a reply can never arrive before the message
/// it answers) but concurrent messages may be delivered in different
/// orders at different members.  No acks are needed — each message carries
/// a vector timestamp and receivers hold back messages until their causal
/// predecessors have been delivered (the classic Birman–Schiper–Stephenson
/// scheme, expressed with the `VectorClock` the clock service provides).
///
/// Together with TotalOrderGroup this gives the library the standard
/// ordered-delivery ladder — FIFO (every channel, §3.2) ⊂ causal ⊂ total —
/// and the causal/total pair is compared in `bench_totalorder`.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/serial/value.hpp"
#include "dapple/services/clocks/vector_clock.hpp"

namespace dapple {

/// One member's handle on a causally-ordered group.
class CausalGroup {
 public:
  struct Delivered {
    std::size_t from = 0;
    std::uint64_t seq = 0;  ///< per-publisher sequence (1-based)
    Value payload;
  };

  CausalGroup(Dapplet& dapplet, const std::string& name);
  ~CausalGroup();

  CausalGroup(const CausalGroup&) = delete;
  CausalGroup& operator=(const CausalGroup&) = delete;

  InboxRef ref() const;

  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex);

  /// Publishes `payload`; everything this member has delivered (or
  /// published) so far causally precedes it.
  void publish(const Value& payload);

  /// Blocks for the next causally-deliverable message.
  Delivered take(Duration timeout = seconds(30));

  std::optional<Delivered> tryTake();

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t heldBack = 0;  ///< arrivals that had to wait for a cause
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
