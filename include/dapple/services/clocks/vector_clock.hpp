#pragma once
/// \file vector_clock.hpp
/// \brief Vector clocks: an extension of the paper's Lamport-clock service
/// that captures causality exactly (Lamport clocks only respect it).

#include <cstdint>
#include <map>
#include <string>

#include "dapple/serial/value.hpp"

namespace dapple {

/// Classic vector clock keyed by member name.
class VectorClock {
 public:
  /// Ordering relation between two clocks.
  enum class Order { kBefore, kAfter, kEqual, kConcurrent };

  VectorClock() = default;
  explicit VectorClock(std::map<std::string, std::uint64_t> counts)
      : counts_(std::move(counts)) {}

  /// Local event at `self`: increments self's component.
  void tick(const std::string& self) { ++counts_[self]; }

  /// Receive event: component-wise max with `other`, then tick(self).
  void observe(const VectorClock& other, const std::string& self) {
    merge(other);
    tick(self);
  }

  /// Component-wise max (no tick).
  void merge(const VectorClock& other) {
    for (const auto& [name, count] : other.counts_) {
      auto& mine = counts_[name];
      if (count > mine) mine = count;
    }
  }

  std::uint64_t at(const std::string& name) const {
    const auto it = counts_.find(name);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Causal comparison of *this against `other`.
  Order compare(const VectorClock& other) const;

  /// True when *this happened-before `other`.
  bool happenedBefore(const VectorClock& other) const {
    return compare(other) == Order::kBefore;
  }

  /// True when neither clock happened-before the other.
  bool concurrentWith(const VectorClock& other) const {
    return compare(other) == Order::kConcurrent;
  }

  Value toValue() const;
  static VectorClock fromValue(const Value& value);

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    return a.compare(b) == Order::kEqual;
  }

 private:
  std::map<std::string, std::uint64_t> counts_;
};

}  // namespace dapple
