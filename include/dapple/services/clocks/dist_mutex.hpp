#pragma once
/// \file dist_mutex.hpp
/// \brief Timestamp-based distributed conflict resolution.
///
/// Paper §4.2: *"Each request for a set of resources is timestamped with
/// the time at which the request is made.  Conflicts between two or more
/// requests for a common indivisible resource are resolved in favor of the
/// request with the earlier timestamp.  Ties are broken in favor of the
/// process with the lower id."*  `DistributedMutex` implements exactly that
/// policy as Ricart–Agrawala mutual exclusion over the dapplet message
/// layer, using the built-in Lamport clocks for the timestamps.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"

namespace dapple {

/// A logical-clock timestamp with the paper's total order: earlier time
/// first, ties broken by lower process id.
struct LamportStamp {
  std::uint64_t time = 0;
  std::uint64_t id = 0;

  friend bool operator==(const LamportStamp&, const LamportStamp&) = default;
  friend auto operator<=>(const LamportStamp& a, const LamportStamp& b) {
    if (a.time != b.time) return a.time <=> b.time;
    return a.id <=> b.id;
  }
};

/// One member's handle on a named distributed mutex shared by N dapplets.
/// Construct one per member with the same `name` and the same `members`
/// vector (the refs returned by `inboxRefFor` on each member, in the same
/// order).  All members must be constructed before any acquire().
class DistributedMutex {
 public:
  /// Creates the member's mutex inbox ("ra.<name>") on `dapplet`.  Call
  /// `attach` once all members' inbox refs are known.
  DistributedMutex(Dapplet& dapplet, const std::string& name);
  ~DistributedMutex();

  DistributedMutex(const DistributedMutex&) = delete;
  DistributedMutex& operator=(const DistributedMutex&) = delete;

  /// This member's mutex inbox (to be shared with the other members).
  InboxRef ref() const;

  /// Supplies every member's mutex inbox ref; `selfIndex` locates this
  /// member in the vector.  Must be called exactly once before acquire().
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex);

  /// Requests the critical section; blocks until every other member has
  /// replied.  Throws TimeoutError after `timeout`.
  void acquire(Duration timeout = seconds(30));

  /// Leaves the critical section, releasing deferred peers.
  void release();

  /// True while this member is in the critical section.
  bool held() const;

  struct Stats {
    std::uint64_t acquisitions = 0;
    std::uint64_t requestsDeferred = 0;  ///< peer requests we postponed
    std::uint64_t messages = 0;          ///< protocol messages sent
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
