#pragma once
/// \file total_order.hpp
/// \brief Totally-ordered multicast built on the paper's clock service.
///
/// Paper §4.2 resolves conflicts by *"the request with the earlier
/// timestamp; ties are broken in favor of the process with the lower id"*,
/// citing Lamport's "Time, clocks, and the ordering of events" [ref 8].
/// This service applies that exact rule to message delivery: every member
/// of a group delivers every published message in the same global
/// (timestamp, member-id) order — Lamport's classic mutual-consistency
/// algorithm over the dapplet FIFO channels.
///
/// Mechanism: publishers stamp messages with their Lamport clock and
/// multicast to all members (including themselves); receivers hold
/// messages in a priority queue and acknowledge to everyone.  The head of
/// the queue is delivered once every member has been heard from with a
/// later timestamp — FIFO channels then guarantee nothing earlier can
/// still arrive.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/serial/value.hpp"
#include "dapple/services/clocks/dist_mutex.hpp"  // LamportStamp

namespace dapple {

/// One member's handle on a totally-ordered group.
class TotalOrderGroup {
 public:
  /// A message in its global delivery order.
  struct Delivered {
    LamportStamp stamp;      ///< the global order key
    std::size_t from = 0;    ///< publisher's member index
    Value payload;
  };

  /// Creates the member's group inbox ("tob.<name>") on `dapplet`.
  TotalOrderGroup(Dapplet& dapplet, const std::string& name);
  ~TotalOrderGroup();

  TotalOrderGroup(const TotalOrderGroup&) = delete;
  TotalOrderGroup& operator=(const TotalOrderGroup&) = delete;

  InboxRef ref() const;

  /// Wires the group; identical, identically-ordered `members` everywhere.
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex);

  /// Publishes `payload` to the group (including this member).  Returns
  /// the message's global order stamp.
  LamportStamp publish(const Value& payload);

  /// Blocks until the next message in global order is deliverable.
  /// Throws TimeoutError / ShutdownError.
  Delivered take(Duration timeout = seconds(30));

  /// Non-blocking take.
  std::optional<Delivered> tryTake();

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t delivered = 0;
    std::uint64_t acksSent = 0;
    std::uint64_t maxQueueDepth = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
