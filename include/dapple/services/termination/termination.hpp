#pragma once
/// \file termination.hpp
/// \brief Termination detection (named as a desired "servlet" service in
/// paper §2.2 "Composition of Services").
///
/// Implements Dijkstra–Scholten diffusing-computation termination detection.
/// The application is a diffusing computation rooted at one member: work
/// spreads via application messages and the computation has terminated when
/// every member is idle and no application message is in flight.
///
/// Protocol.  Each member tracks a *deficit* (messages it sent that are not
/// yet acknowledged) and an *engagement tree*: the first message that
/// activates an idle member makes the sender its parent; every other
/// received message is acknowledged immediately.  A member that is idle
/// with zero deficit acknowledges its parent and disengages.  When the root
/// is idle with zero deficit, the whole computation has terminated.
///
/// Integration contract — the application must call:
///  * `onSend(dest)`   just before sending each application message,
///  * `onReceive(src)` when it starts processing a received message,
///  * `onQuiet()`      whenever it finishes processing and has no local
///                     work left (idempotent; safe to call repeatedly).
/// Acks travel on the detector's own control channels, so application
/// channels are untouched.

#include <cstdint>
#include <memory>
#include <vector>

#include "dapple/core/dapplet.hpp"

namespace dapple {

class TerminationDetector {
 public:
  /// Creates the detector's control inbox ("td.ctl") on `dapplet`.
  explicit TerminationDetector(Dapplet& dapplet);
  ~TerminationDetector();

  TerminationDetector(const TerminationDetector&) = delete;
  TerminationDetector& operator=(const TerminationDetector&) = delete;

  InboxRef ref() const;

  /// Wires the detector group; `rootIndex` is the computation's source.
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex,
              std::size_t rootIndex);

  /// The root calls this once to mark itself active before seeding work.
  void start();

  // --- application hooks ---------------------------------------------------

  /// Must run before each application message send to member `dest`.
  void onSend(std::size_t dest);

  /// Must run when beginning to process an application message received
  /// from member `src`.
  void onReceive(std::size_t src);

  /// Declares this member locally idle (no queued work).  The detector
  /// disengages once the member's deficit reaches zero.
  void onQuiet();

  /// Root only: blocks until the diffusing computation has terminated.
  /// Throws TimeoutError.
  void awaitTermination(Duration timeout = seconds(30));

  /// True once termination has been detected (root only).
  bool terminated() const;

  struct Stats {
    std::uint64_t acksSent = 0;
    std::uint64_t engagements = 0;  ///< times this member became active
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
