#pragma once
/// \file recovery.hpp
/// \brief Crash-recovery persistence: DurableState = checkpoint + WAL
/// (DESIGN.md §12).
///
/// Upgrades the stack's failure model from crash-stop (PR 1: a killed
/// dapplet is evicted and its state is gone) to crash-recovery: a dapplet
/// that owns a `DurableState` journals every `StateStore` mutation to an
/// fsync'd write-ahead log, periodically compacts the log into an atomic
/// checkpoint image, and after a kill the restarted process reloads the
/// checkpoint, replays the log tail, and carries on — `SessionAgent`'s
/// REJOIN handshake then re-admits it to its healed sessions.
///
/// Directory layout (one directory per dapplet):
///     <dir>/state.ckpt   checkpoint image: map{at, data} in wire text
///     <dir>/state.wal    mutation journal (see wal.hpp)
///     <dir>/incarnation  restart counter: "u<n>" — bumped on every open
///
/// Coordinated checkpoints: `bindCheckpoint` hooks a `CheckpointService`
/// (Lamport-clock global snapshot, services/snapshot) so that when the
/// coordinator cuts the computation at logical time T, every member
/// compacts its WAL into a checkpoint stamped T — the set of per-member
/// `state.ckpt` files then forms a consistent recovery line.

#include <cstdint>
#include <memory>
#include <string>

#include "dapple/core/state.hpp"
#include "dapple/services/recovery/wal.hpp"

namespace dapple {
class Dapplet;
class CheckpointService;
}  // namespace dapple

namespace dapple::recovery {

/// A StateStore made crash-durable by a WAL + checkpoint pair.
/// All members are thread-safe.
class DurableState {
 public:
  struct Options {
    /// fsync every WAL append (see WriteAheadLog::Options).
    bool fsyncEachAppend;
    /// Auto-compact when the WAL grows past this many bytes (0 = only
    /// explicit/coordinated checkpoints compact).  Compaction runs on a
    /// spawned worker so the mutating thread never pays the checkpoint
    /// write inline.
    std::uint64_t compactAtBytes;
    Options() : fsyncEachAppend(true), compactAtBytes(0) {}
  };

  /// Opens (or creates) the durable directory, bumps the incarnation
  /// counter, loads the checkpoint image, replays the WAL tail, and
  /// installs the journaling hook on the wrapped store.
  DurableState(Dapplet& dapplet, std::string dir, Options opts = Options());
  ~DurableState();
  DurableState(const DurableState&) = delete;
  DurableState& operator=(const DurableState&) = delete;

  /// The journaled store.  Pass `&store()` as `SessionAgent::Config::store`
  /// (and `TokenConfig::journal`) to make sessions and token accounting
  /// recoverable.
  StateStore& store();

  struct RecoveryInfo {
    /// True when a checkpoint image or WAL records existed at open —
    /// i.e. this process is a restart, not a first boot.
    bool recovered = false;
    std::uint64_t incarnation = 1;     ///< 1 on first boot, +1 per restart
    std::uint64_t replayedRecords = 0; ///< WAL records applied on open
    std::uint64_t checkpointAt = 0;    ///< Lamport stamp of the loaded image
    bool tornTail = false;             ///< WAL ended in a torn frame
  };

  const RecoveryInfo& info() const { return info_; }
  std::uint64_t incarnation() const { return info_.incarnation; }

  /// Compacts now: atomically writes the full state image and truncates
  /// the WAL.  The image and the truncation are taken under the store
  /// lock, so no concurrent mutation can fall between them.
  void checkpoint();

  /// Coordinated variant: stamps the image with the global cut's logical
  /// time `at` (see bindCheckpoint).
  void checkpointAt(std::uint64_t at);

  struct Stats {
    std::uint64_t walAppends = 0;
    std::uint64_t walBytes = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t checkpointBytes = 0;  ///< bytes in the last image
    std::uint64_t replayedRecords = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
  RecoveryInfo info_;
};

/// Wires a CheckpointService to a DurableState: every coordinated cut at
/// logical time T also compacts this member's WAL into a checkpoint
/// stamped T.  Call after constructing both; the binding lives until the
/// service is destroyed.
void bindCheckpoint(CheckpointService& service, DurableState& durable);

}  // namespace dapple::recovery
