#pragma once
/// \file wal.hpp
/// \brief Write-ahead log for durable dapplet state (DESIGN.md §12).
///
/// The recovery subsystem's journal: every StateStore mutation is appended
/// as one checksummed, length-framed record and fsync'd before the caller
/// proceeds, so the sequence of mutations survives a crash at any
/// instruction.  Recovery = load the last checkpoint image, then replay
/// the log tail in append order.  Compaction = write a fresh checkpoint
/// (atomic rename) and truncate the log.
///
/// Two on-disk frame formats, selected per log by `Options::codec` and
/// auto-detected per frame on replay (a log may even mix them, e.g. after a
/// process upgrade flips the codec mid-file):
///
///   text (debug/compat, greppable like every other artifact):
///     u<len> u<fnv64(payload)> <payload bytes>\n
///   binary (the fast path — frames start with the 0xDB preamble byte,
///   which no text frame can):
///     0xDB <varint len> <8-byte LE fnv64(payload)> <payload bytes>
///
/// and the payload is one record encoded with WireWriter under the same
/// codec (text shown):
///
///     u<kind> u<seq> u<lamport> s<keylen>:<key> <value|n>
///
/// A crash mid-append leaves a torn final frame: the length prefix points
/// past EOF, the checksum mismatches, or the frame header itself is cut
/// short.  `replayAll` stops at the first bad frame, reports it, and
/// truncates the file back to the last good frame so subsequent appends
/// extend a clean log — torn tails are expected, anything *before* the
/// tail failing its checksum indicates real corruption and is also
/// truncated (with the record loss surfaced to the caller).

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "dapple/serial/value.hpp"

namespace dapple::recovery {

/// One journaled mutation.
struct WalRecord {
  enum Kind : std::uint8_t { kPut = 0, kErase = 1 };

  Kind kind = kPut;
  std::uint64_t seq = 0;      ///< monotone per-log sequence number
  std::uint64_t lamport = 0;  ///< writer's Lamport clock at the mutation
  std::string key;
  Value value;  ///< null for kErase
};

/// Append-only fsync'd mutation log.  All members are thread-safe.
class WriteAheadLog {
 public:
  struct Options {
    /// fsync after every append (durability) — benches can turn this off
    /// to measure the fsync cost in isolation.  (Initialized in a ctor,
    /// not a default member initializer, so the enclosing class can use
    /// `Options()` as a default argument.)
    bool fsyncEachAppend;
    /// Frame + record encoding for *appends*.  Replay auto-detects each
    /// frame, so switching the codec on an existing (e.g. pre-upgrade
    /// text) journal is safe.
    WireCodec codec;
    Options(bool fsync = true, WireCodec walCodec = WireCodec::kText)
        : fsyncEachAppend(fsync), codec(walCodec) {}
  };

  explicit WriteAheadLog(std::string path, Options opts = Options());
  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  struct ReplayResult {
    std::vector<WalRecord> records;
    /// True when a torn/corrupt frame was found (and truncated away).
    bool tornTail = false;
    /// Bytes discarded by the truncation.
    std::uint64_t truncatedBytes = 0;
  };

  /// Reads every intact record (seeding the next sequence number) and
  /// truncates any torn tail.  Call once, before the first append.
  ReplayResult replayAll();

  /// Appends one record (durably when Options::fsyncEachAppend) and
  /// returns its sequence number.
  std::uint64_t append(WalRecord::Kind kind, const std::string& key,
                       const Value* value, std::uint64_t lamport);

  /// Truncates the log to empty (after its contents were folded into a
  /// checkpoint image) and fsyncs.
  void reset();

  std::uint64_t sizeBytes() const;
  std::uint64_t appendCount() const;
  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  const Options opts_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint64_t nextSeq_ = 1;
  std::uint64_t bytes_ = 0;
  std::uint64_t appends_ = 0;
  /// Append-path scratch buffers (guarded by mutex_): the record payload
  /// and the framed bytes are built into these every append, so the
  /// steady-state append loop allocates nothing.
  std::string payloadScratch_;
  std::string frameScratch_;
};

}  // namespace dapple::recovery
