#pragma once
/// \file token_manager.hpp
/// \brief Tokens and capabilities (paper §4.1), with hierarchical credit
/// caching under leases.
///
/// *"We treat each resource as a token.  Tokens are objects that are
/// neither created nor destroyed: a fixed number of them are communicated
/// and shared among the processes of a system.  Tokens have colors ...  A
/// network of token-manager objects manages tokens shared by all the
/// dapplets in a session.  A token is either held by a dapplet or by the
/// network of token managers."*
///
/// Design.  Every member dapplet runs a `TokenManager`.  Each colour has a
/// *home* manager (chosen by hashing the colour over the member list) that
/// owns the colour's free pool and serializes grants.  Requests are
/// timestamped with the member's Lamport clock and served earliest-first
/// (ties to the lower member index) — the conflict-resolution policy of
/// §4.2.  A member blocked past `probeDelay` launches Chandy–Misra–Haas
/// edge-chasing probes through the homes of the colours it awaits; a probe
/// that returns to its origin proves a hold-and-wait cycle, and the origin's
/// `request()` throws DeadlockError after returning its partial grants —
/// *"If the token managers detect a deadlock an exception is raised."*
///
/// Credit caching (DESIGN.md §14).  A single home per colour makes every
/// grant a remote round trip, which caps a hot colour's throughput at the
/// network RTT.  With `TokenConfig::creditBatch > 0` a member *borrows* a
/// batch of credits alongside each remote grant and sub-lets them locally:
/// later `request()`s of that colour are satisfied from the cached credit
/// with no network hop at all.  Consistency rides Gray & Cheriton leases —
/// every loan is duration-bounded (`leaseDuration`), renewed from the
/// reactor's `every()` wheel, and reclaimed by the home on expiry or on
/// `memberDown()` so a crashed borrower's credits return to the pool.  When
/// a home has blocked waiters it *recalls* outstanding loans; borrowers
/// return unused credit immediately and route subsequent releases to the
/// home until the recall window passes.  A restarted borrower re-leases its
/// journaled holdings under a fresh incarnation number; the home retires the
/// old loan first, so a recovered process can never double-spend and a
/// zombie's renewals are refused.
///
/// The conservation invariant (fixed token count per colour) is checkable
/// at any quiescent point via `totalTokens()` and is exercised by the
/// property tests and the scenario fuzzer; `cachedCredits()` and
/// `lentCredits()` expose both ends of every loan for the oracle.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// A colour is a resource type; a bag counts tokens per colour.
using TokenColor = std::string;
using TokenBag = std::map<TokenColor, std::int64_t>;

/// One item of a request: `count` tokens of `color`.  `kAllTokens` requests
/// every token of the colour (paper: "or the request can ask for all tokens
/// of a given color").
struct TokenRequest {
  TokenColor color;
  std::int64_t count = 1;
  static constexpr std::int64_t kAllTokens = -1;
};
using TokenList = std::vector<TokenRequest>;

class StateStore;
class PeerMonitor;

/// Tuning for the token-manager network.
struct TokenConfig {
  /// How long a request may remain unsatisfied before deadlock probes are
  /// launched.
  Duration probeDelay = milliseconds(100);
  /// Re-probe period while still blocked.
  Duration probeInterval = milliseconds(100);
  /// Optional crash-recovery journal (DESIGN.md §12), typically a
  /// `recovery::DurableState`'s store.  When set, the manager persists its
  /// home pools, held bag, and both sides of every credit loan under
  /// reserved "dapple.tok/*" keys at every mutation, and attach() restores
  /// them — ignoring `initial` seeds for restored colours — so a restarted
  /// member neither mints nor loses tokens.  Must outlive the manager.
  StateStore* journal = nullptr;

  // --- credit caching / leases (DESIGN.md §14) ----------------------------

  /// Extra credits borrowed alongside each remote grant and cached for
  /// local sub-letting.  0 disables caching entirely (the legacy
  /// round-trip-per-grant protocol; wire- and journal-compatible).
  std::int64_t creditBatch = 0;
  /// Loan lifetime.  The home reclaims a loan this long after the last
  /// grant/renewal; the borrower renews from the maintenance timer well
  /// before expiry, so an unbroken member keeps its credit indefinitely.
  Duration leaseDuration = milliseconds(2000);
  /// Maintenance-timer period (renewals, member-side expiry, home-side
  /// reclaim sweeps, recalls).  Zero (the default) derives
  /// `leaseDuration / 4`.
  Duration maintenanceInterval = Duration::zero();
  /// Monotonic per-process incarnation (recovery::DurableState counts
  /// boots).  Stamped on lease traffic so a home can tell a recovered
  /// borrower (higher incarnation: retire the old loan, lease afresh) from
  /// a zombie (lower: refuse renewal).
  std::uint64_t incarnation = 1;
  /// Optional failure detector: when set, attach() watches every peer
  /// manager and a suspect verdict triggers `memberDown()` for that slot,
  /// returning the crashed borrower's credits without waiting out the
  /// lease.  Must outlive the manager.
  PeerMonitor* monitor = nullptr;

  /// Copy with nonsense knobs clamped to safe values (mirrors
  /// `ReliableConfig::normalized`): non-positive probe/lease/maintenance
  /// durations and negative credit batches would wedge the renewal wheel
  /// or spin it hot.  Each adjustment appends one human-readable note to
  /// `notes`; the TokenManager constructor normalizes its config and emits
  /// every note as a `tokens/config.clamp` trace event.
  TokenConfig normalized(std::vector<std::string>* notes = nullptr) const;
};

/// One member's token manager.  Construct one per member; call `attach`
/// with the full, identically-ordered list of manager inbox refs.  The
/// member at index i seeds the free pools of the colours homed at i via
/// `initial` (colour -> count); colours homed elsewhere must be seeded by
/// their own home member.
class TokenManager {
 public:
  TokenManager(Dapplet& dapplet, TokenConfig config = TokenConfig{});
  ~TokenManager();

  TokenManager(const TokenManager&) = delete;
  TokenManager& operator=(const TokenManager&) = delete;

  /// This manager's inbox (share with the other members).
  InboxRef ref() const;

  /// Wires the manager network.  `initial` seeds colours whose home is
  /// `selfIndex` (seeding a colour homed elsewhere throws TokenError).
  /// With a journal, restored member-side loans are re-leased from their
  /// homes under this process's incarnation (asynchronously; quiesce the
  /// network before asserting on `cachedCredits()`).
  void attach(const std::vector<InboxRef>& managers, std::size_t selfIndex,
              const TokenBag& initial);

  /// Crash recovery: re-points the peer slot `index` at a restarted
  /// member's manager inbox (the replacement process listens at a new
  /// address).  Call on every survivor after the restarted member's
  /// manager ref is re-advertised.  Throws TokenError before attach().
  void rewire(std::size_t index, const InboxRef& ref);

  /// MEMBER_DOWN: reclaims every loan lent to member `index` by the
  /// colours homed here, returning the credits to their pools.  Exactly
  /// once per loan — a reclaim that already happened (lease expiry, an
  /// earlier call) is a no-op, so a failure detector and the expiry sweep
  /// may race freely.  Wired automatically when `TokenConfig::monitor` is
  /// set; also callable directly by session machinery.
  void memberDown(std::size_t index);

  /// Home member index of a colour (hash over the member count).
  std::size_t homeOf(const TokenColor& color) const;

  /// Same mapping, computable before attach() (e.g. to build the initial
  /// seed bag for a known member count).
  static std::size_t homeOfColor(const TokenColor& color,
                                 std::size_t memberCount);

  // --- the paper's API ---------------------------------------------------

  /// Suspends until every requested token is granted, then transfers them
  /// to this dapplet (`holdsTokens`).  With cached credit covering the
  /// whole request this is a local operation (no messages).  Throws
  /// DeadlockError when the managers detect a hold-and-wait cycle
  /// involving this request, and TimeoutError after `timeout`; in both
  /// cases partial grants are returned to their homes and holdings are
  /// unchanged.
  void request(const TokenList& wants, Duration timeout = seconds(30));

  /// Returns the listed tokens to the manager network.  Tokens granted
  /// from cached credit return to the cache (again no messages, unless a
  /// recall is in force).  Throws TokenError when the dapplet does not
  /// hold them.
  void release(const TokenList& gives);

  /// Queries every home and returns the total number of tokens of each
  /// colour in the system (free + held + on loan).
  TokenBag totalTokens(Duration timeout = seconds(5));

  /// Tokens currently held by this dapplet (the paper's `holdsTokens`).
  TokenBag holdsTokens() const;

  // --- loan introspection (oracles, tests) -------------------------------

  /// Member side: free cached credits per colour (borrowed, not yet
  /// sub-let to the application).
  TokenBag cachedCredits() const;

  /// Home side: credits currently on loan per colour homed here (summed
  /// over borrowers).
  TokenBag lentCredits() const;

  /// Returns every free cached credit to its home (the loans stay live
  /// for the application-held portion).  Makes a quiescent system's
  /// accounting exact for conservation oracles.
  void returnCachedCredits();

  /// Home-side ledger audit (oracles): for every colour homed here,
  /// `free + Σheld + Σlent` must equal the minted total — the paper's
  /// "neither created nor destroyed", with loans on the books.  Returns
  /// one description per violated colour; empty means the ledger balances.
  std::vector<std::string> auditHomeLedger() const;

  struct Stats {
    std::uint64_t requestsGranted = 0;
    std::uint64_t requestsDeadlocked = 0;
    std::uint64_t requestsTimedOut = 0;
    std::uint64_t probesSent = 0;
    std::uint64_t probesForwarded = 0;
    std::uint64_t grantsIssued = 0;   ///< as a home
    std::uint64_t releasesServed = 0; ///< as a home
    // --- credit caching ---------------------------------------------------
    std::uint64_t cacheHits = 0;       ///< request() served from cache
    std::uint64_t cacheMisses = 0;     ///< caching on, but went remote
    std::uint64_t leasesGranted = 0;   ///< as a home: loans opened/extended
    std::uint64_t leaseRenewals = 0;   ///< as a borrower: renewals acked
    std::uint64_t leaseExpiries = 0;   ///< as a home: loans reclaimed by expiry
    std::uint64_t leasesReclaimed = 0; ///< as a home: every reclaim (expiry,
                                       ///< memberDown, re-lease retirement)
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
