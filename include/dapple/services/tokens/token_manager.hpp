#pragma once
/// \file token_manager.hpp
/// \brief Tokens and capabilities (paper §4.1).
///
/// *"We treat each resource as a token.  Tokens are objects that are
/// neither created nor destroyed: a fixed number of them are communicated
/// and shared among the processes of a system.  Tokens have colors ...  A
/// network of token-manager objects manages tokens shared by all the
/// dapplets in a session.  A token is either held by a dapplet or by the
/// network of token managers."*
///
/// Design.  Every member dapplet runs a `TokenManager`.  Each colour has a
/// *home* manager (chosen by hashing the colour over the member list) that
/// owns the colour's free pool and serializes grants.  Requests are
/// timestamped with the member's Lamport clock and served earliest-first
/// (ties to the lower member index) — the conflict-resolution policy of
/// §4.2.  A member blocked past `probeDelay` launches Chandy–Misra–Haas
/// edge-chasing probes through the homes of the colours it awaits; a probe
/// that returns to its origin proves a hold-and-wait cycle, and the origin's
/// `request()` throws DeadlockError after returning its partial grants —
/// *"If the token managers detect a deadlock an exception is raised."*
///
/// The conservation invariant (fixed token count per colour) is checkable
/// at any quiescent point via `totalTokens()` and is exercised by the
/// property tests and by the snapshot service.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// A colour is a resource type; a bag counts tokens per colour.
using TokenColor = std::string;
using TokenBag = std::map<TokenColor, std::int64_t>;

/// One item of a request: `count` tokens of `color`.  `kAllTokens` requests
/// every token of the colour (paper: "or the request can ask for all tokens
/// of a given color").
struct TokenRequest {
  TokenColor color;
  std::int64_t count = 1;
  static constexpr std::int64_t kAllTokens = -1;
};
using TokenList = std::vector<TokenRequest>;

class StateStore;

/// Tuning for the token-manager network.
struct TokenConfig {
  /// How long a request may remain unsatisfied before deadlock probes are
  /// launched.
  Duration probeDelay = milliseconds(100);
  /// Re-probe period while still blocked.
  Duration probeInterval = milliseconds(100);
  /// Optional crash-recovery journal (DESIGN.md §12), typically a
  /// `recovery::DurableState`'s store.  When set, the manager persists its
  /// home pools and held bag under reserved "dapple.tok/*" keys at every
  /// mutation, and attach() restores them — ignoring `initial` seeds for
  /// restored colours — so a restarted member neither mints nor loses
  /// tokens.  Must outlive the manager.
  StateStore* journal = nullptr;
};

/// One member's token manager.  Construct one per member; call `attach`
/// with the full, identically-ordered list of manager inbox refs.  The
/// member at index i seeds the free pools of the colours homed at i via
/// `initial` (colour -> count); colours homed elsewhere must be seeded by
/// their own home member.
class TokenManager {
 public:
  TokenManager(Dapplet& dapplet, TokenConfig config = TokenConfig{});
  ~TokenManager();

  TokenManager(const TokenManager&) = delete;
  TokenManager& operator=(const TokenManager&) = delete;

  /// This manager's inbox (share with the other members).
  InboxRef ref() const;

  /// Wires the manager network.  `initial` seeds colours whose home is
  /// `selfIndex` (seeding a colour homed elsewhere throws TokenError).
  void attach(const std::vector<InboxRef>& managers, std::size_t selfIndex,
              const TokenBag& initial);

  /// Crash recovery: re-points the peer slot `index` at a restarted
  /// member's manager inbox (the replacement process listens at a new
  /// address).  Call on every survivor after the restarted member's
  /// manager ref is re-advertised.  Throws TokenError before attach().
  void rewire(std::size_t index, const InboxRef& ref);

  /// Home member index of a colour (hash over the member count).
  std::size_t homeOf(const TokenColor& color) const;

  /// Same mapping, computable before attach() (e.g. to build the initial
  /// seed bag for a known member count).
  static std::size_t homeOfColor(const TokenColor& color,
                                 std::size_t memberCount);

  // --- the paper's API ---------------------------------------------------

  /// Suspends until every requested token is granted, then transfers them
  /// to this dapplet (`holdsTokens`).  Throws DeadlockError when the
  /// managers detect a hold-and-wait cycle involving this request, and
  /// TimeoutError after `timeout`; in both cases partial grants are
  /// returned to their homes and holdings are unchanged.
  void request(const TokenList& wants, Duration timeout = seconds(30));

  /// Returns the listed tokens to the manager network.  Throws TokenError
  /// when the dapplet does not hold them.
  void release(const TokenList& gives);

  /// Queries every home and returns the total number of tokens of each
  /// colour in the system (free + held).
  TokenBag totalTokens(Duration timeout = seconds(5));

  /// Tokens currently held by this dapplet (the paper's `holdsTokens`).
  TokenBag holdsTokens() const;

  struct Stats {
    std::uint64_t requestsGranted = 0;
    std::uint64_t requestsDeadlocked = 0;
    std::uint64_t requestsTimedOut = 0;
    std::uint64_t probesSent = 0;
    std::uint64_t probesForwarded = 0;
    std::uint64_t grantsIssued = 0;   ///< as a home
    std::uint64_t releasesServed = 0; ///< as a home
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
