#pragma once
/// \file snapshot.hpp
/// \brief Global checkpointing services (paper §4.2 "Clocks").
///
/// Two algorithms are provided:
///
///  1. `CheckpointService` — the paper's own method: *"a global state can
///     be easily checkpointed: all processes checkpoint their local states
///     at some predetermined time T, and the states of the channels are the
///     sequences of messages sent on the channels before T and received
///     after T."*  The built-in Lamport clocks satisfy the global snapshot
///     criterion, so a coordinator picks a logical time T beyond every
///     member's clock, members record local state when their clock passes T
///     (forced by a local jump event), and the delivery tap records each
///     arriving message with send-timestamp < T as channel state.
///
///  2. `MarkerRegion` — a Chandy–Lamport marker snapshot [Chandy & Lamport
///     1985, the paper's reference 3] over an explicitly registered set of
///     channels, used as an independent cross-check of (1) and as the
///     subject of an ablation benchmark.
///
/// Both produce a `GlobalSnapshot` (per-member local states plus per-channel
/// in-flight messages) on the coordinator.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/serial/value.hpp"

namespace dapple {

/// A consistent global state assembled by the coordinator.
struct GlobalSnapshot {
  std::uint64_t at = 0;  ///< logical time T (clock-based) or snapshot serial
  /// member index -> recorded local state.
  std::map<std::size_t, Value> states;
  /// member index (receiver) -> messages found in its incoming channels.
  std::map<std::size_t, std::vector<Value>> channels;

  /// Wire serialization, so checkpoints can be persisted and restored —
  /// the recovery use the paper motivates checkpointing with (§4.2).
  Value toValue() const;
  static GlobalSnapshot fromValue(const Value& value);

  /// File persistence (write-then-rename, like StateStore).
  void saveTo(const std::string& path) const;
  static GlobalSnapshot loadFrom(const std::string& path);
};

/// The paper's clock-based checkpoint.  One instance per member; the
/// coordinator (any member) calls `take()`.
///
/// The service installs the dapplet's delivery tap.  `stateFn` must return
/// the member's current local state and is invoked from service threads; it
/// must be internally synchronized with the application's own updates.
class CheckpointService {
 public:
  using StateFn = std::function<Value()>;

  CheckpointService(Dapplet& dapplet, StateFn stateFn);
  ~CheckpointService();

  CheckpointService(const CheckpointService&) = delete;
  CheckpointService& operator=(const CheckpointService&) = delete;

  /// This member's checkpoint-control inbox.
  InboxRef ref() const;

  /// Wires the member into the checkpoint group.
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex);

  /// Coordinator entry point.  Picks T = (max clock over members) + margin,
  /// broadcasts it, waits `settle` for in-flight pre-T messages to drain
  /// into the members' channel recordings, then gathers the reports.
  GlobalSnapshot take(Duration settle = milliseconds(200),
                      Duration timeout = seconds(10));

  /// Local persistence hook for crash recovery (DESIGN.md §12): invoked on
  /// this member right after it records its local state for a cut at
  /// logical time `at` — `recovery::bindCheckpoint` uses it to compact the
  /// member's WAL into a durable checkpoint stamped `at`, so a coordinated
  /// take() leaves a consistent recovery line on disk.  The hook runs on
  /// the service's dispatch thread, outside its internal lock.
  void onLocalCheckpoint(std::function<void(std::uint64_t at)> hook);

  struct Stats {
    std::uint64_t checkpointsTaken = 0;
    std::uint64_t channelMessagesRecorded = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Chandy–Lamport marker snapshot over an explicit channel topology.
///
/// Each member registers (a) the outboxes it sends application messages
/// through — markers are emitted on exactly these — and (b) the number of
/// incoming channels it expects markers on.  The snapshot completes at a
/// member when markers have arrived on all incoming channels.
class MarkerRegion {
 public:
  using StateFn = std::function<Value()>;

  MarkerRegion(Dapplet& dapplet, StateFn stateFn);
  ~MarkerRegion();

  MarkerRegion(const MarkerRegion&) = delete;
  MarkerRegion& operator=(const MarkerRegion&) = delete;

  /// This member's snapshot-control inbox.
  InboxRef ref() const;

  /// Wires the member: peer control refs, this member's index, the
  /// application outboxes markers must follow, and the number of incoming
  /// application channels.
  void attach(const std::vector<InboxRef>& members, std::size_t selfIndex,
              std::vector<Outbox*> appOutboxes, std::size_t inChannels);

  /// Coordinator entry point: runs one marker snapshot and gathers reports.
  GlobalSnapshot take(Duration timeout = seconds(10));

  struct Stats {
    std::uint64_t markersSent = 0;
    std::uint64_t markersReceived = 0;
    std::uint64_t channelMessagesRecorded = 0;
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Marker message used by MarkerRegion; public so taps and tests can
/// recognize it.
class MarkerMsg : public MessageBase<MarkerMsg> {
 public:
  static constexpr std::string_view kTypeName = "dapple.snapshot.Marker";
  std::uint64_t snapshotId = 0;
  std::uint64_t coordinator = 0;  ///< member index reports go to

  void encodeFields(WireWriter& w) const override {
    w.writeU64(snapshotId);
    w.writeU64(coordinator);
  }
  void decodeFields(WireReader& r) override {
    snapshotId = r.readU64();
    coordinator = r.readU64();
  }
};

}  // namespace dapple
