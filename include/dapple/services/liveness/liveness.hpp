#pragma once
/// \file liveness.hpp
/// \brief Heartbeat-based crash-stop failure detection.
///
/// The paper's §2.2 requires dapplets to cope with "faults in the network
/// such as undelivered messages"; a process that dies mid-session is the
/// limiting case — permanent silence.  This service turns that silence into
/// an explicit, timely event: each `LivenessMonitor` sends small heartbeat
/// messages to every watched peer and suspects a peer that has been silent
/// for longer than the configured suspect timeout.  The session layer
/// consumes suspicion through the core `PeerMonitor` interface to evict dead
/// members (see session self-healing in DESIGN.md "Failure model").
///
/// Detector class: eventually-perfect in the crash-stop model with fair-lossy
/// links — a crashed peer is eventually suspected (completeness) and a
/// suspected-but-alive peer is un-suspected as soon as one of its heartbeats
/// gets through (accuracy is only eventual: timing faults can cause false
/// suspicion, which callers must treat as eviction, i.e. crash-stop).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/dapplet.hpp"
#include "dapple/core/peer_monitor.hpp"

namespace dapple {

/// Detector tuning.  Zero durations inherit the owning dapplet's
/// `DappletConfig::liveness.heartbeatInterval` / `liveness.suspectTimeout`.
struct LivenessConfig {
  Duration heartbeatInterval = Duration::zero();
  Duration suspectTimeout = Duration::zero();
};

/// Heartbeat failure detector for one dapplet.  Thread-safe.  Create one per
/// dapplet and share it among sessions: watches are keyed by caller-chosen
/// strings, so independent components can watch the same peer.
class LivenessMonitor final : public PeerMonitor {
 public:
  /// Creates the detector inbox ("live.ctl") and starts the beat loop — a
  /// spawned thread in legacy mode, or a timer-wheel beat plus an
  /// `Inbox::onMessage` handler (zero threads) when the dapplet runs on a
  /// reactor (`DappletConfig::runtime.reactor`).
  explicit LivenessMonitor(Dapplet& dapplet, LivenessConfig config = {});
  ~LivenessMonitor() override;

  LivenessMonitor(const LivenessMonitor&) = delete;
  LivenessMonitor& operator=(const LivenessMonitor&) = delete;

  // --- PeerMonitor ---------------------------------------------------------

  InboxRef ref() const override;
  void watch(const std::string& key, const InboxRef& peer) override;
  void unwatch(const std::string& key) override;
  void onSuspect(PeerFn fn) override;
  void onAlive(PeerFn fn) override;

  // --- introspection -------------------------------------------------------

  /// True while `key` is watched and currently suspected.
  bool suspected(const std::string& key) const;

  /// Keys of all watched peers.
  std::vector<std::string> watchedKeys() const;

  /// Effective (post-inheritance) tuning.
  Duration heartbeatInterval() const;
  Duration suspectTimeout() const;

  struct Stats {
    std::uint64_t heartbeatsSent = 0;
    std::uint64_t heartbeatsReceived = 0;
    std::uint64_t suspectEvents = 0;   ///< transitions into suspicion
    std::uint64_t recoveryEvents = 0;  ///< suspected peers proved alive
  };
  Stats stats() const;

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace dapple
