#pragma once
/// \file directory_service.hpp
/// \brief A network directory service, sharded by key range and cacheable
/// under leases.
///
/// Paper §3.1 hands the initiator "a directory of addresses ... of
/// component dapplets" and then notes: *"We do not address how this
/// directory is maintained in this paper."*  This module addresses it: a
/// `DirectoryServer` is a dapplet-hosted name service (built on the RPC
/// layer, i.e. on inboxes and messages) where dapplets register their
/// session-control inboxes under names; a `DirectoryClient` registers,
/// resolves, lists, and unregisters entries, and can fetch a whole
/// `Directory` snapshot for an initiator.
///
/// Entries carry a lease: a registration expires unless refreshed, so
/// crashed dapplets eventually vanish from the directory — the same
/// pragmatic design every production registry (DNS SRV, ZooKeeper
/// ephemerals, Consul) converged on.
///
/// Scaling (DESIGN.md §14.4).  One server is one funnel.  With
/// `DirectoryConfig::shards > 1` the name space splits by key range (first
/// byte of the name), each shard serving its range from its own inbox with
/// independent locking; shard 0 keeps the historical inbox name, so the
/// single-shard configuration is byte-compatible with the unsharded
/// service.  On the client side a sharded `DirectoryClient` caches
/// `lookup()` results under the registration's remaining lease: repeat
/// lookups are local until the lease expires — invalidation is purely
/// expiry-driven (no broadcast), exactly Gray & Cheriton's design and the
/// same tradeoff DNS makes with TTLs.  A stale cache entry can therefore
/// outlive an unregister by at most one lease; re-registrations at the
/// same name become visible as caches age out.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dapple/core/directory.hpp"
#include "dapple/core/rpc.hpp"

namespace dapple {

namespace obs {
class Counter;
}  // namespace obs

/// Tuning for the directory service and its clients.
struct DirectoryConfig {
  /// Number of key-range shards.  1 (the default, values < 1 are treated
  /// as 1) reproduces the classic single-server layout byte-for-byte.
  std::size_t shards = 1;
  /// Client side: cache resolved refs until their registration lease
  /// expires.  Only honoured by the shard-aware `DirectoryClient`
  /// constructor; the legacy single-ref constructor never caches.
  bool cacheLookups = true;
};

/// Hosts the name service on a dapplet.  Methods (via RPC, per shard):
///   register {name, ref, ttlMs} -> lease id
///   refresh  {name, lease}      -> bool
///   lookup   {name}             -> ref           (Error if absent/expired)
///   resolve  {name}             -> {ref, ttlMs}  (lease-cacheable lookup)
///   unregister {name, lease}    -> bool
///   list     {prefix}           -> map name -> ref
class DirectoryServer {
 public:
  /// Default time-to-live granted to registrations that do not choose one.
  static constexpr std::int64_t kDefaultTtlMs = 30'000;

  explicit DirectoryServer(Dapplet& dapplet);
  DirectoryServer(Dapplet& dapplet, DirectoryConfig config);
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  /// The address clients connect to (shard 0 — the only shard in the
  /// default configuration).
  InboxRef ref() const;

  /// Every shard's address, in shard order.  Hand the full vector to a
  /// shard-aware `DirectoryClient`.
  std::vector<InboxRef> refs() const;

  /// Number of key-range shards this server runs.
  std::size_t shardCount() const;

  /// Which shard owns `name`: the name's first byte scaled over the shard
  /// count, so each shard serves one contiguous byte range and any
  /// nonempty prefix maps to a single shard.
  static std::size_t shardOf(const std::string& name, std::size_t shards);

  /// Number of live (unexpired) entries across all shards.
  std::size_t size() const;

  /// Drops expired entries now (also happens lazily on every access).
  void expireNow();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Client-side stub.  The single-ref constructor talks to one unsharded
/// server and never caches (the pre-sharding behaviour, byte-compatible on
/// the wire).  The vector constructor routes each name to its shard and —
/// with `DirectoryConfig::cacheLookups` — serves repeat lookups from a
/// local lease cache, counting `directory.cache_hits` / `misses` in the
/// dapplet's metrics registry.
class DirectoryClient {
 public:
  DirectoryClient(Dapplet& dapplet, InboxRef server);
  DirectoryClient(Dapplet& dapplet, std::vector<InboxRef> shards,
                  DirectoryConfig config = DirectoryConfig{});
  ~DirectoryClient();

  DirectoryClient(const DirectoryClient&) = delete;
  DirectoryClient& operator=(const DirectoryClient&) = delete;

  /// Registers `name -> ref` with a lease; returns the lease id used for
  /// refresh/unregister.  Re-registering an existing name replaces it.
  std::uint64_t registerName(const std::string& name, const InboxRef& ref,
                             Duration ttl = milliseconds(
                                 DirectoryServer::kDefaultTtlMs));

  /// Extends the lease; false when the lease is unknown (expired/replaced).
  bool refresh(const std::string& name, std::uint64_t lease);

  /// Resolves a name; throws AddressError when absent or expired.  A
  /// caching client may return a locally cached ref whose registration
  /// lease has not yet expired — see the header comment for staleness.
  InboxRef lookup(const std::string& name);

  /// Removes the entry if the lease matches.  Also drops this client's
  /// cached ref for `name` (other clients' caches age out by lease).
  bool unregister(const std::string& name, std::uint64_t lease);

  /// All entries whose name starts with `prefix` ("" = everything),
  /// packaged as a `Directory` ready to hand to an `Initiator`.  An empty
  /// prefix fans out to every shard; a nonempty prefix is served by the
  /// single shard owning its byte range.
  Directory list(const std::string& prefix = "");

  /// Drops every cached ref (testing aid; production invalidation is by
  /// lease expiry only).
  void invalidateCache();

 private:
  RpcClient& shardFor(const std::string& name);

  Dapplet& d_;
  std::vector<std::unique_ptr<RpcClient>> shards_;
  bool cache_ = false;
  struct CachedRef {
    InboxRef ref;
    TimePoint expiresAt;
  };
  std::mutex cacheMutex_;
  std::map<std::string, CachedRef> cached_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
};

}  // namespace dapple
