#pragma once
/// \file directory_service.hpp
/// \brief A network directory service.
///
/// Paper §3.1 hands the initiator "a directory of addresses ... of
/// component dapplets" and then notes: *"We do not address how this
/// directory is maintained in this paper."*  This module addresses it: a
/// `DirectoryServer` is a dapplet-hosted name service (built on the RPC
/// layer, i.e. on inboxes and messages) where dapplets register their
/// session-control inboxes under names; a `DirectoryClient` registers,
/// resolves, lists, and unregisters entries, and can fetch a whole
/// `Directory` snapshot for an initiator.
///
/// Entries carry a lease: a registration expires unless refreshed, so
/// crashed dapplets eventually vanish from the directory — the same
/// pragmatic design every production registry (DNS SRV, ZooKeeper
/// ephemerals, Consul) converged on.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dapple/core/directory.hpp"
#include "dapple/core/rpc.hpp"

namespace dapple {

/// Hosts the name service on a dapplet.  Methods (via RPC):
///   register {name, ref, ttlMs} -> lease id
///   refresh  {name, lease}      -> bool
///   lookup   {name}             -> ref           (Error if absent/expired)
///   unregister {name, lease}    -> bool
///   list     {prefix}           -> map name -> ref
class DirectoryServer {
 public:
  /// Default time-to-live granted to registrations that do not choose one.
  static constexpr std::int64_t kDefaultTtlMs = 30'000;

  explicit DirectoryServer(Dapplet& dapplet);
  ~DirectoryServer();

  DirectoryServer(const DirectoryServer&) = delete;
  DirectoryServer& operator=(const DirectoryServer&) = delete;

  /// The address clients connect to.
  InboxRef ref() const;

  /// Number of live (unexpired) entries.
  std::size_t size() const;

  /// Drops expired entries now (also happens lazily on every access).
  void expireNow();

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Client-side stub.
class DirectoryClient {
 public:
  DirectoryClient(Dapplet& dapplet, InboxRef server);

  /// Registers `name -> ref` with a lease; returns the lease id used for
  /// refresh/unregister.  Re-registering an existing name replaces it.
  std::uint64_t registerName(const std::string& name, const InboxRef& ref,
                             Duration ttl = milliseconds(
                                 DirectoryServer::kDefaultTtlMs));

  /// Extends the lease; false when the lease is unknown (expired/replaced).
  bool refresh(const std::string& name, std::uint64_t lease);

  /// Resolves a name; throws AddressError when absent or expired.
  InboxRef lookup(const std::string& name);

  /// Removes the entry if the lease matches.
  bool unregister(const std::string& name, std::uint64_t lease);

  /// All entries whose name starts with `prefix` ("" = everything),
  /// packaged as a `Directory` ready to hand to an `Initiator`.
  Directory list(const std::string& prefix = "");

 private:
  RpcClient rpc_;
};

}  // namespace dapple
