#pragma once
/// \file design.hpp
/// \brief The paper's second example (§2.1 "Collaborative Distributed
/// Design"): a team of designers editing a shared, partitioned document.
///
/// Each designer dapplet keeps a replica of the document (part -> version).
/// Write access to a part is controlled by the token read/write protocol of
/// §4.1: a part is a token colour with `kReadTokens` tokens; a reader holds
/// one token, a writer holds all of them, so *"multiple concurrent reads ...
/// but at most one concurrent write and no reads concurrent with a write"*.
/// Edits are broadcast to the team ("modifications to parts of the document
/// are communicated to appropriate members of the design team") and applied
/// by version dominance.

#include <cstdint>
#include <string>
#include <vector>

#include "dapple/core/session.hpp"
#include "dapple/services/tokens/token_manager.hpp"

namespace dapple::apps {

inline constexpr const char* kDesignApp = "design.collab";
inline constexpr std::int64_t kReadTokens = 4;

/// Token colour of document part `i`.
std::string partColor(std::size_t part);

/// Registers the designer role on a member's session agent.  Member params:
///   "index"   — this member's position in the session's peer order,
///   "ops"     — number of read/write operations to perform,
///   "writePct"— percentage of ops that are writes,
///   "seed"    — RNG seed for the op sequence.
/// Session params: "parts" (document part count).
///
/// Wiring: every member has inbox "updates" and outbox "publish" bound to
/// every peer's "updates" (full mesh).  Token-manager refs are exchanged at
/// role start through the same mesh.
void registerDesignApp(SessionAgent& agent);

/// Builds the full-mesh design session plan.
Initiator::Plan designPlan(const Directory& directory,
                           const std::vector<std::string>& memberNames,
                           std::size_t parts, std::size_t opsPerMember,
                           int writePct, std::uint64_t seed);

/// Test hook: an oracle invoked around every read/write critical section.
/// Tests install one (backed by shared atomics, since test members share a
/// process) to *prove* the token protocol's reader/writer exclusion across
/// dapplets; examples leave it unset.  `part` is the document part index.
struct DesignOracle {
  std::function<void(std::size_t part)> onWriteStart;
  std::function<void(std::size_t part)> onWriteEnd;
  std::function<void(std::size_t part)> onReadStart;
  std::function<void(std::size_t part)> onReadEnd;
};
void setDesignOracle(DesignOracle oracle);
void clearDesignOracle();

/// Parsed from each member's DONE result.
struct DesignOutcome {
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t conflictsObserved = 0;  ///< RW/WW overlap detected (must be 0)
  std::int64_t finalChecksum = 0;      ///< replica checksum for convergence
};
DesignOutcome parseDesignOutcome(const Value& memberResult);

}  // namespace dapple::apps
