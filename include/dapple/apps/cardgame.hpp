#pragma once
/// \file cardgame.hpp
/// \brief The paper's ring example (§3.1): *"in a distributed card game
/// session, a player dapplet may be linked to its predecessor and successor
/// player dapplets, which correspond to the players to its left and
/// right."*
///
/// The game is a "spoons"-style passing game: each of N players starts with
/// a hand of 4 cards from a deck of 4×N cards (4 copies of each of N
/// ranks).  Every turn a player passes one card to its successor and takes
/// one from its predecessor; the first player holding four of a kind
/// announces victory on a broadcast channel and the session winds down.
/// The ring wiring exercises sessions whose topology is *not* hub-and-spoke,
/// and the announce channel exercises mixed topologies.

#include <cstdint>
#include <string>
#include <vector>

#include "dapple/core/session.hpp"

namespace dapple::apps {

inline constexpr const char* kCardGameApp = "cardgame.ring";

/// Registers the player role.  Member params: "index", "seed", "hand"
/// (list of initial card ranks).  Session params: "players", "maxTurns".
void registerCardGameApp(SessionAgent& agent);

/// Builds the ring plan: player i's outbox "right" feeds player (i+1)%N's
/// inbox "left"; everyone's outbox "announce" feeds everyone else's inbox
/// "news".  Hands are dealt deterministically from `seed`.
Initiator::Plan cardGamePlan(const Directory& directory,
                             const std::vector<std::string>& playerNames,
                             std::size_t maxTurns, std::uint64_t seed);

/// Parsed from each player's DONE result.
struct GameOutcome {
  bool won = false;          ///< this player collected four of a kind
  std::int64_t winner = -1;  ///< winning player's index, -1 if none heard
  std::int64_t turns = 0;    ///< turns this player took
};
GameOutcome parseGameOutcome(const Value& playerResult);

}  // namespace dapple::apps
