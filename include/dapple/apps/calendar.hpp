#pragma once
/// \file calendar.hpp
/// \brief The paper's flagship example (§2.1, Figures 1 & 2): a calendar
/// application that finds a common meeting date for a distributed committee.
///
/// Two distributed protocols plus the paper's "traditional approach"
/// baseline are provided:
///
///  * **Flat session** (`kCalendarFlatApp`) — a coordinator dapplet linked
///    directly to every member's calendar dapplet; rounds of parallel
///    query/intersect/confirm.
///  * **Hierarchical session** (`kCalendarHierApp`) — Figure 1's topology:
///    the coordinator talks to per-site *secretary* dapplets, each of which
///    aggregates the calendar dapplets at its site.
///  * **Sequential baseline** (`SequentialScheduler`) — *"the director or
///    someone on the staff calls each member of the committee repeatedly
///    and negotiates with each one in turn until an agreement is reached"*:
///    one-at-a-time synchronous RPC negotiation.
///
/// Calendars persist in each member's `StateStore` under the key
/// `"cal.busy"` (a list of busy day indices), so meetings booked by one
/// session are visible to later sessions — the paper's persistent-state
/// requirement (§2.2).

#include <cstdint>
#include <string>
#include <vector>

#include "dapple/core/rpc.hpp"
#include "dapple/core/session.hpp"
#include "dapple/core/state.hpp"
#include "dapple/util/rng.hpp"

namespace dapple::apps {

inline constexpr const char* kCalendarFlatApp = "calendar.flat";
inline constexpr const char* kCalendarHierApp = "calendar.hier";
inline constexpr const char* kBusyKey = "cal.busy";

/// Availability within one query window, as a bitmask over the window's
/// days (bit i = day start+i is free).  Windows are at most 63 days.
using DayMask = std::uint64_t;
inline constexpr std::size_t kMaxWindow = 63;

/// Typed access to the persistent calendar in a StateStore / StateView.
class CalendarBook {
 public:
  /// Marks `day` busy in the raw store.
  static void markBusy(StateStore& store, std::int64_t day);
  static void markBusy(StateView& view, std::int64_t day);

  /// True when `day` has no appointment.
  static bool isFree(const StateStore& store, std::int64_t day);

  /// Free-day mask over [start, start+window).
  static DayMask freeMask(const StateStore& store, std::int64_t start,
                          std::size_t window);
  static DayMask freeMask(const StateView& view, std::int64_t start,
                          std::size_t window);

  /// Synthetic workload: marks each day in [0, days) busy with probability
  /// `busyProb` (deterministic under `rng`).
  static void populate(StateStore& store, Rng& rng, std::int64_t days,
                       double busyProb);

  /// Number of busy days recorded.
  static std::size_t busyCount(const StateStore& store);
};

/// Registers the calendar roles ("calendar.flat" and "calendar.hier") on a
/// member's session agent.  Roles dispatch on the member parameter "role":
/// "coordinator", "secretary", or "member".
void registerCalendarApp(SessionAgent& agent);

/// Builds the flat session plan: `coordinatorName` plus `memberNames`, all
/// resolvable in `directory`.  Session params: start day, window size,
/// maximum rounds.
Initiator::Plan flatCalendarPlan(const Directory& directory,
                                 const std::string& coordinatorName,
                                 const std::vector<std::string>& memberNames,
                                 std::int64_t startDay, std::size_t window,
                                 std::size_t maxRounds);

/// Builds the hierarchical (Figure 1) plan: one coordinator, one secretary
/// per site, and per-site member lists.
struct Site {
  std::string secretary;
  std::vector<std::string> members;
};
Initiator::Plan hierCalendarPlan(const Directory& directory,
                                 const std::string& coordinatorName,
                                 const std::vector<Site>& sites,
                                 std::int64_t startDay, std::size_t window,
                                 std::size_t maxRounds);

/// Outcome parsed from the coordinator's DONE result.
struct ScheduleOutcome {
  bool scheduled = false;
  std::int64_t day = -1;
  std::int64_t rounds = 0;
  std::int64_t messages = 0;  ///< application messages the coordinator saw
};
ScheduleOutcome parseOutcome(const Value& coordinatorResult);

// ---------------------------------------------------------------------------
// Sequential baseline
// ---------------------------------------------------------------------------

/// RPC façade a member exposes for the traditional one-by-one negotiation.
/// Methods: "avail" {start, window} -> mask, "confirm" {day} -> bool.
class CalendarRpcMember {
 public:
  CalendarRpcMember(Dapplet& dapplet, StateStore& store);

  InboxRef ref() const { return server_.ref(); }

 private:
  RpcServer server_;
};

/// The director's sequential negotiation (paper §2.1's "traditional
/// approach").  Contacts members strictly one at a time.
class SequentialScheduler {
 public:
  SequentialScheduler(Dapplet& dapplet,
                      const std::vector<InboxRef>& memberRefs);

  /// Negotiates a common day in windows of `window` days starting at
  /// `startDay`, up to `maxRounds` windows.
  ScheduleOutcome negotiate(std::int64_t startDay, std::size_t window,
                            std::size_t maxRounds,
                            Duration callTimeout = seconds(5));

 private:
  std::vector<std::unique_ptr<RpcClient>> members_;
};

}  // namespace dapple::apps
