#!/usr/bin/env python3
"""Pretty-print a captured dapple wire frame back to the text form.

The binary codec (include/dapple/serial/wire.hpp) opens with the 0xDB
preamble and then carries tagged tokens:

    0xE0 null                     0xE5 f64      (8-byte LE IEEE double)
    0xE1 false                    0xE6 string   (varint length + bytes)
    0xE2 true                     0xE7 list     (varint element count)
    0xE3 i64 (zigzag LEB128)      0xE8 map      (varint pair count)
    0xE4 u64 (LEB128)

This tool decodes such a frame and re-emits the equivalent text-codec
tokens (`i-42 u17 d1.5 b1 s5:hello n l3 m2`, space-separated), so a
binary capture from a WAL, a pcap, or a fuzz artifact reads like the
debug codec.  Frames without the preamble are already text and pass
through unchanged.

Usage:
    scripts/wire_dump.py FILE            # raw frame bytes from a file
    scripts/wire_dump.py -               # raw frame bytes from stdin
    scripts/wire_dump.py --hex 'db e4 2a'  # hex string on the command line

Exit status 1 with an offset-bearing message on malformed input (mirrors
the C++ reader's SerializationError contract).
"""

import struct
import sys

PREAMBLE = 0xDB
TAG_NULL = 0xE0
TAG_FALSE = 0xE1
TAG_TRUE = 0xE2
TAG_I64 = 0xE3
TAG_U64 = 0xE4
TAG_F64 = 0xE5
TAG_STR = 0xE6
TAG_LIST = 0xE7
TAG_MAP = 0xE8


class WireError(Exception):
    def __init__(self, what, offset):
        super().__init__(f"wire: {what} at offset {offset}")


def read_varint(data, pos):
    """LEB128, max 10 bytes; returns (value, new_pos)."""
    value = 0
    for shift in range(0, 64, 7):
        if pos >= len(data):
            raise WireError("unexpected end of input", pos)
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            if shift == 63 and byte > 1:
                raise WireError("varint overflow", pos)
            return value, pos
    raise WireError("varint overflow", pos)


def zigzag_decode(u):
    return (u >> 1) ^ -(u & 1)


def fmt_double(d):
    # Match to_chars-style shortest round-trip closely enough for eyeballs.
    text = repr(d)
    return text[:-2] if text.endswith(".0") else text


def dump_tokens(data):
    """Decode one binary frame body (preamble already consumed)."""
    tokens = []
    pos = 0
    while pos < len(data):
        tag = data[pos]
        pos += 1
        if tag == TAG_NULL:
            tokens.append("n")
        elif tag == TAG_FALSE:
            tokens.append("b0")
        elif tag == TAG_TRUE:
            tokens.append("b1")
        elif tag == TAG_I64:
            u, pos = read_varint(data, pos)
            tokens.append(f"i{zigzag_decode(u)}")
        elif tag == TAG_U64:
            u, pos = read_varint(data, pos)
            tokens.append(f"u{u}")
        elif tag == TAG_F64:
            if pos + 8 > len(data):
                raise WireError("unexpected end of input", pos)
            (d,) = struct.unpack_from("<d", data, pos)
            pos += 8
            tokens.append(f"d{fmt_double(d)}")
        elif tag == TAG_STR:
            n, pos = read_varint(data, pos)
            if pos + n > len(data):
                raise WireError("unexpected end of input", pos)
            body = data[pos:pos + n]
            pos += n
            tokens.append(f"s{n}:" + body.decode("utf-8", "backslashreplace"))
        elif tag == TAG_LIST:
            n, pos = read_varint(data, pos)
            tokens.append(f"l{n}")
        elif tag == TAG_MAP:
            n, pos = read_varint(data, pos)
            tokens.append(f"m{n}")
        else:
            raise WireError(f"unknown binary tag 0x{tag:02X}", pos - 1)
    return " ".join(tokens)


def dump_frame(raw):
    if raw[:1] == bytes([PREAMBLE]):
        return dump_tokens(raw[1:])
    # No preamble: already the text codec; show it as-is.
    return raw.decode("utf-8", "backslashreplace")


def main(argv):
    if len(argv) == 3 and argv[1] == "--hex":
        raw = bytes.fromhex(argv[2].replace(" ", ""))
    elif len(argv) == 2 and argv[1] == "-":
        raw = sys.stdin.buffer.read()
    elif len(argv) == 2:
        with open(argv[1], "rb") as f:
            raw = f.read()
    else:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: wire_dump.py FILE | - | --hex 'db e4 2a'",
              file=sys.stderr)
        return 2
    try:
        print(dump_frame(raw))
    except WireError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
