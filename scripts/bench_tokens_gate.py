#!/usr/bin/env python3
"""Drive bench_tokens and gate the E13 credit-caching invariant.

Usage:
    scripts/bench_tokens_gate.py [--bench PATH] [--quick] [--out DIR]

Runs the `bench_tokens` binary (see bench/bench_tokens.cpp), reads the
emitted BENCH_tokens.json, and enforces the E13 acceptance invariant:

  * on a hot contended colour, the P99 grant latency with cached credit
    (`BM_HotColorGrant/cached:1`, DESIGN.md §14) must be >= 10x lower than
    the round-trip-per-grant baseline (`cached:0`).  Credit caching exists
    precisely to take the home round trip off the hot path; anything under
    10x means grants are still paying RTT.

Exit code 1 when the invariant fails.  The emitted BENCH_tokens.json is the
same file bench_compare.py diffs against bench/baselines/, so a later
regression in the percentile counters is caught by both paths.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

MIN_P99_RATIO = 10.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=Path,
                        default=Path("build/bench/bench_tokens"),
                        help="bench_tokens binary")
    parser.add_argument("--quick", action="store_true",
                        help="forwarded to the bench (short gbench reps)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to run in / leave the JSON "
                             "(default: the binary's directory)")
    args = parser.parse_args()

    bench = args.bench.resolve()
    if not bench.exists():
        print(f"error: bench binary not found: {bench}", file=sys.stderr)
        return 2
    run_dir = args.out if args.out is not None else bench.parent
    run_dir.mkdir(parents=True, exist_ok=True)

    cmd = [str(bench)] + (["--quick"] if args.quick else [])
    # Only the gated rows need to run; the full E3 sweep rides other tests.
    cmd.append("--benchmark_filter=BM_HotColorGrant")
    proc = subprocess.run(cmd, cwd=run_dir)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        return proc.returncode

    report = run_dir / "BENCH_tokens.json"
    with report.open() as f:
        doc = json.load(f)
    rows = {b["name"]: b for b in doc.get("benchmarks", [])}

    p99 = {}
    for name, metrics in rows.items():
        if not name.startswith("BM_HotColorGrant/"):
            continue
        cached = name.rsplit(":", 1)[-1] == "1"
        if "p99_us" in metrics:
            p99[cached] = float(metrics["p99_us"])

    failures = []
    if True not in p99 or False not in p99:
        failures.append(f"BM_HotColorGrant rows missing from {report} "
                        f"(found {sorted(rows)})")
    else:
        cached_us, roundtrip_us = p99[True], p99[False]
        ratio = roundtrip_us / cached_us if cached_us > 0 else float("inf")
        print(f"\nhot-colour grant P99: round-trip {roundtrip_us:.1f}us, "
              f"cached {cached_us:.3f}us -> {ratio:.1f}x")
        if ratio < MIN_P99_RATIO:
            failures.append(
                f"cached-credit P99 speedup {ratio:.2f}x < {MIN_P99_RATIO}x "
                f"(round-trip {roundtrip_us:.1f}us vs cached "
                f"{cached_us:.3f}us)")

    if failures:
        print(f"\n{len(failures)} invariant failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  FAIL {f_}", file=sys.stderr)
        return 1
    print("all token-lease bench invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
