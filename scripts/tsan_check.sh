#!/usr/bin/env sh
# TSan gate for the concurrency-heavy test subset.
#
# Configures a dedicated ThreadSanitizer build tree, builds the test
# binaries, and runs the `faults`, `fuzz-smoke`, `recovery`, `reactor`,
# `serial`, and `tokens` ctest labels — the failure-injection suites, the
# scenario-fuzzer smoke sweep, the crash-recovery (kill -> restart ->
# rejoin) suite, the event-loop runtime (timer wheel, handler strands),
# the wire codec (text/binary encode-decode, malformed-input hardening),
# and the token service's credit/lease machinery (renewal timers racing
# grants, recalls, and member crashes).  Those run on the virtual clock,
# so TSan reports reproduce run-to-run.
#
#   scripts/tsan_check.sh [build-dir]     (default: build-tsan)
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -DDAPPLE_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -L 'faults|fuzz-smoke|recovery|reactor|serial|tokens'
