#!/usr/bin/env python3
"""Compare two sets of BENCH_*.json files and fail on throughput regression.

Usage:
    scripts/bench_compare.py BASELINE_DIR CANDIDATE_DIR [--threshold 0.10]

Both directories hold BENCH_<name>.json files — google-benchmark's native
JSON or the hand-rolled `dapple-bench-v1` shape from bench/bench_common.hpp
(both are `{"context": ..., "benchmarks": [{"name": ..., <numbers>}]}`).
Committed baselines live in bench/baselines/; a fresh run drops candidates
next to the binaries (build/bench/BENCH_*.json).

Rows are matched by (file, benchmark name).  Only *throughput* metrics gate
the comparison — keys ending in "/s", "_per_s", "per_second", or containing
"throughput" / "ratio" — because latency-shaped fields in the loss-sweep
benches (e.g. `reliable_ms` at 10% loss) are dominated by which datagrams
the seeded link happened to drop, not by code speed.  Everything else is
informational.

A throughput metric that drops by more than the threshold (default 10%) is
a regression.  Exit code 1 when any regression is found, 0 otherwise.
Missing counterpart files or rows are reported but are not failures (bench
sets may grow).
"""

import argparse
import json
import math
import sys
from pathlib import Path

RATE_SUFFIXES = ("/s", "_per_s", "per_second")
RATE_SUBSTRINGS = ("throughput", "ratio")


def classify(key: str):
    """Return 'rate' for gating metrics, None for informational ones."""
    low = key.lower()
    if low == "iterations":  # contains "ratio", but is just a sample count
        return None
    if low.endswith(RATE_SUFFIXES) or any(s in low for s in RATE_SUBSTRINGS):
        return "rate"
    return None


def load_rows(path: Path):
    """-> {benchmark name: {metric: float}} for one BENCH_*.json file."""
    with path.open() as f:
        doc = json.load(f)
    rows = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name")
        if not name:
            continue
        rows[name] = {
            k: float(v)
            for k, v in bench.items()
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        }
    return rows


def compare(baseline_dir: Path, candidate_dir: Path, threshold: float):
    regressions = []
    notes = []
    files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not files:
        notes.append(f"no BENCH_*.json under {baseline_dir}")
    for base_file in files:
        cand_file = candidate_dir / base_file.name
        if not cand_file.exists():
            notes.append(f"{base_file.name}: no candidate run, skipped")
            continue
        base_rows = load_rows(base_file)
        cand_rows = load_rows(cand_file)
        for name, base_metrics in sorted(base_rows.items()):
            cand_metrics = cand_rows.get(name)
            if cand_metrics is None:
                notes.append(f"{base_file.name}: row '{name}' missing from "
                             "candidate, skipped")
                continue
            for key, base_val in sorted(base_metrics.items()):
                kind = classify(key)
                if kind is None or key not in cand_metrics:
                    continue
                cand_val = cand_metrics[key]
                if base_val <= 0 or not math.isfinite(base_val):
                    continue
                # change > 0 means the candidate is better.
                change = cand_val / base_val - 1.0
                line = (f"{base_file.name} :: {name} :: {key}: "
                        f"{base_val:.4g} -> {cand_val:.4g} "
                        f"({change:+.1%})")
                if change < -threshold:
                    regressions.append(line)
                else:
                    print(f"  ok  {line}")
    return regressions, notes


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("candidate", type=Path)
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional regression (default 0.10)")
    args = parser.parse_args()
    regressions, notes = compare(args.baseline, args.candidate,
                                 args.threshold)
    for note in notes:
        print(f"note: {note}", file=sys.stderr)
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for line in regressions:
            print(f"  FAIL {line}", file=sys.stderr)
        return 1
    print("\nno regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
