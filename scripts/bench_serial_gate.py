#!/usr/bin/env python3
"""Drive bench_serial and gate the E14 wire-codec invariants.

Usage:
    scripts/bench_serial_gate.py [--bench PATH] [--quick] [--out DIR]

Runs the `bench_serial` binary (see bench/bench_serial.cpp), reads the
emitted BENCH_serial.json, and enforces the E14 acceptance invariants for
each message shape (small, medium, listheavy):

  * combined encode+decode throughput (`BM_RoundTrip/<shape>_binary` vs
    `..._text`, per-iteration cpu time) must be >= 3x for the geometric
    mean across shapes — the binary codec exists to take tokenizing and
    decimal parsing off the hot path;
  * binary frames must be >= 25% smaller than text frames
    (`bytes_per_msg`) on every shape.

Exit code 1 when an invariant fails.  The emitted BENCH_serial.json is the
same file bench_compare.py diffs against bench/baselines/.
"""

import argparse
import json
import math
import subprocess
import sys
from pathlib import Path

MIN_SPEEDUP_GEOMEAN = 3.0
MAX_BINARY_SIZE_FRACTION = 0.75
SHAPES = ["small", "medium", "listheavy"]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=Path,
                        default=Path("build/bench/bench_serial"),
                        help="bench_serial binary")
    parser.add_argument("--quick", action="store_true",
                        help="forwarded to the bench (short gbench reps)")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to run in / leave the JSON "
                             "(default: the binary's directory)")
    args = parser.parse_args()

    bench = args.bench.resolve()
    if not bench.exists():
        print(f"error: bench binary not found: {bench}", file=sys.stderr)
        return 2
    run_dir = args.out if args.out is not None else bench.parent
    run_dir.mkdir(parents=True, exist_ok=True)

    cmd = [str(bench)] + (["--quick"] if args.quick else [])
    # Only the gated rows need to run; the encode/decode split rides the
    # full bench pass.
    cmd.append("--benchmark_filter=BM_RoundTrip")
    proc = subprocess.run(cmd, cwd=run_dir)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        return proc.returncode

    report = run_dir / "BENCH_serial.json"
    with report.open() as f:
        doc = json.load(f)
    rows = {b["name"]: b for b in doc.get("benchmarks", [])
            if b.get("run_type") != "aggregate"}

    failures = []
    speedups = []
    for shape in SHAPES:
        text = rows.get(f"BM_RoundTrip/{shape}_text")
        binary = rows.get(f"BM_RoundTrip/{shape}_binary")
        if text is None or binary is None:
            failures.append(f"BM_RoundTrip rows for shape '{shape}' missing "
                            f"from {report} (found {sorted(rows)})")
            continue
        speedup = float(text["cpu_time"]) / float(binary["cpu_time"])
        speedups.append(speedup)
        tbytes = float(text["bytes_per_msg"])
        bbytes = float(binary["bytes_per_msg"])
        fraction = bbytes / tbytes if tbytes > 0 else float("inf")
        print(f"{shape:>10}: round-trip {float(text['cpu_time']):.0f}ns -> "
              f"{float(binary['cpu_time']):.0f}ns ({speedup:.2f}x), frame "
              f"{tbytes:.0f}B -> {bbytes:.0f}B ({fraction:.2f}x)")
        if fraction > MAX_BINARY_SIZE_FRACTION:
            failures.append(
                f"{shape}: binary frame is {fraction:.2f}x the text frame "
                f"({bbytes:.0f}B vs {tbytes:.0f}B), must be <= "
                f"{MAX_BINARY_SIZE_FRACTION}")

    if speedups:
        geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
        print(f"encode+decode speedup geomean: {geomean:.2f}x")
        if geomean < MIN_SPEEDUP_GEOMEAN:
            failures.append(
                f"binary encode+decode speedup geomean {geomean:.2f}x < "
                f"{MIN_SPEEDUP_GEOMEAN}x")

    if failures:
        print(f"\n{len(failures)} invariant failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  FAIL {f_}", file=sys.stderr)
        return 1
    print("all wire-codec bench invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
