#!/usr/bin/env python3
"""Drive the bench_transport loss x delay matrix and check its invariants.

Usage:
    scripts/bench_transport_matrix.py [--bench PATH] [--quick]
        [--out DIR] [--keep-json]

Runs the `bench_transport` binary (adaptive sender vs the fixed-RTO
baseline, virtual-clock simulation; see bench/bench_transport.cpp), prints
the matrix as a table, and enforces the E10 acceptance invariants:

  * at 0% loss the adaptive sender's goodput is competitive with the
    unwindowed fixed-RTO baseline (ratio >= 0.90 full, >= 0.50 --quick —
    the short quick run doesn't amortize slow-start);
  * at the lossiest cell with 20 ms delay the retransmit-efficiency gain
    (fixed overhead / adaptive overhead, 1% floor) is >= 2x
    (>= 1.5x under --quick, which averages fewer seeds).

Exit code 1 when an invariant fails.  The emitted BENCH_transport.json is
the same file bench_compare.py diffs against bench/baselines/, so a later
regression in the gated *_ratio keys is caught by both paths.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path


def parse_cell(name):
    """'loss=5%/delay=20ms/adaptive' -> (5.0, 20, 'adaptive') or None."""
    parts = name.split("/")
    if len(parts) != 3:
        return None
    try:
        loss = float(parts[0].removeprefix("loss=").rstrip("%"))
        delay = int(parts[1].removeprefix("delay=").rstrip("ms"))
    except ValueError:
        return None
    return loss, delay, parts[2]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", type=Path,
                        default=Path("build/bench/bench_transport"),
                        help="bench_transport binary")
    parser.add_argument("--quick", action="store_true",
                        help="forwarded to the bench; relaxes thresholds")
    parser.add_argument("--out", type=Path, default=None,
                        help="directory to run in / leave the JSON "
                             "(default: the binary's directory)")
    args = parser.parse_args()

    bench = args.bench.resolve()
    if not bench.exists():
        print(f"error: bench binary not found: {bench}", file=sys.stderr)
        return 2
    run_dir = args.out if args.out is not None else bench.parent
    run_dir.mkdir(parents=True, exist_ok=True)

    cmd = [str(bench)] + (["--quick"] if args.quick else [])
    proc = subprocess.run(cmd, cwd=run_dir)
    if proc.returncode != 0:
        print(f"error: {' '.join(cmd)} exited {proc.returncode}",
              file=sys.stderr)
        return proc.returncode

    report = run_dir / "BENCH_transport.json"
    with report.open() as f:
        doc = json.load(f)
    rows = {b["name"]: b for b in doc.get("benchmarks", [])}

    cells = {}
    for name, metrics in rows.items():
        parsed = parse_cell(name)
        if parsed is None:
            continue
        loss, delay, kind = parsed
        cells.setdefault((loss, delay), {})[kind] = metrics

    print(f"\n{'cell':>18} {'fixed goodput/s':>16} {'adaptive':>10} "
          f"{'goodput ratio':>14} {'eff gain':>9}")
    failures = []
    min_goodput_ratio = 0.50 if args.quick else 0.90
    min_gain = 1.5 if args.quick else 2.0
    for (loss, delay), kinds in sorted(cells.items()):
        summary = kinds.get("summary", {})
        ratio = summary.get("goodput_vs_fixed_x")
        gain = summary.get("efficiency_gain_x")
        print(f"{f'loss={loss:g}% d={delay}ms':>18} "
              f"{kinds.get('fixed', {}).get('goodput_msg_rate', 0):>16.0f} "
              f"{kinds.get('adaptive', {}).get('goodput_msg_rate', 0):>10.0f} "
              f"{ratio if ratio is not None else float('nan'):>14.3f} "
              f"{gain if gain is not None else float('nan'):>8.2f}x")
        if loss == 0 and ratio is not None and ratio < min_goodput_ratio:
            failures.append(
                f"goodput ratio {ratio:.3f} < {min_goodput_ratio} at "
                f"0% loss / {delay}ms delay")

    lossy = [k for k in cells if k[0] > 0 and k[1] == 20]
    if lossy:
        worst = max(lossy)  # highest loss at 20ms delay
        gain = cells[worst].get("summary", {}).get("efficiency_gain_x")
        if gain is None or gain < min_gain:
            failures.append(
                f"efficiency gain {gain} < {min_gain}x at "
                f"loss={worst[0]:g}% / {worst[1]}ms delay")
    elif cells:
        failures.append("no lossy 20ms cell found in the matrix")
    else:
        failures.append(f"no matrix cells parsed from {report}")

    if failures:
        print(f"\n{len(failures)} invariant failure(s):", file=sys.stderr)
        for f_ in failures:
            print(f"  FAIL {f_}", file=sys.stderr)
        return 1
    print("\nall transport-matrix invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
