// The paper's ring example (§3.1): a distributed card game whose player
// dapplets are linked to their predecessor and successor.
//
//   $ ./card_game
//
// Five players pass cards around the ring until someone collects four of a
// kind and announces victory on the broadcast channel.
#include <cstdio>
#include <memory>
#include <vector>

#include "dapple/apps/cardgame.hpp"
#include "dapple/net/sim.hpp"

using namespace dapple;

int main() {
  SimNetwork net(5150);
  net.setDefaultLink(LinkParams{microseconds(500), microseconds(250), 0, 0});

  const std::vector<std::string> names = {"north", "east", "south", "west",
                                          "dealer"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (const std::string& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    apps::registerCardGameApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }

  Dapplet table(net, "table");
  Initiator initiator(table);
  auto plan = apps::cardGamePlan(directory, names, /*maxTurns=*/500,
                                 /*seed=*/17);
  auto result = initiator.establish(plan);
  if (!result.ok) {
    std::printf("game session failed to establish\n");
    return 1;
  }
  std::printf("dealt 4 cards each to %zu players on a ring\n", names.size());

  auto done = initiator.awaitCompletion(result.sessionId, seconds(60));
  std::int64_t winner = -1;
  for (const auto& [player, value] : done) {
    auto outcome = apps::parseGameOutcome(value);
    std::printf("  %-7s turns=%-4lld %s\n", player.c_str(),
                static_cast<long long>(outcome.turns),
                outcome.won ? "** four of a kind! **" : "");
    if (outcome.won) winner = outcome.winner;
  }
  if (winner >= 0) {
    std::printf("winner: %s\n", names[static_cast<std::size_t>(winner)].c_str());
  } else {
    std::printf("no winner within the turn limit\n");
  }
  initiator.terminate(result.sessionId);

  table.stop();
  for (auto& d : dapplets) d->stop();
  return 0;
}
