// The paper's Figure 1 scenario: a research-center director schedules an
// executive-committee meeting across Caltech, Rice, and Tennessee.
//
//   $ ./calendar_demo
//
// Demonstrates: the address directory (Figure 2), the hierarchical session
// (coordinator -> site secretaries -> calendar dapplets, Figure 1), WAN
// delays between sites, persistent calendars across sessions, the
// sequential "phone each member in turn" baseline, and session-interference
// rejection.
#include <cstdio>
#include <memory>
#include <vector>

#include "dapple/apps/calendar.hpp"
#include "dapple/net/sim.hpp"

using namespace dapple;
using apps::CalendarBook;

namespace {

struct Committee {
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;

  void addMember(Network& net, const std::string& name, std::uint32_t host,
                 Rng& rng) {
    DappletConfig cfg;
    cfg.host = host;
    dapplets.push_back(std::make_unique<Dapplet>(net, name, cfg));
    stores.push_back(std::make_unique<StateStore>());
    CalendarBook::populate(*stores.back(), rng, 60, 0.55);
    SessionAgent::Config agentCfg;
    agentCfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(),
                                                    agentCfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
};

}  // namespace

int main() {
  // Three sites with realistic WAN delays (scaled 10x down so the demo is
  // quick: "Caltech-Rice" ~ 3.5ms here stands for ~35ms).
  SimNetwork net(2026);
  constexpr std::uint32_t kCaltech = 1;
  constexpr std::uint32_t kRice = 2;
  constexpr std::uint32_t kTennessee = 3;
  net.setDefaultLink(LinkParams{microseconds(100), microseconds(50), 0, 0});
  net.setHostLinkBetween(kCaltech, kRice,
                         LinkParams{milliseconds(3), milliseconds(1), 0, 0});
  net.setHostLinkBetween(kCaltech, kTennessee,
                         LinkParams{milliseconds(4), milliseconds(1), 0, 0});
  net.setHostLinkBetween(kRice, kTennessee,
                         LinkParams{milliseconds(2), milliseconds(1), 0, 0});

  Rng rng(7);
  Committee committee;
  // Figure 1's cast: calendar dapplets at three sites, one secretary each.
  committee.addMember(net, "joann.sec", kCaltech, rng);   // Caltech secretary
  committee.addMember(net, "mani", kCaltech, rng);
  committee.addMember(net, "herb", kCaltech, rng);
  committee.addMember(net, "dan", kCaltech, rng);
  committee.addMember(net, "theresa.sec", kRice, rng);    // Rice secretary
  committee.addMember(net, "ken", kRice, rng);
  committee.addMember(net, "linda", kRice, rng);
  committee.addMember(net, "john", kRice, rng);
  committee.addMember(net, "bill.sec", kTennessee, rng);  // Tennessee
  committee.addMember(net, "jack", kTennessee, rng);
  committee.addMember(net, "ginger", kTennessee, rng);

  // The director's own dapplet runs the initiator and the coordinator role.
  DappletConfig directorCfg;
  directorCfg.host = kCaltech;
  Dapplet director(net, "director", directorCfg);
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  committee.directory.put("director", directorAgent.controlRef());

  std::printf("=== Session 1: hierarchical (Figure 1) ===\n");
  const std::vector<apps::Site> sites = {
      {"joann.sec", {"mani", "herb", "dan"}},
      {"theresa.sec", {"ken", "linda", "john"}},
      {"bill.sec", {"jack", "ginger"}},
  };
  Initiator initiator(director);
  auto plan = apps::hierCalendarPlan(committee.directory, "director", sites,
                                     /*startDay=*/0, /*window=*/21,
                                     /*maxRounds=*/6);
  auto result = initiator.establish(plan);
  if (!result.ok) {
    std::printf("session could not be established:\n");
    for (const auto& [member, reason] : result.rejections) {
      std::printf("  %s: %s\n", member.c_str(), reason.c_str());
    }
    return 1;
  }
  std::printf("session %s linked %zu dapplets\n", result.sessionId.c_str(),
              plan.members.size());
  auto done = initiator.awaitCompletion(result.sessionId, seconds(30));
  auto outcome = apps::parseOutcome(done.at("director"));
  if (outcome.scheduled) {
    std::printf("meeting scheduled on day %lld after %lld round(s), "
                "%lld coordinator messages\n",
                static_cast<long long>(outcome.day),
                static_cast<long long>(outcome.rounds),
                static_cast<long long>(outcome.messages));
  } else {
    std::printf("no common date found\n");
  }
  initiator.terminate(result.sessionId);

  std::printf("\n=== Persistence: the booked day survives the session ===\n");
  std::printf("mani's calendar now has day %lld busy: %s\n",
              static_cast<long long>(outcome.day),
              CalendarBook::isFree(*committee.stores[1], outcome.day)
                  ? "NO (bug!)"
                  : "yes");

  std::printf("\n=== Session 2: the traditional sequential approach ===\n");
  // Each member also exposes the RPC facade for the baseline.
  std::vector<std::unique_ptr<apps::CalendarRpcMember>> rpcMembers;
  std::vector<InboxRef> rpcRefs;
  const std::vector<std::size_t> memberIdx = {1, 2, 3, 5, 6, 7, 9, 10};
  for (std::size_t i : memberIdx) {
    rpcMembers.push_back(std::make_unique<apps::CalendarRpcMember>(
        *committee.dapplets[i], *committee.stores[i]));
    rpcRefs.push_back(rpcMembers.back()->ref());
  }
  apps::SequentialScheduler scheduler(director, rpcRefs);
  Stopwatch watch;
  auto seqOutcome = scheduler.negotiate(/*startDay=*/0, /*window=*/21,
                                        /*maxRounds=*/6);
  std::printf("sequential negotiation: day %lld, %lld messages, %.1f ms "
              "(one WAN round-trip per member per round)\n",
              static_cast<long long>(seqOutcome.day),
              static_cast<long long>(seqOutcome.messages),
              watch.elapsedSeconds() * 1e3);

  std::printf("\n=== Interference: two sessions over the same calendars ===\n");
  auto planA = apps::flatCalendarPlan(committee.directory, "director",
                                      {"mani", "ken"}, 30, 14, 1);
  auto planB = apps::flatCalendarPlan(committee.directory, "director",
                                      {"ken", "jack"}, 30, 14, 1);
  auto resA = initiator.establish(planA);
  auto resB = initiator.establish(planB);  // shares ken's calendar -> reject
  std::printf("session A established: %s\n", resA.ok ? "yes" : "no");
  std::printf("session B (interferes at ken): %s\n",
              resB.ok ? "ESTABLISHED (bug!)" : "rejected, as required");
  if (!resB.ok) {
    for (const auto& [member, reason] : resB.rejections) {
      std::printf("  %s: %s\n", member.c_str(), reason.c_str());
    }
  }
  if (resA.ok) {
    initiator.awaitCompletion(resA.sessionId, seconds(30));
    initiator.terminate(resA.sessionId);
  }

  director.stop();
  for (auto& d : committee.dapplets) d->stop();
  std::printf("\ndone.\n");
  return 0;
}
