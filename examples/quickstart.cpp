// Quickstart: two dapplets, two channels, one round trip — the paper's
// communication model in ~60 lines.
//
//   $ ./quickstart
//
// Demonstrates: creating dapplets on a network, inbox/outbox binding,
// typed messages via the registry, FIFO channels, and Lamport timestamps.
#include <cstdio>

#include "dapple/core/dapplet.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

int main() {
  using namespace dapple;

  // A simulated "Internet": 20ms one-way delay with 5ms jitter.
  SimNetwork net(/*seed=*/1);
  net.setDefaultLink(LinkParams{milliseconds(20), milliseconds(5), 0.0, 0.0});

  // Two dapplets, each with its own address (host + port).
  Dapplet alice(net, "alice");
  Dapplet bob(net, "bob");
  std::printf("alice is %s\n", alice.address().toString().c_str());
  std::printf("bob   is %s\n", bob.address().toString().c_str());

  // Ports: alice's outbox binds to bob's inbox and vice versa.  Each
  // binding is a FIFO channel (paper §3.2).
  Inbox& bobIn = bob.createInbox("requests");
  Inbox& aliceIn = alice.createInbox("replies");
  Outbox& aliceOut = alice.createOutbox();
  Outbox& bobOut = bob.createOutbox();
  aliceOut.add(bobIn.ref());
  bobOut.add(aliceIn.ref());

  // Bob serves one request on a worker thread.
  bob.spawn([&](std::stop_token) {
    Delivery del = bobIn.receive();
    const auto& req = del.as<DataMessage>();
    std::printf("bob received '%s' (sent at logical time %llu)\n",
                req.kind().c_str(),
                static_cast<unsigned long long>(del.sentAt));
    DataMessage reply("greeting");
    reply.set("text", Value("hello, " + req.get("from").asString() + "!"));
    bobOut.send(reply);
  });

  // Alice sends a typed message; it is serialized to a string, shipped
  // over the (simulated) Internet, and reconstructed by type at bob.
  DataMessage hello("hello");
  hello.set("from", Value("alice"));
  aliceOut.send(hello);

  // Timed receive: "nothing arrived" comes back as nullopt, not a throw.
  std::optional<Delivery> del = aliceIn.receiveFor(seconds(5));
  if (!del) {
    std::printf("alice received nothing within 5s\n");
    return 1;
  }
  std::printf("alice received: %s\n",
              del->as<DataMessage>().get("text").asString().c_str());

  alice.stop();
  bob.stop();
  std::printf("done.\n");
  return 0;
}
