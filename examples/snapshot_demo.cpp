// Global checkpointing demo (paper §4.2).
//
//   $ ./snapshot_demo
//
// Three dapplets pass "coins" around a ring while the coordinator takes a
// clock-based checkpoint (the paper's algorithm).  The snapshot's local
// states plus in-channel messages must account for every coin — the classic
// conservation check for snapshot consistency.
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/snapshot/snapshot.hpp"
#include "dapple/util/rng.hpp"

using namespace dapple;

namespace {

constexpr std::int64_t kCoinsPerNode = 100;
constexpr std::size_t kNodes = 3;

/// One ring node: holds coins, randomly sends batches to its successor.
struct Node {
  std::unique_ptr<Dapplet> dapplet;
  Inbox* in = nullptr;
  Outbox* out = nullptr;
  std::mutex mutex;
  std::int64_t coins = kCoinsPerNode;
  std::unique_ptr<CheckpointService> checkpoint;

  Value state() {
    std::scoped_lock lock(mutex);
    // Local state must include coins already delivered to the inbox but
    // not yet processed by the app thread.
    std::int64_t queued = 0;
    in->forEachQueued([&](const Delivery& del) {
      const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
      if (msg != nullptr && msg->kind() == "coins") {
        queued += msg->get("n").asInt();
      }
    });
    ValueMap map;
    map["coins"] = Value(static_cast<long long>(coins + queued));
    return Value(std::move(map));
  }
};

}  // namespace

int main() {
  SimNetwork net(31337);
  net.setDefaultLink(LinkParams{milliseconds(2), milliseconds(1), 0, 0});

  std::vector<std::unique_ptr<Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto node = std::make_unique<Node>();
    node->dapplet = std::make_unique<Dapplet>(
        net, "node" + std::to_string(i));
    node->in = &node->dapplet->createInbox("coins");
    node->out = &node->dapplet->createOutbox();
    nodes.push_back(std::move(node));
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i]->out->add(nodes[(i + 1) % kNodes]->in->ref());
  }

  // Checkpoint service on every node; node 0 coordinates.
  std::vector<InboxRef> refs;
  for (auto& node : nodes) {
    Node* raw = node.get();
    node->checkpoint = std::make_unique<CheckpointService>(
        *node->dapplet, [raw] { return raw->state(); });
  }
  for (auto& node : nodes) refs.push_back(node->checkpoint->ref());
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes[i]->checkpoint->attach(refs, i);
  }

  // Traffic: each node ships random batches to its successor and banks
  // whatever arrives.
  std::atomic<bool> running{true};
  for (auto& node : nodes) {
    Node* raw = node.get();
    node->dapplet->spawn([raw, &running](std::stop_token stop) {
      Rng rng(raw->dapplet->id());
      while (!stop.stop_requested() && running) {
        {
          std::scoped_lock lock(raw->mutex);
          if (raw->coins > 0) {
            const std::int64_t batch =
                1 + static_cast<std::int64_t>(
                        rng.below(static_cast<std::uint64_t>(raw->coins)));
            raw->coins -= batch;
            DataMessage msg("coins");
            msg.set("n", Value(static_cast<long long>(batch)));
            raw->out->send(msg);
          }
        }
        {
          // Pop + bank atomically w.r.t. state(): a coin popped but not
          // yet banked would otherwise be invisible to the checkpoint.
          std::scoped_lock lock(raw->mutex);
          while (auto del = raw->in->tryReceive()) {
            const auto* msg =
                dynamic_cast<const DataMessage*>(del->message.get());
            if (msg != nullptr && msg->kind() == "coins") {
              raw->coins += msg->get("n").asInt();
            }
          }
        }
        std::this_thread::sleep_for(milliseconds(1));
      }
    });
  }

  std::this_thread::sleep_for(milliseconds(100));  // let traffic build up
  std::printf("taking a clock-based checkpoint while %lld coins circulate "
              "among %zu nodes...\n",
              static_cast<long long>(kCoinsPerNode * kNodes), kNodes);
  GlobalSnapshot snap = nodes[0]->checkpoint->take(milliseconds(300),
                                                   seconds(10));
  running = false;

  std::int64_t inStates = 0;
  for (const auto& [idx, state] : snap.states) {
    const std::int64_t c = state.at("coins").asInt();
    std::printf("  node%zu local state: %lld coins\n", idx,
                static_cast<long long>(c));
    inStates += c;
  }
  std::int64_t inChannels = 0;
  for (const auto& [idx, msgs] : snap.channels) {
    for (const Value& m : msgs) {
      auto decoded = decodeMessage(m.at("wire").asString());
      const auto& coins = messageAs<DataMessage>(*decoded);
      inChannels += coins.get("n").asInt();
    }
  }
  std::printf("  in-channel coins recorded by the snapshot: %lld\n",
              static_cast<long long>(inChannels));
  const std::int64_t total = inStates + inChannels;
  std::printf("snapshot total = %lld (expected %lld): %s\n",
              static_cast<long long>(total),
              static_cast<long long>(kCoinsPerNode * kNodes),
              total == kCoinsPerNode * kNodes ? "CONSISTENT"
                                              : "INCONSISTENT (bug!)");

  for (auto& node : nodes) node->dapplet->stop();
  return total == kCoinsPerNode * kNodes ? 0 : 1;
}
