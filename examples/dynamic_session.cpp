// Dynamic sessions + the directory service.
//
//   $ ./dynamic_session
//
// Paper §1: sessions "need not be static: after initiation they may grow
// and shrink as required", and §3.1 leaves directory maintenance open —
// here a DirectoryServer maintains it.  A moderator links two panelists
// discovered through the registry into a Q&A session, a latecomer
// registers and is added live, and one panelist is removed mid-session.
#include <atomic>
#include <cstdio>
#include <memory>
#include <vector>

#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/directory/directory_service.hpp"

using namespace dapple;

namespace {

std::atomic<int> g_answers{0};

/// Panelist role: answer every question that arrives until unlinked.
void panelistRole(SessionContext& ctx) {
  Inbox& questions = ctx.inbox("questions");
  Outbox& answers = ctx.outbox("answers");
  while (true) {
    Delivery del = questions.receive();  // ShutdownError on unlink
    const auto& q = del.as<DataMessage>();
    DataMessage a("answer");
    a.set("from", Value(ctx.self()));
    a.set("q", q.get("n"));
    answers.send(a);
  }
}

/// Moderator role: poses questions, tallies the answers.
void moderatorRole(SessionContext& ctx) {
  Inbox& answers = ctx.inbox("answers");
  while (!ctx.stopToken().stop_requested()) {
    auto del = answers.tryReceive();
    if (!del) {
      std::this_thread::sleep_for(milliseconds(2));
      continue;
    }
    const auto& a = del->as<DataMessage>();
    std::printf("  moderator: %s answered question %lld\n",
                a.get("from").asString().c_str(),
                static_cast<long long>(a.get("q").asInt()));
    ++g_answers;
  }
}

}  // namespace

int main() {
  SimNetwork net(2468);
  net.setDefaultLink(LinkParams{microseconds(500), microseconds(250), 0, 0});

  // The registry: a dapplet anyone can register with.
  Dapplet registryD(net, "registry");
  DirectoryServer registry(registryD);

  // Panelists self-register their session-control inboxes.
  auto makePanelist = [&](const std::string& name) {
    auto d = std::make_unique<Dapplet>(net, name);
    auto agent = std::make_unique<SessionAgent>(*d);
    agent->registerApp("qa", [](SessionContext& ctx) {
      if (ctx.params().at("role").asString() == "moderator") {
        moderatorRole(ctx);
      } else {
        panelistRole(ctx);
      }
    });
    DirectoryClient self(*d, registry.ref());
    self.registerName("panel." + name, agent->controlRef());
    return std::pair(std::move(d), std::move(agent));
  };
  auto [ann, annAgent] = makePanelist("ann");
  auto [raj, rajAgent] = makePanelist("raj");

  // The moderator discovers the current panel through the registry.
  Dapplet modD(net, "moderator");
  SessionAgent modAgent(modD);
  modAgent.registerApp("qa", [](SessionContext& ctx) {
    moderatorRole(ctx);
  });
  DirectoryClient discovery(modD, registry.ref());
  discovery.registerName("panel.moderator", modAgent.controlRef());
  Directory panel = discovery.list("panel.");
  std::printf("registry lists %zu participants\n", panel.size());

  const auto roleParam = [](const std::string& role) {
    ValueMap m;
    m["role"] = Value(role);
    return Value(std::move(m));
  };

  Initiator initiator(modD);
  Initiator::Plan plan;
  plan.app = "qa";
  plan.members.push_back(Initiator::member(panel, "panel.moderator",
                                           {"answers"},
                                           roleParam("moderator")));
  for (const std::string name : {"panel.ann", "panel.raj"}) {
    plan.members.push_back(Initiator::member(panel, name, {"questions"},
                                             roleParam("panelist")));
    plan.edges.push_back({name, "answers", "panel.moderator", "answers"});
  }
  auto result = initiator.establish(plan);
  if (!result.ok) {
    std::printf("session failed to establish\n");
    return 1;
  }
  std::printf("Q&A session %s established with 2 panelists\n",
              result.sessionId.c_str());

  // Ask round 1 directly through a moderator-owned outbox bound to the
  // panelists' session inboxes via the directory-returned refs... the
  // moderator's role owns the session ports, so the simplest way for main
  // to inject questions is a plain outbox to each panelist's session inbox
  // — but those are session-private.  Instead the initiator *grows* the
  // session with a "question desk" member whose wiring fans questions out.
  Dapplet deskD(net, "desk");
  SessionAgent deskAgent(deskD);
  std::atomic<bool> deskReady{false};
  deskAgent.registerApp("qa", [&](SessionContext& ctx) {
    Outbox& questions = ctx.outbox("ask");
    for (int n = 1; n <= 3; ++n) {
      DataMessage q("question");
      q.set("n", Value(n));
      questions.send(q);
    }
    deskReady = true;
    while (!ctx.stopToken().stop_requested()) {
      std::this_thread::sleep_for(milliseconds(5));
    }
  });
  DirectoryClient deskClient(deskD, registry.ref());
  deskClient.registerName("panel.desk", deskAgent.controlRef());

  auto deskPlan = Initiator::member(discovery.list("panel."), "panel.desk",
                                    {}, roleParam("desk"));
  const bool grown = initiator.addMember(
      result.sessionId, deskPlan,
      {{"panel.desk", "ask", "panel.ann", "questions"},
       {"panel.desk", "ask", "panel.raj", "questions"}},
      seconds(10));
  std::printf("session grew with a question desk: %s\n",
              grown ? "yes" : "NO");
  while (g_answers < 6) std::this_thread::sleep_for(milliseconds(5));
  std::printf("both panelists answered 3 questions (6 answers)\n");

  // Shrink: raj leaves the panel mid-session.
  initiator.removeMember(result.sessionId, "panel.raj");
  std::printf("raj removed from the session; active sessions at raj: %zu\n",
              rajAgent->activeSessions().size());

  initiator.terminate(result.sessionId);
  std::printf("session terminated.\n");

  modD.stop();
  deskD.stop();
  registryD.stop();
  ann->stop();
  raj->stop();
  return 0;
}
