// The paper's second example (§2.1): collaborative distributed design.
//
//   $ ./design_collab
//
// Four designers at different sites edit a 6-part document.  Write access
// is controlled by the token read/write protocol of §4.1 (one token to
// read, all tokens to write); every edit is broadcast to the team, and the
// demo verifies that all replicas converge to the same checksum.
#include <cstdio>
#include <memory>
#include <vector>

#include "dapple/apps/design.hpp"
#include "dapple/net/sim.hpp"

using namespace dapple;

int main() {
  SimNetwork net(99);
  net.setDefaultLink(LinkParams{milliseconds(1), microseconds(500), 0, 0});

  const std::vector<std::string> names = {"ava", "ben", "carla", "dmitri"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (std::size_t i = 0; i < names.size(); ++i) {
    DappletConfig cfg;
    cfg.host = static_cast<std::uint32_t>(i + 1);  // one site each
    dapplets.push_back(std::make_unique<Dapplet>(net, names[i], cfg));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    apps::registerDesignApp(*agents.back());
    directory.put(names[i], agents.back()->controlRef());
  }

  Dapplet lead(net, "lead");
  Initiator initiator(lead);
  auto plan = apps::designPlan(directory, names, /*parts=*/6,
                               /*opsPerMember=*/40, /*writePct=*/30,
                               /*seed=*/4242);
  plan.phaseTimeout = seconds(20);
  auto result = initiator.establish(plan);
  if (!result.ok) {
    std::printf("design session failed to establish\n");
    return 1;
  }
  std::printf("design session %s: %zu designers editing 6 parts\n",
              result.sessionId.c_str(), names.size());

  auto done = initiator.awaitCompletion(result.sessionId, seconds(60));
  std::int64_t checksum = -1;
  bool converged = true;
  for (const auto& [member, value] : done) {
    auto outcome = apps::parseDesignOutcome(value);
    std::printf("  %-8s reads=%-4lld writes=%-4lld checksum=%lld\n",
                member.c_str(), static_cast<long long>(outcome.reads),
                static_cast<long long>(outcome.writes),
                static_cast<long long>(outcome.finalChecksum));
    if (checksum < 0) checksum = outcome.finalChecksum;
    converged = converged && (outcome.finalChecksum == checksum);
  }
  std::printf("replicas converged: %s\n",
              converged ? "yes" : "NO (bug!)");
  initiator.terminate(result.sessionId);

  lead.stop();
  for (auto& d : dapplets) d->stop();
  return converged ? 0 : 1;
}
