// Collaborative whiteboard: the "collaborative environments" of the
// paper's abstract, built on ordered multicast.
//
//   $ ./whiteboard
//
// Four users concurrently draw strokes.  Their edits go through a
// TotalOrderGroup, so every replica applies the same strokes in the same
// order and all whiteboards converge to identical pictures — no central
// server, just the §4.2 timestamp order.  A causal group carries the chat
// sidebar, where only cause/effect order matters.
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/services/clocks/causal_order.hpp"
#include "dapple/services/clocks/total_order.hpp"
#include "dapple/util/rng.hpp"

using namespace dapple;

namespace {

constexpr std::size_t kUsers = 4;
constexpr int kStrokesPerUser = 12;
constexpr std::size_t kCells = 16;  // a tiny 1-D "canvas"

/// Applies a stroke; last writer (in delivery order) wins per cell.
struct Canvas {
  std::vector<std::int64_t> cells = std::vector<std::int64_t>(kCells, -1);

  void apply(const Value& stroke) {
    cells[static_cast<std::size_t>(stroke.at("cell").asInt())] =
        stroke.at("color").asInt();
  }

  std::string render() const {
    std::string out;
    for (std::int64_t c : cells) {
      out += c < 0 ? '.' : static_cast<char>('A' + c);
    }
    return out;
  }
};

}  // namespace

int main() {
  SimNetwork net(4242);
  net.setDefaultLink(LinkParams{milliseconds(1), microseconds(700), 0, 0});

  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TotalOrderGroup>> boards;
  std::vector<std::unique_ptr<CausalGroup>> chats;
  for (std::size_t i = 0; i < kUsers; ++i) {
    dapplets.push_back(
        std::make_unique<Dapplet>(net, "user" + std::to_string(i)));
    boards.push_back(
        std::make_unique<TotalOrderGroup>(*dapplets.back(), "board"));
    chats.push_back(
        std::make_unique<CausalGroup>(*dapplets.back(), "chat"));
  }
  std::vector<InboxRef> boardRefs;
  std::vector<InboxRef> chatRefs;
  for (auto& b : boards) boardRefs.push_back(b->ref());
  for (auto& c : chats) chatRefs.push_back(c->ref());
  for (std::size_t i = 0; i < kUsers; ++i) {
    boards[i]->attach(boardRefs, i);
    chats[i]->attach(chatRefs, i);
  }

  // Everyone scribbles concurrently.
  std::vector<std::thread> users;
  for (std::size_t i = 0; i < kUsers; ++i) {
    users.emplace_back([&, i] {
      Rng rng(i * 101 + 7);
      for (int s = 0; s < kStrokesPerUser; ++s) {
        ValueMap stroke;
        stroke["cell"] = Value(static_cast<long long>(rng.below(kCells)));
        stroke["color"] = Value(static_cast<long long>(i));
        boards[i]->publish(Value(std::move(stroke)));
        std::this_thread::sleep_for(microseconds(rng.below(800)));
      }
    });
  }
  for (auto& t : users) t.join();

  // Chat: a causally-chained exchange.
  chats[0]->publish(Value("anyone like the top-left corner?"));
  (void)chats[1]->take(seconds(10));
  chats[1]->publish(Value("yes - leave it as is"));

  // Each user applies every delivered stroke to a private replica.
  constexpr int kTotal = static_cast<int>(kUsers) * kStrokesPerUser;
  std::vector<Canvas> canvases(kUsers);
  for (std::size_t i = 0; i < kUsers; ++i) {
    for (int s = 0; s < kTotal; ++s) {
      canvases[i].apply(boards[i]->take(seconds(30)).payload);
    }
  }

  std::printf("whiteboard replicas after %d concurrent strokes:\n", kTotal);
  bool converged = true;
  for (std::size_t i = 0; i < kUsers; ++i) {
    std::printf("  user%zu: %s\n", i, canvases[i].render().c_str());
    converged = converged && canvases[i].render() == canvases[0].render();
  }
  std::printf("replicas identical: %s\n",
              converged ? "yes" : "NO (bug!)");
  std::printf("chat (causal): user1 saw the question before answering.\n");

  for (auto& d : dapplets) d->stop();
  return converged ? 0 : 1;
}
