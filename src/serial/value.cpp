#include "dapple/serial/value.hpp"

#include <algorithm>

namespace dapple {

const Value& Value::at(const std::string& key) const {
  const auto& m = asMap();
  const auto it = m.find(key);
  if (it == m.end()) throw StateError("Value: missing key '" + key + "'");
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return isMap() && asMap().count(key) != 0;
}

void Value::encode(WireWriter& w) const {
  if (isNull()) {
    w.writeNull();
  } else if (isBool()) {
    w.writeBool(asBool());
  } else if (isInt()) {
    w.writeI64(asInt());
  } else if (isDouble()) {
    w.writeF64(std::get<double>(data_));
  } else if (isString()) {
    w.writeString(asString());
  } else if (isList()) {
    const auto& list = asList();
    w.beginList(list.size());
    for (const Value& v : list) v.encode(w);
  } else {
    const auto& map = asMap();
    w.beginMap(map.size());
    for (const auto& [key, value] : map) {
      w.writeString(key);
      value.encode(w);
    }
  }
}

Value Value::decode(WireReader& r) {
  switch (r.peek()) {
    case 'n':
      r.readNull();
      return Value();
    case 'b':
      return Value(r.readBool());
    case 'i':
      return Value(static_cast<long long>(r.readI64()));
    case 'd':
      return Value(r.readF64());
    case 's':
      return Value(r.readString());
    case 'l': {
      const std::size_t count = r.beginList();
      ValueList list;
      // A corrupt frame can claim any count; cap the speculative reserve and
      // let the element reads hit end-of-input (SerializationError) instead
      // of attempting a huge allocation up front.
      list.reserve(std::min<std::size_t>(count, 1024));
      for (std::size_t i = 0; i < count; ++i) list.push_back(decode(r));
      return Value(std::move(list));
    }
    case 'm': {
      const std::size_t count = r.beginMap();
      ValueMap map;
      for (std::size_t i = 0; i < count; ++i) {
        std::string key = r.readString();
        map.emplace(std::move(key), decode(r));
      }
      return Value(std::move(map));
    }
    default:
      throw SerializationError("Value: unknown wire tag at offset " +
                               std::to_string(r.offset()));
  }
}

std::string Value::toWire(WireCodec codec) const {
  WireWriter w(codec);
  encode(w);
  return std::move(w).str();
}

Value Value::fromWire(std::string_view wire) {
  WireReader r(wire);
  Value v = decode(r);
  if (!r.atEnd()) {
    throw SerializationError("Value: trailing wire data at offset " +
                             std::to_string(r.offset()));
  }
  return v;
}

}  // namespace dapple
