// Registers the message types shipped with the serial library.
//
// Registration happens inside a function (called from
// MessageRegistry::instance()) rather than via a file-scope static
// registrar: this library is linked statically, and the linker would drop
// an object file whose only contents are unreferenced static initializers.
#include "dapple/serial/data_message.hpp"

namespace dapple::detail {

void registerBuiltinMessages(MessageRegistry& registry) {
  registry.addType<DataMessage>();
}

}  // namespace dapple::detail
