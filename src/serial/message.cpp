#include "dapple/serial/message.hpp"

#include <mutex>
#include <unordered_map>

namespace dapple {

namespace detail {
void registerBuiltinMessages(MessageRegistry&);  // builtin_messages.cpp
}

struct MessageRegistry::Impl {
  mutable std::mutex mutex;
  std::unordered_map<std::string, Factory> factories;
};

MessageRegistry& MessageRegistry::instance() {
  static MessageRegistry registry;
  static const bool builtinsOnce = [] {
    detail::registerBuiltinMessages(registry);
    return true;
  }();
  (void)builtinsOnce;
  return registry;
}

MessageRegistry::Impl& MessageRegistry::impl() const {
  static Impl impl;
  return impl;
}

void MessageRegistry::add(std::string_view name, Factory factory) {
  Impl& i = impl();
  std::scoped_lock lock(i.mutex);
  i.factories.emplace(std::string(name), std::move(factory));
}

std::unique_ptr<Message> MessageRegistry::create(std::string_view name) const {
  const Impl& i = impl();
  std::scoped_lock lock(i.mutex);
  const auto it = i.factories.find(std::string(name));
  if (it == i.factories.end()) {
    throw SerializationError("unknown message type '" + std::string(name) +
                             "'");
  }
  return it->second();
}

bool MessageRegistry::knows(std::string_view name) const {
  const Impl& i = impl();
  std::scoped_lock lock(i.mutex);
  return i.factories.count(std::string(name)) != 0;
}

std::string encodeMessage(const Message& msg, WireCodec codec) {
  WireWriter w(codec);
  w.writeString(msg.typeName());
  msg.encodeFields(w);
  return std::move(w).str();
}

std::string_view encodeMessageInto(const Message& msg, WireCodec codec,
                                   std::string& scratch) {
  WireWriter w(codec, scratch);
  w.writeString(msg.typeName());
  msg.encodeFields(w);
  return scratch;
}

std::unique_ptr<Message> decodeMessage(std::string_view wire) {
  WireReader r(wire);
  const std::string name = r.readString();
  std::unique_ptr<Message> msg = MessageRegistry::instance().create(name);
  msg->decodeFields(r);
  if (!r.atEnd()) {
    throw SerializationError("trailing wire data after message '" + name +
                             "' at offset " + std::to_string(r.offset()));
  }
  return msg;
}

}  // namespace dapple
