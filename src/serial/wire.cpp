#include "dapple/serial/wire.hpp"

#include <charconv>
#include <system_error>

// Text-codec slow paths only: the binary token paths are inline in
// wire.hpp (they are the fast path; see the layout note there).

namespace dapple {

const char* wireCodecName(WireCodec codec) {
  return codec == WireCodec::kBinary ? "binary" : "text";
}

void WireWriter::sep() {
  if (!out_->empty()) out_->push_back(' ');
}

void WireWriter::writeI64Text(std::int64_t v) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_->push_back('i');
  out_->append(buf, ptr);
}

void WireWriter::writeU64Text(std::uint64_t v) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_->push_back('u');
  out_->append(buf, ptr);
}

void WireWriter::writeF64Text(double v) {
  sep();
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_->push_back('d');
  out_->append(buf, ptr);
}

void WireWriter::writeBoolText(bool v) {
  sep();
  out_->append(v ? "b1" : "b0");
}

void WireWriter::beginStringText(std::size_t len) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, len);
  out_->push_back('s');
  out_->append(buf, ptr);
  out_->push_back(':');
}

void WireWriter::writeNullText() {
  sep();
  out_->push_back('n');
}

void WireWriter::beginListText(std::size_t count) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, count);
  out_->push_back('l');
  out_->append(buf, ptr);
}

void WireWriter::beginMapText(std::size_t count) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, count);
  out_->push_back('m');
  out_->append(buf, ptr);
}

void WireReader::fail(const char* what) const {
  throw SerializationError(std::string("wire: ") + what + " at offset " +
                           std::to_string(pos_));
}

char WireReader::peek() const {
  if (codec_ == WireCodec::kBinary) {
    if (pos_ >= wire_.size()) return '\0';
    switch (static_cast<unsigned char>(wire_[pos_])) {
      case wire_detail::kBinNull:
        return 'n';
      case wire_detail::kBinFalse:
      case wire_detail::kBinTrue:
        return 'b';
      case wire_detail::kBinI64:
        return 'i';
      case wire_detail::kBinU64:
        return 'u';
      case wire_detail::kBinF64:
        return 'd';
      case wire_detail::kBinStr:
        return 's';
      case wire_detail::kBinList:
        return 'l';
      case wire_detail::kBinMap:
        return 'm';
      default:
        return '?';
    }
  }
  std::size_t p = pos_;
  while (p < wire_.size() && wire_[p] == ' ') ++p;
  return p < wire_.size() ? wire_[p] : '\0';
}

char WireReader::take() {
  while (pos_ < wire_.size() && wire_[pos_] == ' ') ++pos_;
  if (pos_ >= wire_.size()) fail("unexpected end of input");
  return wire_[pos_++];
}

namespace {

// Scans a number immediately following a text tag character.
template <typename T>
T parseNumber(std::string_view wire, std::size_t& pos, const char* what) {
  T value{};
  auto [ptr, ec] =
      std::from_chars(wire.data() + pos, wire.data() + wire.size(), value);
  if (ec != std::errc{}) {
    throw SerializationError(std::string("wire: bad ") + what + " at offset " +
                             std::to_string(pos));
  }
  pos = static_cast<std::size_t>(ptr - wire.data());
  return value;
}

}  // namespace

std::int64_t WireReader::readI64Text() {
  if (take() != 'i') fail("expected i64 token");
  return parseNumber<std::int64_t>(wire_, pos_, "i64");
}

std::uint64_t WireReader::readU64Text() {
  if (take() != 'u') fail("expected u64 token");
  return parseNumber<std::uint64_t>(wire_, pos_, "u64");
}

double WireReader::readF64Text() {
  if (take() != 'd') fail("expected f64 token");
  return parseNumber<double>(wire_, pos_, "f64");
}

bool WireReader::readBoolText() {
  if (take() != 'b') fail("expected bool token");
  const char c = take();
  if (c == '0') return false;
  if (c == '1') return true;
  fail("bad bool value");
}

std::size_t WireReader::readStringHeaderText() {
  if (take() != 's') fail("expected string token");
  const std::size_t len = parseNumber<std::size_t>(wire_, pos_, "string len");
  if (pos_ >= wire_.size() || wire_[pos_] != ':') fail("expected ':'");
  ++pos_;
  return len;
}

void WireReader::readNullText() {
  if (take() != 'n') fail("expected null token");
}

std::size_t WireReader::beginListText() {
  if (take() != 'l') fail("expected list token");
  return parseNumber<std::size_t>(wire_, pos_, "list count");
}

std::size_t WireReader::beginMapText() {
  if (take() != 'm') fail("expected map token");
  return parseNumber<std::size_t>(wire_, pos_, "map count");
}

}  // namespace dapple
