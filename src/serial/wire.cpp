#include "dapple/serial/wire.hpp"

#include <charconv>
#include <system_error>

namespace dapple {

void TextWriter::sep() {
  if (!out_.empty()) out_.push_back(' ');
}

void TextWriter::writeI64(std::int64_t v) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.push_back('i');
  out_.append(buf, ptr);
}

void TextWriter::writeU64(std::uint64_t v) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.push_back('u');
  out_.append(buf, ptr);
}

void TextWriter::writeF64(double v) {
  sep();
  char buf[40];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out_.push_back('d');
  out_.append(buf, ptr);
}

void TextWriter::writeBool(bool v) {
  sep();
  out_.append(v ? "b1" : "b0");
}

void TextWriter::writeString(std::string_view v) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v.size());
  out_.push_back('s');
  out_.append(buf, ptr);
  out_.push_back(':');
  out_.append(v);
}

void TextWriter::beginString(std::size_t len) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, len);
  out_.push_back('s');
  out_.append(buf, ptr);
  out_.push_back(':');
}

void TextWriter::writeNull() {
  sep();
  out_.push_back('n');
}

void TextWriter::beginList(std::size_t count) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, count);
  out_.push_back('l');
  out_.append(buf, ptr);
}

void TextWriter::beginMap(std::size_t count) {
  sep();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, count);
  out_.push_back('m');
  out_.append(buf, ptr);
}

void TextReader::fail(const std::string& what) const {
  throw SerializationError("wire: " + what + " at offset " +
                           std::to_string(pos_));
}

char TextReader::peek() const {
  std::size_t p = pos_;
  while (p < wire_.size() && wire_[p] == ' ') ++p;
  return p < wire_.size() ? wire_[p] : '\0';
}

char TextReader::take() {
  while (pos_ < wire_.size() && wire_[pos_] == ' ') ++pos_;
  if (pos_ >= wire_.size()) fail("unexpected end of input");
  return wire_[pos_++];
}

namespace {

// Scans a number immediately following a tag character.
template <typename T>
T parseNumber(std::string_view wire, std::size_t& pos,
              const TextReader& reader, const char* what) {
  T value{};
  auto [ptr, ec] =
      std::from_chars(wire.data() + pos, wire.data() + wire.size(), value);
  if (ec != std::errc{}) {
    throw SerializationError(std::string("wire: bad ") + what + " at offset " +
                             std::to_string(pos));
  }
  (void)reader;
  pos = static_cast<std::size_t>(ptr - wire.data());
  return value;
}

}  // namespace

std::int64_t TextReader::readI64() {
  if (take() != 'i') fail("expected i64 token");
  return parseNumber<std::int64_t>(wire_, pos_, *this, "i64");
}

std::uint64_t TextReader::readU64() {
  if (take() != 'u') fail("expected u64 token");
  return parseNumber<std::uint64_t>(wire_, pos_, *this, "u64");
}

double TextReader::readF64() {
  if (take() != 'd') fail("expected f64 token");
  return parseNumber<double>(wire_, pos_, *this, "f64");
}

bool TextReader::readBool() {
  if (take() != 'b') fail("expected bool token");
  const char c = take();
  if (c == '0') return false;
  if (c == '1') return true;
  fail("bad bool value");
}

std::string TextReader::readString() { return std::string(readStringView()); }

std::string_view TextReader::readStringView() {
  if (take() != 's') fail("expected string token");
  const auto len = parseNumber<std::size_t>(wire_, pos_, *this, "string len");
  if (pos_ >= wire_.size() || wire_[pos_] != ':') fail("expected ':'");
  ++pos_;
  if (wire_.size() - pos_ < len) fail("truncated string payload");
  std::string_view out = wire_.substr(pos_, len);
  pos_ += len;
  return out;
}

void TextReader::readNull() {
  if (take() != 'n') fail("expected null token");
}

std::size_t TextReader::beginList() {
  if (take() != 'l') fail("expected list token");
  return parseNumber<std::size_t>(wire_, pos_, *this, "list count");
}

std::size_t TextReader::beginMap() {
  if (take() != 'm') fail("expected map token");
  return parseNumber<std::size_t>(wire_, pos_, *this, "map count");
}

}  // namespace dapple
