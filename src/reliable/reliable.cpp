#include "dapple/reliable/reliable.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "reliable";
constexpr std::uint64_t kKindData = 0;
constexpr std::uint64_t kKindAck = 1;
constexpr std::size_t kMaxSack = 32;

/// Key of a stream as seen from this endpoint: peer node + stream id.
struct StreamKey {
  NodeAddress peer;
  std::uint64_t streamId;
  friend bool operator==(const StreamKey&, const StreamKey&) = default;
};

struct StreamKeyHash {
  std::size_t operator()(const StreamKey& k) const noexcept {
    return std::hash<NodeAddress>{}(k.peer) ^
           std::hash<std::uint64_t>{}(k.streamId * 0x9e3779b97f4a7c15ull);
  }
};

/// One receive stream's acknowledgement: the receiver's nextExpected
/// (cumulative) plus up to kMaxSack out-of-order sequence numbers.  ACK
/// datagrams and DATA piggyback slots carry a *list* of blocks so a single
/// datagram acknowledges every stream owed to that peer at once.
struct AckBlock {
  std::uint64_t streamId = 0;
  std::uint64_t epoch = 0;
  std::uint64_t cumAck = 0;
  std::vector<std::uint64_t> sacks;
};

void writeAckBlocks(TextWriter& w, const std::vector<AckBlock>& blocks) {
  w.beginList(blocks.size());
  for (const AckBlock& b : blocks) {
    w.writeU64(b.streamId);
    w.writeU64(b.epoch);
    w.writeU64(b.cumAck);
    w.beginList(b.sacks.size());
    for (std::uint64_t s : b.sacks) w.writeU64(s);
  }
}

std::vector<AckBlock> readAckBlocks(TextReader& r) {
  const std::size_t n = r.beginList();
  std::vector<AckBlock> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AckBlock b;
    b.streamId = r.readU64();
    b.epoch = r.readU64();
    b.cumAck = r.readU64();
    const std::size_t k = r.beginList();
    b.sacks.reserve(k);
    for (std::size_t j = 0; j < k; ++j) b.sacks.push_back(r.readU64());
    blocks.push_back(std::move(b));
  }
  return blocks;
}

/// DATA frame header: every token up to and including the payload string's
/// `s<len>:` prefix.  The payload bytes follow raw; they are gathered from
/// the shared envelope only at transmit time (see Impl::assembleData).
std::string encodeDataHead(std::uint64_t streamId, std::uint64_t epoch,
                           std::uint64_t seq,
                           const std::vector<AckBlock>& piggyback,
                           std::size_t payloadLen) {
  TextWriter w;
  w.writeU64(kKindData);
  w.writeU64(streamId);
  w.writeU64(epoch);
  w.writeU64(seq);
  writeAckBlocks(w, piggyback);
  w.beginString(payloadLen);
  return std::move(w).str();
}

std::string encodeAck(const std::vector<AckBlock>& blocks) {
  TextWriter w;
  w.writeU64(kKindAck);
  writeAckBlocks(w, blocks);
  return std::move(w).str();
}

}  // namespace

struct ReliableEndpoint::Impl {
  Impl(std::shared_ptr<Endpoint> rawEp, ReliableConfig config,
       obs::MetricsRegistry* metrics, ClockSource* clock)
      : raw(std::move(rawEp)),
        cfg(config),
        clk(clock != nullptr ? clock : &ClockSource::system()) {
    if (metrics != nullptr) {
      // Resolve once; recording below is wait-free.
      mDatagramsIn = &metrics->counter("net.datagrams_in");
      mDatagramsOut = &metrics->counter("net.datagrams_out");
      mBatchSize = &metrics->histogram("net.batch_size");
      mAckLatencyUs = &metrics->histogram("reliable.ack_latency_us");
      mReorderDepth = &metrics->histogram("reliable.reorder_depth");
      trace = &metrics->trace();
    }
  }

  std::shared_ptr<Endpoint> raw;
  const ReliableConfig cfg;
  ClockSource* const clk;  ///< all timestamps, timer ticks and flush waits

  // Optional instrumentation (null when no registry was supplied).
  obs::Counter* mDatagramsIn = nullptr;
  obs::Counter* mDatagramsOut = nullptr;
  obs::Histogram* mBatchSize = nullptr;     ///< datagrams per sendBatch submit
  obs::Histogram* mAckLatencyUs = nullptr;  ///< send -> cumulative/selective ack
  obs::Histogram* mReorderDepth = nullptr;  ///< buffered frames per gap event
  obs::TraceRing* trace = nullptr;

  mutable std::mutex mutex;
  std::condition_variable flushed;

  /// Timer pacing: the retransmission scan parks here between ticks so a
  /// virtual clock can advance straight to the next tick instead of the
  /// thread wall-sleeping (`timerMutex` only guards the parked wait).
  std::mutex timerMutex;
  std::condition_variable timerWake;

  DeliverFn deliver;
  FailFn onFailure;

  /// Sender-side state per outgoing stream.
  struct SendStream {
    std::uint64_t epoch = 0;  ///< bumped by resetStream(); resyncs receiver
    std::uint64_t nextSeq = 0;
    bool failed = false;
    std::string failReason;
    struct Pending {
      /// Per-destination head + refcounted shared body.  Retransmit state
      /// holds a reference, not a frame copy; the wire bytes (frame header
      /// + head + body) are assembled fresh at each transmission.
      WireBuffer envelope;
      TimePoint firstSent;
      TimePoint nextResend;
      Duration backoff;
    };
    std::map<std::uint64_t, Pending> pending;  // seq -> un-acked frame
  };
  std::unordered_map<StreamKey, SendStream, StreamKeyHash> sendStreams;

  /// Receiver-side state per incoming stream.
  struct RecvStream {
    std::uint64_t epoch = 0;
    std::uint64_t nextExpected = 0;
    std::map<std::uint64_t, std::string> buffered;  // out-of-order frames
    // ---- coalesced-ack state ------------------------------------------
    bool ackPending = false;   ///< >=1 arrival not yet acknowledged
    TimePoint pendingSince{};  ///< when ackPending last became true
    std::uint32_t pendingFrames = 0;  ///< arrivals folded into pending ack
  };
  std::unordered_map<StreamKey, RecvStream, StreamKeyHash> recvStreams;

  /// Peers owed an acknowledgement -> their pending stream keys.  Entries
  /// can go stale (the flag cleared by a piggyback ride or an earlier
  /// flush); collectAckBlocksLocked skips those.
  std::unordered_map<NodeAddress, std::vector<StreamKey>> ackQueue;

  Stats stats;
  bool closed = false;
  std::jthread timer;

  // ---------------------------------------------------------------------

  bool anyPendingLocked() const {
    for (const auto& [key, ss] : sendStreams) {
      if (!ss.pending.empty() && !ss.failed) return true;
    }
    return false;
  }

  /// Gathers frame header + envelope (head + shared body) into the final
  /// wire bytes — the single point on the transmit path where payload bytes
  /// are copied.  Caller holds `mutex` (stats).
  std::string assembleData(const std::string& frameHead,
                           const WireBuffer& envelope) {
    std::string out;
    out.reserve(frameHead.size() + envelope.size());
    out.append(frameHead);
    envelope.appendTo(out);
    ++stats.payloadCopies;
    return out;
  }

  /// Emits and clears every pending ack block owed to `peer`.  Caller holds
  /// `mutex` and is responsible for putting the blocks on the wire (either
  /// a standalone ACK datagram or a DATA piggyback).
  std::vector<AckBlock> collectAckBlocksLocked(const NodeAddress& peer) {
    std::vector<AckBlock> blocks;
    const auto it = ackQueue.find(peer);
    if (it == ackQueue.end()) return blocks;
    for (const StreamKey& key : it->second) {
      const auto rit = recvStreams.find(key);
      if (rit == recvStreams.end()) continue;
      RecvStream& rs = rit->second;
      if (!rs.ackPending) continue;  // stale queue entry
      AckBlock b;
      b.streamId = key.streamId;
      b.epoch = rs.epoch;
      b.cumAck = rs.nextExpected;
      for (const auto& [bufSeq, unused] : rs.buffered) {
        b.sacks.push_back(bufSeq);
        if (b.sacks.size() >= kMaxSack) break;
      }
      ++stats.acksSent;
      if (rs.pendingFrames > 1) stats.acksCoalesced += rs.pendingFrames - 1;
      rs.ackPending = false;
      rs.pendingFrames = 0;
      blocks.push_back(std::move(b));
    }
    ackQueue.erase(it);
    return blocks;
  }

  void onDatagram(const NodeAddress& src, std::string_view payload) {
    if (mDatagramsIn != nullptr) mDatagramsIn->inc();
    TextReader r(payload);
    try {
      const std::uint64_t kind = r.readU64();
      if (kind == kKindData) {
        const std::uint64_t streamId = r.readU64();
        const std::uint64_t epoch = r.readU64();
        const std::uint64_t seq = r.readU64();
        const std::vector<AckBlock> piggyback = readAckBlocks(r);
        const std::string_view body = r.readStringView();
        if (!piggyback.empty()) onAckBlocks(src, piggyback);
        onData(src, streamId, epoch, seq, body);
      } else if (kind == kKindAck) {
        onAckBlocks(src, readAckBlocks(r));
      }
    } catch (const SerializationError& e) {
      DAPPLE_LOG(kDebug, kLog) << "malformed frame from " << src.toString()
                               << ": " << e.what();
    }
  }

  void onData(const NodeAddress& src, std::uint64_t streamId,
              std::uint64_t epoch, std::uint64_t seq, std::string_view body) {
    bool deliverHead = false;
    std::string_view headPayload;
    std::vector<std::string> drained;
    std::string ackDatagram;
    DeliverFn deliverFn;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      const StreamKey key{src, streamId};
      RecvStream& rs = recvStreams[key];
      if (epoch > rs.epoch) {
        // The sender reset the stream (e.g. after a healed partition):
        // abandon the old epoch's reassembly state and resynchronize.
        rs = RecvStream{};
        rs.epoch = epoch;
      } else if (epoch < rs.epoch) {
        return;  // stale frame from a pre-reset retransmission
      }
      if (seq < rs.nextExpected || rs.buffered.count(seq) != 0) {
        ++stats.duplicates;
        // A duplicate means our ack was lost or is still in flight.  The
        // re-ack folds into the coalesced flush below instead of costing an
        // immediate datagram — a burst of dups used to trigger one ack
        // datagram each (an ack storm).
        ++stats.dupAcksSuppressed;
      } else if (seq == rs.nextExpected) {
        // In order: delivered as a view into the transport's receive
        // buffer, zero copies.
        deliverHead = true;
        headPayload = body;
        ++rs.nextExpected;
        // Drain any directly following buffered frames.
        auto it = rs.buffered.begin();
        while (it != rs.buffered.end() && it->first == rs.nextExpected) {
          drained.push_back(std::move(it->second));
          it = rs.buffered.erase(it);
          ++rs.nextExpected;
        }
      } else {
        // Out of order: the one place the receive path pays an owned copy
        // (the view dies with the datagram; the frame must outlive it).
        rs.buffered.emplace(seq, std::string(body));
        ++stats.payloadCopies;
        ++stats.outOfOrderBuffered;
        if (mReorderDepth != nullptr) mReorderDepth->record(rs.buffered.size());
      }
      if (!rs.ackPending) {
        rs.ackPending = true;
        rs.pendingSince = clk->now();
        ackQueue[src].push_back(key);
      }
      ++rs.pendingFrames;
      // Flush once ackEvery arrivals have coalesced; otherwise the timer
      // flushes after ackDelay, or the next outgoing DATA frame to this
      // peer piggybacks the blocks for free.  Deferral is safe for SACK
      // promptness because the sender is timer-driven: ackDelay +
      // tickInterval is well under the rto in every configuration, so the
      // sender always hears about buffered frames before it retransmits.
      if (rs.pendingFrames >= cfg.ackEvery) {
        const std::vector<AckBlock> blocks = collectAckBlocksLocked(src);
        if (!blocks.empty()) {
          ackDatagram = encodeAck(blocks);
          ++stats.ackFramesSent;
        }
      }
      stats.delivered += (deliverHead ? 1 : 0) + drained.size();
      deliverFn = deliver;
    }
    if (!ackDatagram.empty()) {
      raw->send(src, std::move(ackDatagram));
      if (mDatagramsOut != nullptr) mDatagramsOut->inc();
    }
    if (deliverFn) {
      if (deliverHead) deliverFn(src, streamId, headPayload);
      for (const std::string& p : drained) deliverFn(src, streamId, p);
    }
  }

  void onAckBlocks(const NodeAddress& src,
                   const std::vector<AckBlock>& blocks) {
    std::scoped_lock lock(mutex);
    bool ackedAny = false;
    const TimePoint now = clk->now();
    for (const AckBlock& b : blocks) {
      const auto it = sendStreams.find(StreamKey{src, b.streamId});
      if (it == sendStreams.end()) continue;
      SendStream& ss = it->second;
      if (b.epoch != ss.epoch) continue;  // ack for a previous epoch
      // cumAck = receiver's nextExpected: everything below is delivered.
      const auto ackedEnd = ss.pending.lower_bound(b.cumAck);
      if (mAckLatencyUs != nullptr) {
        // The newly acknowledged frames' send->ack round trips.  Walks only
        // entries being erased, so the cost scales with acked frames.
        for (auto it2 = ss.pending.begin(); it2 != ackedEnd; ++it2) {
          mAckLatencyUs->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - it2->second.firstSent)
                  .count()));
        }
      }
      ss.pending.erase(ss.pending.begin(), ackedEnd);
      for (std::uint64_t sack : b.sacks) {
        const auto it2 = ss.pending.find(sack);
        if (it2 == ss.pending.end()) continue;
        if (mAckLatencyUs != nullptr) {
          mAckLatencyUs->record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  now - it2->second.firstSent)
                  .count()));
        }
        ss.pending.erase(it2);
      }
      ackedAny = true;
    }
    if (ackedAny && !anyPendingLocked()) clk->notifyAll(flushed);
  }

  void tick() {
    std::vector<Datagram> batch;
    std::vector<std::tuple<NodeAddress, std::uint64_t, std::string>> failures;
    FailFn failFn;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      const TimePoint now = clk->now();
      for (auto& [key, ss] : sendStreams) {
        if (ss.failed) continue;
        for (auto& [seq, pending] : ss.pending) {
          if (now - pending.firstSent > cfg.deliveryTimeout) {
            ss.failed = true;
            ss.failReason = "delivery timeout on stream " +
                            std::to_string(key.streamId) + " to " +
                            key.peer.toString() + " (seq " +
                            std::to_string(seq) + ")";
            ++stats.failures;
            failures.emplace_back(key.peer, key.streamId, ss.failReason);
            break;
          }
          if (now >= pending.nextResend) {
            pending.backoff = std::min(pending.backoff * 2, cfg.maxRto);
            pending.nextResend = now + pending.backoff;
            const std::vector<AckBlock> piggyback =
                cfg.ackPiggyback ? collectAckBlocksLocked(key.peer)
                                 : std::vector<AckBlock>{};
            batch.push_back(Datagram{
                key.peer,
                assembleData(
                    encodeDataHead(key.streamId, ss.epoch, seq, piggyback,
                                   pending.envelope.size()),
                    pending.envelope)});
            ++stats.retransmits;
          }
        }
        if (ss.failed) {
          ss.pending.clear();
        }
      }
      // Deferred-ack flush: every peer holding a block older than ackDelay
      // gets ONE datagram carrying all of its pending blocks.
      std::vector<NodeAddress> duePeers;
      for (const auto& [peer, keys] : ackQueue) {
        for (const StreamKey& key : keys) {
          const auto rit = recvStreams.find(key);
          if (rit == recvStreams.end()) continue;
          const RecvStream& rs = rit->second;
          if (rs.ackPending && now - rs.pendingSince >= cfg.ackDelay) {
            duePeers.push_back(peer);
            break;
          }
        }
      }
      for (const NodeAddress& peer : duePeers) {
        const std::vector<AckBlock> blocks = collectAckBlocksLocked(peer);
        if (blocks.empty()) continue;
        batch.push_back(Datagram{peer, encodeAck(blocks)});
        ++stats.ackFramesSent;
      }
      if (!failures.empty() && !anyPendingLocked()) clk->notifyAll(flushed);
      failFn = onFailure;
    }
    if (!batch.empty()) {
      if (mBatchSize != nullptr) mBatchSize->record(batch.size());
      const std::size_t n = batch.size();
      raw->sendBatch(std::move(batch));
      if (mDatagramsOut != nullptr) mDatagramsOut->inc(n);
    }
    for (const auto& [dst, streamId, reason] : failures) {
      DAPPLE_LOG(kDebug, kLog) << "stream failed: " << reason;
      if (trace != nullptr) {
        trace->emit("reliable", "stream.fail", reason,
                    static_cast<std::int64_t>(streamId));
      }
      if (failFn) failFn(dst, streamId, reason);
    }
  }

  void runTimer(std::stop_token stop) {
    // A worker in virtual time: the clock advances to the next tick the
    // moment everything else is parked, so a lossy scenario's retransmit
    // schedule plays out in microseconds of wall time.
    ClockSource::WorkerScope workerScope(*clk);
    std::unique_lock lock(timerMutex);
    while (!stop.stop_requested()) {
      clk->waitFor(lock, timerWake, cfg.tickInterval,
                   [&] { return stop.stop_requested(); });
      if (stop.stop_requested()) break;
      lock.unlock();
      tick();
      lock.lock();
    }
  }
};

ReliableEndpoint::ReliableEndpoint(std::shared_ptr<Endpoint> raw,
                                   ReliableConfig config,
                                   obs::MetricsRegistry* metrics,
                                   ClockSource* clock)
    : impl_(std::make_unique<Impl>(std::move(raw), config, metrics, clock)) {
  impl_->raw->setHandler(
      [impl = impl_.get()](const NodeAddress& src, std::string_view payload) {
        impl->onDatagram(src, payload);
      });
  // Announce before spawn: a virtual clock advancing in the window before
  // the timer thread registers could leap past the delivery timeout and
  // fail streams that never got a single retransmit.
  impl_->clk->announceWorker();
  impl_->timer = std::jthread(
      [impl = impl_.get()](std::stop_token stop) { impl->runTimer(stop); });
}

ReliableEndpoint::~ReliableEndpoint() { close(); }

NodeAddress ReliableEndpoint::address() const { return impl_->raw->address(); }

void ReliableEndpoint::setDeliver(DeliverFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->deliver = std::move(fn);
}

void ReliableEndpoint::setOnFailure(FailFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->onFailure = std::move(fn);
}

std::uint64_t ReliableEndpoint::send(const NodeAddress& dst,
                                     std::uint64_t streamId,
                                     std::string payload) {
  std::vector<OutSend> one;
  one.push_back(OutSend{dst, std::move(payload)});
  return sendMany(std::move(one), streamId, Payload())[0];
}

std::vector<std::uint64_t> ReliableEndpoint::sendMany(
    std::vector<OutSend> sends, std::uint64_t streamId, Payload body) {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(sends.size());
  std::vector<Datagram> batch;
  batch.reserve(sends.size());
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->closed) throw ShutdownError("reliable endpoint closed");
    // All-or-nothing admission: probe every target stream before queueing
    // anything so a failed stream cannot leave a partial fan-out behind.
    for (const OutSend& s : sends) {
      const auto it = impl_->sendStreams.find(StreamKey{s.dst, streamId});
      if (it != impl_->sendStreams.end() && it->second.failed) {
        throw DeliveryError(it->second.failReason.empty()
                                ? "stream failed"
                                : it->second.failReason);
      }
    }
    const TimePoint now = impl_->clk->now();
    for (OutSend& s : sends) {
      Impl::SendStream& ss = impl_->sendStreams[StreamKey{s.dst, streamId}];
      const std::uint64_t seq = ss.nextSeq++;
      Impl::SendStream::Pending pending;
      pending.envelope = WireBuffer(std::move(s.head), body);
      pending.firstSent = now;
      pending.backoff = impl_->cfg.rto;
      pending.nextResend = now + pending.backoff;
      const std::vector<AckBlock> piggyback =
          impl_->cfg.ackPiggyback ? impl_->collectAckBlocksLocked(s.dst)
                                  : std::vector<AckBlock>{};
      batch.push_back(Datagram{
          s.dst, impl_->assembleData(
                     encodeDataHead(streamId, ss.epoch, seq, piggyback,
                                    pending.envelope.size()),
                     pending.envelope)});
      ss.pending.emplace(seq, std::move(pending));
      ++impl_->stats.dataSent;
      seqs.push_back(seq);
    }
  }
  // Transmit outside the lock: the raw endpoint has its own locking and a
  // delivery thread that re-enters this class, so holding our mutex across
  // the submit would invert the lock order.
  if (!batch.empty()) {
    if (impl_->mBatchSize != nullptr) impl_->mBatchSize->record(batch.size());
    const std::size_t n = batch.size();
    impl_->raw->sendBatch(std::move(batch));
    if (impl_->mDatagramsOut != nullptr) impl_->mDatagramsOut->inc(n);
  }
  return seqs;
}

bool ReliableEndpoint::flush(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  return impl_->clk->waitFor(lock, impl_->flushed, timeout,
                             [this] { return !impl_->anyPendingLocked(); });
}

void ReliableEndpoint::resetStream(const NodeAddress& dst,
                                   std::uint64_t streamId) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->sendStreams.find(StreamKey{dst, streamId});
  if (it != impl_->sendStreams.end()) {
    it->second.failed = false;
    it->second.failReason.clear();
    it->second.pending.clear();
    // New epoch: undelivered old-epoch frames are abandoned and the
    // receiver resynchronizes from sequence 0.
    ++it->second.epoch;
    it->second.nextSeq = 0;
  }
}

void ReliableEndpoint::close() {
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->closed) return;
    impl_->closed = true;
  }
  impl_->timer.request_stop();
  impl_->clk->notifyAll(impl_->timerWake);  // wake the parked tick wait
  if (impl_->timer.joinable()) impl_->timer.join();
  impl_->raw->close();
  impl_->clk->notifyAll(impl_->flushed);
}

ReliableEndpoint::Stats ReliableEndpoint::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
