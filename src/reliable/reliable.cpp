#include "dapple/reliable/reliable.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "reliable";
constexpr std::uint64_t kKindData = 0;
constexpr std::uint64_t kKindAck = 1;
constexpr std::size_t kMaxSack = 32;

/// Key of a stream as seen from this endpoint: peer node + stream id.
struct StreamKey {
  NodeAddress peer;
  std::uint64_t streamId;
  friend bool operator==(const StreamKey&, const StreamKey&) = default;
};

struct StreamKeyHash {
  std::size_t operator()(const StreamKey& k) const noexcept {
    return std::hash<NodeAddress>{}(k.peer) ^
           std::hash<std::uint64_t>{}(k.streamId * 0x9e3779b97f4a7c15ull);
  }
};

std::string encodeData(std::uint64_t streamId, std::uint64_t epoch,
                       std::uint64_t seq, std::string_view payload) {
  TextWriter w;
  w.writeU64(kKindData);
  w.writeU64(streamId);
  w.writeU64(epoch);
  w.writeU64(seq);
  w.writeString(payload);
  return std::move(w).str();
}

std::string encodeAck(std::uint64_t streamId, std::uint64_t epoch,
                      std::uint64_t cumAck,
                      const std::vector<std::uint64_t>& sacks) {
  TextWriter w;
  w.writeU64(kKindAck);
  w.writeU64(streamId);
  w.writeU64(epoch);
  w.writeU64(cumAck);
  w.beginList(sacks.size());
  for (std::uint64_t s : sacks) w.writeU64(s);
  return std::move(w).str();
}

}  // namespace

struct ReliableEndpoint::Impl {
  Impl(std::shared_ptr<Endpoint> rawEp, ReliableConfig config,
       obs::MetricsRegistry* metrics, ClockSource* clock)
      : raw(std::move(rawEp)),
        cfg(config),
        clk(clock != nullptr ? clock : &ClockSource::system()) {
    if (metrics != nullptr) {
      // Resolve once; recording below is wait-free.
      mDatagramsIn = &metrics->counter("net.datagrams_in");
      mDatagramsOut = &metrics->counter("net.datagrams_out");
      mAckLatencyUs = &metrics->histogram("reliable.ack_latency_us");
      mReorderDepth = &metrics->histogram("reliable.reorder_depth");
      trace = &metrics->trace();
    }
  }

  std::shared_ptr<Endpoint> raw;
  const ReliableConfig cfg;
  ClockSource* const clk;  ///< all timestamps, timer ticks and flush waits

  // Optional instrumentation (null when no registry was supplied).
  obs::Counter* mDatagramsIn = nullptr;
  obs::Counter* mDatagramsOut = nullptr;
  obs::Histogram* mAckLatencyUs = nullptr;  ///< send -> cumulative/selective ack
  obs::Histogram* mReorderDepth = nullptr;  ///< buffered frames per gap event
  obs::TraceRing* trace = nullptr;

  mutable std::mutex mutex;
  std::condition_variable flushed;

  /// Timer pacing: the retransmission scan parks here between ticks so a
  /// virtual clock can advance straight to the next tick instead of the
  /// thread wall-sleeping (`timerMutex` only guards the parked wait).
  std::mutex timerMutex;
  std::condition_variable timerWake;

  DeliverFn deliver;
  FailFn onFailure;

  /// Sender-side state per outgoing stream.
  struct SendStream {
    std::uint64_t epoch = 0;  ///< bumped by resetStream(); resyncs receiver
    std::uint64_t nextSeq = 0;
    bool failed = false;
    std::string failReason;
    struct Pending {
      std::string frame;      // pre-encoded DATA frame
      TimePoint firstSent;
      TimePoint nextResend;
      Duration backoff;
    };
    std::map<std::uint64_t, Pending> pending;  // seq -> frame
  };
  std::unordered_map<StreamKey, SendStream, StreamKeyHash> sendStreams;

  /// Receiver-side state per incoming stream.
  struct RecvStream {
    std::uint64_t epoch = 0;
    std::uint64_t nextExpected = 0;
    std::map<std::uint64_t, std::string> buffered;  // out-of-order frames
  };
  std::unordered_map<StreamKey, RecvStream, StreamKeyHash> recvStreams;

  Stats stats;
  bool closed = false;
  std::jthread timer;

  // ---------------------------------------------------------------------

  bool anyPendingLocked() const {
    for (const auto& [key, ss] : sendStreams) {
      if (!ss.pending.empty() && !ss.failed) return true;
    }
    return false;
  }

  void onDatagram(const NodeAddress& src, std::string payload) {
    if (mDatagramsIn != nullptr) mDatagramsIn->inc();
    TextReader r(payload);
    std::uint64_t kind = 0;
    std::uint64_t streamId = 0;
    try {
      kind = r.readU64();
      streamId = r.readU64();
      const std::uint64_t epoch = r.readU64();
      if (kind == kKindData) {
        const std::uint64_t seq = r.readU64();
        std::string body = r.readString();
        onData(src, streamId, epoch, seq, std::move(body));
      } else if (kind == kKindAck) {
        const std::uint64_t cumAck = r.readU64();
        std::vector<std::uint64_t> sacks;
        const std::size_t n = r.beginList();
        sacks.reserve(n);
        for (std::size_t i = 0; i < n; ++i) sacks.push_back(r.readU64());
        onAck(src, streamId, epoch, cumAck, sacks);
      }
    } catch (const SerializationError& e) {
      DAPPLE_LOG(kDebug, kLog) << "malformed frame from " << src.toString()
                               << ": " << e.what();
    }
  }

  void onData(const NodeAddress& src, std::uint64_t streamId,
              std::uint64_t epoch, std::uint64_t seq, std::string body) {
    std::vector<std::pair<std::uint64_t, std::string>> deliverable;
    std::string ackFrame;
    DeliverFn deliverFn;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      RecvStream& rs = recvStreams[StreamKey{src, streamId}];
      if (epoch > rs.epoch) {
        // The sender reset the stream (e.g. after a healed partition):
        // abandon the old epoch's reassembly state and resynchronize.
        rs = RecvStream{};
        rs.epoch = epoch;
      } else if (epoch < rs.epoch) {
        return;  // stale frame from a pre-reset retransmission
      }
      if (seq < rs.nextExpected || rs.buffered.count(seq) != 0) {
        ++stats.duplicates;
      } else if (seq == rs.nextExpected) {
        deliverable.emplace_back(seq, std::move(body));
        ++rs.nextExpected;
        // Drain any directly following buffered frames.
        auto it = rs.buffered.begin();
        while (it != rs.buffered.end() && it->first == rs.nextExpected) {
          deliverable.emplace_back(it->first, std::move(it->second));
          it = rs.buffered.erase(it);
          ++rs.nextExpected;
        }
      } else {
        rs.buffered.emplace(seq, std::move(body));
        ++stats.outOfOrderBuffered;
        if (mReorderDepth != nullptr) mReorderDepth->record(rs.buffered.size());
      }
      // Acknowledge: cumulative plus up to kMaxSack buffered sequence
      // numbers so the sender can stop retransmitting them.
      std::vector<std::uint64_t> sacks;
      for (const auto& [bufSeq, unused] : rs.buffered) {
        sacks.push_back(bufSeq);
        if (sacks.size() >= kMaxSack) break;
      }
      ackFrame = encodeAck(streamId, rs.epoch, rs.nextExpected, sacks);
      ++stats.acksSent;
      stats.delivered += deliverable.size();
      deliverFn = deliver;
    }
    raw->send(src, std::move(ackFrame));
    if (mDatagramsOut != nullptr) mDatagramsOut->inc();
    if (deliverFn) {
      for (auto& [seq2, payload2] : deliverable) {
        deliverFn(src, streamId, std::move(payload2));
      }
    }
  }

  void onAck(const NodeAddress& src, std::uint64_t streamId,
             std::uint64_t epoch, std::uint64_t cumAck,
             const std::vector<std::uint64_t>& sacks) {
    std::scoped_lock lock(mutex);
    const auto it = sendStreams.find(StreamKey{src, streamId});
    if (it == sendStreams.end()) return;
    SendStream& ss = it->second;
    if (epoch != ss.epoch) return;  // ack for a previous epoch
    // cumAck = receiver's nextExpected: everything below is delivered.
    const TimePoint now = clk->now();
    const auto ackedEnd = ss.pending.lower_bound(cumAck);
    if (mAckLatencyUs != nullptr) {
      // The newly acknowledged frames' send->ack round trips.  Walks only
      // entries being erased, so the cost scales with acked frames.
      for (auto it2 = ss.pending.begin(); it2 != ackedEnd; ++it2) {
        mAckLatencyUs->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - it2->second.firstSent)
                .count()));
      }
    }
    ss.pending.erase(ss.pending.begin(), ackedEnd);
    for (std::uint64_t sack : sacks) {
      const auto it2 = ss.pending.find(sack);
      if (it2 == ss.pending.end()) continue;
      if (mAckLatencyUs != nullptr) {
        mAckLatencyUs->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - it2->second.firstSent)
                .count()));
      }
      ss.pending.erase(it2);
    }
    if (!anyPendingLocked()) clk->notifyAll(flushed);
  }

  void tick() {
    std::vector<std::string> resend;
    std::vector<std::tuple<NodeAddress, std::uint64_t, std::string>> failures;
    std::vector<NodeAddress> resendDst;
    FailFn failFn;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      const TimePoint now = clk->now();
      for (auto& [key, ss] : sendStreams) {
        if (ss.failed) continue;
        for (auto& [seq, pending] : ss.pending) {
          if (now - pending.firstSent > cfg.deliveryTimeout) {
            ss.failed = true;
            ss.failReason = "delivery timeout on stream " +
                            std::to_string(key.streamId) + " to " +
                            key.peer.toString() + " (seq " +
                            std::to_string(seq) + ")";
            ++stats.failures;
            failures.emplace_back(key.peer, key.streamId, ss.failReason);
            break;
          }
          if (now >= pending.nextResend) {
            pending.backoff = std::min(pending.backoff * 2, cfg.maxRto);
            pending.nextResend = now + pending.backoff;
            resend.push_back(pending.frame);
            resendDst.push_back(key.peer);
            ++stats.retransmits;
          }
        }
        if (ss.failed) {
          ss.pending.clear();
        }
      }
      if (!failures.empty() && !anyPendingLocked()) clk->notifyAll(flushed);
      failFn = onFailure;
    }
    for (std::size_t i = 0; i < resend.size(); ++i) {
      raw->send(resendDst[i], resend[i]);
    }
    if (mDatagramsOut != nullptr && !resend.empty()) {
      mDatagramsOut->inc(resend.size());
    }
    for (const auto& [dst, streamId, reason] : failures) {
      DAPPLE_LOG(kDebug, kLog) << "stream failed: " << reason;
      if (trace != nullptr) {
        trace->emit("reliable", "stream.fail", reason,
                    static_cast<std::int64_t>(streamId));
      }
      if (failFn) failFn(dst, streamId, reason);
    }
  }

  void runTimer(std::stop_token stop) {
    // A worker in virtual time: the clock advances to the next tick the
    // moment everything else is parked, so a lossy scenario's retransmit
    // schedule plays out in microseconds of wall time.
    ClockSource::WorkerScope workerScope(*clk);
    std::unique_lock lock(timerMutex);
    while (!stop.stop_requested()) {
      clk->waitFor(lock, timerWake, cfg.tickInterval,
                   [&] { return stop.stop_requested(); });
      if (stop.stop_requested()) break;
      lock.unlock();
      tick();
      lock.lock();
    }
  }
};

ReliableEndpoint::ReliableEndpoint(std::shared_ptr<Endpoint> raw,
                                   ReliableConfig config,
                                   obs::MetricsRegistry* metrics,
                                   ClockSource* clock)
    : impl_(std::make_unique<Impl>(std::move(raw), config, metrics, clock)) {
  impl_->raw->setHandler(
      [impl = impl_.get()](const NodeAddress& src, std::string payload) {
        impl->onDatagram(src, std::move(payload));
      });
  // Announce before spawn: a virtual clock advancing in the window before
  // the timer thread registers could leap past the delivery timeout and
  // fail streams that never got a single retransmit.
  impl_->clk->announceWorker();
  impl_->timer = std::jthread(
      [impl = impl_.get()](std::stop_token stop) { impl->runTimer(stop); });
}

ReliableEndpoint::~ReliableEndpoint() { close(); }

NodeAddress ReliableEndpoint::address() const { return impl_->raw->address(); }

void ReliableEndpoint::setDeliver(DeliverFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->deliver = std::move(fn);
}

void ReliableEndpoint::setOnFailure(FailFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->onFailure = std::move(fn);
}

std::uint64_t ReliableEndpoint::send(const NodeAddress& dst,
                                     std::uint64_t streamId,
                                     std::string payload) {
  std::string frame;
  std::uint64_t seq = 0;
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->closed) throw ShutdownError("reliable endpoint closed");
    Impl::SendStream& ss =
        impl_->sendStreams[StreamKey{dst, streamId}];
    if (ss.failed) {
      throw DeliveryError(ss.failReason.empty() ? "stream failed"
                                                : ss.failReason);
    }
    seq = ss.nextSeq++;
    frame = encodeData(streamId, ss.epoch, seq, payload);
    Impl::SendStream::Pending pending;
    pending.frame = frame;
    pending.firstSent = impl_->clk->now();
    pending.backoff = impl_->cfg.rto;
    pending.nextResend = pending.firstSent + pending.backoff;
    ss.pending.emplace(seq, std::move(pending));
    ++impl_->stats.dataSent;
  }
  // Transmit outside the lock: the raw endpoint has its own locking and a
  // delivery thread that re-enters this class, so holding our mutex across
  // raw->send would invert the lock order.
  impl_->raw->send(dst, std::move(frame));
  if (impl_->mDatagramsOut != nullptr) impl_->mDatagramsOut->inc();
  return seq;
}

bool ReliableEndpoint::flush(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  return impl_->clk->waitFor(lock, impl_->flushed, timeout,
                             [this] { return !impl_->anyPendingLocked(); });
}

void ReliableEndpoint::resetStream(const NodeAddress& dst,
                                   std::uint64_t streamId) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->sendStreams.find(StreamKey{dst, streamId});
  if (it != impl_->sendStreams.end()) {
    it->second.failed = false;
    it->second.failReason.clear();
    it->second.pending.clear();
    // New epoch: undelivered old-epoch frames are abandoned and the
    // receiver resynchronizes from sequence 0.
    ++it->second.epoch;
    it->second.nextSeq = 0;
  }
}

void ReliableEndpoint::close() {
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->closed) return;
    impl_->closed = true;
  }
  impl_->timer.request_stop();
  impl_->clk->notifyAll(impl_->timerWake);  // wake the parked tick wait
  if (impl_->timer.joinable()) impl_->timer.join();
  impl_->raw->close();
  impl_->clk->notifyAll(impl_->flushed);
}

ReliableEndpoint::Stats ReliableEndpoint::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
