#include "dapple/reliable/reliable.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "reliable";
constexpr std::uint64_t kKindData = 0;
constexpr std::uint64_t kKindAck = 1;
constexpr std::size_t kMaxSack = 32;

std::int64_t toMicros(Duration d) {
  return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
}

/// Key of a stream as seen from this endpoint: peer node + stream id.
struct StreamKey {
  NodeAddress peer;
  std::uint64_t streamId;
  friend bool operator==(const StreamKey&, const StreamKey&) = default;
};

struct StreamKeyHash {
  std::size_t operator()(const StreamKey& k) const noexcept {
    return std::hash<NodeAddress>{}(k.peer) ^
           std::hash<std::uint64_t>{}(k.streamId * 0x9e3779b97f4a7c15ull);
  }
};

/// One receive stream's acknowledgement: the receiver's nextExpected
/// (cumulative) plus up to kMaxSack out-of-order sequence numbers.  ACK
/// datagrams and DATA piggyback slots carry a *list* of blocks so a single
/// datagram acknowledges every stream owed to that peer at once.
struct AckBlock {
  std::uint64_t streamId = 0;
  std::uint64_t epoch = 0;
  std::uint64_t cumAck = 0;
  std::vector<std::uint64_t> sacks;
};

void writeAckBlocks(WireWriter& w, const std::vector<AckBlock>& blocks) {
  w.beginList(blocks.size());
  for (const AckBlock& b : blocks) {
    w.writeU64(b.streamId);
    w.writeU64(b.epoch);
    w.writeU64(b.cumAck);
    w.beginList(b.sacks.size());
    for (std::uint64_t s : b.sacks) w.writeU64(s);
  }
}

std::vector<AckBlock> readAckBlocks(WireReader& r) {
  const std::size_t n = r.beginList();
  std::vector<AckBlock> blocks;
  blocks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    AckBlock b;
    b.streamId = r.readU64();
    b.epoch = r.readU64();
    b.cumAck = r.readU64();
    const std::size_t k = r.beginList();
    b.sacks.reserve(k);
    for (std::size_t j = 0; j < k; ++j) b.sacks.push_back(r.readU64());
    blocks.push_back(std::move(b));
  }
  return blocks;
}

std::string encodeAck(WireCodec codec, const std::vector<AckBlock>& blocks) {
  WireWriter w(codec);
  w.writeU64(kKindAck);
  writeAckBlocks(w, blocks);
  return std::move(w).str();
}

}  // namespace

ReliableConfig ReliableConfig::normalized(
    std::vector<std::string>* notes) const {
  ReliableConfig out = *this;
  const auto note = [&](std::string s) {
    if (notes != nullptr) notes->push_back(std::move(s));
  };
  if (out.tickInterval <= Duration::zero()) {
    out.tickInterval = milliseconds(1);
    note("tickInterval <= 0; raised to 1ms");
  }
  if (out.ackEvery == 0) {
    out.ackEvery = 1;
    note("ackEvery == 0; raised to 1");
  }
  if (out.initialCwnd == 0) {
    out.initialCwnd = 1;
    note("initialCwnd == 0; raised to 1");
  }
  if (out.maxCwnd < out.initialCwnd) {
    out.maxCwnd = out.initialCwnd;
    note("maxCwnd below initialCwnd; raised to initialCwnd");
  }
  if (out.fastRetransmitDups == 0) {
    out.fastRetransmitDups = 1;
    note("fastRetransmitDups == 0; raised to 1");
  }
  if (out.ackDelay < Duration::zero()) {
    out.ackDelay = Duration::zero();
    note("ackDelay < 0; raised to 0");
  }
  // The RTO floor must clear the clock granularity, or a single tick of
  // scheduling slop reads as a loss.
  if (out.minRto < 2 * out.tickInterval) {
    out.minRto = 2 * out.tickInterval;
    note("minRto below 2*tickInterval; raised to " +
         std::to_string(toMicros(out.minRto)) + "us");
  }
  // The spurious-retransmit invariant: the receiver may defer an ack for up
  // to ackDelay + tickInterval, so every RTO the sender can ever use (the
  // initial rto and the adaptive floor minRto) must stay comfortably above
  // that deferral.  Misconfiguring this used to cause silent retransmit
  // storms; now the ackDelay is clamped and the clamp is traced.
  if (out.rto < out.minRto) {
    out.rto = out.minRto;
    note("initial rto below minRto; raised to " +
         std::to_string(toMicros(out.rto)) + "us");
  }
  if (out.maxRto < out.rto) {
    out.maxRto = out.rto;
    note("maxRto below rto; raised to " + std::to_string(toMicros(out.maxRto)) +
         "us");
  }
  if (out.ackDelay + out.tickInterval > out.minRto / 2) {
    const Duration clamped =
        std::max(Duration::zero(), out.minRto / 2 - out.tickInterval);
    note("ackDelay " + std::to_string(toMicros(out.ackDelay)) +
         "us + tickInterval " + std::to_string(toMicros(out.tickInterval)) +
         "us exceeds minRto/2; ackDelay clamped to " +
         std::to_string(toMicros(clamped)) + "us");
    out.ackDelay = clamped;
  }
  return out;
}

struct ReliableEndpoint::Impl {
  Impl(std::shared_ptr<Endpoint> rawEp, ReliableConfig config,
       obs::MetricsRegistry* metrics, ClockSource* clock)
      : raw(std::move(rawEp)),
        cfg(config.normalized(&clampNotes)),
        clk(clock != nullptr ? clock : &ClockSource::system()) {
    if (metrics != nullptr) {
      // Resolve once; recording below is wait-free.
      mDatagramsIn = &metrics->counter("net.datagrams_in");
      mDatagramsOut = &metrics->counter("net.datagrams_out");
      mBatchSize = &metrics->histogram("net.batch_size");
      mAckLatencyUs = &metrics->histogram("reliable.ack_latency_us");
      mReorderDepth = &metrics->histogram("reliable.reorder_depth");
      mSrttUs = &metrics->histogram("reliable.srtt_us");
      mCwnd = &metrics->gauge("reliable.cwnd");
      mFastRetransmits = &metrics->counter("reliable.fast_retransmits");
      trace = &metrics->trace();
    }
    for (const std::string& n : clampNotes) {
      DAPPLE_LOG(kDebug, kLog) << "config clamped: " << n;
      if (trace != nullptr) trace->emit("reliable", "config.clamp", n);
    }
  }

  std::shared_ptr<Endpoint> raw;
  std::vector<std::string> clampNotes;  ///< normalized() adjustments (traced)
  const ReliableConfig cfg;
  ClockSource* const clk;  ///< all timestamps, timer ticks and flush waits

  // Optional instrumentation (null when no registry was supplied).
  obs::Counter* mDatagramsIn = nullptr;
  obs::Counter* mDatagramsOut = nullptr;
  obs::Histogram* mBatchSize = nullptr;     ///< datagrams per sendBatch submit
  obs::Histogram* mAckLatencyUs = nullptr;  ///< admission -> cum/selective ack
  obs::Histogram* mReorderDepth = nullptr;  ///< buffered frames per gap event
  obs::Histogram* mSrttUs = nullptr;        ///< smoothed RTT after each sample
  obs::Gauge* mCwnd = nullptr;              ///< last updated stream's window
  obs::Counter* mFastRetransmits = nullptr;
  obs::TraceRing* trace = nullptr;

  mutable std::mutex mutex;
  std::condition_variable flushed;

  /// Timer pacing: the retransmission scan parks here between ticks so a
  /// virtual clock can advance straight to the next tick instead of the
  /// thread wall-sleeping (`timerMutex` only guards the parked wait).
  std::mutex timerMutex;
  std::condition_variable timerWake;

  DeliverFn deliver;
  FailFn onFailure;

  /// Per-peer Jacobson RTT estimator (shared by every stream to that peer —
  /// the path is what has an RTT, not the stream).
  struct PeerRtt {
    bool hasSample = false;
    Duration srtt{};
    Duration rttvar{};
    /// Karn's backoff retention: while no clean sample exists, new frames
    /// inherit the largest per-frame backoff reached so far.  Without this
    /// a path whose true RTT exceeds cfg.rto never collects a sample (every
    /// frame retransmits first, and retransmitted frames never sample), so
    /// the estimator could never bootstrap out of spurious retransmits.
    Duration noSampleRto{};
  };
  std::unordered_map<NodeAddress, PeerRtt> peerRtt;

  /// Sender-side state per outgoing stream.
  struct SendStream {
    std::uint64_t epoch = 0;  ///< bumped by resetStream(); resyncs receiver
    std::uint64_t nextSeq = 0;
    bool failed = false;
    std::string failReason;
    // ---- congestion control (slow start + AIMD, in frames) -------------
    double cwnd = 0;          ///< seeded from cfg.initialCwnd on creation
    double ssthresh = 0;      ///< slow start below, additive increase above
    std::uint64_t recoverSeq = 0;  ///< no second window cut until acks pass
    struct Pending {
      /// Per-destination head + refcounted shared body.  Retransmit state
      /// holds a reference, not a frame copy; the wire bytes (frame header
      /// + head + body) are assembled fresh at each transmission.
      WireBuffer envelope;
      TimePoint enqueued;   ///< admission: delivery-timeout + ack-latency base
      TimePoint lastSent;   ///< last wire transmission: the RTT sample base
      TimePoint nextResend;
      Duration backoff;
      std::uint32_t dupEvidence = 0;  ///< ack blocks covering higher seqs
      bool retransmitted = false;     ///< Karn's rule: never RTT-sample
    };
    std::map<std::uint64_t, Pending> pending;  // in flight (<= window)
    /// Frames admitted beyond the window: they hold their sequence number
    /// and shared envelope but have never touched the wire.  The delivery
    /// timeout runs from admission for these too.
    struct Queued {
      std::uint64_t seq;
      WireBuffer envelope;
      TimePoint enqueued;
    };
    std::deque<Queued> sendQueue;
  };
  std::unordered_map<StreamKey, SendStream, StreamKeyHash> sendStreams;

  /// Receiver-side state per incoming stream.
  struct RecvStream {
    std::uint64_t epoch = 0;
    std::uint64_t nextExpected = 0;
    std::map<std::uint64_t, std::string> buffered;  // out-of-order frames
    // ---- coalesced-ack state ------------------------------------------
    bool ackPending = false;   ///< >=1 arrival not yet acknowledged
    TimePoint pendingSince{};  ///< when ackPending last became true
    std::uint32_t pendingFrames = 0;  ///< arrivals folded into pending ack
  };
  std::unordered_map<StreamKey, RecvStream, StreamKeyHash> recvStreams;

  /// Peers owed an acknowledgement -> their pending stream keys.  Entries
  /// can go stale (the flag cleared by a piggyback ride or an earlier
  /// flush); collectAckBlocksLocked skips those.
  std::unordered_map<NodeAddress, std::vector<StreamKey>> ackQueue;

  Stats stats;
  bool closed = false;
  std::jthread timer;

  // ---------------------------------------------------------------------

  bool anyPendingLocked() const {
    for (const auto& [key, ss] : sendStreams) {
      if (ss.failed) continue;
      if (!ss.pending.empty() || !ss.sendQueue.empty()) return true;
    }
    return false;
  }

  bool anyFailedLocked() const {
    for (const auto& [key, ss] : sendStreams) {
      if (ss.failed) return true;
    }
    return false;
  }

  SendStream& streamLocked(const StreamKey& key) {
    auto [it, inserted] = sendStreams.try_emplace(key);
    if (inserted) {
      it->second.cwnd = static_cast<double>(cfg.initialCwnd);
      it->second.ssthresh = static_cast<double>(cfg.maxCwnd);
    }
    return it->second;
  }

  /// Frames this stream may have in flight right now.
  std::size_t windowLocked(const SendStream& ss) const {
    const double w =
        std::clamp(ss.cwnd, 1.0, static_cast<double>(cfg.maxCwnd));
    return static_cast<std::size_t>(w);
  }

  // ---- RTT estimation (Jacobson/Karels, RFC 6298 coefficients) ----------

  Duration rtoForLocked(const NodeAddress& peer) const {
    Duration rto = cfg.rto;
    const auto it = peerRtt.find(peer);
    if (it != peerRtt.end()) {
      if (it->second.hasSample) {
        rto = it->second.srtt +
              std::max(cfg.tickInterval, 4 * it->second.rttvar);
      } else {
        rto = std::max(rto, it->second.noSampleRto);
      }
    }
    return std::clamp(rto, cfg.minRto, cfg.maxRto);
  }

  void sampleRttLocked(const NodeAddress& peer, Duration r) {
    if (r < Duration::zero()) return;
    PeerRtt& p = peerRtt[peer];
    if (!p.hasSample) {
      p.hasSample = true;
      p.srtt = r;
      p.rttvar = r / 2;
    } else {
      const Duration err = r > p.srtt ? r - p.srtt : p.srtt - r;
      p.rttvar = (3 * p.rttvar + err) / 4;
      p.srtt = (7 * p.srtt + r) / 8;
    }
    ++stats.rttSamples;
    if (mSrttUs != nullptr) {
      mSrttUs->record(static_cast<std::uint64_t>(toMicros(p.srtt)));
    }
  }

  // ---- congestion responses ---------------------------------------------

  void ackGrowLocked(SendStream& ss, std::size_t newlyAcked) {
    for (std::size_t i = 0; i < newlyAcked; ++i) {
      if (ss.cwnd < ss.ssthresh) {
        ss.cwnd += 1.0;  // slow start: +1 per acked frame (~doubles per RTT)
      } else {
        ss.cwnd += 1.0 / ss.cwnd;  // congestion avoidance: +1 per window
      }
    }
    ss.cwnd = std::min(ss.cwnd, static_cast<double>(cfg.maxCwnd));
    if (mCwnd != nullptr) mCwnd->set(static_cast<std::int64_t>(ss.cwnd));
  }

  /// One multiplicative decrease per flight: frames below recoverSeq were in
  /// flight when the window was last cut and do not cut it again.
  void lossCutLocked(SendStream& ss, std::uint64_t seq, bool timerExpiry) {
    if (seq < ss.recoverSeq) return;
    ss.ssthresh = std::max(ss.cwnd / 2, 2.0);
    // Timer expiry means the pipe drained: restart from one frame.  Dup-SACK
    // evidence means later frames still arrive: resume at half.
    ss.cwnd = timerExpiry ? 1.0 : ss.ssthresh;
    ss.recoverSeq = ss.nextSeq;
    if (mCwnd != nullptr) mCwnd->set(static_cast<std::int64_t>(ss.cwnd));
  }

  /// Builds one complete DATA frame: header tokens (every token up to and
  /// including the payload string header) written straight into the
  /// datagram's own string, then the envelope bytes (head + shared body)
  /// gathered after it — the single point on the transmit path where
  /// payload bytes are copied, with no intermediate head string.  Caller
  /// holds `mutex` (stats).
  std::string assembleData(std::uint64_t streamId, std::uint64_t epoch,
                           std::uint64_t seq,
                           const std::vector<AckBlock>& piggyback,
                           const WireBuffer& envelope) {
    std::string out;
    WireWriter w(cfg.codec, out);
    out.reserve(64 + envelope.size());
    w.writeU64(kKindData);
    w.writeU64(streamId);
    w.writeU64(epoch);
    w.writeU64(seq);
    writeAckBlocks(w, piggyback);
    w.beginString(envelope.size());
    envelope.appendTo(out);
    ++stats.payloadCopies;
    return out;
  }

  /// Assembles one DATA frame (collecting any piggyback acks owed to the
  /// peer) and stages it on `batch`.  Caller holds `mutex`.
  void stageDataLocked(std::vector<Datagram>& batch, const StreamKey& key,
                       const SendStream& ss, std::uint64_t seq,
                       const WireBuffer& envelope) {
    const std::vector<AckBlock> piggyback =
        cfg.ackPiggyback ? collectAckBlocksLocked(key.peer)
                         : std::vector<AckBlock>{};
    batch.push_back(Datagram{
        key.peer,
        assembleData(key.streamId, ss.epoch, seq, piggyback, envelope)});
  }

  /// Moves queued frames into flight while the window has room.  Frames
  /// already past the delivery timeout stay queued — the next tick declares
  /// the stream failed, and transmitting a doomed frame wastes wire.
  void transmitQueuedLocked(std::vector<Datagram>& batch,
                            const StreamKey& key, SendStream& ss,
                            TimePoint now) {
    const std::size_t window = windowLocked(ss);
    while (!ss.sendQueue.empty() && ss.pending.size() < window) {
      SendStream::Queued& q = ss.sendQueue.front();
      if (now - q.enqueued > cfg.deliveryTimeout) return;
      SendStream::Pending p;
      p.envelope = std::move(q.envelope);
      p.enqueued = q.enqueued;
      p.lastSent = now;
      p.backoff = rtoForLocked(key.peer);
      p.nextResend = now + p.backoff;
      stageDataLocked(batch, key, ss, q.seq, p.envelope);
      ++stats.dataSent;
      stats.dataBytes += p.envelope.size();
      ss.pending.emplace(q.seq, std::move(p));
      ss.sendQueue.pop_front();
    }
  }

  /// Emits and clears every pending ack block owed to `peer`.  Caller holds
  /// `mutex` and is responsible for putting the blocks on the wire (either
  /// a standalone ACK datagram or a DATA piggyback).
  std::vector<AckBlock> collectAckBlocksLocked(const NodeAddress& peer) {
    std::vector<AckBlock> blocks;
    const auto it = ackQueue.find(peer);
    if (it == ackQueue.end()) return blocks;
    for (const StreamKey& key : it->second) {
      const auto rit = recvStreams.find(key);
      if (rit == recvStreams.end()) continue;
      RecvStream& rs = rit->second;
      if (!rs.ackPending) continue;  // stale queue entry
      AckBlock b;
      b.streamId = key.streamId;
      b.epoch = rs.epoch;
      b.cumAck = rs.nextExpected;
      for (const auto& [bufSeq, unused] : rs.buffered) {
        b.sacks.push_back(bufSeq);
        if (b.sacks.size() >= kMaxSack) break;
      }
      ++stats.acksSent;
      if (rs.pendingFrames > 1) stats.acksCoalesced += rs.pendingFrames - 1;
      rs.ackPending = false;
      rs.pendingFrames = 0;
      blocks.push_back(std::move(b));
    }
    ackQueue.erase(it);
    return blocks;
  }

  void submitBatch(std::vector<Datagram>&& batch) {
    if (batch.empty()) return;
    if (mBatchSize != nullptr) mBatchSize->record(batch.size());
    const std::size_t n = batch.size();
    raw->sendBatch(std::move(batch));
    if (mDatagramsOut != nullptr) mDatagramsOut->inc(n);
  }

  void onDatagram(const NodeAddress& src, std::string_view payload) {
    if (mDatagramsIn != nullptr) mDatagramsIn->inc();
    WireReader r(payload);
    try {
      const std::uint64_t kind = r.readU64();
      if (kind == kKindData) {
        const std::uint64_t streamId = r.readU64();
        const std::uint64_t epoch = r.readU64();
        const std::uint64_t seq = r.readU64();
        const std::vector<AckBlock> piggyback = readAckBlocks(r);
        const std::string_view body = r.readStringView();
        if (!piggyback.empty()) onAckBlocks(src, piggyback);
        onData(src, streamId, epoch, seq, body);
      } else if (kind == kKindAck) {
        onAckBlocks(src, readAckBlocks(r));
      }
    } catch (const SerializationError& e) {
      DAPPLE_LOG(kDebug, kLog) << "malformed frame from " << src.toString()
                               << ": " << e.what();
    }
  }

  void onData(const NodeAddress& src, std::uint64_t streamId,
              std::uint64_t epoch, std::uint64_t seq, std::string_view body) {
    bool deliverHead = false;
    std::string_view headPayload;
    std::vector<std::string> drained;
    std::string ackDatagram;
    DeliverFn deliverFn;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      const StreamKey key{src, streamId};
      RecvStream& rs = recvStreams[key];
      if (epoch > rs.epoch) {
        // The sender reset the stream (e.g. after a healed partition):
        // abandon the old epoch's reassembly state and resynchronize.
        rs = RecvStream{};
        rs.epoch = epoch;
      } else if (epoch < rs.epoch) {
        return;  // stale frame from a pre-reset retransmission
      }
      if (seq < rs.nextExpected || rs.buffered.count(seq) != 0) {
        ++stats.duplicates;
        // A duplicate means our ack was lost or is still in flight.  The
        // re-ack folds into the coalesced flush below instead of costing an
        // immediate datagram — a burst of dups used to trigger one ack
        // datagram each (an ack storm).
        ++stats.dupAcksSuppressed;
      } else if (seq == rs.nextExpected) {
        // In order: delivered as a view into the transport's receive
        // buffer, zero copies.
        deliverHead = true;
        headPayload = body;
        ++rs.nextExpected;
        stats.deliveredBytes += body.size();
        // Drain any directly following buffered frames.
        auto it = rs.buffered.begin();
        while (it != rs.buffered.end() && it->first == rs.nextExpected) {
          stats.deliveredBytes += it->second.size();
          drained.push_back(std::move(it->second));
          it = rs.buffered.erase(it);
          ++rs.nextExpected;
        }
      } else {
        // Out of order: the one place the receive path pays an owned copy
        // (the view dies with the datagram; the frame must outlive it).
        rs.buffered.emplace(seq, std::string(body));
        ++stats.payloadCopies;
        ++stats.outOfOrderBuffered;
        if (mReorderDepth != nullptr) mReorderDepth->record(rs.buffered.size());
      }
      if (!rs.ackPending) {
        rs.ackPending = true;
        rs.pendingSince = clk->now();
        ackQueue[src].push_back(key);
      }
      ++rs.pendingFrames;
      // Flush once ackEvery arrivals have coalesced; otherwise the timer
      // flushes after ackDelay, or the next outgoing DATA frame to this
      // peer piggybacks the blocks for free.  Deferral is safe for SACK
      // promptness because `ReliableConfig::normalized()` enforces
      // ackDelay + tickInterval < minRto/2: every RTO the sender's
      // estimator can produce leaves room for a deferred SACK to arrive
      // before the retransmission fires.
      if (rs.pendingFrames >= cfg.ackEvery) {
        const std::vector<AckBlock> blocks = collectAckBlocksLocked(src);
        if (!blocks.empty()) {
          ackDatagram = encodeAck(cfg.codec, blocks);
          ++stats.ackFramesSent;
        }
      }
      stats.delivered += (deliverHead ? 1 : 0) + drained.size();
      deliverFn = deliver;
    }
    if (!ackDatagram.empty()) {
      raw->send(src, std::move(ackDatagram));
      if (mDatagramsOut != nullptr) mDatagramsOut->inc();
    }
    if (deliverFn) {
      if (deliverHead) deliverFn(src, streamId, headPayload);
      for (const std::string& p : drained) deliverFn(src, streamId, p);
    }
  }

  /// Marks one pending frame acknowledged: ack-latency histogram plus the
  /// RTT sample (Karn's rule: only frames transmitted exactly once sample,
  /// so a retransmission ambiguity never poisons the estimator).
  void ackFrameLocked(const NodeAddress& src,
                      const SendStream::Pending& p, TimePoint now) {
    if (mAckLatencyUs != nullptr) {
      mAckLatencyUs->record(
          static_cast<std::uint64_t>(toMicros(now - p.enqueued)));
    }
    if (!p.retransmitted) sampleRttLocked(src, now - p.lastSent);
  }

  void onAckBlocks(const NodeAddress& src,
                   const std::vector<AckBlock>& blocks) {
    std::vector<Datagram> batch;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      bool ackedAny = false;
      const TimePoint now = clk->now();
      for (const AckBlock& b : blocks) {
        const auto it = sendStreams.find(StreamKey{src, b.streamId});
        if (it == sendStreams.end()) continue;
        SendStream& ss = it->second;
        if (b.epoch != ss.epoch) continue;  // ack for a previous epoch
        std::size_t newlyAcked = 0;
        // cumAck = receiver's nextExpected: everything below is delivered.
        const auto ackedEnd = ss.pending.lower_bound(b.cumAck);
        for (auto it2 = ss.pending.begin(); it2 != ackedEnd; ++it2) {
          ackFrameLocked(src, it2->second, now);
          ++newlyAcked;
        }
        ss.pending.erase(ss.pending.begin(), ackedEnd);
        // Highest sequence number the receiver provably holds: dup-SACK
        // evidence for every lower frame still pending.
        std::uint64_t evidenceAbove = b.cumAck;  // exclusive bound
        for (std::uint64_t sack : b.sacks) {
          evidenceAbove = std::max(evidenceAbove, sack);
          const auto it2 = ss.pending.find(sack);
          if (it2 == ss.pending.end()) continue;
          ackFrameLocked(src, it2->second, now);
          ss.pending.erase(it2);
          ++newlyAcked;
        }
        if (newlyAcked > 0) {
          ackedAny = true;
          ackGrowLocked(ss, newlyAcked);
        }
        // Fast retransmit: a frame the receiver is provably missing while
        // later frames keep landing is resent after fastRetransmitDups
        // blocks of evidence — recovery in ~one RTT instead of an RTO.
        if (!ss.failed && evidenceAbove > 0 &&
            cfg.fastRetransmitDups != UINT32_MAX) {
          for (auto& [seq, p] : ss.pending) {
            if (seq >= evidenceAbove) break;  // map is seq-ordered
            if (p.retransmitted) continue;    // timer or fast path already did
            if (++p.dupEvidence < cfg.fastRetransmitDups) continue;
            if (now - p.enqueued > cfg.deliveryTimeout) continue;  // doomed
            lossCutLocked(ss, seq, /*timerExpiry=*/false);
            p.retransmitted = true;
            p.backoff = rtoForLocked(src);
            p.nextResend = now + p.backoff;
            p.lastSent = now;
            stageDataLocked(batch, StreamKey{src, b.streamId}, ss, seq,
                            p.envelope);
            ++stats.retransmits;
            ++stats.fastRetransmits;
            stats.retransmitBytes += p.envelope.size();
            if (mFastRetransmits != nullptr) mFastRetransmits->inc();
          }
        }
        // Acks freed window space: move queued frames into flight.
        transmitQueuedLocked(batch, StreamKey{src, b.streamId}, ss, now);
      }
      if (ackedAny && !anyPendingLocked()) clk->notifyAll(flushed);
    }
    submitBatch(std::move(batch));
  }

  void tick() {
    std::vector<Datagram> batch;
    std::vector<std::tuple<NodeAddress, std::uint64_t, std::string>> failures;
    FailFn failFn;
    {
      std::scoped_lock lock(mutex);
      if (closed) return;
      const TimePoint now = clk->now();
      for (auto& [key, ss] : sendStreams) {
        if (ss.failed) continue;
        // ---- phase 1: delivery-timeout verdict, in-flight AND queued ----
        // Decided for the whole stream before anything is staged, so a
        // stream failing this tick can never leak frames into the batch
        // (previously a retransmission staged earlier in the same scan
        // still hit the wire after ss.pending.clear()).
        for (const auto& [seq, pending] : ss.pending) {
          if (now - pending.enqueued > cfg.deliveryTimeout) {
            ss.failed = true;
            ss.failReason = "delivery timeout on stream " +
                            std::to_string(key.streamId) + " to " +
                            key.peer.toString() + " (seq " +
                            std::to_string(seq) + ")";
            break;
          }
        }
        if (!ss.failed) {
          for (const auto& q : ss.sendQueue) {
            if (now - q.enqueued > cfg.deliveryTimeout) {
              ss.failed = true;
              ss.failReason = "delivery timeout on stream " +
                              std::to_string(key.streamId) + " to " +
                              key.peer.toString() + " (seq " +
                              std::to_string(q.seq) + ", never transmitted: " +
                              "window closed)";
              break;
            }
          }
        }
        if (ss.failed) {
          ++stats.failures;
          failures.emplace_back(key.peer, key.streamId, ss.failReason);
          ss.pending.clear();
          ss.sendQueue.clear();
          continue;
        }
        // ---- phase 2: timer-driven retransmissions ----------------------
        for (auto& [seq, pending] : ss.pending) {
          if (now < pending.nextResend) continue;
          lossCutLocked(ss, seq, /*timerExpiry=*/true);
          pending.retransmitted = true;
          pending.backoff = std::min(pending.backoff * 2, cfg.maxRto);
          pending.nextResend = now + pending.backoff;
          PeerRtt& pr = peerRtt[key.peer];
          if (!pr.hasSample) {
            pr.noSampleRto = std::max(pr.noSampleRto, pending.backoff);
          }
          pending.lastSent = now;
          stageDataLocked(batch, key, ss, seq, pending.envelope);
          ++stats.retransmits;
          stats.retransmitBytes += pending.envelope.size();
        }
        // ---- phase 3: window openings (acks shrank the flight) ----------
        transmitQueuedLocked(batch, key, ss, now);
      }
      // Deferred-ack flush: every peer holding a block older than ackDelay
      // gets ONE datagram carrying all of its pending blocks.
      std::vector<NodeAddress> duePeers;
      for (const auto& [peer, keys] : ackQueue) {
        for (const StreamKey& key : keys) {
          const auto rit = recvStreams.find(key);
          if (rit == recvStreams.end()) continue;
          const RecvStream& rs = rit->second;
          if (rs.ackPending && now - rs.pendingSince >= cfg.ackDelay) {
            duePeers.push_back(peer);
            break;
          }
        }
      }
      for (const NodeAddress& peer : duePeers) {
        const std::vector<AckBlock> blocks = collectAckBlocksLocked(peer);
        if (blocks.empty()) continue;
        batch.push_back(Datagram{peer, encodeAck(cfg.codec, blocks)});
        ++stats.ackFramesSent;
      }
      if (!failures.empty() && !anyPendingLocked()) clk->notifyAll(flushed);
      failFn = onFailure;
    }
    submitBatch(std::move(batch));
    for (const auto& [dst, streamId, reason] : failures) {
      DAPPLE_LOG(kDebug, kLog) << "stream failed: " << reason;
      if (trace != nullptr) {
        trace->emit("reliable", "stream.fail", reason,
                    static_cast<std::int64_t>(streamId));
      }
      if (failFn) failFn(dst, streamId, reason);
    }
  }

  void runTimer(std::stop_token stop) {
    // A worker in virtual time: the clock advances to the next tick the
    // moment everything else is parked, so a lossy scenario's retransmit
    // schedule plays out in microseconds of wall time.
    ClockSource::WorkerScope workerScope(*clk);
    std::unique_lock lock(timerMutex);
    while (!stop.stop_requested()) {
      clk->waitFor(lock, timerWake, cfg.tickInterval,
                   [&] { return stop.stop_requested(); });
      if (stop.stop_requested()) break;
      lock.unlock();
      tick();
      lock.lock();
    }
  }
};

ReliableEndpoint::ReliableEndpoint(std::shared_ptr<Endpoint> raw,
                                   ReliableConfig config,
                                   obs::MetricsRegistry* metrics,
                                   ClockSource* clock)
    : impl_(std::make_unique<Impl>(std::move(raw), config, metrics, clock)) {
  impl_->raw->setHandler(
      [impl = impl_.get()](const NodeAddress& src, std::string_view payload) {
        impl->onDatagram(src, payload);
      });
  if (!impl_->cfg.externalTick) {
    // Announce before spawn: a virtual clock advancing in the window before
    // the timer thread registers could leap past the delivery timeout and
    // fail streams that never got a single retransmit.
    impl_->clk->announceWorker();
    impl_->timer = std::jthread(
        [impl = impl_.get()](std::stop_token stop) { impl->runTimer(stop); });
  }
}

void ReliableEndpoint::tick() { impl_->tick(); }

ReliableEndpoint::~ReliableEndpoint() { close(); }

NodeAddress ReliableEndpoint::address() const { return impl_->raw->address(); }

void ReliableEndpoint::setDeliver(DeliverFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->deliver = std::move(fn);
}

void ReliableEndpoint::setOnFailure(FailFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->onFailure = std::move(fn);
}

std::uint64_t ReliableEndpoint::send(const NodeAddress& dst,
                                     std::uint64_t streamId,
                                     std::string payload) {
  std::vector<OutSend> one;
  one.push_back(OutSend{dst, std::move(payload)});
  return sendMany(std::move(one), streamId, Payload())[0];
}

std::vector<std::uint64_t> ReliableEndpoint::sendMany(
    std::vector<OutSend> sends, std::uint64_t streamId, Payload body) {
  std::vector<std::uint64_t> seqs;
  seqs.reserve(sends.size());
  std::vector<Datagram> batch;
  batch.reserve(sends.size());
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->closed) throw ShutdownError("reliable endpoint closed");
    // All-or-nothing admission: probe every target stream before queueing
    // anything so a failed stream cannot leave a partial fan-out behind.
    // Oversize payloads are rejected here too: the transport counts them as
    // loss (never delivers, never throws — see Endpoint::sendBatch), so a
    // payload at or past the datagram limit would otherwise surface only as
    // an eventual delivery timeout.  The frame header only adds bytes, so
    // envelope size alone is a sufficient reject condition; payloads just
    // under the limit can still exceed it with the header attached and then
    // follow the loss path.
    const std::size_t maxDatagram = impl_->raw->maxDatagramSize();
    for (const OutSend& s : sends) {
      if (s.head.size() + body.size() >= maxDatagram) {
        throw DeliveryError(
            "payload of " + std::to_string(s.head.size() + body.size()) +
            " bytes cannot fit the transport datagram limit (" +
            std::to_string(maxDatagram) + " bytes)");
      }
      const auto it = impl_->sendStreams.find(StreamKey{s.dst, streamId});
      if (it != impl_->sendStreams.end() && it->second.failed) {
        throw DeliveryError(it->second.failReason.empty()
                                ? "stream failed"
                                : it->second.failReason);
      }
    }
    const TimePoint now = impl_->clk->now();
    for (OutSend& s : sends) {
      const StreamKey key{s.dst, streamId};
      Impl::SendStream& ss = impl_->streamLocked(key);
      const std::uint64_t seq = ss.nextSeq++;
      WireBuffer envelope(std::move(s.head), body);
      if (ss.sendQueue.empty() &&
          ss.pending.size() < impl_->windowLocked(ss)) {
        Impl::SendStream::Pending pending;
        pending.envelope = std::move(envelope);
        pending.enqueued = now;
        pending.lastSent = now;
        pending.backoff = impl_->rtoForLocked(s.dst);
        pending.nextResend = now + pending.backoff;
        impl_->stageDataLocked(batch, key, ss, seq, pending.envelope);
        ss.pending.emplace(seq, std::move(pending));
        ++impl_->stats.dataSent;
        impl_->stats.dataBytes += ss.pending.at(seq).envelope.size();
      } else {
        // Window full (or earlier frames already queued — FIFO): park the
        // frame instead of flooding the link; acks and ticks drain it.
        ss.sendQueue.push_back(
            Impl::SendStream::Queued{seq, std::move(envelope), now});
        ++impl_->stats.windowDeferred;
      }
      seqs.push_back(seq);
    }
  }
  // Transmit outside the lock: the raw endpoint has its own locking and a
  // delivery thread that re-enters this class, so holding our mutex across
  // the submit would invert the lock order.
  impl_->submitBatch(std::move(batch));
  return seqs;
}

ReliableEndpoint::FlushOutcome ReliableEndpoint::flushEx(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  const bool drained =
      impl_->clk->waitFor(lock, impl_->flushed, timeout,
                          [this] { return !impl_->anyPendingLocked(); });
  if (!drained) return FlushOutcome::kTimedOut;
  return impl_->anyFailedLocked() ? FlushOutcome::kFailed
                                  : FlushOutcome::kFlushed;
}

bool ReliableEndpoint::flush(Duration timeout) {
  // NOTE: kFailed counts as "drained" here — a failed stream discarded its
  // frames, so nothing is left in flight even though nothing was delivered.
  // Callers that must tell the difference use flushEx().
  return flushEx(timeout) != FlushOutcome::kTimedOut;
}

void ReliableEndpoint::resetStream(const NodeAddress& dst,
                                   std::uint64_t streamId) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->sendStreams.find(StreamKey{dst, streamId});
  if (it != impl_->sendStreams.end()) {
    it->second.failed = false;
    it->second.failReason.clear();
    it->second.pending.clear();
    it->second.sendQueue.clear();
    // New epoch: undelivered old-epoch frames are abandoned and the
    // receiver resynchronizes from sequence 0.  The congestion window
    // restarts too — the old estimate described a path that just failed.
    ++it->second.epoch;
    it->second.nextSeq = 0;
    it->second.cwnd = static_cast<double>(impl_->cfg.initialCwnd);
    it->second.ssthresh = static_cast<double>(impl_->cfg.maxCwnd);
    it->second.recoverSeq = 0;
  }
}

void ReliableEndpoint::close() {
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->closed) return;
    impl_->closed = true;
  }
  impl_->timer.request_stop();
  impl_->clk->notifyAll(impl_->timerWake);  // wake the parked tick wait
  if (impl_->timer.joinable()) impl_->timer.join();
  impl_->raw->close();
  impl_->clk->notifyAll(impl_->flushed);
}

ReliableEndpoint::Stats ReliableEndpoint::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

ReliableEndpoint::PeerProbe ReliableEndpoint::probePeer(
    const NodeAddress& peer) const {
  std::scoped_lock lock(impl_->mutex);
  PeerProbe probe;
  probe.rto = impl_->rtoForLocked(peer);
  const auto it = impl_->peerRtt.find(peer);
  if (it != impl_->peerRtt.end() && it->second.hasSample) {
    probe.hasRtt = true;
    probe.srtt = it->second.srtt;
    probe.rttvar = it->second.rttvar;
  }
  return probe;
}

ReliableEndpoint::StreamProbe ReliableEndpoint::probeStream(
    const NodeAddress& dst, std::uint64_t streamId) const {
  std::scoped_lock lock(impl_->mutex);
  StreamProbe probe;
  const auto it = impl_->sendStreams.find(StreamKey{dst, streamId});
  if (it == impl_->sendStreams.end()) return probe;
  probe.exists = true;
  probe.failed = it->second.failed;
  probe.cwnd = it->second.cwnd;
  probe.ssthresh = static_cast<std::uint64_t>(it->second.ssthresh);
  probe.inFlight = it->second.pending.size();
  probe.queued = it->second.sendQueue.size();
  return probe;
}

}  // namespace dapple
