#include "dapple/apps/calendar.hpp"

#include <bit>
#include <map>
#include <set>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple::apps {

namespace {

constexpr const char* kLog = "calendar";

// Application message kinds.
constexpr const char* kQuery = "cal.query";
constexpr const char* kAvail = "cal.avail";
constexpr const char* kConfirm = "cal.confirm";
constexpr const char* kOk = "cal.ok";
constexpr const char* kCancel = "cal.cancel";
constexpr const char* kDoneMsg = "cal.done";

DayMask windowMask(std::size_t window) {
  if (window >= 64) window = kMaxWindow;
  return (1ull << window) - 1;
}

std::set<std::int64_t> busySet(const Value& busy) {
  std::set<std::int64_t> days;
  for (const Value& v : busy.asList()) days.insert(v.asInt());
  return days;
}

Value toBusyValue(const std::set<std::int64_t>& days) {
  ValueList list;
  list.reserve(days.size());
  for (std::int64_t d : days) list.emplace_back(static_cast<long long>(d));
  return Value(std::move(list));
}

DayMask maskFrom(const std::set<std::int64_t>& busy, std::int64_t start,
                 std::size_t window) {
  DayMask mask = windowMask(window);
  for (std::size_t i = 0; i < window && i < kMaxWindow; ++i) {
    if (busy.count(start + static_cast<std::int64_t>(i)) != 0) {
      mask &= ~(1ull << i);
    }
  }
  return mask;
}

}  // namespace

// ---------------------------------------------------------------------------
// CalendarBook
// ---------------------------------------------------------------------------

void CalendarBook::markBusy(StateStore& store, std::int64_t day) {
  auto days = busySet(store.getOr(kBusyKey, Value(ValueList{})));
  days.insert(day);
  store.put(kBusyKey, toBusyValue(days));
}

void CalendarBook::markBusy(StateView& view, std::int64_t day) {
  auto days = busySet(view.getOr(kBusyKey, Value(ValueList{})));
  days.insert(day);
  view.put(kBusyKey, toBusyValue(days));
}

bool CalendarBook::isFree(const StateStore& store, std::int64_t day) {
  return busySet(store.getOr(kBusyKey, Value(ValueList{}))).count(day) == 0;
}

DayMask CalendarBook::freeMask(const StateStore& store, std::int64_t start,
                               std::size_t window) {
  return maskFrom(busySet(store.getOr(kBusyKey, Value(ValueList{}))), start,
                  window);
}

DayMask CalendarBook::freeMask(const StateView& view, std::int64_t start,
                               std::size_t window) {
  return maskFrom(busySet(view.getOr(kBusyKey, Value(ValueList{}))), start,
                  window);
}

void CalendarBook::populate(StateStore& store, Rng& rng, std::int64_t days,
                            double busyProb) {
  std::set<std::int64_t> busy;
  for (std::int64_t d = 0; d < days; ++d) {
    if (rng.chance(busyProb)) busy.insert(d);
  }
  store.put(kBusyKey, toBusyValue(busy));
}

std::size_t CalendarBook::busyCount(const StateStore& store) {
  return busySet(store.getOr(kBusyKey, Value(ValueList{}))).size();
}

namespace {

void unmarkBusy(StateView& view, std::int64_t day) {
  auto days = busySet(view.getOr(kBusyKey, Value(ValueList{})));
  days.erase(day);
  view.put(kBusyKey, toBusyValue(days));
}

// ---------------------------------------------------------------------------
// Member role (shared by flat and hierarchical sessions)
// ---------------------------------------------------------------------------

/// Serves queries/confirms from its upstream (coordinator or secretary) on
/// inbox "requests", replying through outbox "reply".
void memberRole(SessionContext& ctx) {
  Inbox& in = ctx.inbox("requests");
  Outbox& out = ctx.outbox("reply");
  std::int64_t booked = -1;
  while (true) {
    Delivery del = in.receive();  // ShutdownError on unlink ends the role
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) continue;
    if (msg->kind() == kQuery) {
      const std::int64_t start = msg->get("start").asInt();
      const auto window = static_cast<std::size_t>(msg->get("window").asInt());
      DataMessage avail(kAvail);
      avail.set("from", Value(ctx.self()));
      avail.set("mask", Value(static_cast<long long>(
                            CalendarBook::freeMask(ctx.state(), start,
                                                   window))));
      out.send(avail);
    } else if (msg->kind() == kConfirm) {
      const std::int64_t day = msg->get("day").asInt();
      const DayMask mask = CalendarBook::freeMask(ctx.state(), day, 1);
      const bool ok = (mask & 1) != 0;
      if (ok) {
        CalendarBook::markBusy(ctx.state(), day);
        booked = day;
      }
      DataMessage reply(kOk);
      reply.set("from", Value(ctx.self()));
      reply.set("ok", Value(ok));
      out.send(reply);
    } else if (msg->kind() == kCancel) {
      unmarkBusy(ctx.state(), msg->get("day").asInt());
      DataMessage reply(kOk);
      reply.set("from", Value(ctx.self()));
      reply.set("ok", Value(true));
      out.send(reply);
    } else if (msg->kind() == kDoneMsg) {
      break;
    }
  }
  ValueMap result;
  result["booked"] = Value(static_cast<long long>(booked));
  ctx.setResult(Value(std::move(result)));
}

/// Collects one DataMessage of kind `kind` from each of `count` distinct
/// senders; returns from -> message body map.
std::map<std::string, ValueMap> collect(Inbox& in, const std::string& kind,
                                        std::size_t count,
                                        std::int64_t* messagesSeen) {
  std::map<std::string, ValueMap> replies;
  while (replies.size() < count) {
    Delivery del = in.receive();
    if (messagesSeen != nullptr) ++*messagesSeen;
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr || msg->kind() != kind) continue;
    replies[msg->get("from").asString()] = msg->body();
  }
  return replies;
}

// ---------------------------------------------------------------------------
// Coordinator role
// ---------------------------------------------------------------------------

/// Runs the query/intersect/confirm rounds against `fanCount` downstream
/// parties (members when flat, secretaries when hierarchical).
void coordinatorRole(SessionContext& ctx) {
  Inbox& in = ctx.inbox("replies");
  Outbox& out = ctx.outbox("query");
  const Value& sp = ctx.sessionParams();
  std::int64_t winStart = sp.at("start").asInt();
  const auto window = static_cast<std::size_t>(sp.at("window").asInt());
  const auto maxRounds = static_cast<std::size_t>(sp.at("maxRounds").asInt());
  const auto fanCount = static_cast<std::size_t>(ctx.params()
                                                     .at("fanout")
                                                     .asInt());
  std::int64_t messages = 0;
  std::int64_t rounds = 0;
  bool scheduled = false;
  std::int64_t day = -1;

  for (std::size_t round = 0; round < maxRounds && !scheduled; ++round) {
    ++rounds;
    DataMessage query(kQuery);
    query.set("start", Value(static_cast<long long>(winStart)));
    query.set("window", Value(static_cast<long long>(window)));
    out.send(query);
    messages += static_cast<std::int64_t>(fanCount);

    DayMask common = windowMask(window);
    for (const auto& [from, body] : collect(in, kAvail, fanCount, &messages)) {
      common &= static_cast<DayMask>(body.at("mask").asInt());
    }
    if (common == 0) {
      winStart += static_cast<std::int64_t>(window);
      continue;
    }
    const std::int64_t candidate =
        winStart + std::countr_zero(common);
    DataMessage confirm(kConfirm);
    confirm.set("day", Value(static_cast<long long>(candidate)));
    out.send(confirm);
    messages += static_cast<std::int64_t>(fanCount);
    bool allOk = true;
    for (const auto& [from, body] : collect(in, kOk, fanCount, &messages)) {
      allOk = allOk && body.at("ok").asBool();
    }
    if (allOk) {
      scheduled = true;
      day = candidate;
    } else {
      // Someone lost the day to a concurrent booking; roll everyone back
      // and retry (the same window is queried again with fresh state).
      DataMessage cancel(kCancel);
      cancel.set("day", Value(static_cast<long long>(candidate)));
      out.send(cancel);
      messages += static_cast<std::int64_t>(fanCount);
      collect(in, kOk, fanCount, &messages);
    }
  }

  DataMessage doneMsg(kDoneMsg);
  out.send(doneMsg);
  messages += static_cast<std::int64_t>(fanCount);

  ValueMap result;
  result["scheduled"] = Value(scheduled);
  result["day"] = Value(static_cast<long long>(day));
  result["rounds"] = Value(static_cast<long long>(rounds));
  result["messages"] = Value(static_cast<long long>(messages));
  ctx.setResult(Value(std::move(result)));
}

// ---------------------------------------------------------------------------
// Secretary role (hierarchical only)
// ---------------------------------------------------------------------------

/// Aggregates its site's members: fans requests down, intersects/ANDs the
/// replies, and answers upstream as if it were a single member.
void secretaryRole(SessionContext& ctx) {
  Inbox& fromCoord = ctx.inbox("requests");
  Inbox& fromMembers = ctx.inbox("siteReplies");
  Outbox& toCoord = ctx.outbox("reply");
  Outbox& toMembers = ctx.outbox("siteQuery");
  const auto siteSize = static_cast<std::size_t>(ctx.params()
                                                     .at("fanout")
                                                     .asInt());
  while (true) {
    Delivery del = fromCoord.receive();
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) continue;
    if (msg->kind() == kQuery) {
      toMembers.send(*msg);
      DayMask site = ~0ull;
      for (const auto& [from, body] :
           collect(fromMembers, kAvail, siteSize, nullptr)) {
        site &= static_cast<DayMask>(body.at("mask").asInt());
      }
      DataMessage avail(kAvail);
      avail.set("from", Value(ctx.self()));
      avail.set("mask", Value(static_cast<long long>(site)));
      toCoord.send(avail);
    } else if (msg->kind() == kConfirm || msg->kind() == kCancel) {
      toMembers.send(*msg);
      bool allOk = true;
      for (const auto& [from, body] :
           collect(fromMembers, kOk, siteSize, nullptr)) {
        allOk = allOk && body.at("ok").asBool();
      }
      DataMessage reply(kOk);
      reply.set("from", Value(ctx.self()));
      reply.set("ok", Value(allOk));
      toCoord.send(reply);
    } else if (msg->kind() == kDoneMsg) {
      toMembers.send(*msg);
      break;
    }
  }
}

void calendarRole(SessionContext& ctx) {
  const std::string role = ctx.params().at("role").asString();
  if (role == "coordinator") {
    coordinatorRole(ctx);
  } else if (role == "secretary") {
    secretaryRole(ctx);
  } else {
    memberRole(ctx);
  }
}

}  // namespace

void registerCalendarApp(SessionAgent& agent) {
  agent.registerApp(kCalendarFlatApp, calendarRole);
  agent.registerApp(kCalendarHierApp, calendarRole);
}

// ---------------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------------

namespace {

Value coordParams(std::size_t fanout) {
  ValueMap params;
  params["role"] = Value("coordinator");
  params["fanout"] = Value(static_cast<long long>(fanout));
  return Value(std::move(params));
}

Value sessionParams(std::int64_t startDay, std::size_t window,
                    std::size_t maxRounds) {
  ValueMap params;
  params["start"] = Value(static_cast<long long>(startDay));
  params["window"] = Value(static_cast<long long>(window));
  params["maxRounds"] = Value(static_cast<long long>(maxRounds));
  return Value(std::move(params));
}

Value roleParam(const std::string& role) {
  ValueMap params;
  params["role"] = Value(role);
  return Value(std::move(params));
}

}  // namespace

Initiator::Plan flatCalendarPlan(const Directory& directory,
                                 const std::string& coordinatorName,
                                 const std::vector<std::string>& memberNames,
                                 std::int64_t startDay, std::size_t window,
                                 std::size_t maxRounds) {
  Initiator::Plan plan;
  plan.app = kCalendarFlatApp;
  plan.params = sessionParams(startDay, window, maxRounds);

  Initiator::MemberPlan coord =
      Initiator::member(directory, coordinatorName, {"replies"},
                        coordParams(memberNames.size()));
  plan.members.push_back(coord);
  for (const std::string& name : memberNames) {
    Initiator::MemberPlan member = Initiator::member(
        directory, name, {"requests"}, roleParam("member"));
    member.readKeys = {kBusyKey};
    member.writeKeys = {kBusyKey};
    plan.members.push_back(member);
    plan.edges.push_back({coordinatorName, "query", name, "requests"});
    plan.edges.push_back({name, "reply", coordinatorName, "replies"});
  }
  return plan;
}

Initiator::Plan hierCalendarPlan(const Directory& directory,
                                 const std::string& coordinatorName,
                                 const std::vector<Site>& sites,
                                 std::int64_t startDay, std::size_t window,
                                 std::size_t maxRounds) {
  Initiator::Plan plan;
  plan.app = kCalendarHierApp;
  plan.params = sessionParams(startDay, window, maxRounds);

  plan.members.push_back(Initiator::member(
      directory, coordinatorName, {"replies"}, coordParams(sites.size())));
  for (const Site& site : sites) {
    ValueMap secParams;
    secParams["role"] = Value("secretary");
    secParams["fanout"] = Value(static_cast<long long>(site.members.size()));
    plan.members.push_back(Initiator::member(
        directory, site.secretary, {"requests", "siteReplies"},
        Value(std::move(secParams))));
    plan.edges.push_back(
        {coordinatorName, "query", site.secretary, "requests"});
    plan.edges.push_back(
        {site.secretary, "reply", coordinatorName, "replies"});
    for (const std::string& name : site.members) {
      Initiator::MemberPlan member = Initiator::member(
          directory, name, {"requests"}, roleParam("member"));
      member.readKeys = {kBusyKey};
      member.writeKeys = {kBusyKey};
      plan.members.push_back(member);
      plan.edges.push_back(
          {site.secretary, "siteQuery", name, "requests"});
      plan.edges.push_back({name, "reply", site.secretary, "siteReplies"});
    }
  }
  return plan;
}

ScheduleOutcome parseOutcome(const Value& coordinatorResult) {
  ScheduleOutcome outcome;
  outcome.scheduled = coordinatorResult.at("scheduled").asBool();
  outcome.day = coordinatorResult.at("day").asInt();
  outcome.rounds = coordinatorResult.at("rounds").asInt();
  outcome.messages = coordinatorResult.at("messages").asInt();
  return outcome;
}

// ---------------------------------------------------------------------------
// Sequential baseline
// ---------------------------------------------------------------------------

CalendarRpcMember::CalendarRpcMember(Dapplet& dapplet, StateStore& store)
    : server_(dapplet, "calendar.rpc") {
  server_.bind("avail", [&store](const Value& args) {
    const std::int64_t start = args.at("start").asInt();
    const auto window = static_cast<std::size_t>(args.at("window").asInt());
    return Value(static_cast<long long>(
        CalendarBook::freeMask(store, start, window)));
  });
  server_.bind("confirm", [&store](const Value& args) {
    const std::int64_t day = args.at("day").asInt();
    if (!CalendarBook::isFree(store, day)) return Value(false);
    CalendarBook::markBusy(store, day);
    return Value(true);
  });
  server_.bind("cancel", [&store](const Value& args) {
    const std::int64_t day = args.at("day").asInt();
    auto days = busySet(store.getOr(kBusyKey, Value(ValueList{})));
    days.erase(day);
    store.put(kBusyKey, toBusyValue(days));
    return Value(true);
  });
}

SequentialScheduler::SequentialScheduler(
    Dapplet& dapplet, const std::vector<InboxRef>& memberRefs) {
  members_.reserve(memberRefs.size());
  for (const InboxRef& ref : memberRefs) {
    members_.push_back(std::make_unique<RpcClient>(dapplet, ref));
  }
}

ScheduleOutcome SequentialScheduler::negotiate(std::int64_t startDay,
                                               std::size_t window,
                                               std::size_t maxRounds,
                                               Duration callTimeout) {
  ScheduleOutcome outcome;
  std::int64_t winStart = startDay;
  for (std::size_t round = 0; round < maxRounds; ++round) {
    ++outcome.rounds;
    DayMask common = windowMask(window);
    ValueMap queryArgs;
    queryArgs["start"] = Value(static_cast<long long>(winStart));
    queryArgs["window"] = Value(static_cast<long long>(window));
    // "negotiate with each one in turn": strictly sequential calls.
    for (const auto& member : members_) {
      const Value mask =
          member->call("avail", Value(queryArgs), callTimeout);
      outcome.messages += 2;
      common &= static_cast<DayMask>(mask.asInt());
      if (common == 0) break;
    }
    if (common == 0) {
      winStart += static_cast<std::int64_t>(window);
      continue;
    }
    const std::int64_t day = winStart + std::countr_zero(common);
    ValueMap confirmArgs;
    confirmArgs["day"] = Value(static_cast<long long>(day));
    std::size_t booked = 0;
    bool allOk = true;
    for (const auto& member : members_) {
      const Value ok = member->call("confirm", Value(confirmArgs),
                                    callTimeout);
      outcome.messages += 2;
      if (!ok.asBool()) {
        allOk = false;
        break;
      }
      ++booked;
    }
    if (allOk) {
      outcome.scheduled = true;
      outcome.day = day;
      return outcome;
    }
    for (std::size_t i = 0; i < booked; ++i) {
      members_[i]->call("cancel", Value(confirmArgs), callTimeout);
      outcome.messages += 2;
    }
  }
  return outcome;
}

}  // namespace dapple::apps
