#include "dapple/apps/design.hpp"

#include <map>
#include <mutex>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"
#include "dapple/util/rng.hpp"

namespace dapple::apps {

namespace {

constexpr const char* kLog = "design";

constexpr const char* kHello = "doc.hello";
constexpr const char* kUpdate = "doc.update";
constexpr const char* kBye = "doc.bye";

std::mutex g_oracleMutex;
DesignOracle g_oracle;

DesignOracle oracleCopy() {
  std::scoped_lock lock(g_oracleMutex);
  return g_oracle;
}

/// A designer's replica: per part, how many committed writes it has seen,
/// split by author so convergence can be checked exactly.
struct Replica {
  // part -> author index -> applied write count
  std::map<std::size_t, std::map<std::size_t, std::int64_t>> applied;

  void apply(std::size_t part, std::size_t author) {
    ++applied[part][author];
  }

  std::int64_t appliedFrom(std::size_t author) const {
    std::int64_t total = 0;
    for (const auto& [part, authors] : applied) {
      const auto it = authors.find(author);
      if (it != authors.end()) total += it->second;
    }
    return total;
  }

  std::int64_t checksum() const {
    std::int64_t sum = 0;
    for (const auto& [part, authors] : applied) {
      for (const auto& [author, count] : authors) {
        sum += static_cast<std::int64_t>(part + 1) *
               static_cast<std::int64_t>(author + 31) * count;
      }
    }
    return sum;
  }
};

void designerRole(SessionContext& ctx) {
  const auto selfIdx = static_cast<std::size_t>(ctx.params()
                                                    .at("index")
                                                    .asInt());
  const auto ops = static_cast<std::size_t>(ctx.params().at("ops").asInt());
  const auto writePct = ctx.params().at("writePct").asInt();
  const auto seed = static_cast<std::uint64_t>(ctx.params()
                                                   .at("seed")
                                                   .asInt());
  const auto parts = static_cast<std::size_t>(ctx.sessionParams()
                                                  .at("parts")
                                                  .asInt());
  const std::size_t memberCount = ctx.peers().size();

  Inbox& updates = ctx.inbox("updates");
  Outbox& publish = ctx.outbox("publish");
  const DesignOracle oracle = oracleCopy();
  Rng rng(seed);

  // ---- bootstrap: exchange token-manager refs over the session mesh -----
  TokenManager tokens(ctx.dapplet());
  {
    DataMessage hello(kHello);
    hello.set("idx", Value(static_cast<long long>(selfIdx)));
    hello.set("ref", inboxRefToValue(tokens.ref()));
    publish.send(hello);
  }
  std::vector<InboxRef> managerRefs(memberCount);
  managerRefs[selfIdx] = tokens.ref();
  std::size_t hellosSeen = 1;
  Replica replica;
  std::map<std::size_t, std::int64_t> expectedWrites;  // author -> count
  std::size_t byesSeen = 0;

  const auto handle = [&](const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    if (msg->kind() == kHello) {
      const auto idx = static_cast<std::size_t>(msg->get("idx").asInt());
      if (!managerRefs[idx].valid()) {
        managerRefs[idx] = inboxRefFromValue(msg->get("ref"));
        ++hellosSeen;
      }
    } else if (msg->kind() == kUpdate) {
      replica.apply(static_cast<std::size_t>(msg->get("part").asInt()),
                    static_cast<std::size_t>(msg->get("author").asInt()));
    } else if (msg->kind() == kBye) {
      const auto idx = static_cast<std::size_t>(msg->get("idx").asInt());
      expectedWrites[idx] = msg->get("writes").asInt();
      ++byesSeen;
    }
  };

  while (hellosSeen < memberCount) handle(updates.receive());

  // Every member seeds the colours homed at itself: `parts` colours of
  // kReadTokens each.
  TokenBag mine;
  for (std::size_t p = 0; p < parts; ++p) {
    if (TokenManager::homeOfColor(partColor(p), memberCount) == selfIdx) {
      mine[partColor(p)] = kReadTokens;
    }
  }
  tokens.attach(managerRefs, selfIdx, mine);

  // ---- the edit workload -------------------------------------------------
  std::int64_t reads = 0;
  std::int64_t writes = 0;
  std::int64_t myWrites = 0;
  for (std::size_t op = 0; op < ops; ++op) {
    // Drain pending updates so replicas stay fresh.
    while (auto del = updates.tryReceive()) handle(*del);

    const auto part = static_cast<std::size_t>(rng.below(parts));
    const bool write = rng.below(100) < static_cast<std::uint64_t>(writePct);
    if (write) {
      // Writer: all tokens of the part's colour (§4.1 write rule).
      tokens.request({{partColor(part), TokenRequest::kAllTokens}});
      if (oracle.onWriteStart) oracle.onWriteStart(part);
      replica.apply(part, selfIdx);
      ++myWrites;
      DataMessage update(kUpdate);
      update.set("part", Value(static_cast<long long>(part)));
      update.set("author", Value(static_cast<long long>(selfIdx)));
      publish.send(update);
      if (oracle.onWriteEnd) oracle.onWriteEnd(part);
      tokens.release({{partColor(part), TokenRequest::kAllTokens}});
      ++writes;
    } else {
      // Reader: one token (§4.1 read rule).
      tokens.request({{partColor(part), 1}});
      if (oracle.onReadStart) oracle.onReadStart(part);
      (void)replica.checksum();  // "read" the replica
      if (oracle.onReadEnd) oracle.onReadEnd(part);
      tokens.release({{partColor(part), 1}});
      ++reads;
    }
  }

  // ---- convergence: wait for everyone's announced writes -----------------
  {
    DataMessage bye(kBye);
    bye.set("idx", Value(static_cast<long long>(selfIdx)));
    bye.set("writes", Value(static_cast<long long>(myWrites)));
    publish.send(bye);
  }
  expectedWrites[selfIdx] = myWrites;
  ++byesSeen;
  const auto converged = [&] {
    if (byesSeen < memberCount) return false;
    for (const auto& [author, expected] : expectedWrites) {
      if (replica.appliedFrom(author) < expected) return false;
    }
    return true;
  };
  // A 10s stall here means replication genuinely broke, so the missed
  // deadline IS a failure: surface it as TimeoutError, which fails the role.
  while (!converged()) {
    auto del = updates.receiveFor(seconds(10));
    if (!del) throw TimeoutError("design role: replication stalled for 10s");
    handle(std::move(*del));
  }

  ValueMap result;
  result["reads"] = Value(static_cast<long long>(reads));
  result["writes"] = Value(static_cast<long long>(writes));
  result["conflicts"] = Value(static_cast<long long>(0));
  result["checksum"] = Value(static_cast<long long>(replica.checksum()));
  ctx.setResult(Value(std::move(result)));
}

}  // namespace

std::string partColor(std::size_t part) {
  return "part." + std::to_string(part);
}

void setDesignOracle(DesignOracle oracle) {
  std::scoped_lock lock(g_oracleMutex);
  g_oracle = std::move(oracle);
}

void clearDesignOracle() {
  std::scoped_lock lock(g_oracleMutex);
  g_oracle = DesignOracle{};
}

void registerDesignApp(SessionAgent& agent) {
  agent.registerApp(kDesignApp, designerRole);
}

Initiator::Plan designPlan(const Directory& directory,
                           const std::vector<std::string>& memberNames,
                           std::size_t parts, std::size_t opsPerMember,
                           int writePct, std::uint64_t seed) {
  Initiator::Plan plan;
  plan.app = kDesignApp;
  ValueMap sessionParams;
  sessionParams["parts"] = Value(static_cast<long long>(parts));
  plan.params = Value(std::move(sessionParams));

  for (std::size_t i = 0; i < memberNames.size(); ++i) {
    ValueMap params;
    params["index"] = Value(static_cast<long long>(i));
    params["ops"] = Value(static_cast<long long>(opsPerMember));
    params["writePct"] = Value(static_cast<long long>(writePct));
    params["seed"] = Value(static_cast<long long>(seed + i * 977));
    plan.members.push_back(Initiator::member(
        directory, memberNames[i], {"updates"}, Value(std::move(params))));
  }
  // Full mesh: everyone's "publish" reaches every *other* member's
  // "updates" (authors apply their own writes locally).
  for (const std::string& from : memberNames) {
    for (const std::string& to : memberNames) {
      if (from == to) continue;
      plan.edges.push_back({from, "publish", to, "updates"});
    }
  }
  return plan;
}

DesignOutcome parseDesignOutcome(const Value& memberResult) {
  DesignOutcome outcome;
  outcome.reads = memberResult.at("reads").asInt();
  outcome.writes = memberResult.at("writes").asInt();
  outcome.conflictsObserved = memberResult.at("conflicts").asInt();
  outcome.finalChecksum = memberResult.at("checksum").asInt();
  return outcome;
}

}  // namespace dapple::apps
