#include "dapple/apps/cardgame.hpp"

#include <algorithm>
#include <iterator>
#include <map>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"
#include "dapple/util/rng.hpp"

namespace dapple::apps {

namespace {

constexpr const char* kCard = "game.card";
constexpr const char* kWin = "game.win";
constexpr std::size_t kHandSize = 4;

bool fourOfAKind(const std::map<std::int64_t, int>& hand) {
  return std::any_of(hand.begin(), hand.end(),
                     [](const auto& kv) { return kv.second >= 4; });
}

/// Picks the rank to pass: one of the least-represented ranks in the hand
/// (keeping the most promising set), chosen by `rng` among ties.
std::int64_t pickDiscard(const std::map<std::int64_t, int>& hand, Rng& rng) {
  int fewest = 5;
  for (const auto& [rank, count] : hand) fewest = std::min(fewest, count);
  std::vector<std::int64_t> candidates;
  for (const auto& [rank, count] : hand) {
    if (count == fewest) candidates.push_back(rank);
  }
  return candidates[rng.below(candidates.size())];
}

void playerRole(SessionContext& ctx) {
  const auto selfIdx = static_cast<std::size_t>(ctx.params()
                                                    .at("index")
                                                    .asInt());
  const auto seed = static_cast<std::uint64_t>(ctx.params()
                                                   .at("seed")
                                                   .asInt());
  const auto maxTurns = static_cast<std::size_t>(ctx.sessionParams()
                                                     .at("maxTurns")
                                                     .asInt());
  Inbox& left = ctx.inbox("left");
  Inbox& news = ctx.inbox("news");
  Outbox& right = ctx.outbox("right");
  Outbox& announce = ctx.outbox("announce");
  Rng rng(seed);
  // Turn and resolution deadlines pace on the dapplet's clock so the game
  // runs unchanged under virtual time.
  ClockSource& clk = ctx.dapplet().clockSource();

  std::map<std::int64_t, int> hand;
  for (const Value& card : ctx.params().at("hand").asList()) {
    ++hand[card.asInt()];
  }

  std::size_t turns = 0;

  // Two players can reach four of a kind in the same wave: a winner's
  // announcement races the next card around the ring, so a neighbour may
  // complete its own set before the news lands.  Announcements are therefore
  // *claims* (player index + turn count), and after the play loop every
  // player collects claims until they go quiet and applies the same
  // deterministic rule — earliest turn, lowest index on ties — so all
  // players announce the same winner.
  std::map<std::int64_t, std::int64_t> claims;  // player index -> claim turn

  const auto recordNews = [&](const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg != nullptr && msg->kind() == kWin) {
      claims[msg->get("winner").asInt()] = msg->get("turns").asInt();
      return true;
    }
    return false;
  };
  const auto checkNews = [&] {
    while (auto del = news.tryReceive()) recordNews(*del);
    return !claims.empty();
  };

  while (turns < maxTurns) {
    if (checkNews()) break;
    if (fourOfAKind(hand)) {
      claims[static_cast<std::int64_t>(selfIdx)] =
          static_cast<std::int64_t>(turns);
      DataMessage win(kWin);
      win.set("winner", Value(static_cast<long long>(selfIdx)));
      win.set("turns", Value(static_cast<long long>(turns)));
      announce.send(win);
      break;
    }
    // Pass one card right...
    const std::int64_t discard = pickDiscard(hand, rng);
    if (--hand[discard] == 0) hand.erase(discard);
    DataMessage pass(kCard);
    pass.set("rank", Value(static_cast<long long>(discard)));
    right.send(pass);
    // ...and take one from the left, staying responsive to win news.
    bool gotCard = false;
    const TimePoint giveUp = clk.now() + seconds(5);
    while (!gotCard && clk.now() < giveUp) {
      if (checkNews()) break;
      if (auto del = left.receiveFor(milliseconds(50))) {
        const auto* msg =
            dynamic_cast<const DataMessage*>(del->message.get());
        if (msg != nullptr && msg->kind() == kCard) {
          ++hand[msg->get("rank").asInt()];
          gotCard = true;
        }
      }
    }
    if (!gotCard) break;  // neighbour stopped: the game is over
    ++turns;
  }

  // Resolution: rival claims can only originate within ~one ring round of the
  // first one, so draining the news inbox until it stays quiet gathers them
  // all; if the game ended with no claim at all, give up quickly as before.
  const auto quietWindow = milliseconds(250);
  const TimePoint resolveStart = clk.now();
  const TimePoint resolveCap = resolveStart + seconds(3);
  TimePoint lastNews = resolveStart;
  while (clk.now() < resolveCap) {
    if (claims.empty() &&
        clk.now() - resolveStart >= milliseconds(500)) {
      break;
    }
    if (!claims.empty() && clk.now() - lastNews >= quietWindow) break;
    if (auto del = news.receiveFor(milliseconds(50))) {
      if (recordNews(*del)) lastNews = clk.now();
    }
  }

  bool won = false;
  std::int64_t winner = -1;
  if (!claims.empty()) {
    auto best = claims.begin();
    for (auto it = std::next(claims.begin()); it != claims.end(); ++it) {
      if (it->second < best->second) best = it;
    }
    winner = best->first;
    won = winner == static_cast<std::int64_t>(selfIdx);
  }

  ValueMap result;
  result["won"] = Value(won);
  result["winner"] = Value(static_cast<long long>(winner));
  result["turns"] = Value(static_cast<long long>(turns));
  ctx.setResult(Value(std::move(result)));
}

}  // namespace

void registerCardGameApp(SessionAgent& agent) {
  agent.registerApp(kCardGameApp, playerRole);
}

Initiator::Plan cardGamePlan(const Directory& directory,
                             const std::vector<std::string>& playerNames,
                             std::size_t maxTurns, std::uint64_t seed) {
  const std::size_t n = playerNames.size();
  if (n < 2) throw SessionError("card game needs at least 2 players");

  // Deal: 4 copies of each of N ranks, shuffled deterministically.
  std::vector<std::int64_t> deck;
  deck.reserve(4 * n);
  for (std::size_t rank = 0; rank < n; ++rank) {
    for (int copy = 0; copy < 4; ++copy) {
      deck.push_back(static_cast<std::int64_t>(rank));
    }
  }
  Rng rng(seed);
  for (std::size_t i = deck.size(); i > 1; --i) {
    std::swap(deck[i - 1], deck[rng.below(i)]);
  }

  Initiator::Plan plan;
  plan.app = kCardGameApp;
  ValueMap sessionParams;
  sessionParams["players"] = Value(static_cast<long long>(n));
  sessionParams["maxTurns"] = Value(static_cast<long long>(maxTurns));
  plan.params = Value(std::move(sessionParams));

  for (std::size_t i = 0; i < n; ++i) {
    ValueMap params;
    params["index"] = Value(static_cast<long long>(i));
    params["seed"] = Value(static_cast<long long>(seed * 31 + i));
    ValueList hand;
    for (std::size_t c = 0; c < kHandSize; ++c) {
      hand.emplace_back(static_cast<long long>(deck[i * kHandSize + c]));
    }
    params["hand"] = Value(std::move(hand));
    plan.members.push_back(Initiator::member(
        directory, playerNames[i], {"left", "news"},
        Value(std::move(params))));
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Ring: predecessor/successor links.
    plan.edges.push_back({playerNames[i], "right",
                          playerNames[(i + 1) % n], "left"});
    // Broadcast: every player's announcement reaches everyone else.
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      plan.edges.push_back({playerNames[i], "announce",
                            playerNames[j], "news"});
    }
  }
  return plan;
}

GameOutcome parseGameOutcome(const Value& playerResult) {
  GameOutcome outcome;
  outcome.won = playerResult.at("won").asBool();
  outcome.winner = playerResult.at("winner").asInt();
  outcome.turns = playerResult.at("turns").asInt();
  return outcome;
}

}  // namespace dapple::apps
