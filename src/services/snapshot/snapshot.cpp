#include "dapple/services/snapshot/snapshot.hpp"

#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/fsio.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "snapshot";

// CheckpointService message kinds.
constexpr const char* kMaxQ = "ckpt.maxq";
constexpr const char* kMaxA = "ckpt.maxa";
constexpr const char* kTake = "ckpt.take";
constexpr const char* kReport = "ckpt.report";
constexpr const char* kState = "ckpt.state";

// MarkerRegion message kinds.
constexpr const char* kStart = "snap.start";
constexpr const char* kSnapState = "snap.state";

/// Serializes a recorded in-flight message for the snapshot report.
Value describeDelivery(const Delivery& del) {
  ValueMap map;
  map["type"] = Value(std::string(del.message->typeName()));
  map["wire"] = Value(encodeMessage(*del.message));
  map["sentAt"] = Value(static_cast<long long>(del.sentAt));
  map["src"] = Value(static_cast<long long>(del.srcNode.packed()));
  map["outbox"] = Value(static_cast<long long>(del.srcOutbox));
  return Value(std::move(map));
}

}  // namespace

// ===========================================================================
// CheckpointService
// ===========================================================================

struct CheckpointService::Impl {
  Impl(Dapplet& dapplet, StateFn fn) : d(dapplet), stateFn(std::move(fn)) {}

  Dapplet& d;
  /// Gather waits, their notifies, and the settle pause pace on this clock.
  ClockSource& clk() const { return d.clockSource(); }
  StateFn stateFn;
  /// Crash-recovery compaction hook (see onLocalCheckpoint).
  std::function<void(std::uint64_t)> localCkptHook;
  Inbox* control = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;

  /// Active recording at this member.
  struct Recording {
    std::uint64_t snapId = 0;
    std::uint64_t time = 0;  // T
    Value localState;
    std::vector<Value> channelMsgs;
  };
  std::optional<Recording> recording;

  /// Coordinator-side gather state.
  struct Gather {
    std::size_t maxPending = 0;
    std::uint64_t maxClock = 0;
    std::size_t reportsPending = 0;
    GlobalSnapshot snapshot;
  };
  std::map<std::uint64_t, Gather> gathers;
  std::uint64_t nextSnapId = 1;

  Stats stats;

  void sendTo(std::size_t index, const DataMessage& msg) {
    peers.at(index)->send(msg);
  }

  void broadcast(const DataMessage& msg) {
    for (std::size_t i = 0; i < peers.size(); ++i) sendTo(i, msg);
  }

  bool tap(Inbox& target, Delivery& del) {
    if (&target == control) return false;  // service traffic is not state
    std::scoped_lock lock(mutex);
    if (recording && del.sentAt < recording->time) {
      // "the states of the channels are the sequences of messages sent on
      // the channels before T and received after T"
      recording->channelMsgs.push_back(describeDelivery(del));
      ++stats.channelMessagesRecorded;
    }
    return false;  // never consumed; the application still processes it
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    const std::string& kind = msg->kind();
    if (kind == kMaxQ) {
      DataMessage reply(kMaxA);
      reply.set("qid", msg->get("qid"));
      reply.set("clock",
                Value(static_cast<long long>(d.clock().now())));
      sendTo(static_cast<std::size_t>(msg->get("from").asInt()), reply);
    } else if (kind == kMaxA) {
      std::scoped_lock lock(mutex);
      const auto qid = static_cast<std::uint64_t>(msg->get("qid").asInt());
      const auto it = gathers.find(qid);
      if (it == gathers.end() || it->second.maxPending == 0) return;
      it->second.maxClock =
          std::max(it->second.maxClock,
                   static_cast<std::uint64_t>(msg->get("clock").asInt()));
      if (--it->second.maxPending == 0) clk().notifyAll(cv);
    } else if (kind == kTake) {
      const auto time = static_cast<std::uint64_t>(msg->get("T").asInt());
      const auto snapId =
          static_cast<std::uint64_t>(msg->get("snapId").asInt());
      // Order matters for consistency of the cut:
      //  1. Jump the clock past T first, so every message this member sends
      //     from now on is stamped > T (its effects are post-checkpoint).
      //  2. Then, atomically with respect to the delivery tap (same mutex),
      //     record the local state and start channel recording.  No arrival
      //     can slip between the two, so nothing is counted in both the
      //     state and a channel.
      d.clock().advanceTo(time);
      std::function<void(std::uint64_t)> hook;
      {
        std::scoped_lock lock(mutex);
        Recording rec;
        rec.snapId = snapId;
        rec.time = time;
        rec.localState = stateFn();
        recording = std::move(rec);
        ++stats.checkpointsTaken;
        hook = localCkptHook;
      }
      // Crash-recovery binding (outside the lock: the hook does file I/O
      // and re-enters the state store).  The local state above and the
      // durable image the hook writes may differ by mutations landing in
      // between; both sit at-or-after the cut, which is what the recovery
      // line needs.
      if (hook) hook(time);
    } else if (kind == kReport) {
      DataMessage reply(kState);
      std::scoped_lock lock(mutex);
      if (!recording ||
          recording->snapId !=
              static_cast<std::uint64_t>(msg->get("snapId").asInt())) {
        return;
      }
      reply.set("snapId", msg->get("snapId"));
      reply.set("idx", Value(static_cast<long long>(selfIndex)));
      reply.set("state", recording->localState);
      reply.set("channel", Value(ValueList(recording->channelMsgs)));
      recording.reset();
      sendTo(static_cast<std::size_t>(msg->get("from").asInt()), reply);
    } else if (kind == kState) {
      std::scoped_lock lock(mutex);
      const auto snapId =
          static_cast<std::uint64_t>(msg->get("snapId").asInt());
      const auto it = gathers.find(snapId);
      if (it == gathers.end()) return;
      const auto idx = static_cast<std::size_t>(msg->get("idx").asInt());
      it->second.snapshot.states[idx] = msg->get("state");
      it->second.snapshot.channels[idx] = msg->get("channel").asList();
      if (--it->second.reportsPending == 0) clk().notifyAll(cv);
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = control->receive();
      try {
        dispatch(del);
      } catch (const ShutdownError&) {
        throw;
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog) << d.name() << ": checkpoint dispatch: "
                                << e.what();
      }
    }
  }
};

CheckpointService::CheckpointService(Dapplet& dapplet, StateFn stateFn)
    : impl_(std::make_shared<Impl>(dapplet, std::move(stateFn))) {
  impl_->control = &dapplet.createInbox("ckpt.ctl");
  dapplet.setDeliveryTap([impl = impl_](Inbox& target, Delivery& del) {
    return impl->tap(target, del);
  });
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->clk().notifyAll(impl->cv);
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->clk().notifyAll(impl->cv);
  });
}

CheckpointService::~CheckpointService() {
  impl_->d.setDeliveryTap(nullptr);
  try {
    impl_->d.destroyInbox(*impl_->control);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef CheckpointService::ref() const { return impl_->control->ref(); }

void CheckpointService::attach(const std::vector<InboxRef>& members,
                               std::size_t selfIndex) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  impl_->peers.resize(members.size(), nullptr);
  for (std::size_t i = 0; i < members.size(); ++i) {
    Outbox& box = impl_->d.createOutbox();
    box.add(members[i]);
    impl_->peers[i] = &box;
  }
  impl_->attached = true;
}

GlobalSnapshot CheckpointService::take(Duration settle, Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw SessionError("checkpoint service not attached");
  const std::uint64_t snapId = impl_->nextSnapId++;
  auto& gather = impl_->gathers[snapId];
  gather.maxPending = impl_->peers.size();
  gather.reportsPending = impl_->peers.size();

  // Phase 1: find max clock.
  DataMessage maxq(kMaxQ);
  maxq.set("qid", Value(static_cast<long long>(snapId)));
  maxq.set("from", Value(static_cast<long long>(impl_->selfIndex)));
  impl_->broadcast(maxq);
  if (!impl_->clk().waitFor(lock, impl_->cv, timeout, [&] {
        return impl_->gathers.at(snapId).maxPending == 0 ||
               impl_->loopDone;
      }) || impl_->loopDone) {
    impl_->gathers.erase(snapId);
    throw TimeoutError("checkpoint: clock query timed out");
  }
  // Margin so in-progress sends stamped "now" still land below T only if
  // they were sent before the broadcast reaches their sender.
  const std::uint64_t time = impl_->gathers.at(snapId).maxClock + 1000;
  impl_->gathers.at(snapId).snapshot.at = time;

  // Phase 2: everyone checkpoints at T.
  DataMessage take(kTake);
  take.set("snapId", Value(static_cast<long long>(snapId)));
  take.set("T", Value(static_cast<long long>(time)));
  impl_->broadcast(take);

  // Phase 3: allow pre-T traffic to drain into channel recordings.
  lock.unlock();
  impl_->clk().sleepFor(settle);
  lock.lock();

  // Phase 4: gather reports.
  DataMessage report(kReport);
  report.set("snapId", Value(static_cast<long long>(snapId)));
  report.set("from", Value(static_cast<long long>(impl_->selfIndex)));
  impl_->broadcast(report);
  if (!impl_->clk().waitFor(lock, impl_->cv, timeout, [&] {
        return impl_->gathers.at(snapId).reportsPending == 0 ||
               impl_->loopDone;
      }) || impl_->loopDone) {
    impl_->gathers.erase(snapId);
    throw TimeoutError("checkpoint: report gathering timed out");
  }
  GlobalSnapshot snapshot = std::move(impl_->gathers.at(snapId).snapshot);
  impl_->gathers.erase(snapId);
  return snapshot;
}

CheckpointService::Stats CheckpointService::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

void CheckpointService::onLocalCheckpoint(
    std::function<void(std::uint64_t at)> hook) {
  std::scoped_lock lock(impl_->mutex);
  impl_->localCkptHook = std::move(hook);
}

// ===========================================================================
// MarkerRegion
// ===========================================================================

struct MarkerRegion::Impl {
  Impl(Dapplet& dapplet, StateFn fn) : d(dapplet), stateFn(std::move(fn)) {}

  Dapplet& d;
  /// Gather waits and their notifies pace on the dapplet's clock.
  ClockSource& clk() const { return d.clockSource(); }
  StateFn stateFn;
  Inbox* control = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;        // control-plane outboxes
  std::vector<Outbox*> appOutboxes;  // markers travel on these
  std::size_t inChannels = 0;

  using ChannelKey = std::pair<std::uint64_t, std::uint64_t>;  // node,outbox

  struct Active {
    std::uint64_t snapId = 0;
    std::size_t coordinator = 0;
    Value localState;
    std::set<ChannelKey> doneChannels;  // marker received
    std::map<ChannelKey, std::vector<Value>> channelMsgs;
    bool reported = false;
  };
  std::optional<Active> active;

  struct Gather {
    std::size_t reportsPending = 0;
    GlobalSnapshot snapshot;
  };
  std::map<std::uint64_t, Gather> gathers;
  std::uint64_t nextSnapId = 1;

  Stats stats;

  void sendTo(std::size_t index, const DataMessage& msg) {
    peers.at(index)->send(msg);
  }

  /// Begins this member's snapshot: record state, emit markers.
  void beginLocked(std::uint64_t snapId, std::size_t coordinator) {
    Active act;
    act.snapId = snapId;
    act.coordinator = coordinator;
    act.localState = stateFn();
    active = std::move(act);
    MarkerMsg marker;
    marker.snapshotId = snapId;
    marker.coordinator = coordinator;
    for (Outbox* box : appOutboxes) {
      box->send(marker);
      ++stats.markersSent;
    }
    maybeFinishLocked();
  }

  void maybeFinishLocked() {
    if (!active || active->reported) return;
    if (active->doneChannels.size() < inChannels) return;
    active->reported = true;
    DataMessage report(kSnapState);
    report.set("snapId", Value(static_cast<long long>(active->snapId)));
    report.set("idx", Value(static_cast<long long>(selfIndex)));
    report.set("state", active->localState);
    ValueList channel;
    for (auto& [key, msgs] : active->channelMsgs) {
      for (Value& v : msgs) channel.push_back(std::move(v));
    }
    report.set("channel", Value(std::move(channel)));
    const std::size_t coord = active->coordinator;
    active.reset();
    sendTo(coord, report);
  }

  bool tap(Inbox& target, Delivery& del) {
    if (&target == control) return false;
    const ChannelKey key{del.srcNode.packed(), del.srcOutbox};
    if (const auto* marker = dynamic_cast<const MarkerMsg*>(del.message.get())) {
      std::scoped_lock lock(mutex);
      ++stats.markersReceived;
      if (!active) {
        // First marker initiates this member's snapshot; the arriving
        // channel's recorded state is empty (classic Chandy–Lamport).
        beginLocked(marker->snapshotId,
                    static_cast<std::size_t>(marker->coordinator));
      }
      if (active && active->snapId == marker->snapshotId) {
        active->doneChannels.insert(key);
        maybeFinishLocked();
      }
      return true;  // markers never reach the application
    }
    std::scoped_lock lock(mutex);
    if (active && active->doneChannels.count(key) == 0) {
      active->channelMsgs[key].push_back(describeDelivery(del));
      ++stats.channelMessagesRecorded;
    }
    return false;
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    const std::string& kind = msg->kind();
    if (kind == kStart) {
      const auto snapId =
          static_cast<std::uint64_t>(msg->get("snapId").asInt());
      const auto coord = static_cast<std::size_t>(msg->get("coord").asInt());
      std::scoped_lock lock(mutex);
      if (!active) beginLocked(snapId, coord);
    } else if (kind == kSnapState) {
      std::scoped_lock lock(mutex);
      const auto snapId =
          static_cast<std::uint64_t>(msg->get("snapId").asInt());
      const auto it = gathers.find(snapId);
      if (it == gathers.end()) return;
      const auto idx = static_cast<std::size_t>(msg->get("idx").asInt());
      it->second.snapshot.states[idx] = msg->get("state");
      it->second.snapshot.channels[idx] = msg->get("channel").asList();
      if (--it->second.reportsPending == 0) clk().notifyAll(cv);
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = control->receive();
      try {
        dispatch(del);
      } catch (const ShutdownError&) {
        throw;
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog) << d.name() << ": marker dispatch: "
                                << e.what();
      }
    }
  }
};

MarkerRegion::MarkerRegion(Dapplet& dapplet, StateFn stateFn)
    : impl_(std::make_shared<Impl>(dapplet, std::move(stateFn))) {
  impl_->control = &dapplet.createInbox("snap.ctl");
  dapplet.setDeliveryTap([impl = impl_](Inbox& target, Delivery& del) {
    return impl->tap(target, del);
  });
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->clk().notifyAll(impl->cv);
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->clk().notifyAll(impl->cv);
  });
}

MarkerRegion::~MarkerRegion() {
  impl_->d.setDeliveryTap(nullptr);
  try {
    impl_->d.destroyInbox(*impl_->control);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef MarkerRegion::ref() const { return impl_->control->ref(); }

void MarkerRegion::attach(const std::vector<InboxRef>& members,
                          std::size_t selfIndex,
                          std::vector<Outbox*> appOutboxes,
                          std::size_t inChannels) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  impl_->peers.resize(members.size(), nullptr);
  for (std::size_t i = 0; i < members.size(); ++i) {
    Outbox& box = impl_->d.createOutbox();
    box.add(members[i]);
    impl_->peers[i] = &box;
  }
  impl_->appOutboxes = std::move(appOutboxes);
  impl_->inChannels = inChannels;
  impl_->attached = true;
}

GlobalSnapshot MarkerRegion::take(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw SessionError("marker region not attached");
  const std::uint64_t snapId =
      impl_->nextSnapId++ + (static_cast<std::uint64_t>(impl_->selfIndex)
                             << 48);
  auto& gather = impl_->gathers[snapId];
  gather.reportsPending = impl_->peers.size();
  gather.snapshot.at = snapId;

  DataMessage start(kStart);
  start.set("snapId", Value(static_cast<long long>(snapId)));
  start.set("coord", Value(static_cast<long long>(impl_->selfIndex)));
  for (std::size_t i = 0; i < impl_->peers.size(); ++i) {
    impl_->sendTo(i, start);
  }
  if (!impl_->clk().waitFor(lock, impl_->cv, timeout, [&] {
        return impl_->gathers.at(snapId).reportsPending == 0 ||
               impl_->loopDone;
      }) || impl_->loopDone) {
    impl_->gathers.erase(snapId);
    throw TimeoutError("marker snapshot timed out");
  }
  GlobalSnapshot snapshot = std::move(impl_->gathers.at(snapId).snapshot);
  impl_->gathers.erase(snapId);
  return snapshot;
}

MarkerRegion::Stats MarkerRegion::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

DAPPLE_REGISTER_MESSAGE(MarkerMsg)


// ===========================================================================
// GlobalSnapshot persistence
// ===========================================================================

Value GlobalSnapshot::toValue() const {
  ValueMap map;
  map["at"] = Value(static_cast<long long>(at));
  ValueMap stateMap;
  for (const auto& [idx, state] : states) {
    stateMap[std::to_string(idx)] = state;
  }
  map["states"] = Value(std::move(stateMap));
  ValueMap channelMap;
  for (const auto& [idx, msgs] : channels) {
    channelMap[std::to_string(idx)] = Value(ValueList(msgs));
  }
  map["channels"] = Value(std::move(channelMap));
  return Value(std::move(map));
}

GlobalSnapshot GlobalSnapshot::fromValue(const Value& value) {
  GlobalSnapshot snap;
  snap.at = static_cast<std::uint64_t>(value.at("at").asInt());
  for (const auto& [idx, state] : value.at("states").asMap()) {
    snap.states[std::stoull(idx)] = state;
  }
  for (const auto& [idx, msgs] : value.at("channels").asMap()) {
    snap.channels[std::stoull(idx)] = msgs.asList();
  }
  return snap;
}

void GlobalSnapshot::saveTo(const std::string& path) const {
  // Durable atomic replace (temp + fsync + rename): a crash mid-save must
  // never leave a torn snapshot, same contract as StateStore::save.
  atomicWriteFile(path, toValue().toWire());
}

GlobalSnapshot GlobalSnapshot::loadFrom(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw StateError("snapshot: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return fromValue(Value::fromWire(buf.str()));
}

}  // namespace dapple
