#include "dapple/services/sync/distributed.hpp"

#include <condition_variable>
#include <map>
#include <mutex>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "dsync";

constexpr const char* kArrive = "bar.arrive";
constexpr const char* kRelease = "bar.release";

constexpr const char* kPropose = "sav.propose";
constexpr const char* kValue = "sav.value";
constexpr const char* kReject = "sav.reject";
}  // namespace

// ===========================================================================
// DistributedBarrier
// ===========================================================================

struct DistributedBarrier::Impl {
  Impl(Dapplet& dapplet, std::string barrierName)
      : d(dapplet), name(std::move(barrierName)) {}

  Dapplet& d;
  const std::string name;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;

  // Member side.
  std::uint64_t nextGeneration = 0;   ///< generation of the next arrive
  std::uint64_t releasedThrough = 0;  ///< highest released generation + 1

  // Coordinator side (selfIndex == 0).
  std::map<std::uint64_t, std::size_t> arrivals;  // generation -> count

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    std::scoped_lock lock(mutex);
    if (msg->kind() == kArrive && selfIndex == 0) {
      const auto gen = static_cast<std::uint64_t>(msg->get("gen").asInt());
      if (++arrivals[gen] == peers.size()) {
        arrivals.erase(gen);
        DataMessage release(kRelease);
        release.set("gen", Value(static_cast<long long>(gen)));
        for (Outbox* box : peers) box->send(release);
      }
    } else if (msg->kind() == kRelease) {
      const auto gen = static_cast<std::uint64_t>(msg->get("gen").asInt());
      if (gen + 1 > releasedThrough) {
        releasedThrough = gen + 1;
        cv.notify_all();
      }
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      dispatch(del);
    }
  }
};

DistributedBarrier::DistributedBarrier(Dapplet& dapplet,
                                       const std::string& name)
    : impl_(std::make_shared<Impl>(dapplet, name)) {
  impl_->inbox = &dapplet.createInbox("bar." + name);
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

DistributedBarrier::~DistributedBarrier() {
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef DistributedBarrier::ref() const { return impl_->inbox->ref(); }

void DistributedBarrier::attach(const std::vector<InboxRef>& members,
                                std::size_t selfIndex) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  if (selfIndex == 0) {
    // Coordinator keeps an outbox to every member for RELEASE broadcast.
    impl_->peers.resize(members.size(), nullptr);
    for (std::size_t i = 0; i < members.size(); ++i) {
      Outbox& box = impl_->d.createOutbox();
      box.add(members[i]);
      impl_->peers[i] = &box;
    }
  } else {
    // Plain members only talk to the coordinator.
    impl_->peers.resize(1, nullptr);
    Outbox& box = impl_->d.createOutbox();
    box.add(members[0]);
    impl_->peers[0] = &box;
  }
  impl_->attached = true;
}

std::uint64_t DistributedBarrier::arriveAndWait(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw SessionError("barrier not attached");
  const std::uint64_t gen = impl_->nextGeneration++;
  DataMessage arrive(kArrive);
  arrive.set("gen", Value(static_cast<long long>(gen)));
  arrive.set("idx", Value(static_cast<long long>(impl_->selfIndex)));
  impl_->peers[0]->send(arrive);  // coordinator (possibly self, loop-back)
  if (!impl_->cv.wait_for(lock, timeout, [&] {
        return impl_->releasedThrough > gen || impl_->loopDone;
      })) {
    throw TimeoutError("distributed barrier '" + impl_->name +
                       "' timed out at generation " + std::to_string(gen));
  }
  if (impl_->releasedThrough <= gen) {
    throw ShutdownError("distributed barrier '" + impl_->name + "' stopped");
  }
  return gen;
}

// ===========================================================================
// DistributedSingleAssignment
// ===========================================================================

struct DistributedSingleAssignment::Impl {
  Impl(Dapplet& dapplet, std::string varName)
      : d(dapplet), name(std::move(varName)) {}

  Dapplet& d;
  const std::string name;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;

  std::optional<Value> value;

  // Setter-side: outcome of our own proposal.
  std::optional<bool> proposalWon;

  // Owner side (selfIndex 0 is the serializer).
  bool ownerAssigned = false;

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    std::scoped_lock lock(mutex);
    if (msg->kind() == kPropose && selfIndex == 0) {
      const auto from = static_cast<std::size_t>(msg->get("idx").asInt());
      if (ownerAssigned) {
        DataMessage reject(kReject);
        peers.at(from)->send(reject);
        return;
      }
      ownerAssigned = true;
      DataMessage broadcast(kValue);
      broadcast.set("value", msg->get("value"));
      broadcast.set("winner", Value(static_cast<long long>(from)));
      for (Outbox* box : peers) box->send(broadcast);
    } else if (msg->kind() == kValue) {
      if (!value) {
        value.emplace(msg->get("value"));
        const auto winner =
            static_cast<std::size_t>(msg->get("winner").asInt());
        if (winner == selfIndex && !proposalWon) proposalWon = true;
        cv.notify_all();
      }
    } else if (msg->kind() == kReject) {
      if (!proposalWon) {
        proposalWon = false;
        cv.notify_all();
      }
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      dispatch(del);
    }
  }
};

DistributedSingleAssignment::DistributedSingleAssignment(
    Dapplet& dapplet, const std::string& name)
    : impl_(std::make_shared<Impl>(dapplet, name)) {
  impl_->inbox = &dapplet.createInbox("sav." + name);
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

DistributedSingleAssignment::~DistributedSingleAssignment() {
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef DistributedSingleAssignment::ref() const {
  return impl_->inbox->ref();
}

void DistributedSingleAssignment::attach(const std::vector<InboxRef>& members,
                                         std::size_t selfIndex) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  if (selfIndex == 0) {
    impl_->peers.resize(members.size(), nullptr);
    for (std::size_t i = 0; i < members.size(); ++i) {
      Outbox& box = impl_->d.createOutbox();
      box.add(members[i]);
      impl_->peers[i] = &box;
    }
  } else {
    impl_->peers.resize(1, nullptr);
    Outbox& box = impl_->d.createOutbox();
    box.add(members[0]);
    impl_->peers[0] = &box;
  }
  impl_->attached = true;
}

bool DistributedSingleAssignment::set(const Value& value) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw SessionError("variable not attached");
  impl_->proposalWon.reset();
  DataMessage propose(kPropose);
  propose.set("idx", Value(static_cast<long long>(impl_->selfIndex)));
  propose.set("value", value);
  impl_->peers[0]->send(propose);
  if (!impl_->cv.wait_for(lock, seconds(30), [&] {
        return impl_->proposalWon.has_value() || impl_->loopDone;
      })) {
    throw TimeoutError("single-assignment set timed out");
  }
  if (!impl_->proposalWon) {
    throw ShutdownError("single-assignment '" + impl_->name + "' stopped");
  }
  return *impl_->proposalWon;
}

Value DistributedSingleAssignment::get(Duration timeout) const {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->cv.wait_for(lock, timeout, [&] {
        return impl_->value.has_value() || impl_->loopDone;
      })) {
    throw TimeoutError("single-assignment '" + impl_->name +
                       "' get timed out");
  }
  if (!impl_->value) {
    throw ShutdownError("single-assignment '" + impl_->name + "' stopped");
  }
  return *impl_->value;
}

bool DistributedSingleAssignment::isSet() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->value.has_value();
}

}  // namespace dapple
