#include "dapple/services/clocks/dist_mutex.hpp"

#include <condition_variable>
#include <mutex>
#include <vector>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "ra";
constexpr const char* kRequest = "ra.request";
constexpr const char* kReply = "ra.reply";
}  // namespace

struct DistributedMutex::Impl {
  Impl(Dapplet& dapplet, std::string mutexName)
      : d(dapplet), name(std::move(mutexName)) {}

  Dapplet& d;
  const std::string name;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  std::vector<Outbox*> peerOutboxes;  // index-aligned; self slot is null
  std::size_t selfIndex = 0;
  std::size_t memberCount = 0;
  bool attached = false;

  // Ricart–Agrawala state.
  bool requesting = false;
  bool inCs = false;
  LamportStamp myStamp;
  std::size_t repliesPending = 0;
  std::vector<std::pair<std::size_t, std::uint64_t>> deferred;  // (idx, ts)

  Stats stats;

  void broadcastRequest() {
    DataMessage msg(kRequest);
    msg.set("ts", Value(static_cast<long long>(myStamp.time)));
    msg.set("idx", Value(static_cast<long long>(selfIndex)));
    for (std::size_t i = 0; i < peerOutboxes.size(); ++i) {
      if (i == selfIndex) continue;
      peerOutboxes[i]->send(msg);
      ++stats.messages;
    }
  }

  void sendReply(std::size_t to, std::uint64_t ackTs) {
    DataMessage msg(kReply);
    msg.set("idx", Value(static_cast<long long>(selfIndex)));
    // Echo of the request timestamp: lets the requester discard replies
    // that belong to an earlier (timed-out) request round.
    msg.set("ack", Value(static_cast<long long>(ackTs)));
    peerOutboxes[to]->send(msg);
    ++stats.messages;
  }

  void onMessage(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    std::scoped_lock lock(mutex);
    if (msg->kind() == kRequest) {
      const LamportStamp theirs{
          static_cast<std::uint64_t>(msg->get("ts").asInt()),
          static_cast<std::uint64_t>(msg->get("idx").asInt())};
      const auto from = static_cast<std::size_t>(theirs.id);
      // Defer while in the CS, or while our own earlier-stamped request is
      // outstanding ("resolved in favor of the earlier timestamp", ties in
      // favor of the lower id via LamportStamp's ordering).
      const bool mineWins = inCs || (requesting && myStamp < theirs);
      if (mineWins) {
        deferred.emplace_back(from, theirs.time);
        ++stats.requestsDeferred;
      } else {
        sendReply(from, theirs.time);
      }
    } else if (msg->kind() == kReply) {
      const auto ack = static_cast<std::uint64_t>(msg->get("ack").asInt());
      if (requesting && ack == myStamp.time && repliesPending > 0) {
        --repliesPending;
        if (repliesPending == 0) cv.notify_all();
      }
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      onMessage(del);
    }
  }
};

DistributedMutex::DistributedMutex(Dapplet& dapplet, const std::string& name)
    : impl_(std::make_shared<Impl>(dapplet, name)) {
  impl_->inbox = &dapplet.createInbox("ra." + name);
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

DistributedMutex::~DistributedMutex() {
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef DistributedMutex::ref() const { return impl_->inbox->ref(); }

void DistributedMutex::attach(const std::vector<InboxRef>& members,
                              std::size_t selfIndex) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->attached) throw SessionError("mutex already attached");
  impl_->selfIndex = selfIndex;
  impl_->memberCount = members.size();
  impl_->peerOutboxes.resize(members.size(), nullptr);
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (i == selfIndex) continue;
    Outbox& box = impl_->d.createOutbox();
    box.add(members[i]);
    impl_->peerOutboxes[i] = &box;
  }
  impl_->attached = true;
}

void DistributedMutex::acquire(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw SessionError("mutex not attached");
  if (impl_->inCs || impl_->requesting) {
    throw SessionError("mutex is not recursive");
  }
  impl_->requesting = true;
  impl_->myStamp = LamportStamp{impl_->d.clock().tick(), impl_->selfIndex};
  impl_->repliesPending = impl_->memberCount - 1;
  impl_->broadcastRequest();
  if (impl_->repliesPending > 0 &&
      !impl_->cv.wait_for(lock, timeout, [&] {
        return impl_->repliesPending == 0 || impl_->loopDone;
      })) {
    impl_->requesting = false;
    throw TimeoutError("distributed mutex '" + impl_->name +
                       "' acquire timed out");
  }
  if (impl_->repliesPending > 0) {
    impl_->requesting = false;
    throw ShutdownError("distributed mutex '" + impl_->name + "' stopped");
  }
  impl_->requesting = false;
  impl_->inCs = true;
  ++impl_->stats.acquisitions;
}

void DistributedMutex::release() {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->inCs) throw SessionError("release without acquire");
  impl_->inCs = false;
  for (const auto& [to, ts] : impl_->deferred) impl_->sendReply(to, ts);
  impl_->deferred.clear();
}

bool DistributedMutex::held() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->inCs;
}

DistributedMutex::Stats DistributedMutex::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
