#include "dapple/services/clocks/causal_order.hpp"

#include <condition_variable>
#include <deque>
#include <list>
#include <mutex>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kMsg = "cob.msg";

/// Member indices are encoded as "0", "1", ... in the vector clocks so the
/// wire format stays compact and member-count independent.
std::string key(std::size_t index) { return std::to_string(index); }
}  // namespace

struct CausalGroup::Impl {
  Impl(Dapplet& dapplet, std::string groupName)
      : d(dapplet), name(std::move(groupName)) {}

  Dapplet& d;
  const std::string name;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;

  /// Per-publisher delivery counts: delivered[j] = number of j's messages
  /// this member has delivered (including its own, via self-loopback).
  std::vector<std::uint64_t> delivered;
  /// Number of messages this member has published (its own vector-clock
  /// component on outgoing stamps).
  std::uint64_t sentCount = 0;

  struct Held {
    std::size_t from;
    VectorClock stamp;
    Value payload;
  };
  std::list<Held> holdback;
  std::deque<Delivered> ready;

  Stats stats;

  /// BSS deliverability: m from j is deliverable when m is j's next
  /// message (stamp[j] == delivered[j]+1) and every other component of the
  /// stamp has already been delivered here (stamp[k] <= delivered[k]).
  bool deliverableLocked(const Held& held) const {
    for (std::size_t k = 0; k < delivered.size(); ++k) {
      const std::uint64_t component = held.stamp.at(key(k));
      if (k == held.from) {
        if (component != delivered[k] + 1) return false;
      } else if (component > delivered[k]) {
        return false;
      }
    }
    return true;
  }

  void drainLocked() {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (auto it = holdback.begin(); it != holdback.end();) {
        if (deliverableLocked(*it)) {
          Delivered item;
          item.from = it->from;
          item.seq = it->stamp.at(key(it->from));
          item.payload = std::move(it->payload);
          ++delivered[it->from];
          ready.push_back(std::move(item));
          ++stats.delivered;
          it = holdback.erase(it);
          progressed = true;
          cv.notify_all();
        } else {
          ++it;
        }
      }
    }
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr || msg->kind() != kMsg) return;
    std::scoped_lock lock(mutex);
    Held held;
    held.from = static_cast<std::size_t>(msg->get("idx").asInt());
    held.stamp = VectorClock::fromValue(msg->get("vc"));
    held.payload = msg->get("value");
    if (!deliverableLocked(held)) ++stats.heldBack;
    holdback.push_back(std::move(held));
    drainLocked();
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      dispatch(del);
    }
  }
};

CausalGroup::CausalGroup(Dapplet& dapplet, const std::string& name)
    : impl_(std::make_shared<Impl>(dapplet, name)) {
  impl_->inbox = &dapplet.createInbox("cob." + name);
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

CausalGroup::~CausalGroup() {
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef CausalGroup::ref() const { return impl_->inbox->ref(); }

void CausalGroup::attach(const std::vector<InboxRef>& members,
                         std::size_t selfIndex) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  impl_->delivered.assign(members.size(), 0);
  impl_->peers.resize(members.size(), nullptr);
  for (std::size_t i = 0; i < members.size(); ++i) {
    Outbox& box = impl_->d.createOutbox();
    box.add(members[i]);
    impl_->peers[i] = &box;
  }
  impl_->attached = true;
}

void CausalGroup::publish(const Value& payload) {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw SessionError("group not attached");
  // Birman–Schiper–Stephenson stamp: everything delivered here so far
  // causally precedes this message; our own component counts *publishes*
  // so our messages are causally chained even before self-delivery.
  ++impl_->sentCount;
  std::map<std::string, std::uint64_t> counts;
  for (std::size_t k = 0; k < impl_->delivered.size(); ++k) {
    counts[key(k)] =
        k == impl_->selfIndex ? impl_->sentCount : impl_->delivered[k];
  }
  const VectorClock stamp{std::move(counts)};
  DataMessage msg(kMsg);
  msg.set("idx", Value(static_cast<long long>(impl_->selfIndex)));
  msg.set("vc", stamp.toValue());
  msg.set("value", payload);
  ++impl_->stats.published;
  for (Outbox* box : impl_->peers) box->send(msg);
}

CausalGroup::Delivered CausalGroup::take(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->cv.wait_for(lock, timeout, [&] {
        return !impl_->ready.empty() || impl_->loopDone;
      })) {
    throw TimeoutError("causal group '" + impl_->name + "' take timed out");
  }
  if (impl_->ready.empty()) {
    throw ShutdownError("causal group '" + impl_->name + "' stopped");
  }
  Delivered item = std::move(impl_->ready.front());
  impl_->ready.pop_front();
  return item;
}

std::optional<CausalGroup::Delivered> CausalGroup::tryTake() {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->ready.empty()) return std::nullopt;
  Delivered item = std::move(impl_->ready.front());
  impl_->ready.pop_front();
  return item;
}

CausalGroup::Stats CausalGroup::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
