#include "dapple/services/clocks/total_order.hpp"

#include <condition_variable>
#include <deque>
#include <set>
#include <map>
#include <mutex>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kMsg = "tob.msg";
constexpr const char* kAck = "tob.ack";
}  // namespace

struct TotalOrderGroup::Impl {
  Impl(Dapplet& dapplet, std::string groupName)
      : d(dapplet), name(std::move(groupName)) {}

  Dapplet& d;
  const std::string name;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;

  /// Pending messages keyed by their global order stamp.
  std::map<LamportStamp, Delivered> holdback;
  /// Highest timestamp heard from each member (message or ack).
  std::vector<std::uint64_t> lastHeard;
  /// Timestamps of our own publishes still in self-loopback flight: a
  /// head with a larger stamp must wait for them or members would deliver
  /// their own messages late relative to everyone else.
  std::set<std::uint64_t> ownInFlight;
  /// Messages whose order is settled, ready for take().
  std::deque<Delivered> ready;

  Stats stats;

  void broadcast(const DataMessage& msg) {
    for (Outbox* box : peers) box->send(msg);
  }

  /// Moves every settled holdback message to the ready queue.  A message
  /// is settled when each member has been heard from strictly after it —
  /// FIFO channels then preclude earlier-stamped surprises.
  void drainLocked() {
    while (!holdback.empty()) {
      const auto& [stamp, msg] = *holdback.begin();
      bool settled =
          ownInFlight.empty() || *ownInFlight.begin() > stamp.time;
      for (std::size_t j = 0; settled && j < lastHeard.size(); ++j) {
        if (j == selfIndex) continue;
        if (lastHeard[j] <= stamp.time) settled = false;
      }
      if (!settled) break;
      ready.push_back(holdback.begin()->second);
      holdback.erase(holdback.begin());
      ++stats.delivered;
      cv.notify_all();
    }
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    if (msg->kind() == kMsg) {
      const LamportStamp stamp{
          static_cast<std::uint64_t>(msg->get("ts").asInt()),
          static_cast<std::uint64_t>(msg->get("idx").asInt())};
      DataMessage ack(kAck);
      {
        std::scoped_lock lock(mutex);
        Delivered item;
        item.stamp = stamp;
        item.from = static_cast<std::size_t>(stamp.id);
        item.payload = msg->get("value");
        holdback.emplace(stamp, std::move(item));
        stats.maxQueueDepth =
            std::max<std::uint64_t>(stats.maxQueueDepth, holdback.size());
        if (stamp.id == selfIndex) ownInFlight.erase(stamp.time);
        if (stamp.id < lastHeard.size()) {
          lastHeard[stamp.id] = std::max(lastHeard[stamp.id], stamp.time);
        }
        // The ack timestamp is a fresh clock tick, strictly above the
        // observed message time (the receive already advanced our clock).
        ack.set("ts", Value(static_cast<long long>(d.clock().tick())));
        ack.set("idx", Value(static_cast<long long>(selfIndex)));
        ++stats.acksSent;
        drainLocked();
        // Send under the same lock as publish(): per-channel sends must
        // leave in non-decreasing timestamp order or a later ack could
        // overtake an earlier message on the wire and unblock a peer's
        // queue prematurely.
        broadcast(ack);
      }
    } else if (msg->kind() == kAck) {
      std::scoped_lock lock(mutex);
      const auto from = static_cast<std::size_t>(msg->get("idx").asInt());
      const auto ts = static_cast<std::uint64_t>(msg->get("ts").asInt());
      if (from < lastHeard.size()) {
        lastHeard[from] = std::max(lastHeard[from], ts);
      }
      drainLocked();
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      dispatch(del);
    }
  }
};

TotalOrderGroup::TotalOrderGroup(Dapplet& dapplet, const std::string& name)
    : impl_(std::make_shared<Impl>(dapplet, name)) {
  impl_->inbox = &dapplet.createInbox("tob." + name);
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

TotalOrderGroup::~TotalOrderGroup() {
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef TotalOrderGroup::ref() const { return impl_->inbox->ref(); }

void TotalOrderGroup::attach(const std::vector<InboxRef>& members,
                             std::size_t selfIndex) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  impl_->lastHeard.assign(members.size(), 0);
  impl_->peers.resize(members.size(), nullptr);
  for (std::size_t i = 0; i < members.size(); ++i) {
    Outbox& box = impl_->d.createOutbox();
    box.add(members[i]);
    impl_->peers[i] = &box;
  }
  impl_->attached = true;
}

LamportStamp TotalOrderGroup::publish(const Value& payload) {
  DataMessage msg(kMsg);
  LamportStamp stamp;
  {
    std::scoped_lock lock(impl_->mutex);
    if (!impl_->attached) throw SessionError("group not attached");
    stamp.time = impl_->d.clock().tick();
    stamp.id = impl_->selfIndex;
    msg.set("ts", Value(static_cast<long long>(stamp.time)));
    msg.set("idx", Value(static_cast<long long>(stamp.id)));
    msg.set("value", payload);
    ++impl_->stats.published;
    impl_->ownInFlight.insert(stamp.time);
    impl_->broadcast(msg);
  }
  return stamp;
}

TotalOrderGroup::Delivered TotalOrderGroup::take(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->cv.wait_for(lock, timeout, [&] {
        return !impl_->ready.empty() || impl_->loopDone;
      })) {
    throw TimeoutError("total-order group '" + impl_->name +
                       "' take timed out");
  }
  if (impl_->ready.empty()) {
    throw ShutdownError("total-order group '" + impl_->name + "' stopped");
  }
  Delivered item = std::move(impl_->ready.front());
  impl_->ready.pop_front();
  return item;
}

std::optional<TotalOrderGroup::Delivered> TotalOrderGroup::tryTake() {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->ready.empty()) return std::nullopt;
  Delivered item = std::move(impl_->ready.front());
  impl_->ready.pop_front();
  return item;
}

TotalOrderGroup::Stats TotalOrderGroup::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
