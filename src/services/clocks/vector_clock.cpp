#include "dapple/services/clocks/vector_clock.hpp"

namespace dapple {

VectorClock::Order VectorClock::compare(const VectorClock& other) const {
  bool someLess = false;   // a component where *this < other
  bool someMore = false;   // a component where *this > other
  // Union of keys: missing components are zero.
  auto itA = counts_.begin();
  auto itB = other.counts_.begin();
  while (itA != counts_.end() || itB != other.counts_.end()) {
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    if (itB == other.counts_.end() ||
        (itA != counts_.end() && itA->first < itB->first)) {
      a = itA->second;
      ++itA;
    } else if (itA == counts_.end() || itB->first < itA->first) {
      b = itB->second;
      ++itB;
    } else {
      a = itA->second;
      b = itB->second;
      ++itA;
      ++itB;
    }
    if (a < b) someLess = true;
    if (a > b) someMore = true;
  }
  if (someLess && someMore) return Order::kConcurrent;
  if (someLess) return Order::kBefore;
  if (someMore) return Order::kAfter;
  return Order::kEqual;
}

Value VectorClock::toValue() const {
  ValueMap map;
  for (const auto& [name, count] : counts_) {
    map[name] = Value(static_cast<long long>(count));
  }
  return Value(std::move(map));
}

VectorClock VectorClock::fromValue(const Value& value) {
  std::map<std::string, std::uint64_t> counts;
  for (const auto& [name, count] : value.asMap()) {
    counts[name] = static_cast<std::uint64_t>(count.asInt());
  }
  return VectorClock(std::move(counts));
}

}  // namespace dapple
