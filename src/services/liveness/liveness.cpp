#include "dapple/services/liveness/liveness.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "liveness";
constexpr const char* kHeartbeat = "live.hb";
}  // namespace

struct LivenessMonitor::Impl {
  Impl(Dapplet& dapplet, LivenessConfig cfg)
      : d(dapplet),
        mSuspects(&d.metricsRegistry().counter("liveness.suspect_events")),
        mRecoveries(&d.metricsRegistry().counter("liveness.recovery_events")),
        mHbGapUs(&d.metricsRegistry().histogram("liveness.heartbeat_gap_us")),
        trace(&d.trace()) {
    interval = cfg.heartbeatInterval > Duration::zero()
                   ? cfg.heartbeatInterval
                   : dapplet.config().liveness.heartbeatInterval;
    timeout = cfg.suspectTimeout > Duration::zero()
                  ? cfg.suspectTimeout
                  : dapplet.config().liveness.suspectTimeout;
  }

  Dapplet& d;
  /// All silence deadlines and beat pacing run on the dapplet's clock.
  TimePoint now() const { return d.clockSource().now(); }
  obs::Counter* mSuspects;
  obs::Counter* mRecoveries;
  /// Observed inter-arrival gap between heartbeats from the same peer — the
  /// live measurement `suspectTimeout` must dominate (see DESIGN.md).
  obs::Histogram* mHbGapUs;
  obs::TraceRing* trace;
  Inbox* inbox = nullptr;
  Duration interval{};
  Duration timeout{};

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  /// Reactor mode (dapplet configured with runtime.reactor): beats ride the
  /// shared timer wheel and heartbeats arrive through Inbox::onMessage — no
  /// beat thread at all.
  bool reactorMode = false;
  Reactor::TimerHandle beatTimer;

  struct Watch {
    InboxRef peer;
    Outbox* out = nullptr;
    TimePoint lastHeard;
    bool suspected = false;
  };
  std::unordered_map<std::string, Watch> watches;
  // Outboxes replaced by watch()/unwatch() are parked here, not destroyed:
  // beat() sends on raw Outbox pointers outside the lock, so storage must
  // outlive the beat loop.  Freed in the destructor once the loop is done.
  std::vector<Outbox*> retired;

  std::vector<PeerFn> suspectFns;
  std::vector<PeerFn> aliveFns;
  Stats stats;

  struct Event {
    std::string key;
    InboxRef peer;
    bool down = false;  // true: suspect, false: alive
  };

  /// Heartbeats are matched by the sender's node address — every watch whose
  /// peer lives at `src` is refreshed.
  void onHeartbeat(const NodeAddress& src, std::vector<Event>& events) {
    std::scoped_lock lock(mutex);
    ++stats.heartbeatsReceived;
    const TimePoint t = now();
    for (auto& [key, w] : watches) {
      if (w.peer.node != src) continue;
      mHbGapUs->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              t - w.lastHeard)
              .count()));
      w.lastHeard = t;
      if (w.suspected) {
        w.suspected = false;
        ++stats.recoveryEvents;
        mRecoveries->inc();
        trace->emit("liveness", "peer.alive", key);
        events.push_back({key, w.peer, false});
      }
    }
  }

  /// One detector beat: emit heartbeats to every watched peer, then check
  /// silence deadlines.  Returns suspect transitions to fire outside the
  /// lock.
  void beat(std::vector<Event>& events) {
    // (outbox, reset-before-send): probes to suspected peers drop the
    // unacked backlog first so a dead stream never accumulates frames the
    // retransmit timer would replay forever.
    std::vector<std::pair<Outbox*, bool>> targets;
    {
      std::scoped_lock lock(mutex);
      const TimePoint t = now();
      for (auto& [key, w] : watches) {
        if (!w.suspected && t - w.lastHeard > timeout) {
          w.suspected = true;
          ++stats.suspectEvents;
          mSuspects->inc();
          trace->emit("liveness", "peer.suspect", key);
          events.push_back({key, w.peer, true});
          DAPPLE_LOG(kInfo, kLog)
              << d.name() << ": suspecting peer " << w.peer.toString()
              << " (key '" << key << "')";
        }
        targets.emplace_back(w.out, w.suspected);
      }
      stats.heartbeatsSent += targets.size();
    }
    DataMessage hb(kHeartbeat);
    for (auto& [out, suspected] : targets) {
      try {
        if (suspected) out->reset();
        out->send(hb);
      } catch (const DeliveryError&) {
        // Stream to a (probably dead) peer failed; re-arm so heartbeats
        // resume if the peer heals.  Suspicion itself is silence-driven.
        out->reset();
      } catch (const Error&) {
        // Endpoint closing down; the run loop will exit shortly.
      }
    }
  }

  void fire(const std::vector<Event>& events) {
    std::vector<PeerFn> down, up;
    {
      std::scoped_lock lock(mutex);
      down = suspectFns;
      up = aliveFns;
    }
    for (const Event& ev : events) {
      for (const auto& fn : (ev.down ? down : up)) fn(ev.key, ev.peer);
    }
  }

  void run(std::stop_token stop) {
    // Beats are paced by wall time, NOT by the receive loop: one iteration
    // per incoming message would make every received heartbeat trigger an
    // immediate multicast to all watches — a positive-feedback storm once
    // several monitors watch each other.
    TimePoint nextBeat = now();
    while (!stop.stop_requested()) {
      std::vector<Event> events;
      if (now() >= nextBeat) {
        beat(events);
        nextBeat = now() + interval;
      }
      const Duration wait =
          std::max(Duration::zero(), nextBeat - now());
      // A quiet interval just means the next iteration beats.
      if (auto del = inbox->receiveFor(wait)) {
        const auto* msg = dynamic_cast<const DataMessage*>(del->message.get());
        if (msg != nullptr && msg->kind() == kHeartbeat) {
          onHeartbeat(del->srcNode, events);
        }
      }
      fire(events);
    }
  }
};

LivenessMonitor::LivenessMonitor(Dapplet& dapplet, LivenessConfig config)
    : impl_(std::make_shared<Impl>(dapplet, config)) {
  impl_->inbox = &dapplet.createInbox("live.ctl");
  auto impl = impl_;
  if (dapplet.config().runtime.reactor != nullptr) {
    // Reactor mode: the beat is a wheel timer and heartbeats are handled
    // event-driven — this monitor costs zero threads, which is what lets
    // bench_swarm run a monitor per dapplet at 10k+ dapplets.
    impl_->reactorMode = true;
    impl_->inbox->onMessage([impl](Delivery del) {
      const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
      if (msg == nullptr || msg->kind() != kHeartbeat) return;
      std::vector<Impl::Event> events;
      impl->onHeartbeat(del.srcNode, events);
      impl->fire(events);
    });
    impl_->beatTimer = dapplet.every(impl_->interval, [impl] {
      std::vector<Impl::Event> events;
      impl->beat(events);
      impl->fire(events);
    });
    return;
  }
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

LivenessMonitor::~LivenessMonitor() {
  if (impl_->reactorMode) {
    // Off-loop cancel() waits out an in-flight beat, and onMessage(nullptr)
    // returns only once any running handler has finished — after these two
    // lines nothing touches the watches again.
    impl_->beatTimer.cancel();
    impl_->inbox->onMessage(nullptr);
  }
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  if (!impl_->reactorMode) {
    impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
  }
  for (auto& [key, w] : impl_->watches) {
    try {
      impl_->d.destroyOutbox(*w.out);
    } catch (const Error&) {
    }
  }
  impl_->watches.clear();
  for (Outbox* out : impl_->retired) {
    try {
      impl_->d.destroyOutbox(*out);
    } catch (const Error&) {
    }
  }
  impl_->retired.clear();
}

InboxRef LivenessMonitor::ref() const { return impl_->inbox->ref(); }

void LivenessMonitor::watch(const std::string& key, const InboxRef& peer) {
  if (!peer.valid()) return;  // peers without a detector are simply unwatched
  Outbox* out = &impl_->d.createOutbox();
  out->add(peer);
  Outbox* replaced = nullptr;
  {
    std::scoped_lock lock(impl_->mutex);
    auto [it, inserted] = impl_->watches.try_emplace(key);
    if (!inserted) {
      replaced = it->second.out;
      impl_->retired.push_back(replaced);
    }
    it->second = {peer, out, impl_->now(), false};
  }
  if (replaced != nullptr) {
    try {
      replaced->reset();
    } catch (const Error&) {
    }
  }
}

void LivenessMonitor::unwatch(const std::string& key) {
  Outbox* out = nullptr;
  {
    std::scoped_lock lock(impl_->mutex);
    const auto it = impl_->watches.find(key);
    if (it == impl_->watches.end()) return;
    out = it->second.out;
    impl_->retired.push_back(out);
    impl_->watches.erase(it);
  }
  try {
    // Drop unacked heartbeats so a retired stream to a dead peer does not
    // pin dapplet-wide flush() until the delivery timeout.
    out->reset();
  } catch (const Error&) {
  }
}

void LivenessMonitor::onSuspect(PeerFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->suspectFns.push_back(std::move(fn));
}

void LivenessMonitor::onAlive(PeerFn fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->aliveFns.push_back(std::move(fn));
}

bool LivenessMonitor::suspected(const std::string& key) const {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->watches.find(key);
  return it != impl_->watches.end() && it->second.suspected;
}

std::vector<std::string> LivenessMonitor::watchedKeys() const {
  std::scoped_lock lock(impl_->mutex);
  std::vector<std::string> keys;
  keys.reserve(impl_->watches.size());
  for (const auto& [key, w] : impl_->watches) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

Duration LivenessMonitor::heartbeatInterval() const { return impl_->interval; }

Duration LivenessMonitor::suspectTimeout() const { return impl_->timeout; }

LivenessMonitor::Stats LivenessMonitor::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
