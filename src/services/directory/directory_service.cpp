#include "dapple/services/directory/directory_service.hpp"

#include <map>
#include <mutex>

#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "dirsvc";
}

struct DirectoryServer::Impl {
  explicit Impl(Dapplet& dapplet)
      : d(dapplet), server(dapplet, "directory.rpc") {}

  Dapplet& d;
  /// Lease expiry is judged on the dapplet's clock.
  TimePoint now() const { return d.clockSource().now(); }

  RpcServer server;

  mutable std::mutex mutex;
  struct Entry {
    InboxRef ref;
    std::uint64_t lease = 0;
    TimePoint expiresAt;
  };
  std::map<std::string, Entry> entries;
  std::uint64_t nextLease = 1;

  void expireLocked(TimePoint now) {
    for (auto it = entries.begin(); it != entries.end();) {
      if (it->second.expiresAt <= now) {
        DAPPLE_LOG(kDebug, kLog) << "lease expired for '" << it->first << "'";
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
  }

  void bindMethods() {
    server.bind("register", [this](const Value& args) {
      const std::string name = args.at("name").asString();
      const InboxRef ref = inboxRefFromValue(args.at("ref"));
      const auto ttlMs = args.at("ttlMs").asInt();
      std::scoped_lock lock(mutex);
      const TimePoint now = this->now();
      expireLocked(now);
      Entry entry;
      entry.ref = ref;
      entry.lease = nextLease++;
      entry.expiresAt = now + milliseconds(ttlMs);
      entries[name] = entry;
      return Value(static_cast<long long>(entry.lease));
    });
    server.bind("refresh", [this](const Value& args) {
      const std::string name = args.at("name").asString();
      const auto lease = static_cast<std::uint64_t>(
          args.at("lease").asInt());
      const auto ttlMs = args.at("ttlMs").asInt();
      std::scoped_lock lock(mutex);
      const TimePoint now = this->now();
      expireLocked(now);
      const auto it = entries.find(name);
      if (it == entries.end() || it->second.lease != lease) {
        return Value(false);
      }
      it->second.expiresAt = now + milliseconds(ttlMs);
      return Value(true);
    });
    server.bind("lookup", [this](const Value& args) -> Value {
      const std::string name = args.at("name").asString();
      std::scoped_lock lock(mutex);
      expireLocked(now());
      const auto it = entries.find(name);
      if (it == entries.end()) {
        throw AddressError("directory: no entry for '" + name + "'");
      }
      return inboxRefToValue(it->second.ref);
    });
    server.bind("unregister", [this](const Value& args) {
      const std::string name = args.at("name").asString();
      const auto lease = static_cast<std::uint64_t>(
          args.at("lease").asInt());
      std::scoped_lock lock(mutex);
      const auto it = entries.find(name);
      if (it == entries.end() || it->second.lease != lease) {
        return Value(false);
      }
      entries.erase(it);
      return Value(true);
    });
    server.bind("list", [this](const Value& args) {
      const std::string prefix = args.at("prefix").asString();
      std::scoped_lock lock(mutex);
      expireLocked(now());
      ValueMap out;
      for (const auto& [name, entry] : entries) {
        if (name.compare(0, prefix.size(), prefix) == 0) {
          out[name] = inboxRefToValue(entry.ref);
        }
      }
      return Value(std::move(out));
    });
  }
};

DirectoryServer::DirectoryServer(Dapplet& dapplet)
    : impl_(std::make_shared<Impl>(dapplet)) {
  impl_->bindMethods();
}

DirectoryServer::~DirectoryServer() = default;

InboxRef DirectoryServer::ref() const { return impl_->server.ref(); }

std::size_t DirectoryServer::size() const {
  std::scoped_lock lock(impl_->mutex);
  impl_->expireLocked(impl_->now());
  return impl_->entries.size();
}

void DirectoryServer::expireNow() {
  std::scoped_lock lock(impl_->mutex);
  impl_->expireLocked(impl_->now());
}

DirectoryClient::DirectoryClient(Dapplet& dapplet, InboxRef server)
    : rpc_(dapplet, std::move(server)) {}

std::uint64_t DirectoryClient::registerName(const std::string& name,
                                            const InboxRef& ref,
                                            Duration ttl) {
  ValueMap args;
  args["name"] = Value(name);
  args["ref"] = inboxRefToValue(ref);
  args["ttlMs"] = Value(static_cast<long long>(
      std::chrono::duration_cast<milliseconds>(ttl).count()));
  return static_cast<std::uint64_t>(
      rpc_.call("register", Value(std::move(args))).asInt());
}

bool DirectoryClient::refresh(const std::string& name, std::uint64_t lease) {
  ValueMap args;
  args["name"] = Value(name);
  args["lease"] = Value(static_cast<long long>(lease));
  args["ttlMs"] = Value(static_cast<long long>(
      DirectoryServer::kDefaultTtlMs));
  return rpc_.call("refresh", Value(std::move(args))).asBool();
}

InboxRef DirectoryClient::lookup(const std::string& name) {
  ValueMap args;
  args["name"] = Value(name);
  try {
    return inboxRefFromValue(rpc_.call("lookup", Value(std::move(args))));
  } catch (const TimeoutError&) {
    throw;
  } catch (const Error& e) {
    throw AddressError(e.what());
  }
}

bool DirectoryClient::unregister(const std::string& name,
                                 std::uint64_t lease) {
  ValueMap args;
  args["name"] = Value(name);
  args["lease"] = Value(static_cast<long long>(lease));
  return rpc_.call("unregister", Value(std::move(args))).asBool();
}

Directory DirectoryClient::list(const std::string& prefix) {
  ValueMap args;
  args["prefix"] = Value(prefix);
  const Value entries = rpc_.call("list", Value(std::move(args)));
  Directory dir;
  for (const auto& [name, ref] : entries.asMap()) {
    dir.put(name, inboxRefFromValue(ref));
  }
  return dir;
}

}  // namespace dapple
