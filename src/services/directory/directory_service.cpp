#include "dapple/services/directory/directory_service.hpp"

#include <map>
#include <mutex>

#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "dirsvc";

std::string shardInboxName(std::size_t shard) {
  // Shard 0 keeps the historical name so a single-shard server is
  // byte-compatible with the pre-sharding service.
  if (shard == 0) return "directory.rpc";
  return "directory.rpc." + std::to_string(shard);
}
}  // namespace

struct DirectoryServer::Impl {
  Impl(Dapplet& dapplet, DirectoryConfig cfg) : d(dapplet) {
    if (cfg.shards < 1) cfg.shards = 1;
    config = cfg;
    shards.reserve(config.shards);
    for (std::size_t i = 0; i < config.shards; ++i) {
      shards.push_back(std::make_unique<Shard>(dapplet, shardInboxName(i)));
    }
  }

  Dapplet& d;
  DirectoryConfig config;
  /// Lease expiry is judged on the dapplet's clock.
  TimePoint now() const { return d.clockSource().now(); }

  struct Entry {
    InboxRef ref;
    std::uint64_t lease = 0;
    TimePoint expiresAt;
  };

  /// One key-range partition: its own inbox, lock, and entry map, so hot
  /// shards contend only with themselves.
  struct Shard {
    Shard(Dapplet& dapplet, const std::string& inboxName)
        : server(dapplet, inboxName) {}
    RpcServer server;
    mutable std::mutex mutex;
    std::map<std::string, Entry> entries;
    std::uint64_t nextLease = 1;
  };
  std::vector<std::unique_ptr<Shard>> shards;

  Shard& shardFor(const std::string& name) {
    return *shards[DirectoryServer::shardOf(name, shards.size())];
  }

  static void expireLocked(Shard& s, TimePoint now) {
    for (auto it = s.entries.begin(); it != s.entries.end();) {
      if (it->second.expiresAt <= now) {
        DAPPLE_LOG(kDebug, kLog) << "lease expired for '" << it->first << "'";
        it = s.entries.erase(it);
      } else {
        ++it;
      }
    }
  }

  void bindMethods(Shard& s) {
    s.server.bind("register", [this, &s](const Value& args) {
      const std::string name = args.at("name").asString();
      const InboxRef ref = inboxRefFromValue(args.at("ref"));
      const auto ttlMs = args.at("ttlMs").asInt();
      std::scoped_lock lock(s.mutex);
      const TimePoint now = this->now();
      expireLocked(s, now);
      Entry entry;
      entry.ref = ref;
      entry.lease = s.nextLease++;
      entry.expiresAt = now + milliseconds(ttlMs);
      s.entries[name] = entry;
      return Value(static_cast<long long>(entry.lease));
    });
    s.server.bind("refresh", [this, &s](const Value& args) {
      const std::string name = args.at("name").asString();
      const auto lease = static_cast<std::uint64_t>(
          args.at("lease").asInt());
      const auto ttlMs = args.at("ttlMs").asInt();
      std::scoped_lock lock(s.mutex);
      const TimePoint now = this->now();
      expireLocked(s, now);
      const auto it = s.entries.find(name);
      if (it == s.entries.end() || it->second.lease != lease) {
        return Value(false);
      }
      it->second.expiresAt = now + milliseconds(ttlMs);
      return Value(true);
    });
    s.server.bind("lookup", [this, &s](const Value& args) -> Value {
      const std::string name = args.at("name").asString();
      std::scoped_lock lock(s.mutex);
      expireLocked(s, now());
      const auto it = s.entries.find(name);
      if (it == s.entries.end()) {
        throw AddressError("directory: no entry for '" + name + "'");
      }
      return inboxRefToValue(it->second.ref);
    });
    s.server.bind("resolve", [this, &s](const Value& args) -> Value {
      // Lookup plus the registration's remaining lease, so the caller can
      // cache the ref until the entry could expire (DESIGN.md §14.4).
      const std::string name = args.at("name").asString();
      std::scoped_lock lock(s.mutex);
      const TimePoint now = this->now();
      expireLocked(s, now);
      const auto it = s.entries.find(name);
      if (it == s.entries.end()) {
        throw AddressError("directory: no entry for '" + name + "'");
      }
      ValueMap out;
      out["ref"] = inboxRefToValue(it->second.ref);
      out["ttlMs"] = Value(static_cast<long long>(
          std::chrono::duration_cast<milliseconds>(it->second.expiresAt - now)
              .count()));
      return Value(std::move(out));
    });
    s.server.bind("unregister", [&s](const Value& args) {
      const std::string name = args.at("name").asString();
      const auto lease = static_cast<std::uint64_t>(
          args.at("lease").asInt());
      std::scoped_lock lock(s.mutex);
      const auto it = s.entries.find(name);
      if (it == s.entries.end() || it->second.lease != lease) {
        return Value(false);
      }
      s.entries.erase(it);
      return Value(true);
    });
    s.server.bind("list", [this, &s](const Value& args) {
      const std::string prefix = args.at("prefix").asString();
      std::scoped_lock lock(s.mutex);
      expireLocked(s, now());
      ValueMap out;
      for (const auto& [name, entry] : s.entries) {
        if (name.compare(0, prefix.size(), prefix) == 0) {
          out[name] = inboxRefToValue(entry.ref);
        }
      }
      return Value(std::move(out));
    });
  }
};

DirectoryServer::DirectoryServer(Dapplet& dapplet)
    : DirectoryServer(dapplet, DirectoryConfig{}) {}

DirectoryServer::DirectoryServer(Dapplet& dapplet, DirectoryConfig config)
    : impl_(std::make_shared<Impl>(dapplet, config)) {
  for (auto& shard : impl_->shards) impl_->bindMethods(*shard);
}

DirectoryServer::~DirectoryServer() = default;

InboxRef DirectoryServer::ref() const { return impl_->shards[0]->server.ref(); }

std::vector<InboxRef> DirectoryServer::refs() const {
  std::vector<InboxRef> out;
  out.reserve(impl_->shards.size());
  for (const auto& shard : impl_->shards) out.push_back(shard->server.ref());
  return out;
}

std::size_t DirectoryServer::shardCount() const { return impl_->shards.size(); }

std::size_t DirectoryServer::shardOf(const std::string& name,
                                     std::size_t shards) {
  if (shards <= 1) return 0;
  const auto first =
      name.empty() ? 0u : static_cast<unsigned char>(name.front());
  return static_cast<std::size_t>(first) * shards / 256;
}

std::size_t DirectoryServer::size() const {
  std::size_t total = 0;
  for (auto& shard : impl_->shards) {
    std::scoped_lock lock(shard->mutex);
    Impl::expireLocked(*shard, impl_->now());
    total += shard->entries.size();
  }
  return total;
}

void DirectoryServer::expireNow() {
  for (auto& shard : impl_->shards) {
    std::scoped_lock lock(shard->mutex);
    Impl::expireLocked(*shard, impl_->now());
  }
}

DirectoryClient::DirectoryClient(Dapplet& dapplet, InboxRef server) : d_(dapplet) {
  shards_.push_back(std::make_unique<RpcClient>(dapplet, std::move(server)));
}

DirectoryClient::DirectoryClient(Dapplet& dapplet, std::vector<InboxRef> shards,
                                 DirectoryConfig config)
    : d_(dapplet), cache_(config.cacheLookups) {
  if (shards.empty()) {
    throw AddressError("DirectoryClient: no shard refs");
  }
  shards_.reserve(shards.size());
  for (auto& ref : shards) {
    shards_.push_back(std::make_unique<RpcClient>(dapplet, std::move(ref)));
  }
  if (cache_) {
    hits_ = &d_.metricsRegistry().counter("directory.cache_hits");
    misses_ = &d_.metricsRegistry().counter("directory.cache_misses");
  }
}

DirectoryClient::~DirectoryClient() = default;

RpcClient& DirectoryClient::shardFor(const std::string& name) {
  return *shards_[DirectoryServer::shardOf(name, shards_.size())];
}

std::uint64_t DirectoryClient::registerName(const std::string& name,
                                            const InboxRef& ref,
                                            Duration ttl) {
  ValueMap args;
  args["name"] = Value(name);
  args["ref"] = inboxRefToValue(ref);
  args["ttlMs"] = Value(static_cast<long long>(
      std::chrono::duration_cast<milliseconds>(ttl).count()));
  const auto lease = static_cast<std::uint64_t>(
      shardFor(name).call("register", Value(std::move(args))).asInt());
  if (cache_) {
    std::scoped_lock lock(cacheMutex_);
    cached_[name] = CachedRef{ref, d_.clockSource().now() + ttl};
  }
  return lease;
}

bool DirectoryClient::refresh(const std::string& name, std::uint64_t lease) {
  ValueMap args;
  args["name"] = Value(name);
  args["lease"] = Value(static_cast<long long>(lease));
  args["ttlMs"] = Value(static_cast<long long>(
      DirectoryServer::kDefaultTtlMs));
  return shardFor(name).call("refresh", Value(std::move(args))).asBool();
}

InboxRef DirectoryClient::lookup(const std::string& name) {
  if (cache_) {
    std::scoped_lock lock(cacheMutex_);
    const auto it = cached_.find(name);
    if (it != cached_.end()) {
      if (d_.clockSource().now() < it->second.expiresAt) {
        hits_->inc();
        return it->second.ref;
      }
      cached_.erase(it);  // lease ran out — the only invalidation path
    }
  }
  ValueMap args;
  args["name"] = Value(name);
  try {
    if (!cache_) {
      return inboxRefFromValue(
          shardFor(name).call("lookup", Value(std::move(args))));
    }
    misses_->inc();
    const Value rsp = shardFor(name).call("resolve", Value(std::move(args)));
    const InboxRef ref = inboxRefFromValue(rsp.at("ref"));
    const auto ttlMs = rsp.at("ttlMs").asInt();
    if (ttlMs > 0) {
      std::scoped_lock lock(cacheMutex_);
      cached_[name] =
          CachedRef{ref, d_.clockSource().now() + milliseconds(ttlMs)};
    }
    return ref;
  } catch (const TimeoutError&) {
    throw;
  } catch (const AddressError&) {
    throw;
  } catch (const Error& e) {
    throw AddressError(e.what());
  }
}

bool DirectoryClient::unregister(const std::string& name,
                                 std::uint64_t lease) {
  if (cache_) {
    std::scoped_lock lock(cacheMutex_);
    cached_.erase(name);
  }
  ValueMap args;
  args["name"] = Value(name);
  args["lease"] = Value(static_cast<long long>(lease));
  return shardFor(name).call("unregister", Value(std::move(args))).asBool();
}

Directory DirectoryClient::list(const std::string& prefix) {
  Directory dir;
  const auto query = [&](RpcClient& shard) {
    ValueMap args;
    args["prefix"] = Value(prefix);
    const Value entries = shard.call("list", Value(std::move(args)));
    for (const auto& [name, ref] : entries.asMap()) {
      dir.put(name, inboxRefFromValue(ref));
    }
  };
  if (prefix.empty()) {
    for (auto& shard : shards_) query(*shard);  // the full namespace
  } else {
    // Key-range sharding by first byte: every name sharing a nonempty
    // prefix lives on the prefix's shard.
    query(shardFor(prefix));
  }
  return dir;
}

void DirectoryClient::invalidateCache() {
  std::scoped_lock lock(cacheMutex_);
  cached_.clear();
}

}  // namespace dapple
