#include "dapple/services/tokens/token_manager.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <set>

#include "dapple/core/state.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "tokens";

// Message kinds.
constexpr const char* kReq = "tok.req";
constexpr const char* kGrant = "tok.grant";
constexpr const char* kErr = "tok.err";
constexpr const char* kRel = "tok.rel";
constexpr const char* kCancel = "tok.cancel";
constexpr const char* kProbe = "tok.probe";        // member -> home
constexpr const char* kProbeFwd = "tok.probe.fwd"; // home -> holder
constexpr const char* kTotalQ = "tok.total.q";
constexpr const char* kTotalA = "tok.total.a";

// Reserved journal keys (TokenConfig::journal, DESIGN.md §12).
constexpr const char* kJournalHeld = "dapple.tok/held";
constexpr const char* kJournalHomePrefix = "dapple.tok/home/";

std::uint64_t colorHash(const TokenColor& color) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : color) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

struct TokenManager::Impl {
  Impl(Dapplet& dapplet, TokenConfig config)
      : d(dapplet),
        cfg(config),
        mGrants(&d.metricsRegistry().counter("tokens.grants_issued")),
        mDenied(&d.metricsRegistry().counter("tokens.requests_denied")),
        mProbes(&d.metricsRegistry().counter("tokens.probes_sent")),
        trace(&d.trace()) {}

  Dapplet& d;
  const TokenConfig cfg;
  /// Request deadlines, probe pacing, and every cv wait/notify run on the
  /// dapplet's clock so virtual-time tests advance through them.
  ClockSource& clk() const { return d.clockSource(); }
  TimePoint now() const { return clk().now(); }
  // `requests_denied` counts deadlock verdicts and timeouts together — the
  // two ways a request() fails without a grant.
  obs::Counter* mGrants;
  obs::Counter* mDenied;
  obs::Counter* mProbes;
  obs::TraceRing* trace;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;
  bool stopping = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;  // index-aligned; self slot used too (loop-back)

  // ---- home-side state (for colours homed at this member) ---------------
  struct HomeColor {
    std::int64_t total = 0;  ///< conservation constant
    std::int64_t free = 0;
    std::map<std::size_t, std::int64_t> holders;  ///< member -> held count
    struct Waiter {
      std::uint64_t ts;
      std::size_t from;
      std::int64_t count;
      std::string reqId;
      friend bool operator<(const Waiter& a, const Waiter& b) {
        // Earlier timestamp first; ties to the lower member id (§4.2).
        return std::tie(a.ts, a.from) < std::tie(b.ts, b.from);
      }
    };
    std::vector<Waiter> waitQ;  // kept sorted
  };
  std::map<TokenColor, HomeColor> homed;

  // ---- member-side state --------------------------------------------------
  TokenBag held;  ///< the paper's holdsTokens

  // ---- crash-recovery journal (cfg.journal) -------------------------------
  // Persisted under the store lock of the *caller's* mutex — every call
  // site already holds `mutex`, so journal writes are ordered like the
  // in-memory mutations they mirror.  The wait queue is deliberately not
  // journaled: a home that dies loses its waiters, whose request() calls
  // time out and retry against the restarted home.

  void journalHomeLocked(const TokenColor& color) {
    if (cfg.journal == nullptr) return;
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    ValueMap entry;
    entry["total"] = Value(static_cast<long long>(it->second.total));
    entry["free"] = Value(static_cast<long long>(it->second.free));
    ValueMap holders;
    for (const auto& [member, count] : it->second.holders) {
      if (count != 0) {
        holders[std::to_string(member)] =
            Value(static_cast<long long>(count));
      }
    }
    entry["holders"] = Value(std::move(holders));
    cfg.journal->put(kJournalHomePrefix + color, Value(std::move(entry)));
  }

  void journalHeldLocked() {
    if (cfg.journal == nullptr) return;
    ValueMap bag;
    for (const auto& [color, count] : held) {
      if (count != 0) bag[color] = Value(static_cast<long long>(count));
    }
    cfg.journal->put(kJournalHeld, Value(std::move(bag)));
  }

  /// attach()-time restore: returns the colours whose home pool came back
  /// from the journal (their `initial` seeds must be skipped, or a restart
  /// would mint a second batch of every token).
  std::set<TokenColor> restoreJournalLocked() {
    std::set<TokenColor> restored;
    if (cfg.journal == nullptr) return restored;
    const Value heldImage = cfg.journal->getOr(kJournalHeld, Value(ValueMap{}));
    for (const auto& [color, count] : heldImage.asMap()) {
      if (count.asInt() != 0) held[color] = count.asInt();
    }
    for (const std::string& key : cfg.journal->keys()) {
      if (key.rfind(kJournalHomePrefix, 0) != 0) continue;
      const TokenColor color = key.substr(std::strlen(kJournalHomePrefix));
      const Value entry = cfg.journal->get(key);
      HomeColor& home = homed[color];
      home.total = entry.at("total").asInt();
      home.free = entry.at("free").asInt();
      for (const auto& [member, count] : entry.at("holders").asMap()) {
        home.holders[std::strtoull(member.c_str(), nullptr, 10)] =
            count.asInt();
      }
      restored.insert(color);
    }
    return restored;
  }

  struct PendingRequest {
    std::string reqId;
    std::uint64_t ts = 0;
    // colour -> requested count (kAllTokens allowed)
    std::map<TokenColor, std::int64_t> wants;
    // colour -> granted count (present once granted)
    std::map<TokenColor, std::int64_t> granted;
    bool deadlocked = false;
    std::string error;
    TimePoint startedAt;
    TimePoint nextProbe;
  };
  std::optional<PendingRequest> pending;
  std::uint64_t nextReqSerial = 1;

  // Probe dedup: (origin, reqId) pairs already forwarded.
  std::set<std::pair<std::size_t, std::string>> probesSeen;

  // totalTokens() bookkeeping.
  std::uint64_t nextQuerySerial = 1;
  struct TotalQuery {
    std::size_t repliesPending = 0;
    TokenBag totals;
  };
  std::map<std::uint64_t, TotalQuery> totalQueries;

  Stats stats;

  // -----------------------------------------------------------------------

  void sendTo(std::size_t index, const DataMessage& msg) {
    peers.at(index)->send(msg);
  }

  std::size_t homeOf(const TokenColor& color) const {
    return static_cast<std::size_t>(colorHash(color) % peers.size());
  }

  // ---- home logic ---------------------------------------------------------

  void grantLocked(HomeColor& home, const TokenColor& color,
                   const HomeColor::Waiter& waiter) {
    home.free -= waiter.count;
    home.holders[waiter.from] += waiter.count;
    DataMessage grant(kGrant);
    grant.set("reqId", Value(waiter.reqId));
    grant.set("color", Value(color));
    grant.set("count", Value(static_cast<long long>(waiter.count)));
    sendTo(waiter.from, grant);
    journalHomeLocked(color);
    ++stats.grantsIssued;
    mGrants->inc();
  }

  void serveWaitQLocked(const TokenColor& color, HomeColor& home) {
    // Strict earliest-first service: granting out of order would starve
    // earlier large requests behind later small ones.
    while (!home.waitQ.empty() && home.waitQ.front().count <= home.free) {
      grantLocked(home, color, home.waitQ.front());
      home.waitQ.erase(home.waitQ.begin());
    }
  }

  void onReq(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const auto ts = static_cast<std::uint64_t>(msg.get("ts").asInt());
    const TokenColor color = msg.get("color").asString();
    auto count = msg.get("count").asInt();

    std::scoped_lock lock(mutex);
    const auto it = homed.find(color);
    if (it == homed.end()) {
      DataMessage err(kErr);
      err.set("reqId", Value(reqId));
      err.set("color", Value(color));
      err.set("reason", Value("unknown token color '" + color + "'"));
      sendTo(from, err);
      return;
    }
    HomeColor& home = it->second;
    if (count == TokenRequest::kAllTokens) count = home.total;
    if (count < 0 || count > home.total) {
      DataMessage err(kErr);
      err.set("reqId", Value(reqId));
      err.set("color", Value(color));
      err.set("reason",
              Value("request for " + std::to_string(count) + " of '" + color +
                    "' exceeds the system total " +
                    std::to_string(home.total)));
      sendTo(from, err);
      return;
    }
    HomeColor::Waiter waiter{ts, from, count, reqId};
    home.waitQ.insert(
        std::upper_bound(home.waitQ.begin(), home.waitQ.end(), waiter),
        waiter);
    serveWaitQLocked(color, home);
  }

  void applyReleaseLocked(std::size_t from, const TokenColor& color,
                          std::int64_t count) {
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    HomeColor& home = it->second;
    home.free += count;
    auto& heldByFrom = home.holders[from];
    heldByFrom -= count;
    if (heldByFrom < 0) {
      DAPPLE_LOG(kWarn, kLog) << "home " << selfIndex
                              << ": negative holding for member " << from
                              << " colour " << color;
      heldByFrom = 0;
    }
    journalHomeLocked(color);
    ++stats.releasesServed;
    serveWaitQLocked(color, home);
  }

  void onRel(const DataMessage& msg) {
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const TokenColor color = msg.get("color").asString();
    const auto count = msg.get("count").asInt();
    std::scoped_lock lock(mutex);
    applyReleaseLocked(from, color, count);
  }

  void onCancel(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    const TokenColor color = msg.get("color").asString();
    std::scoped_lock lock(mutex);
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    std::erase_if(it->second.waitQ, [&](const HomeColor::Waiter& w) {
      return w.reqId == reqId;
    });
  }

  void onProbe(const DataMessage& msg) {
    // Home side: fan the probe out to the colour's current holders.
    const auto origin = static_cast<std::size_t>(msg.get("origin").asInt());
    const std::string reqId = msg.get("reqId").asString();
    const TokenColor color = msg.get("color").asString();
    std::scoped_lock lock(mutex);
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    for (const auto& [holder, count] : it->second.holders) {
      if (count <= 0) continue;
      DataMessage fwd(kProbeFwd);
      fwd.set("origin", Value(static_cast<long long>(origin)));
      fwd.set("reqId", Value(reqId));
      sendTo(holder, fwd);
      ++stats.probesForwarded;
    }
  }

  void onProbeFwd(const DataMessage& msg) {
    const auto origin = static_cast<std::size_t>(msg.get("origin").asInt());
    const std::string reqId = msg.get("reqId").asString();
    std::scoped_lock lock(mutex);
    if (origin == selfIndex) {
      // The probe came back: a hold-and-wait cycle through this member's
      // request exists.  Validate that the request is still blocked — a
      // stale probe may return after the final grant arrived but before
      // the requesting thread woke up, which is NOT a deadlock.
      if (pending && pending->reqId == reqId && !pending->deadlocked &&
          pending->granted.size() < pending->wants.size()) {
        pending->deadlocked = true;
        clk().notifyAll(cv);
      }
      return;
    }
    if (!pending) return;  // not blocked: the chain breaks here
    if (!probesSeen.emplace(origin, reqId).second) return;  // already sent
    if (probesSeen.size() > 4096) probesSeen.clear();       // bound memory
    for (const auto& [color, want] : pending->wants) {
      if (pending->granted.count(color) != 0) continue;  // satisfied colour
      DataMessage probe(kProbe);
      probe.set("origin", Value(static_cast<long long>(origin)));
      probe.set("reqId", Value(reqId));
      probe.set("color", Value(color));
      sendTo(homeOf(color), probe);
      ++stats.probesForwarded;
    }
  }

  void onGrant(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    const TokenColor color = msg.get("color").asString();
    const auto count = msg.get("count").asInt();
    std::scoped_lock lock(mutex);
    if (!pending || pending->reqId != reqId) {
      // Grant for an aborted request: hand the tokens straight back.
      DataMessage rel(kRel);
      rel.set("from", Value(static_cast<long long>(selfIndex)));
      rel.set("color", Value(color));
      rel.set("count", Value(static_cast<long long>(count)));
      sendTo(homeOf(color), rel);
      return;
    }
    pending->granted[color] = count;
    clk().notifyAll(cv);
  }

  void onErr(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    std::scoped_lock lock(mutex);
    if (!pending || pending->reqId != reqId) return;
    pending->error = msg.get("reason").asString();
    clk().notifyAll(cv);
  }

  void onTotalQ(const DataMessage& msg) {
    const auto qid = static_cast<std::uint64_t>(msg.get("qid").asInt());
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    DataMessage reply(kTotalA);
    reply.set("qid", Value(static_cast<long long>(qid)));
    std::scoped_lock lock(mutex);
    ValueMap colors;
    for (const auto& [color, home] : homed) {
      std::int64_t heldSum = 0;
      for (const auto& [holder, count] : home.holders) heldSum += count;
      ValueMap entry;
      entry["total"] = Value(static_cast<long long>(home.total));
      entry["free"] = Value(static_cast<long long>(home.free));
      entry["held"] = Value(static_cast<long long>(heldSum));
      colors[color] = Value(std::move(entry));
    }
    reply.set("colors", Value(std::move(colors)));
    sendTo(from, reply);
  }

  void onTotalA(const DataMessage& msg) {
    const auto qid = static_cast<std::uint64_t>(msg.get("qid").asInt());
    std::scoped_lock lock(mutex);
    const auto it = totalQueries.find(qid);
    if (it == totalQueries.end()) return;
    for (const auto& [color, entry] : msg.get("colors").asMap()) {
      it->second.totals[color] = entry.at("total").asInt();
    }
    if (--it->second.repliesPending == 0) clk().notifyAll(cv);
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    const std::string& kind = msg->kind();
    if (kind == kReq) {
      onReq(*msg);
    } else if (kind == kGrant) {
      onGrant(*msg);
    } else if (kind == kErr) {
      onErr(*msg);
    } else if (kind == kRel) {
      onRel(*msg);
    } else if (kind == kCancel) {
      onCancel(*msg);
    } else if (kind == kProbe) {
      onProbe(*msg);
    } else if (kind == kProbeFwd) {
      onProbeFwd(*msg);
    } else if (kind == kTotalQ) {
      onTotalQ(*msg);
    } else if (kind == kTotalA) {
      onTotalA(*msg);
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      {
        // The manager's ref is typically shared (e.g. over a session mesh)
        // before every member has called attach(), so an eager peer's
        // request can arrive while `peers` is still empty.  Hold the
        // delivery until attach() — the inbox keeps queueing behind it, so
        // FIFO order is preserved.
        std::unique_lock lock(mutex);
        while (!attached && !stopping && !stop.stop_requested()) {
          clk().parkFor(lock, cv, milliseconds(50));
        }
        if (stopping) break;
      }
      if (stop.stop_requested()) break;
      try {
        dispatch(del);
      } catch (const ShutdownError&) {
        throw;
      } catch (const std::exception& e) {
        // Error subclasses and standard exceptions alike (a malformed
        // message can surface std::out_of_range): log and keep serving.
        DAPPLE_LOG(kWarn, kLog) << d.name() << ": token dispatch error: "
                                << e.what();
      }
    }
  }

  // ---- requester-side helpers -------------------------------------------

  void sendProbesLocked() {
    for (const auto& [color, want] : pending->wants) {
      if (pending->granted.count(color) != 0) continue;
      DataMessage probe(kProbe);
      probe.set("origin", Value(static_cast<long long>(selfIndex)));
      probe.set("reqId", Value(pending->reqId));
      probe.set("color", Value(color));
      sendTo(homeOf(color), probe);
      ++stats.probesSent;
      mProbes->inc();
    }
  }

  /// Cancels outstanding colour requests and returns partial grants.
  void abortPendingLocked() {
    for (const auto& [color, want] : pending->wants) {
      if (pending->granted.count(color) != 0) continue;
      DataMessage cancel(kCancel);
      cancel.set("reqId", Value(pending->reqId));
      cancel.set("color", Value(color));
      sendTo(homeOf(color), cancel);
    }
    for (const auto& [color, count] : pending->granted) {
      DataMessage rel(kRel);
      rel.set("from", Value(static_cast<long long>(selfIndex)));
      rel.set("color", Value(color));
      rel.set("count", Value(static_cast<long long>(count)));
      sendTo(homeOf(color), rel);
    }
    pending.reset();
  }
};

TokenManager::TokenManager(Dapplet& dapplet, TokenConfig config)
    : impl_(std::make_shared<Impl>(dapplet, config)) {
  impl_->inbox = &dapplet.createInbox("tokens.mgr");
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->clk().notifyAll(impl->cv);
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->clk().notifyAll(impl->cv);
  });
}

TokenManager::~TokenManager() {
  {
    std::scoped_lock lock(impl_->mutex);
    impl_->stopping = true;
    impl_->clk().notifyAll(impl_->cv);
  }
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef TokenManager::ref() const { return impl_->inbox->ref(); }

void TokenManager::attach(const std::vector<InboxRef>& managers,
                          std::size_t selfIndex, const TokenBag& initial) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->attached) throw TokenError("token manager already attached");
  impl_->selfIndex = selfIndex;
  impl_->peers.resize(managers.size(), nullptr);
  for (std::size_t i = 0; i < managers.size(); ++i) {
    Outbox& box = impl_->d.createOutbox();
    box.add(managers[i]);
    impl_->peers[i] = &box;
  }
  // Crash recovery: journaled pools and holdings take precedence over the
  // `initial` seeds — re-seeding a restored colour would mint new tokens
  // and break conservation.
  const std::set<TokenColor> restored = impl_->restoreJournalLocked();
  for (const auto& [color, count] : initial) {
    if (impl_->homeOf(color) != selfIndex) {
      throw TokenError("colour '" + color + "' is homed at member " +
                       std::to_string(impl_->homeOf(color)) +
                       ", seed it there");
    }
    if (count < 0) throw TokenError("negative seed for '" + color + "'");
    if (restored.count(color) != 0) continue;
    auto& home = impl_->homed[color];
    home.total = count;
    home.free = count;
    impl_->journalHomeLocked(color);
  }
  impl_->attached = true;
  impl_->clk().notifyAll(impl_->cv);  // release a delivery parked by the loop
}

std::size_t TokenManager::homeOf(const TokenColor& color) const {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  return impl_->homeOf(color);
}

std::size_t TokenManager::homeOfColor(const TokenColor& color,
                                      std::size_t memberCount) {
  if (memberCount == 0) throw TokenError("empty member list");
  return static_cast<std::size_t>(colorHash(color) % memberCount);
}

void TokenManager::request(const TokenList& wants, Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  if (impl_->pending) {
    throw TokenError("a request is already outstanding on this manager");
  }
  if (wants.empty()) return;

  Impl::PendingRequest req;
  req.reqId = impl_->d.name() + "#" +
              std::to_string(impl_->nextReqSerial++);
  req.ts = impl_->d.clock().tick();
  for (const TokenRequest& want : wants) {
    if (want.count == 0) continue;
    if (want.count < 0 && want.count != TokenRequest::kAllTokens) {
      throw TokenError("invalid token count");
    }
    req.wants[want.color] += 0;  // ensure entry
    auto& entry = req.wants[want.color];
    if (want.count == TokenRequest::kAllTokens ||
        entry == TokenRequest::kAllTokens) {
      entry = TokenRequest::kAllTokens;
    } else {
      entry += want.count;
    }
  }
  if (req.wants.empty()) return;
  req.startedAt = impl_->now();
  req.nextProbe = req.startedAt + impl_->cfg.probeDelay;
  impl_->pending = std::move(req);

  for (const auto& [color, count] : impl_->pending->wants) {
    DataMessage msg(kReq);
    msg.set("reqId", Value(impl_->pending->reqId));
    msg.set("from", Value(static_cast<long long>(impl_->selfIndex)));
    msg.set("ts", Value(static_cast<long long>(impl_->pending->ts)));
    msg.set("color", Value(color));
    msg.set("count", Value(static_cast<long long>(count)));
    impl_->sendTo(impl_->homeOf(color), msg);
  }

  const TimePoint deadline = impl_->now() + timeout;
  while (true) {
    if (impl_->loopDone) {
      impl_->abortPendingLocked();
      throw ShutdownError("token manager stopped");
    }
    auto& p = *impl_->pending;
    // Full grant wins over any concurrently-arrived verdict: if the
    // tokens are all here, the request succeeded.
    if (p.granted.size() == p.wants.size()) break;
    if (!p.error.empty()) {
      const std::string error = p.error;
      impl_->abortPendingLocked();
      throw TokenError(error);
    }
    if (p.deadlocked) {
      ++impl_->stats.requestsDeadlocked;
      impl_->mDenied->inc();
      impl_->trace->emit("tokens", "request.deadlock");
      impl_->abortPendingLocked();
      throw DeadlockError(
          "token managers detected a deadlock involving this request");
    }
    const TimePoint now = impl_->now();
    if (now >= deadline) {
      ++impl_->stats.requestsTimedOut;
      impl_->mDenied->inc();
      impl_->trace->emit("tokens", "request.timeout");
      impl_->abortPendingLocked();
      throw TimeoutError("token request timed out");
    }
    if (now >= p.nextProbe) {
      impl_->sendProbesLocked();
      p.nextProbe = now + impl_->cfg.probeInterval;
    }
    impl_->clk().parkUntil(lock, impl_->cv, std::min(deadline, p.nextProbe));
  }
  for (const auto& [color, count] : impl_->pending->granted) {
    impl_->held[color] += count;
  }
  impl_->journalHeldLocked();
  ++impl_->stats.requestsGranted;
  impl_->pending.reset();
}

void TokenManager::release(const TokenList& gives) {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  // Validate first so the operation is all-or-nothing (paper: "if the
  // tokens specified in tokenList are not in holdsTokens an exception is
  // raised").
  TokenBag toGive;
  for (const TokenRequest& give : gives) {
    if (give.count == TokenRequest::kAllTokens) {
      const auto it = impl_->held.find(give.color);
      toGive[give.color] += it == impl_->held.end() ? 0 : it->second;
    } else if (give.count < 0) {
      throw TokenError("invalid release count");
    } else {
      toGive[give.color] += give.count;
    }
  }
  for (const auto& [color, count] : toGive) {
    const auto it = impl_->held.find(color);
    const std::int64_t have = it == impl_->held.end() ? 0 : it->second;
    if (count > have) {
      throw TokenError("release of " + std::to_string(count) + " '" + color +
                       "' tokens but only " + std::to_string(have) +
                       " are held");
    }
  }
  bool heldChanged = false;
  for (const auto& [color, count] : toGive) {
    if (count == 0) continue;
    impl_->held[color] -= count;
    if (impl_->held[color] == 0) impl_->held.erase(color);
    heldChanged = true;
    const std::size_t home = impl_->homeOf(color);
    if (home == impl_->selfIndex) {
      // Self-homed colours are applied synchronously: routing the release
      // through the loopback would leave a window where the tokens are
      // neither held nor free, so stats (and grants) lag the caller.
      impl_->applyReleaseLocked(impl_->selfIndex, color, count);
      continue;
    }
    DataMessage rel(kRel);
    rel.set("from", Value(static_cast<long long>(impl_->selfIndex)));
    rel.set("color", Value(color));
    rel.set("count", Value(static_cast<long long>(count)));
    impl_->sendTo(home, rel);
  }
  if (heldChanged) impl_->journalHeldLocked();
}

void TokenManager::rewire(std::size_t index, const InboxRef& ref) {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  if (index >= impl_->peers.size()) {
    throw TokenError("rewire index " + std::to_string(index) +
                     " out of range");
  }
  Outbox& box = *impl_->peers[index];
  for (const InboxRef& old : box.destinations()) box.remove(old);
  box.add(ref);
}

TokenBag TokenManager::totalTokens(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  const std::uint64_t qid = impl_->nextQuerySerial++;
  auto& query = impl_->totalQueries[qid];
  query.repliesPending = impl_->peers.size();
  DataMessage msg(kTotalQ);
  msg.set("qid", Value(static_cast<long long>(qid)));
  msg.set("from", Value(static_cast<long long>(impl_->selfIndex)));
  for (std::size_t i = 0; i < impl_->peers.size(); ++i) {
    impl_->sendTo(i, msg);
  }
  const bool done = impl_->clk().waitFor(lock, impl_->cv, timeout, [&] {
    return impl_->totalQueries.at(qid).repliesPending == 0 ||
           impl_->loopDone;
  }) && !impl_->loopDone;
  TokenBag totals = std::move(impl_->totalQueries.at(qid).totals);
  impl_->totalQueries.erase(qid);
  if (!done) throw TimeoutError("totalTokens query timed out");
  return totals;
}

TokenBag TokenManager::holdsTokens() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->held;
}

TokenManager::Stats TokenManager::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
