#include "dapple/services/tokens/token_manager.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

#include "dapple/core/peer_monitor.hpp"
#include "dapple/core/state.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "tokens";

// Message kinds.
constexpr const char* kReq = "tok.req";
constexpr const char* kGrant = "tok.grant";
constexpr const char* kErr = "tok.err";
constexpr const char* kRel = "tok.rel";
constexpr const char* kCancel = "tok.cancel";
constexpr const char* kProbe = "tok.probe";        // member -> home
constexpr const char* kProbeFwd = "tok.probe.fwd"; // home -> holder
constexpr const char* kTotalQ = "tok.total.q";
constexpr const char* kTotalA = "tok.total.a";
// Credit/lease protocol (DESIGN.md §14).
constexpr const char* kLeaseRenew = "tok.lease.renew";    // borrower -> home
constexpr const char* kLeaseRenewA = "tok.lease.renew.a"; // home -> borrower
constexpr const char* kLeaseRet = "tok.lease.ret";        // borrower -> home
constexpr const char* kLeaseRecall = "tok.lease.recall";  // home -> borrower
constexpr const char* kLeaseReq = "tok.lease.req";        // restart re-lease
constexpr const char* kLeaseGrant = "tok.lease.grant";    // home -> borrower

// Reserved journal keys (TokenConfig::journal, DESIGN.md §12/§14).
constexpr const char* kJournalHeld = "dapple.tok/held";
constexpr const char* kJournalHomePrefix = "dapple.tok/home/";
constexpr const char* kJournalLeases = "dapple.tok/leases";

std::uint64_t colorHash(const TokenColor& color) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (unsigned char c : color) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

long long toMs(Duration d) {
  return std::chrono::duration_cast<milliseconds>(d).count();
}

}  // namespace

TokenConfig TokenConfig::normalized(std::vector<std::string>* notes) const {
  TokenConfig out = *this;
  const auto note = [notes](std::string n) {
    if (notes != nullptr) notes->push_back(std::move(n));
  };
  if (out.probeDelay <= Duration::zero()) {
    out.probeDelay = milliseconds(1);
    note("probeDelay <= 0 would probe every wakeup; clamped to 1ms");
  }
  if (out.probeInterval <= Duration::zero()) {
    out.probeInterval = milliseconds(1);
    note("probeInterval <= 0 would spin the prober; clamped to 1ms");
  }
  if (out.creditBatch < 0) {
    out.creditBatch = 0;
    note("creditBatch < 0 is meaningless; credit caching disabled");
  }
  if (out.leaseDuration <= Duration::zero()) {
    out.leaseDuration = milliseconds(20);
    note("leaseDuration <= 0 would expire loans before the first renewal; "
         "clamped to 20ms");
  }
  if (out.maintenanceInterval < Duration::zero()) {
    out.maintenanceInterval = Duration::zero();
    note("maintenanceInterval < 0 is meaningless; deriving from "
         "leaseDuration");
  }
  if (out.maintenanceInterval == Duration::zero()) {
    out.maintenanceInterval =
        std::max<Duration>(milliseconds(1), out.leaseDuration / 4);
  } else if (out.maintenanceInterval > out.leaseDuration / 2) {
    out.maintenanceInterval =
        std::max<Duration>(milliseconds(1), out.leaseDuration / 2);
    note("maintenanceInterval > leaseDuration/2 would miss the renewal "
         "window; clamped to leaseDuration/2");
  }
  if (out.incarnation == 0) {
    out.incarnation = 1;
    note("incarnation 0 is reserved for 'unknown'; clamped to 1");
  }
  return out;
}

struct TokenManager::Impl {
  Impl(Dapplet& dapplet, TokenConfig config)
      : d(dapplet),
        cfg(config),
        mGrants(&d.metricsRegistry().counter("tokens.grants_issued")),
        mDenied(&d.metricsRegistry().counter("tokens.requests_denied")),
        mProbes(&d.metricsRegistry().counter("tokens.probes_sent")),
        mCacheHits(&d.metricsRegistry().counter("tokens.cache_hits")),
        mCacheMisses(&d.metricsRegistry().counter("tokens.cache_misses")),
        mRenewals(&d.metricsRegistry().counter("tokens.lease_renewals")),
        mExpiries(&d.metricsRegistry().counter("tokens.lease_expiries")),
        gCreditOut(&d.metricsRegistry().gauge("tokens.credit_outstanding")),
        trace(&d.trace()) {}

  Dapplet& d;
  const TokenConfig cfg;
  /// Request deadlines, probe pacing, lease expiry, and every cv
  /// wait/notify run on the dapplet's clock so virtual-time tests advance
  /// through them.
  ClockSource& clk() const { return d.clockSource(); }
  TimePoint now() const { return clk().now(); }
  // `requests_denied` counts deadlock verdicts and timeouts together — the
  // two ways a request() fails without a grant.
  obs::Counter* mGrants;
  obs::Counter* mDenied;
  obs::Counter* mProbes;
  obs::Counter* mCacheHits;
  obs::Counter* mCacheMisses;
  obs::Counter* mRenewals;
  obs::Counter* mExpiries;
  obs::Gauge* gCreditOut;
  obs::TraceRing* trace;
  Inbox* inbox = nullptr;
  std::weak_ptr<Impl> weakSelf;  // for timer/monitor callbacks

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;
  bool stopping = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::vector<Outbox*> peers;  // index-aligned; self slot used too (loop-back)

  // ---- home-side state (for colours homed at this member) ---------------
  struct Lease {
    std::int64_t credits = 0;      ///< lent and not yet returned
    std::uint64_t id = 0;
    std::uint64_t incarnation = 1; ///< borrower's boot count
    TimePoint expiresAt{};
  };
  struct HomeColor {
    std::int64_t total = 0;  ///< conservation constant
    std::int64_t free = 0;
    std::map<std::size_t, std::int64_t> holders;  ///< member -> held count
    std::map<std::size_t, Lease> leases;          ///< member -> open loan
    struct Waiter {
      std::uint64_t ts;
      std::size_t from;
      std::int64_t count;
      std::string reqId;
      std::int64_t leaseAsk = 0;     ///< extra credits to lend alongside
      std::uint64_t incarnation = 1;
      friend bool operator<(const Waiter& a, const Waiter& b) {
        // Earlier timestamp first; ties to the lower member id (§4.2).
        return std::tie(a.ts, a.from) < std::tie(b.ts, b.from);
      }
    };
    std::vector<Waiter> waitQ;  // kept sorted
  };
  std::map<TokenColor, HomeColor> homed;
  std::uint64_t nextLeaseId = 1;
  std::int64_t lentTotal = 0;  ///< Σ lease credits across homed colours

  // ---- member-side state --------------------------------------------------
  TokenBag held;  ///< tokens granted through the legacy (uncached) path
  struct CacheEntry {
    std::int64_t credit = 0;      ///< borrowed, free to sub-let locally
    std::int64_t heldLeased = 0;  ///< borrowed and sub-let to the app
    std::uint64_t leaseId = 0;    ///< 0 = no live lease (or re-lease pending)
    TimePoint expiresAt{};
    TimePoint renewSentAt{};
    bool renewInFlight = false;
    TimePoint recallUntil{};      ///< fast path disabled until then
  };
  std::map<TokenColor, CacheEntry> cache;
  /// App-held tokens whose lease died under us (the home reclaimed the
  /// loan).  The app still sees them in holdsTokens(); release() retires
  /// them silently — the home's pool already counts them.
  TokenBag orphaned;

  // Maintenance timer (renewals, expiry sweeps, recalls); armed lazily the
  // first time a loan exists on either side.
  Reactor::TimerHandle maintTimer;
  bool maintArmed = false;

  // PeerMonitor wiring (cfg.monitor): watch key -> member index.
  std::map<std::string, std::size_t> watchIndex;

  // ---- crash-recovery journal (cfg.journal) -------------------------------
  // Persisted under the store lock of the *caller's* mutex — every call
  // site already holds `mutex`, so journal writes are ordered like the
  // in-memory mutations they mirror.  The wait queue is deliberately not
  // journaled: a home that dies loses its waiters, whose request() calls
  // time out and retry against the restarted home.

  void journalHomeLocked(const TokenColor& color) {
    if (cfg.journal == nullptr) return;
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    ValueMap entry;
    entry["total"] = Value(static_cast<long long>(it->second.total));
    entry["free"] = Value(static_cast<long long>(it->second.free));
    ValueMap holders;
    for (const auto& [member, count] : it->second.holders) {
      if (count != 0) {
        holders[std::to_string(member)] =
            Value(static_cast<long long>(count));
      }
    }
    entry["holders"] = Value(std::move(holders));
    ValueMap lent;
    for (const auto& [member, lease] : it->second.leases) {
      ValueMap l;
      l["credits"] = Value(static_cast<long long>(lease.credits));
      l["id"] = Value(static_cast<long long>(lease.id));
      l["inc"] = Value(static_cast<long long>(lease.incarnation));
      lent[std::to_string(member)] = Value(std::move(l));
    }
    entry["lent"] = Value(std::move(lent));
    entry["nextLease"] = Value(static_cast<long long>(nextLeaseId));
    cfg.journal->put(kJournalHomePrefix + color, Value(std::move(entry)));
  }

  void journalHeldLocked() {
    if (cfg.journal == nullptr) return;
    ValueMap bag;
    for (const auto& [color, count] : held) {
      if (count != 0) bag[color] = Value(static_cast<long long>(count));
    }
    cfg.journal->put(kJournalHeld, Value(std::move(bag)));
  }

  void journalLeasesLocked() {
    if (cfg.journal == nullptr) return;
    ValueMap bag;
    for (const auto& [color, e] : cache) {
      if (e.credit == 0 && e.heldLeased == 0) continue;
      ValueMap l;
      l["credit"] = Value(static_cast<long long>(e.credit));
      l["held"] = Value(static_cast<long long>(e.heldLeased));
      bag[color] = Value(std::move(l));
    }
    cfg.journal->put(kJournalLeases, Value(std::move(bag)));
  }

  /// attach()-time restore: returns the colours whose home pool came back
  /// from the journal (their `initial` seeds must be skipped, or a restart
  /// would mint a second batch of every token).
  std::set<TokenColor> restoreJournalLocked() {
    std::set<TokenColor> restored;
    if (cfg.journal == nullptr) return restored;
    const Value heldImage = cfg.journal->getOr(kJournalHeld, Value(ValueMap{}));
    for (const auto& [color, count] : heldImage.asMap()) {
      if (count.asInt() != 0) held[color] = count.asInt();
    }
    for (const std::string& key : cfg.journal->keys()) {
      if (key.rfind(kJournalHomePrefix, 0) != 0) continue;
      const TokenColor color = key.substr(std::strlen(kJournalHomePrefix));
      const Value entry = cfg.journal->get(key);
      HomeColor& home = homed[color];
      home.total = entry.at("total").asInt();
      home.free = entry.at("free").asInt();
      for (const auto& [member, count] : entry.at("holders").asMap()) {
        home.holders[std::strtoull(member.c_str(), nullptr, 10)] =
            count.asInt();
      }
      // Outstanding loans survive the home's own restart with a fresh
      // grace period: live borrowers renew within it, dead ones lapse and
      // the sweep returns their credits.
      if (entry.asMap().count("lent") != 0) {
        for (const auto& [member, lv] : entry.at("lent").asMap()) {
          Lease lease;
          lease.credits = lv.at("credits").asInt();
          lease.id = static_cast<std::uint64_t>(lv.at("id").asInt());
          lease.incarnation =
              static_cast<std::uint64_t>(lv.at("inc").asInt());
          lease.expiresAt = now() + cfg.leaseDuration;
          if (lease.credits > 0) {
            home.leases[std::strtoull(member.c_str(), nullptr, 10)] = lease;
            lentTotal += lease.credits;
          }
        }
      }
      if (entry.asMap().count("nextLease") != 0) {
        nextLeaseId = std::max<std::uint64_t>(
            nextLeaseId,
            static_cast<std::uint64_t>(entry.at("nextLease").asInt()));
      }
      restored.insert(color);
    }
    gCreditOut->set(lentTotal);
    return restored;
  }

  /// attach()-time restore of the member side of loans.  The journaled
  /// sub-let portion becomes a provisional claim (leaseId 0, fast path
  /// off); attach() then asks each home to re-lease it under this boot's
  /// incarnation.  Journaled *free* credit is abandoned — the home retires
  /// the whole old loan when the re-lease arrives (or by expiry).
  std::vector<std::pair<TokenColor, std::int64_t>> restoreLeasesLocked() {
    std::vector<std::pair<TokenColor, std::int64_t>> claims;
    if (cfg.journal == nullptr) return claims;
    const Value img = cfg.journal->getOr(kJournalLeases, Value(ValueMap{}));
    for (const auto& [color, e] : img.asMap()) {
      const std::int64_t claim = e.at("held").asInt();
      if (claim > 0) {
        cache[color].heldLeased = claim;
        claims.emplace_back(color, claim);
      } else if (e.at("credit").asInt() > 0) {
        claims.emplace_back(color, 0);  // prompt retirement of the old loan
      }
    }
    return claims;
  }

  struct PendingRequest {
    std::string reqId;
    std::uint64_t ts = 0;
    // colour -> requested count (kAllTokens allowed)
    std::map<TokenColor, std::int64_t> wants;
    // colour -> granted count (present once granted)
    std::map<TokenColor, std::int64_t> granted;
    // colours whose grant arrived under a lease (credits, not holdings)
    std::set<TokenColor> leasedColors;
    bool deadlocked = false;
    std::string error;
    TimePoint startedAt;
    TimePoint nextProbe;
    // Edge-chasing round counter: bumped on every re-probe, carried by the
    // probe messages, and part of the intermediate dedup key — so a retry
    // round traverses members that already forwarded an earlier round.
    // Without it, a first round that races a not-yet-blocked (or
    // just-aborted) member dies, and every retry is dropped at the first
    // intermediate: the cycle is never detected again.
    std::uint64_t probeRound = 0;
  };
  std::optional<PendingRequest> pending;
  std::uint64_t nextReqSerial = 1;

  // Probe dedup: (origin, "reqId#round") pairs already forwarded.
  std::set<std::pair<std::size_t, std::string>> probesSeen;

  // totalTokens() bookkeeping.
  std::uint64_t nextQuerySerial = 1;
  struct TotalQuery {
    std::size_t repliesPending = 0;
    TokenBag totals;
  };
  std::map<std::uint64_t, TotalQuery> totalQueries;

  Stats stats;

  // -----------------------------------------------------------------------

  void sendTo(std::size_t index, const DataMessage& msg) {
    peers.at(index)->send(msg);
  }

  std::size_t homeOf(const TokenColor& color) const {
    return static_cast<std::size_t>(colorHash(color) % peers.size());
  }

  void rewireSlotLocked(std::size_t index, const InboxRef& ref) {
    Outbox& box = *peers.at(index);
    for (const InboxRef& old : box.destinations()) box.remove(old);
    box.add(ref);
  }

  // ---- maintenance (renewals, expiry, recall) -----------------------------

  Duration renewLead() const { return cfg.leaseDuration / 2; }

  void armMaintenanceLocked() {
    if (maintArmed || stopping) return;
    maintArmed = true;
    std::weak_ptr<Impl> weak = weakSelf;
    maintTimer = d.every(cfg.maintenanceInterval, [weak] {
      if (auto impl = weak.lock()) impl->maintenanceTick();
    });
  }

  void maintenanceTick() {
    std::scoped_lock lock(mutex);
    if (!attached || stopping) return;
    const TimePoint t = now();
    try {
      memberTickLocked(t);
      homeTickLocked(t);
    } catch (const Error& e) {
      // A renewal/recall can race the transport closing (the dapplet is
      // crashing or stopping); the lease machinery must not take the
      // reactor's timer wheel down with it.
      DAPPLE_LOG(kDebug, kLog) << "maintenance tick skipped: " << e.what();
    }
  }

  void memberTickLocked(TimePoint t) {
    bool dirty = false;
    for (auto& [color, e] : cache) {
      if (e.leaseId == 0) continue;
      if (t >= e.expiresAt) {
        // Our lease died (home reclaims on its side): stop spending the
        // credit and orphan the sub-let tokens — restoring them too would
        // double the colour.
        if (e.heldLeased > 0) {
          orphaned[color] += e.heldLeased;
          e.heldLeased = 0;
        }
        e.credit = 0;
        e.leaseId = 0;
        e.renewInFlight = false;
        dirty = true;
        trace->emit("tokens", "lease.lost", color);
        continue;
      }
      if ((e.credit > 0 || e.heldLeased > 0) && !e.renewInFlight &&
          t + renewLead() >= e.expiresAt) {
        DataMessage renew(kLeaseRenew);
        renew.set("from", Value(static_cast<long long>(selfIndex)));
        renew.set("color", Value(color));
        renew.set("leaseId", Value(static_cast<long long>(e.leaseId)));
        renew.set("inc", Value(static_cast<long long>(cfg.incarnation)));
        sendTo(homeOf(color), renew);
        e.renewSentAt = t;
        e.renewInFlight = true;
      }
    }
    if (dirty) journalLeasesLocked();
  }

  void homeTickLocked(TimePoint t) {
    for (auto& [color, home] : homed) {
      std::vector<std::size_t> lapsed;
      for (const auto& [member, lease] : home.leases) {
        if (t >= lease.expiresAt) lapsed.push_back(member);
      }
      for (const std::size_t member : lapsed) {
        reclaimLeaseLocked(color, home, member, /*expiry=*/true);
      }
      if (!home.waitQ.empty()) {
        // Demand outruns the pool: recall outstanding loans so borrowers
        // return unused credit and route releases home for a while.
        for (const auto& [member, lease] : home.leases) {
          if (lease.credits <= 0) continue;
          DataMessage recall(kLeaseRecall);
          recall.set("color", Value(color));
          sendTo(member, recall);
        }
      }
    }
  }

  /// Exactly-once loan reclaim: the record's erasure is the once-guard, so
  /// lease expiry, memberDown(), and re-lease retirement can race freely.
  bool reclaimLeaseLocked(const TokenColor& color, HomeColor& home,
                          std::size_t member, bool expiry) {
    const auto it = home.leases.find(member);
    if (it == home.leases.end()) return false;
    home.free += it->second.credits;
    lentTotal -= it->second.credits;
    home.leases.erase(it);
    ++stats.leasesReclaimed;
    if (expiry) {
      ++stats.leaseExpiries;
      mExpiries->inc();
      trace->emit("tokens", "lease.expire", color);
    } else {
      trace->emit("tokens", "lease.reclaim", color);
    }
    gCreditOut->set(lentTotal);
    journalHomeLocked(color);
    serveWaitQLocked(color, home);
    return true;
  }

  void memberDownLocked(std::size_t index) {
    for (auto& [color, home] : homed) {
      reclaimLeaseLocked(color, home, index, /*expiry=*/false);
    }
  }

  // ---- home logic ---------------------------------------------------------

  void grantLocked(HomeColor& home, const TokenColor& color,
                   const HomeColor::Waiter& waiter) {
    DataMessage grant(kGrant);
    grant.set("reqId", Value(waiter.reqId));
    grant.set("color", Value(color));
    grant.set("count", Value(static_cast<long long>(waiter.count)));
    if (waiter.leaseAsk > 0) {
      // Borrow/sub-let: the whole grant plus up to `leaseAsk` extra
      // credits go out as one loan instead of a holder entry.
      std::int64_t extra =
          std::min<std::int64_t>(waiter.leaseAsk, home.free - waiter.count);
      if (extra < 0) extra = 0;
      const std::int64_t lent = waiter.count + extra;
      home.free -= lent;
      Lease& lease = home.leases[waiter.from];
      if (lease.id == 0) lease.id = nextLeaseId++;
      if (waiter.incarnation > lease.incarnation) {
        lease.incarnation = waiter.incarnation;
      }
      lease.credits += lent;
      lease.expiresAt = now() + cfg.leaseDuration;
      lentTotal += lent;
      gCreditOut->set(lentTotal);
      ++stats.leasesGranted;
      grant.set("leaseId", Value(static_cast<long long>(lease.id)));
      grant.set("lent", Value(static_cast<long long>(lent)));
      grant.set("durMs", Value(toMs(cfg.leaseDuration)));
      armMaintenanceLocked();
    } else {
      home.free -= waiter.count;
      home.holders[waiter.from] += waiter.count;
    }
    sendTo(waiter.from, grant);
    journalHomeLocked(color);
    ++stats.grantsIssued;
    mGrants->inc();
  }

  void serveWaitQLocked(const TokenColor& color, HomeColor& home) {
    // Strict earliest-first service: granting out of order would starve
    // earlier large requests behind later small ones.
    while (!home.waitQ.empty() && home.waitQ.front().count <= home.free) {
      grantLocked(home, color, home.waitQ.front());
      home.waitQ.erase(home.waitQ.begin());
    }
  }

  void onReq(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const auto ts = static_cast<std::uint64_t>(msg.get("ts").asInt());
    const TokenColor color = msg.get("color").asString();
    auto count = msg.get("count").asInt();

    std::scoped_lock lock(mutex);
    const auto it = homed.find(color);
    if (it == homed.end()) {
      DataMessage err(kErr);
      err.set("reqId", Value(reqId));
      err.set("color", Value(color));
      err.set("reason", Value("unknown token color '" + color + "'"));
      sendTo(from, err);
      return;
    }
    HomeColor& home = it->second;
    if (count == TokenRequest::kAllTokens) count = home.total;
    if (count < 0 || count > home.total) {
      DataMessage err(kErr);
      err.set("reqId", Value(reqId));
      err.set("color", Value(color));
      err.set("reason",
              Value("request for " + std::to_string(count) + " of '" + color +
                    "' exceeds the system total " +
                    std::to_string(home.total)));
      sendTo(from, err);
      return;
    }
    HomeColor::Waiter waiter{ts, from, count, reqId};
    if (msg.has("lease")) waiter.leaseAsk = msg.get("lease").asInt();
    if (msg.has("inc")) {
      waiter.incarnation = static_cast<std::uint64_t>(msg.get("inc").asInt());
    }
    home.waitQ.insert(
        std::upper_bound(home.waitQ.begin(), home.waitQ.end(), waiter),
        waiter);
    serveWaitQLocked(color, home);
  }

  void applyReleaseLocked(std::size_t from, const TokenColor& color,
                          std::int64_t count) {
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    HomeColor& home = it->second;
    home.free += count;
    auto& heldByFrom = home.holders[from];
    heldByFrom -= count;
    if (heldByFrom < 0) {
      DAPPLE_LOG(kWarn, kLog) << "home " << selfIndex
                              << ": negative holding for member " << from
                              << " colour " << color;
      heldByFrom = 0;
    }
    journalHomeLocked(color);
    ++stats.releasesServed;
    serveWaitQLocked(color, home);
  }

  void onRel(const DataMessage& msg) {
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const TokenColor color = msg.get("color").asString();
    const auto count = msg.get("count").asInt();
    std::scoped_lock lock(mutex);
    applyReleaseLocked(from, color, count);
  }

  void onCancel(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    const TokenColor color = msg.get("color").asString();
    std::scoped_lock lock(mutex);
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    std::erase_if(it->second.waitQ, [&](const HomeColor::Waiter& w) {
      return w.reqId == reqId;
    });
  }

  void onProbe(const DataMessage& msg) {
    // Home side: fan the probe out to the colour's current holders — both
    // legacy holders and live borrowers (sub-let tokens can be part of a
    // hold-and-wait cycle just as held ones can).
    const auto origin = static_cast<std::size_t>(msg.get("origin").asInt());
    const std::string reqId = msg.get("reqId").asString();
    const long long round = msg.get("round").asInt();
    const TokenColor color = msg.get("color").asString();
    std::scoped_lock lock(mutex);
    const auto it = homed.find(color);
    if (it == homed.end()) return;
    std::set<std::size_t> targets;
    for (const auto& [holder, count] : it->second.holders) {
      if (count > 0) targets.insert(holder);
    }
    for (const auto& [borrower, lease] : it->second.leases) {
      if (lease.credits > 0) targets.insert(borrower);
    }
    for (const std::size_t target : targets) {
      DataMessage fwd(kProbeFwd);
      fwd.set("origin", Value(static_cast<long long>(origin)));
      fwd.set("reqId", Value(reqId));
      fwd.set("round", Value(round));
      sendTo(target, fwd);
      ++stats.probesForwarded;
    }
  }

  void onProbeFwd(const DataMessage& msg) {
    const auto origin = static_cast<std::size_t>(msg.get("origin").asInt());
    const std::string reqId = msg.get("reqId").asString();
    const long long round = msg.get("round").asInt();
    std::scoped_lock lock(mutex);
    if (origin == selfIndex) {
      // The probe came back: a hold-and-wait cycle through this member's
      // request exists.  Validate that the request is still blocked — a
      // stale probe may return after the final grant arrived but before
      // the requesting thread woke up, which is NOT a deadlock.
      if (pending && pending->reqId == reqId && !pending->deadlocked &&
          pending->granted.size() < pending->wants.size()) {
        pending->deadlocked = true;
        clk().notifyAll(cv);
      }
      return;
    }
    if (!pending) return;  // not blocked: the chain breaks here
    const std::string dedupKey = reqId + "#" + std::to_string(round);
    if (!probesSeen.emplace(origin, dedupKey).second) return;  // already sent
    if (probesSeen.size() > 4096) probesSeen.clear();          // bound memory
    for (const auto& [color, want] : pending->wants) {
      if (pending->granted.count(color) != 0) continue;  // satisfied colour
      DataMessage probe(kProbe);
      probe.set("origin", Value(static_cast<long long>(origin)));
      probe.set("reqId", Value(reqId));
      probe.set("round", Value(round));
      probe.set("color", Value(color));
      sendTo(homeOf(color), probe);
      ++stats.probesForwarded;
    }
  }

  void onGrant(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    const TokenColor color = msg.get("color").asString();
    const auto count = msg.get("count").asInt();
    std::scoped_lock lock(mutex);
    const bool leased = msg.has("leaseId");
    if (leased) {
      // The loan opens (or tops up) regardless of whether the request is
      // still live: the extra credits beyond `count` land in the cache now.
      auto& e = cache[color];
      e.leaseId = static_cast<std::uint64_t>(msg.get("leaseId").asInt());
      e.expiresAt = now() + milliseconds(msg.get("durMs").asInt());
      e.credit += msg.get("lent").asInt() - count;
      armMaintenanceLocked();
    }
    if (!pending || pending->reqId != reqId) {
      if (leased) {
        // Grant for an aborted request: the tokens are leased credit we
        // legitimately hold — bank them in the cache.
        cache[color].credit += count;
        journalLeasesLocked();
        return;
      }
      // Legacy grant for an aborted request: hand the tokens straight back.
      DataMessage rel(kRel);
      rel.set("from", Value(static_cast<long long>(selfIndex)));
      rel.set("color", Value(color));
      rel.set("count", Value(static_cast<long long>(count)));
      sendTo(homeOf(color), rel);
      return;
    }
    if (leased) {
      pending->leasedColors.insert(color);
      journalLeasesLocked();
    }
    pending->granted[color] = count;
    clk().notifyAll(cv);
  }

  void onErr(const DataMessage& msg) {
    const std::string reqId = msg.get("reqId").asString();
    std::scoped_lock lock(mutex);
    if (!pending || pending->reqId != reqId) return;
    pending->error = msg.get("reason").asString();
    clk().notifyAll(cv);
  }

  // ---- lease protocol handlers -------------------------------------------

  void onLeaseRenew(const DataMessage& msg) {
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const TokenColor color = msg.get("color").asString();
    const auto id = static_cast<std::uint64_t>(msg.get("leaseId").asInt());
    const auto inc = static_cast<std::uint64_t>(msg.get("inc").asInt());
    std::scoped_lock lock(mutex);
    bool ok = false;
    const auto hit = homed.find(color);
    if (hit != homed.end()) {
      const auto lit = hit->second.leases.find(from);
      if (lit != hit->second.leases.end() && lit->second.id == id &&
          inc >= lit->second.incarnation) {
        if (now() >= lit->second.expiresAt) {
          // The sweep's verdict stands even when the renewal races it in:
          // expiry already returned the credits to the pool.
          reclaimLeaseLocked(color, hit->second, from, /*expiry=*/true);
        } else {
          lit->second.expiresAt = now() + cfg.leaseDuration;
          ok = true;
        }
      }
    }
    DataMessage reply(kLeaseRenewA);
    reply.set("color", Value(color));
    reply.set("leaseId", Value(static_cast<long long>(id)));
    reply.set("ok", Value(ok));
    reply.set("durMs", Value(toMs(cfg.leaseDuration)));
    sendTo(from, reply);
  }

  void onLeaseRenewA(const DataMessage& msg) {
    const TokenColor color = msg.get("color").asString();
    const auto id = static_cast<std::uint64_t>(msg.get("leaseId").asInt());
    std::scoped_lock lock(mutex);
    const auto it = cache.find(color);
    if (it == cache.end() || it->second.leaseId != id) return;
    CacheEntry& e = it->second;
    e.renewInFlight = false;
    if (msg.get("ok").asBool()) {
      // Measured from when the renewal was *sent*, so the member's view of
      // the deadline is never later than the home's.
      e.expiresAt = e.renewSentAt + milliseconds(msg.get("durMs").asInt());
      ++stats.leaseRenewals;
      mRenewals->inc();
      return;
    }
    // Refused (reclaimed, or a newer incarnation took over): stop spending.
    if (e.heldLeased > 0) {
      orphaned[color] += e.heldLeased;
      e.heldLeased = 0;
    }
    e.credit = 0;
    e.leaseId = 0;
    journalLeasesLocked();
    trace->emit("tokens", "lease.refused", color);
  }

  void onLeaseRet(const DataMessage& msg) {
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const TokenColor color = msg.get("color").asString();
    const auto id = static_cast<std::uint64_t>(msg.get("leaseId").asInt());
    const auto count = msg.get("count").asInt();
    std::scoped_lock lock(mutex);
    const auto hit = homed.find(color);
    if (hit == homed.end()) return;
    HomeColor& home = hit->second;
    const auto lit = home.leases.find(from);
    // A return racing a reclaim is dropped: the reclaim already restored
    // the whole loan (in-flight returns included) to the pool.
    if (lit == home.leases.end() || lit->second.id != id) return;
    const std::int64_t n = std::min<std::int64_t>(count, lit->second.credits);
    lit->second.credits -= n;
    home.free += n;
    lentTotal -= n;
    gCreditOut->set(lentTotal);
    if (lit->second.credits <= 0) home.leases.erase(lit);
    journalHomeLocked(color);
    serveWaitQLocked(color, home);
  }

  void onLeaseRecall(const DataMessage& msg) {
    const TokenColor color = msg.get("color").asString();
    std::scoped_lock lock(mutex);
    const auto it = cache.find(color);
    if (it == cache.end() || it->second.leaseId == 0) return;
    CacheEntry& e = it->second;
    e.recallUntil = now() + cfg.leaseDuration;
    if (e.credit > 0) {
      DataMessage ret(kLeaseRet);
      ret.set("from", Value(static_cast<long long>(selfIndex)));
      ret.set("color", Value(color));
      ret.set("leaseId", Value(static_cast<long long>(e.leaseId)));
      ret.set("count", Value(static_cast<long long>(e.credit)));
      sendTo(homeOf(color), ret);
      e.credit = 0;
      journalLeasesLocked();
      trace->emit("tokens", "lease.recalled", color);
    }
  }

  void onLeaseReq(const DataMessage& msg) {
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    const TokenColor color = msg.get("color").asString();
    const auto claim = msg.get("claim").asInt();
    const auto batch = msg.get("batch").asInt();
    const auto inc = static_cast<std::uint64_t>(msg.get("inc").asInt());
    std::scoped_lock lock(mutex);
    // The re-lease doubles as the restarted member's re-advertisement to
    // the token layer: replies (and future recalls) need its new address.
    rewireSlotLocked(from, inboxRefFromValue(msg.get("ref")));
    std::uint64_t leaseId = 0;
    std::int64_t covered = 0, extra = 0;
    const auto hit = homed.find(color);
    if (hit != homed.end()) {
      HomeColor& home = hit->second;
      const auto lit = home.leases.find(from);
      const bool stale =
          lit != home.leases.end() && inc <= lit->second.incarnation;
      if (!stale) {
        if (lit != home.leases.end()) {
          // Retire the dead incarnation's loan first — inline, so its
          // credits cover the claim before any waiter can grab them.
          home.free += lit->second.credits;
          lentTotal -= lit->second.credits;
          home.leases.erase(lit);
          ++stats.leasesReclaimed;
        }
        covered = std::min<std::int64_t>(claim, home.free);
        home.free -= covered;
        extra = std::min<std::int64_t>(batch, home.free);
        home.free -= extra;
        if (covered + extra > 0) {
          Lease lease;
          lease.credits = covered + extra;
          lease.id = nextLeaseId++;
          lease.incarnation = inc;
          lease.expiresAt = now() + cfg.leaseDuration;
          home.leases[from] = lease;
          lentTotal += lease.credits;
          ++stats.leasesGranted;
          leaseId = lease.id;
          armMaintenanceLocked();
        }
        gCreditOut->set(lentTotal);
        journalHomeLocked(color);
        serveWaitQLocked(color, home);
      }
    }
    DataMessage reply(kLeaseGrant);
    reply.set("color", Value(color));
    reply.set("leaseId", Value(static_cast<long long>(leaseId)));
    reply.set("covered", Value(static_cast<long long>(covered)));
    reply.set("extra", Value(static_cast<long long>(extra)));
    reply.set("durMs", Value(toMs(cfg.leaseDuration)));
    sendTo(from, reply);
  }

  void onLeaseGrant(const DataMessage& msg) {
    const TokenColor color = msg.get("color").asString();
    const auto leaseId = static_cast<std::uint64_t>(
        msg.get("leaseId").asInt());
    const auto covered = msg.get("covered").asInt();
    const auto extra = msg.get("extra").asInt();
    std::scoped_lock lock(mutex);
    CacheEntry& e = cache[color];
    if (e.heldLeased > covered) {
      // The home could not cover the journaled claim (its own state was
      // lost, or the pool was re-granted meanwhile): the shortfall is
      // forfeited — holding it would mint tokens.
      DAPPLE_LOG(kWarn, kLog)
          << d.name() << ": re-lease of '" << color << "' covered " << covered
          << "/" << e.heldLeased << "; forfeiting the difference";
      e.heldLeased = covered;
    }
    e.credit = covered + extra - e.heldLeased;
    e.leaseId = leaseId;
    e.expiresAt = now() + milliseconds(msg.get("durMs").asInt());
    if (leaseId == 0) e.credit = 0;
    if (leaseId != 0) armMaintenanceLocked();
    journalLeasesLocked();
    trace->emit("tokens", "lease.restored", color);
    clk().notifyAll(cv);
  }

  void onTotalQ(const DataMessage& msg) {
    const auto qid = static_cast<std::uint64_t>(msg.get("qid").asInt());
    const auto from = static_cast<std::size_t>(msg.get("from").asInt());
    DataMessage reply(kTotalA);
    reply.set("qid", Value(static_cast<long long>(qid)));
    std::scoped_lock lock(mutex);
    ValueMap colors;
    for (const auto& [color, home] : homed) {
      std::int64_t heldSum = 0;
      for (const auto& [holder, count] : home.holders) heldSum += count;
      std::int64_t lentSum = 0;
      for (const auto& [borrower, lease] : home.leases) {
        lentSum += lease.credits;
      }
      ValueMap entry;
      entry["total"] = Value(static_cast<long long>(home.total));
      entry["free"] = Value(static_cast<long long>(home.free));
      entry["held"] = Value(static_cast<long long>(heldSum));
      entry["lent"] = Value(static_cast<long long>(lentSum));
      colors[color] = Value(std::move(entry));
    }
    reply.set("colors", Value(std::move(colors)));
    sendTo(from, reply);
  }

  void onTotalA(const DataMessage& msg) {
    const auto qid = static_cast<std::uint64_t>(msg.get("qid").asInt());
    std::scoped_lock lock(mutex);
    const auto it = totalQueries.find(qid);
    if (it == totalQueries.end()) return;
    for (const auto& [color, entry] : msg.get("colors").asMap()) {
      it->second.totals[color] = entry.at("total").asInt();
    }
    if (--it->second.repliesPending == 0) clk().notifyAll(cv);
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr) return;
    const std::string& kind = msg->kind();
    if (kind == kReq) {
      onReq(*msg);
    } else if (kind == kGrant) {
      onGrant(*msg);
    } else if (kind == kErr) {
      onErr(*msg);
    } else if (kind == kRel) {
      onRel(*msg);
    } else if (kind == kCancel) {
      onCancel(*msg);
    } else if (kind == kProbe) {
      onProbe(*msg);
    } else if (kind == kProbeFwd) {
      onProbeFwd(*msg);
    } else if (kind == kTotalQ) {
      onTotalQ(*msg);
    } else if (kind == kTotalA) {
      onTotalA(*msg);
    } else if (kind == kLeaseRenew) {
      onLeaseRenew(*msg);
    } else if (kind == kLeaseRenewA) {
      onLeaseRenewA(*msg);
    } else if (kind == kLeaseRet) {
      onLeaseRet(*msg);
    } else if (kind == kLeaseRecall) {
      onLeaseRecall(*msg);
    } else if (kind == kLeaseReq) {
      onLeaseReq(*msg);
    } else if (kind == kLeaseGrant) {
      onLeaseGrant(*msg);
    }
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      {
        // The manager's ref is typically shared (e.g. over a session mesh)
        // before every member has called attach(), so an eager peer's
        // request can arrive while `peers` is still empty.  Hold the
        // delivery until attach() — the inbox keeps queueing behind it, so
        // FIFO order is preserved.
        std::unique_lock lock(mutex);
        while (!attached && !stopping && !stop.stop_requested()) {
          clk().parkFor(lock, cv, milliseconds(50));
        }
        if (stopping) break;
      }
      if (stop.stop_requested()) break;
      try {
        dispatch(del);
      } catch (const ShutdownError&) {
        throw;
      } catch (const std::exception& e) {
        // Error subclasses and standard exceptions alike (a malformed
        // message can surface std::out_of_range): log and keep serving.
        DAPPLE_LOG(kWarn, kLog) << d.name() << ": token dispatch error: "
                                << e.what();
      }
    }
  }

  // ---- requester-side helpers -------------------------------------------

  void sendProbesLocked() {
    ++pending->probeRound;
    for (const auto& [color, want] : pending->wants) {
      if (pending->granted.count(color) != 0) continue;
      DataMessage probe(kProbe);
      probe.set("origin", Value(static_cast<long long>(selfIndex)));
      probe.set("reqId", Value(pending->reqId));
      probe.set("round", Value(static_cast<long long>(pending->probeRound)));
      probe.set("color", Value(color));
      sendTo(homeOf(color), probe);
      ++stats.probesSent;
      mProbes->inc();
    }
  }

  /// Cancels outstanding colour requests and returns partial grants.
  void abortPendingLocked() {
    bool cacheDirty = false;
    for (const auto& [color, want] : pending->wants) {
      if (pending->granted.count(color) != 0) continue;
      DataMessage cancel(kCancel);
      cancel.set("reqId", Value(pending->reqId));
      cancel.set("color", Value(color));
      sendTo(homeOf(color), cancel);
    }
    for (const auto& [color, count] : pending->granted) {
      if (pending->leasedColors.count(color) != 0) {
        // Leased grants stay borrowed: returning them to the cache is a
        // local no-message operation, and the loan's renewal keeps them.
        cache[color].credit += count;
        cacheDirty = true;
        continue;
      }
      DataMessage rel(kRel);
      rel.set("from", Value(static_cast<long long>(selfIndex)));
      rel.set("color", Value(color));
      rel.set("count", Value(static_cast<long long>(count)));
      sendTo(homeOf(color), rel);
    }
    if (cacheDirty) journalLeasesLocked();
    pending.reset();
  }
};

TokenManager::TokenManager(Dapplet& dapplet, TokenConfig config) {
  std::vector<std::string> notes;
  impl_ = std::make_shared<Impl>(dapplet, config.normalized(&notes));
  impl_->weakSelf = impl_;
  for (const std::string& n : notes) {
    impl_->trace->emit("tokens", "config.clamp", n);
    DAPPLE_LOG(kWarn, kLog) << dapplet.name() << ": " << n;
  }
  impl_->inbox = &dapplet.createInbox("tokens.mgr");
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->clk().notifyAll(impl->cv);
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->clk().notifyAll(impl->cv);
  });
}

TokenManager::~TokenManager() {
  {
    std::scoped_lock lock(impl_->mutex);
    impl_->stopping = true;
    impl_->clk().notifyAll(impl_->cv);
  }
  // Cancel the maintenance timer before tearing the inbox down: cancel()
  // waits out an in-flight tick, so no callback touches impl state after
  // this line.
  impl_->maintTimer.cancel();
  if (impl_->cfg.monitor != nullptr) {
    for (const auto& [key, index] : impl_->watchIndex) {
      impl_->cfg.monitor->unwatch(key);
    }
  }
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef TokenManager::ref() const { return impl_->inbox->ref(); }

void TokenManager::attach(const std::vector<InboxRef>& managers,
                          std::size_t selfIndex, const TokenBag& initial) {
  std::vector<std::pair<TokenColor, std::int64_t>> claims;
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->attached) throw TokenError("token manager already attached");
    impl_->selfIndex = selfIndex;
    impl_->peers.resize(managers.size(), nullptr);
    for (std::size_t i = 0; i < managers.size(); ++i) {
      Outbox& box = impl_->d.createOutbox();
      box.add(managers[i]);
      impl_->peers[i] = &box;
    }
    // Crash recovery: journaled pools and holdings take precedence over the
    // `initial` seeds — re-seeding a restored colour would mint new tokens
    // and break conservation.
    const std::set<TokenColor> restored = impl_->restoreJournalLocked();
    claims = impl_->restoreLeasesLocked();
    for (const auto& [color, count] : initial) {
      if (impl_->homeOf(color) != selfIndex) {
        throw TokenError("colour '" + color + "' is homed at member " +
                         std::to_string(impl_->homeOf(color)) +
                         ", seed it there");
      }
      if (count < 0) throw TokenError("negative seed for '" + color + "'");
      if (restored.count(color) != 0) continue;
      auto& home = impl_->homed[color];
      home.total = count;
      home.free = count;
      impl_->journalHomeLocked(color);
    }
    impl_->attached = true;
    impl_->clk().notifyAll(impl_->cv);  // release a delivery parked by the loop
    // Re-lease every journaled loan under this boot's incarnation: the home
    // retires the dead incarnation's loan and covers the claim from it.
    for (const auto& [color, claim] : claims) {
      DataMessage req(kLeaseReq);
      req.set("from", Value(static_cast<long long>(selfIndex)));
      req.set("color", Value(color));
      req.set("claim", Value(static_cast<long long>(claim)));
      req.set("batch",
              Value(static_cast<long long>(impl_->cfg.creditBatch)));
      req.set("inc",
              Value(static_cast<long long>(impl_->cfg.incarnation)));
      req.set("ref", inboxRefToValue(impl_->inbox->ref()));
      impl_->sendTo(impl_->homeOf(color), req);
    }
    if (!claims.empty()) impl_->armMaintenanceLocked();
    bool homeLoans = false;
    for (const auto& [color, home] : impl_->homed) {
      if (!home.leases.empty()) homeLoans = true;
    }
    if (homeLoans) impl_->armMaintenanceLocked();
  }
  // Failure-detector wiring: a suspect verdict reclaims the member's loans
  // without waiting out the lease.
  if (impl_->cfg.monitor != nullptr) {
    for (std::size_t i = 0; i < managers.size(); ++i) {
      if (i == selfIndex) continue;
      const std::string key =
          "dapple.tok/" + impl_->d.name() + "/" + std::to_string(i);
      {
        std::scoped_lock lock(impl_->mutex);
        impl_->watchIndex[key] = i;
      }
      impl_->cfg.monitor->watch(key, managers[i]);
    }
    std::weak_ptr<Impl> weak = impl_;
    impl_->cfg.monitor->onSuspect(
        [weak](const std::string& key, const InboxRef&) {
          auto impl = weak.lock();
          if (!impl) return;
          std::scoped_lock lock(impl->mutex);
          const auto it = impl->watchIndex.find(key);
          if (it == impl->watchIndex.end()) return;
          impl->memberDownLocked(it->second);
        });
  }
}

std::size_t TokenManager::homeOf(const TokenColor& color) const {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  return impl_->homeOf(color);
}

std::size_t TokenManager::homeOfColor(const TokenColor& color,
                                      std::size_t memberCount) {
  if (memberCount == 0) throw TokenError("empty member list");
  return static_cast<std::size_t>(colorHash(color) % memberCount);
}

void TokenManager::memberDown(std::size_t index) {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  impl_->memberDownLocked(index);
}

void TokenManager::request(const TokenList& wants, Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  if (impl_->pending) {
    throw TokenError("a request is already outstanding on this manager");
  }
  if (wants.empty()) return;

  std::map<TokenColor, std::int64_t> folded;
  for (const TokenRequest& want : wants) {
    if (want.count == 0) continue;
    if (want.count < 0 && want.count != TokenRequest::kAllTokens) {
      throw TokenError("invalid token count");
    }
    folded[want.color] += 0;  // ensure entry
    auto& entry = folded[want.color];
    if (want.count == TokenRequest::kAllTokens ||
        entry == TokenRequest::kAllTokens) {
      entry = TokenRequest::kAllTokens;
    } else {
      entry += want.count;
    }
  }
  if (folded.empty()) return;

  const TimePoint tnow = impl_->now();
  if (impl_->cfg.creditBatch > 0) {
    // Fast path: the whole request covered by live cached credit means a
    // grant with zero network hops.
    bool allCached = true;
    for (const auto& [color, count] : folded) {
      if (count == TokenRequest::kAllTokens) {
        allCached = false;
        break;
      }
      const auto it = impl_->cache.find(color);
      if (it == impl_->cache.end() || it->second.leaseId == 0 ||
          tnow >= it->second.expiresAt || tnow < it->second.recallUntil ||
          it->second.credit < count) {
        allCached = false;
        break;
      }
    }
    if (allCached) {
      for (const auto& [color, count] : folded) {
        auto& e = impl_->cache.at(color);
        e.credit -= count;
        e.heldLeased += count;
      }
      impl_->journalLeasesLocked();
      ++impl_->stats.cacheHits;
      impl_->mCacheHits->inc();
      ++impl_->stats.requestsGranted;
      return;
    }
    ++impl_->stats.cacheMisses;
    impl_->mCacheMisses->inc();
  }

  Impl::PendingRequest req;
  req.reqId = impl_->d.name() + "#" +
              std::to_string(impl_->nextReqSerial++);
  req.ts = impl_->d.clock().tick();
  req.wants = std::move(folded);
  req.startedAt = tnow;
  req.nextProbe = req.startedAt + impl_->cfg.probeDelay;
  impl_->pending = std::move(req);

  for (const auto& [color, count] : impl_->pending->wants) {
    DataMessage msg(kReq);
    msg.set("reqId", Value(impl_->pending->reqId));
    msg.set("from", Value(static_cast<long long>(impl_->selfIndex)));
    msg.set("ts", Value(static_cast<long long>(impl_->pending->ts)));
    msg.set("color", Value(color));
    msg.set("count", Value(static_cast<long long>(count)));
    if (impl_->cfg.creditBatch > 0 && count != TokenRequest::kAllTokens) {
      const auto cit = impl_->cache.find(color);
      const bool recalled =
          cit != impl_->cache.end() && tnow < cit->second.recallUntil;
      if (!recalled) {
        // Ask the home to lend a batch of extra credits with the grant.
        msg.set("lease",
                Value(static_cast<long long>(impl_->cfg.creditBatch)));
        msg.set("inc",
                Value(static_cast<long long>(impl_->cfg.incarnation)));
      }
    }
    impl_->sendTo(impl_->homeOf(color), msg);
  }

  const TimePoint deadline = impl_->now() + timeout;
  while (true) {
    if (impl_->loopDone) {
      impl_->abortPendingLocked();
      throw ShutdownError("token manager stopped");
    }
    auto& p = *impl_->pending;
    // Full grant wins over any concurrently-arrived verdict: if the
    // tokens are all here, the request succeeded.
    if (p.granted.size() == p.wants.size()) break;
    if (!p.error.empty()) {
      const std::string error = p.error;
      impl_->abortPendingLocked();
      throw TokenError(error);
    }
    if (p.deadlocked) {
      ++impl_->stats.requestsDeadlocked;
      impl_->mDenied->inc();
      impl_->trace->emit("tokens", "request.deadlock");
      impl_->abortPendingLocked();
      throw DeadlockError(
          "token managers detected a deadlock involving this request");
    }
    const TimePoint now = impl_->now();
    if (now >= deadline) {
      ++impl_->stats.requestsTimedOut;
      impl_->mDenied->inc();
      impl_->trace->emit("tokens", "request.timeout");
      impl_->abortPendingLocked();
      throw TimeoutError("token request timed out");
    }
    if (now >= p.nextProbe) {
      impl_->sendProbesLocked();
      p.nextProbe = now + impl_->cfg.probeInterval;
    }
    impl_->clk().parkUntil(lock, impl_->cv, std::min(deadline, p.nextProbe));
  }
  bool heldDirty = false, cacheDirty = false;
  for (const auto& [color, count] : impl_->pending->granted) {
    if (impl_->pending->leasedColors.count(color) != 0) {
      impl_->cache[color].heldLeased += count;
      cacheDirty = true;
    } else {
      impl_->held[color] += count;
      heldDirty = true;
    }
  }
  if (heldDirty) impl_->journalHeldLocked();
  if (cacheDirty) impl_->journalLeasesLocked();
  ++impl_->stats.requestsGranted;
  impl_->pending.reset();
}

void TokenManager::release(const TokenList& gives) {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  const TimePoint tnow = impl_->now();
  const auto availableOf = [&](const TokenColor& color) {
    std::int64_t have = 0;
    const auto hit = impl_->held.find(color);
    if (hit != impl_->held.end()) have += hit->second;
    const auto cit = impl_->cache.find(color);
    if (cit != impl_->cache.end()) have += cit->second.heldLeased;
    const auto oit = impl_->orphaned.find(color);
    if (oit != impl_->orphaned.end()) have += oit->second;
    return have;
  };
  // Validate first so the operation is all-or-nothing (paper: "if the
  // tokens specified in tokenList are not in holdsTokens an exception is
  // raised").
  TokenBag toGive;
  for (const TokenRequest& give : gives) {
    if (give.count == TokenRequest::kAllTokens) {
      toGive[give.color] += availableOf(give.color) - toGive[give.color];
    } else if (give.count < 0) {
      throw TokenError("invalid release count");
    } else {
      toGive[give.color] += give.count;
    }
  }
  for (const auto& [color, count] : toGive) {
    const std::int64_t have = availableOf(color);
    if (count > have) {
      throw TokenError("release of " + std::to_string(count) + " '" + color +
                       "' tokens but only " + std::to_string(have) +
                       " are held");
    }
  }
  bool heldDirty = false, cacheDirty = false;
  for (const auto& [color, count] : toGive) {
    if (count == 0) continue;
    std::int64_t remaining = count;
    // 1. Orphaned tokens retire silently: their lease died, so the home's
    //    pool already counts them.
    const auto oit = impl_->orphaned.find(color);
    if (oit != impl_->orphaned.end() && remaining > 0) {
      const std::int64_t n = std::min(remaining, oit->second);
      oit->second -= n;
      remaining -= n;
      if (oit->second == 0) impl_->orphaned.erase(oit);
    }
    // 2. Sub-let tokens return to the cache credit (no messages) — unless
    //    a recall is in force, in which case they go straight home.
    const auto cit = impl_->cache.find(color);
    if (cit != impl_->cache.end() && remaining > 0 &&
        cit->second.heldLeased > 0) {
      Impl::CacheEntry& e = cit->second;
      const std::int64_t n = std::min(remaining, e.heldLeased);
      e.heldLeased -= n;
      remaining -= n;
      if (e.leaseId != 0 && tnow < e.recallUntil) {
        DataMessage ret(kLeaseRet);
        ret.set("from", Value(static_cast<long long>(impl_->selfIndex)));
        ret.set("color", Value(color));
        ret.set("leaseId", Value(static_cast<long long>(e.leaseId)));
        ret.set("count", Value(static_cast<long long>(n)));
        impl_->sendTo(impl_->homeOf(color), ret);
      } else {
        e.credit += n;
      }
      cacheDirty = true;
    }
    // 3. Legacy holdings go back through the home.
    if (remaining > 0) {
      impl_->held[color] -= remaining;
      if (impl_->held[color] == 0) impl_->held.erase(color);
      heldDirty = true;
      const std::size_t home = impl_->homeOf(color);
      if (home == impl_->selfIndex) {
        // Self-homed colours are applied synchronously: routing the release
        // through the loopback would leave a window where the tokens are
        // neither held nor free, so stats (and grants) lag the caller.
        impl_->applyReleaseLocked(impl_->selfIndex, color, remaining);
        continue;
      }
      DataMessage rel(kRel);
      rel.set("from", Value(static_cast<long long>(impl_->selfIndex)));
      rel.set("color", Value(color));
      rel.set("count", Value(static_cast<long long>(remaining)));
      impl_->sendTo(home, rel);
    }
  }
  if (heldDirty) impl_->journalHeldLocked();
  if (cacheDirty) impl_->journalLeasesLocked();
}

void TokenManager::rewire(std::size_t index, const InboxRef& ref) {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  if (index >= impl_->peers.size()) {
    throw TokenError("rewire index " + std::to_string(index) +
                     " out of range");
  }
  impl_->rewireSlotLocked(index, ref);
  if (impl_->cfg.monitor != nullptr && index != impl_->selfIndex) {
    const std::string key =
        "dapple.tok/" + impl_->d.name() + "/" + std::to_string(index);
    impl_->watchIndex[key] = index;
    impl_->cfg.monitor->watch(key, ref);
  }
}

TokenBag TokenManager::totalTokens(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  const std::uint64_t qid = impl_->nextQuerySerial++;
  auto& query = impl_->totalQueries[qid];
  query.repliesPending = impl_->peers.size();
  DataMessage msg(kTotalQ);
  msg.set("qid", Value(static_cast<long long>(qid)));
  msg.set("from", Value(static_cast<long long>(impl_->selfIndex)));
  for (std::size_t i = 0; i < impl_->peers.size(); ++i) {
    impl_->sendTo(i, msg);
  }
  const bool done = impl_->clk().waitFor(lock, impl_->cv, timeout, [&] {
    return impl_->totalQueries.at(qid).repliesPending == 0 ||
           impl_->loopDone;
  }) && !impl_->loopDone;
  TokenBag totals = std::move(impl_->totalQueries.at(qid).totals);
  impl_->totalQueries.erase(qid);
  if (!done) throw TimeoutError("totalTokens query timed out");
  return totals;
}

TokenBag TokenManager::holdsTokens() const {
  std::scoped_lock lock(impl_->mutex);
  TokenBag out = impl_->held;
  for (const auto& [color, e] : impl_->cache) {
    if (e.heldLeased != 0) out[color] += e.heldLeased;
  }
  for (const auto& [color, count] : impl_->orphaned) {
    if (count != 0) out[color] += count;
  }
  return out;
}

TokenBag TokenManager::cachedCredits() const {
  std::scoped_lock lock(impl_->mutex);
  TokenBag out;
  for (const auto& [color, e] : impl_->cache) {
    if (e.credit != 0) out[color] = e.credit;
  }
  return out;
}

TokenBag TokenManager::lentCredits() const {
  std::scoped_lock lock(impl_->mutex);
  TokenBag out;
  for (const auto& [color, home] : impl_->homed) {
    std::int64_t sum = 0;
    for (const auto& [borrower, lease] : home.leases) sum += lease.credits;
    if (sum != 0) out[color] = sum;
  }
  return out;
}

std::vector<std::string> TokenManager::auditHomeLedger() const {
  std::scoped_lock lock(impl_->mutex);
  std::vector<std::string> violations;
  for (const auto& [color, home] : impl_->homed) {
    std::int64_t held = 0;
    for (const auto& [holder, count] : home.holders) held += count;
    std::int64_t lent = 0;
    for (const auto& [borrower, lease] : home.leases) lent += lease.credits;
    if (home.free + held + lent != home.total) {
      violations.push_back(color + ": free=" + std::to_string(home.free) +
                           " held=" + std::to_string(held) +
                           " lent=" + std::to_string(lent) +
                           " != total=" + std::to_string(home.total));
    }
  }
  return violations;
}

void TokenManager::returnCachedCredits() {
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->attached) throw TokenError("token manager not attached");
  bool dirty = false;
  for (auto& [color, e] : impl_->cache) {
    if (e.credit <= 0 || e.leaseId == 0) continue;
    DataMessage ret(kLeaseRet);
    ret.set("from", Value(static_cast<long long>(impl_->selfIndex)));
    ret.set("color", Value(color));
    ret.set("leaseId", Value(static_cast<long long>(e.leaseId)));
    ret.set("count", Value(static_cast<long long>(e.credit)));
    impl_->sendTo(impl_->homeOf(color), ret);
    e.credit = 0;
    dirty = true;
  }
  if (dirty) impl_->journalLeasesLocked();
}

TokenManager::Stats TokenManager::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
