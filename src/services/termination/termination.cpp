#include "dapple/services/termination/termination.hpp"

#include <condition_variable>
#include <mutex>
#include <optional>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kAck = "td.ack";
}  // namespace

struct TerminationDetector::Impl {
  explicit Impl(Dapplet& dapplet) : d(dapplet) {}

  Dapplet& d;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable cv;
  bool loopDone = false;

  bool attached = false;
  std::size_t selfIndex = 0;
  std::size_t rootIndex = 0;
  std::vector<Outbox*> peers;

  // Dijkstra–Scholten node state.
  bool engaged = false;
  bool quiet = true;
  std::optional<std::size_t> parent;
  std::int64_t deficit = 0;
  bool rootTerminated = false;

  Stats stats;

  void sendAck(std::size_t to) {
    DataMessage ack(kAck);
    peers.at(to)->send(ack);
    ++stats.acksSent;
  }

  /// Collapses this node's subtree when it is idle with zero deficit.
  void tryDisengageLocked() {
    if (!engaged || !quiet || deficit != 0) return;
    if (selfIndex == rootIndex) {
      engaged = false;
      rootTerminated = true;
      cv.notify_all();
      return;
    }
    engaged = false;
    if (parent) {
      const std::size_t p = *parent;
      parent.reset();
      sendAck(p);  // the deferred ack of the engaging message
    }
  }

  void dispatch(const Delivery& del) {
    const auto* msg = dynamic_cast<const DataMessage*>(del.message.get());
    if (msg == nullptr || msg->kind() != kAck) return;
    std::scoped_lock lock(mutex);
    --deficit;
    if (deficit < 0) {
      DAPPLE_LOG(kWarn, "td") << d.name() << ": negative deficit";
      deficit = 0;
    }
    tryDisengageLocked();
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();
      dispatch(del);
    }
  }
};

TerminationDetector::TerminationDetector(Dapplet& dapplet)
    : impl_(std::make_shared<Impl>(dapplet)) {
  impl_->inbox = &dapplet.createInbox("td.ctl");
  auto impl = impl_;
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->cv.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->cv.notify_all();
  });
}

TerminationDetector::~TerminationDetector() {
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  std::unique_lock lock(impl_->mutex);
  impl_->cv.wait_for(lock, seconds(5), [&] { return impl_->loopDone; });
}

InboxRef TerminationDetector::ref() const { return impl_->inbox->ref(); }

void TerminationDetector::attach(const std::vector<InboxRef>& members,
                                 std::size_t selfIndex,
                                 std::size_t rootIndex) {
  std::scoped_lock lock(impl_->mutex);
  impl_->selfIndex = selfIndex;
  impl_->rootIndex = rootIndex;
  impl_->peers.resize(members.size(), nullptr);
  for (std::size_t i = 0; i < members.size(); ++i) {
    Outbox& box = impl_->d.createOutbox();
    box.add(members[i]);
    impl_->peers[i] = &box;
  }
  impl_->attached = true;
}

void TerminationDetector::start() {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->selfIndex != impl_->rootIndex) {
    throw SessionError("only the root starts the computation");
  }
  impl_->engaged = true;
  impl_->quiet = false;
  impl_->rootTerminated = false;
  ++impl_->stats.engagements;
}

void TerminationDetector::onSend(std::size_t dest) {
  (void)dest;  // DS needs only the count; dest kept for interface symmetry
  std::scoped_lock lock(impl_->mutex);
  ++impl_->deficit;
}

void TerminationDetector::onReceive(std::size_t src) {
  std::scoped_lock lock(impl_->mutex);
  impl_->quiet = false;
  if (!impl_->engaged) {
    // First message engages this member; its ack is deferred until the
    // member's whole subtree has collapsed.
    impl_->engaged = true;
    impl_->parent = src;
    ++impl_->stats.engagements;
  } else {
    impl_->sendAck(src);
  }
}

void TerminationDetector::onQuiet() {
  std::scoped_lock lock(impl_->mutex);
  impl_->quiet = true;
  impl_->tryDisengageLocked();
}

void TerminationDetector::awaitTermination(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  if (impl_->selfIndex != impl_->rootIndex) {
    throw SessionError("only the root awaits termination");
  }
  if (!impl_->cv.wait_for(lock, timeout, [&] {
        return impl_->rootTerminated || impl_->loopDone;
      })) {
    throw TimeoutError("termination detection timed out");
  }
  if (!impl_->rootTerminated) {
    throw ShutdownError("termination detector stopped");
  }
}

bool TerminationDetector::terminated() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->rootTerminated;
}

TerminationDetector::Stats TerminationDetector::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

}  // namespace dapple
