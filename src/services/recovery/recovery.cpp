#include "dapple/services/recovery/recovery.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#include "dapple/core/dapplet.hpp"
#include "dapple/services/snapshot/snapshot.hpp"
#include "dapple/util/fsio.hpp"

namespace dapple::recovery {

namespace {

constexpr const char* kCkptFile = "state.ckpt";
constexpr const char* kWalFile = "state.wal";
constexpr const char* kIncFile = "incarnation";

std::string readFileOr(const std::string& path, std::string fallback) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fallback;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

}  // namespace

struct DurableState::Impl : std::enable_shared_from_this<Impl> {
  Dapplet& d;
  const Options opts;
  const std::string dir;

  // Memory-only store: durability comes from the WAL + checkpoint pair,
  // not from StateStore's own full-file autosave.
  StateStore store{""};
  std::unique_ptr<WriteAheadLog> wal;

  obs::Counter* mAppends;
  obs::Counter* mWalBytes;
  obs::Counter* mCheckpoints;
  obs::Counter* mCkptBytes;
  obs::Counter* mReplayed;

  /// Serializes checkpoints (explicit, coordinated, auto-compact).
  std::mutex ckptMutex;
  std::atomic<bool> compactPending{false};
  std::atomic<std::uint64_t> lastCkptBytes{0};
  std::atomic<std::uint64_t> checkpoints{0};
  std::uint64_t replayedRecords = 0;

  Impl(Dapplet& dapplet, std::string dirPath, Options options)
      : d(dapplet),
        opts(options),
        dir(std::move(dirPath)),
        mAppends(&d.metricsRegistry().counter("recovery.wal_appends")),
        mWalBytes(&d.metricsRegistry().counter("recovery.wal_bytes")),
        mCheckpoints(&d.metricsRegistry().counter("recovery.checkpoints")),
        mCkptBytes(&d.metricsRegistry().counter("recovery.checkpoint_bytes")),
        mReplayed(&d.metricsRegistry().counter("recovery.replay_records")) {}

  std::string path(const char* file) const { return dir + "/" + file; }

  /// Mutation hook body: runs under the store lock, so WAL order equals
  /// apply order.
  void onMutation(const std::string& key, const Value* value) {
    wal->append(value ? WalRecord::kPut : WalRecord::kErase, key, value,
                d.clock().tick());
    mAppends->inc();
    if (opts.compactAtBytes != 0 && wal->sizeBytes() > opts.compactAtBytes &&
        !compactPending.exchange(true)) {
      // Defer: checkpoint() re-takes the store lock via withSnapshot, so
      // compaction must not run inline here.
      try {
        d.spawn([self = shared_from_this()](std::stop_token) {
          try {
            self->doCheckpoint(self->d.clock().tick());
          } catch (const Error&) {
            // Auto-compaction is opportunistic; the WAL stays valid.
          }
          self->compactPending = false;
        });
      } catch (const Error&) {
        compactPending = false;  // dapplet stopping: skip
      }
    }
  }

  void doCheckpoint(std::uint64_t at) {
    std::scoped_lock ckptLock(ckptMutex);
    // Image + truncate under the store lock: no mutation can land between
    // the snapshot and the WAL reset, so nothing is ever lost to
    // compaction.
    store.withSnapshot([&](const ValueMap& data) {
      ValueMap image;
      image["at"] = Value(static_cast<std::int64_t>(at));
      image["data"] = Value(data);
      const std::string wire =
          Value(std::move(image)).toWire(d.config().wireCodec);
      atomicWriteFile(path(kCkptFile), wire);
      wal->reset();
      lastCkptBytes = wire.size();
      mCkptBytes->inc(wire.size());
    });
    checkpoints.fetch_add(1);
    mCheckpoints->inc();
    d.trace().emit("recovery", "checkpoint",
                   "at=" + std::to_string(at) +
                       " bytes=" + std::to_string(lastCkptBytes.load()));
  }
};

DurableState::DurableState(Dapplet& dapplet, std::string dir, Options opts) {
  std::filesystem::create_directories(dir);
  impl_ = std::make_shared<Impl>(dapplet, std::move(dir), opts);
  auto& im = *impl_;

  // Incarnation: read, bump, persist — the rejoin handshake uses it to
  // order a restart against stale eviction events.
  std::uint64_t prevInc = 0;
  {
    const std::string raw = readFileOr(im.path(kIncFile), "");
    if (raw.size() > 1 && raw[0] == 'u') {
      prevInc = std::strtoull(raw.c_str() + 1, nullptr, 10);
    }
  }
  info_.incarnation = prevInc + 1;
  atomicWriteFile(im.path(kIncFile), "u" + std::to_string(info_.incarnation));

  // Checkpoint image, if any.
  ValueMap image;
  bool hadCkpt = false;
  {
    const std::string raw = readFileOr(im.path(kCkptFile), "");
    if (!raw.empty()) {
      try {
        const Value v = Value::fromWire(raw);
        info_.checkpointAt =
            static_cast<std::uint64_t>(v.at("at").asInt());
        image = v.at("data").asMap();
        hadCkpt = true;
      } catch (const Error& err) {
        // atomicWriteFile makes this unreachable for our own writes, but
        // degrade anyway: recovery falls back to WAL-only replay.
        dapplet.trace().emit("recovery", "checkpoint.corrupt", err.what());
      }
    }
  }

  // WAL tail replay onto the image.  The journal's append codec follows the
  // dapplet's wire codec; replay auto-detects per frame, so a pre-existing
  // journal written under the other codec replays fine.
  im.wal = std::make_unique<WriteAheadLog>(
      im.path(kWalFile),
      WriteAheadLog::Options(opts.fsyncEachAppend,
                             dapplet.config().wireCodec));
  auto replay = im.wal->replayAll();
  std::uint64_t maxLamport = info_.checkpointAt;
  for (auto& rec : replay.records) {
    maxLamport = std::max(maxLamport, rec.lamport);
    if (rec.kind == WalRecord::kPut) {
      image[rec.key] = std::move(rec.value);
    } else {
      image.erase(rec.key);
    }
  }
  info_.replayedRecords = replay.records.size();
  info_.tornTail = replay.tornTail;
  info_.recovered = hadCkpt || !replay.records.empty();
  im.replayedRecords = replay.records.size();
  im.mReplayed->inc(replay.records.size());
  im.store.replaceAll(std::move(image));

  // Journal from here on.  Raw `this` capture is safe: the hook lives
  // inside Impl's own store and cannot outlive Impl.
  Impl* raw = impl_.get();
  im.store.setMutationHook(
      [raw](const std::string& key, const Value* value) {
        raw->onMutation(key, value);
      },
      /*autosaveOnMutate=*/false);

  // A restarted process must not reissue Lamport times it already used.
  im.d.clock().advanceTo(maxLamport);
  dapplet.trace().emit(
      "recovery", replay.tornTail ? "open.torn_tail" : "open",
      "incarnation=" + std::to_string(info_.incarnation) +
          " replayed=" + std::to_string(info_.replayedRecords) +
          " ckpt_at=" + std::to_string(info_.checkpointAt) +
          (replay.tornTail
               ? " truncated=" + std::to_string(replay.truncatedBytes)
               : ""));
}

DurableState::~DurableState() = default;

StateStore& DurableState::store() { return impl_->store; }

void DurableState::checkpoint() {
  impl_->doCheckpoint(impl_->d.clock().tick());
}

void DurableState::checkpointAt(std::uint64_t at) {
  impl_->doCheckpoint(at);
}

DurableState::Stats DurableState::stats() const {
  Stats s;
  s.walAppends = impl_->wal->appendCount();
  s.walBytes = impl_->wal->sizeBytes();
  s.checkpoints = impl_->checkpoints.load();
  s.checkpointBytes = impl_->lastCkptBytes.load();
  s.replayedRecords = impl_->replayedRecords;
  return s;
}

void bindCheckpoint(CheckpointService& service, DurableState& durable) {
  service.onLocalCheckpoint(
      [&durable](std::uint64_t at) { durable.checkpointAt(at); });
}

}  // namespace dapple::recovery
