#include "dapple/services/recovery/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"

namespace dapple::recovery {

namespace {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void encodeRecordInto(WireCodec codec, std::string& scratch,
                      WalRecord::Kind kind, std::uint64_t seq,
                      std::uint64_t lamport, const std::string& key,
                      const Value* value) {
  WireWriter w(codec, scratch);
  w.writeU64(kind);
  w.writeU64(seq);
  w.writeU64(lamport);
  w.writeString(key);
  if (value) {
    value->encode(w);
  } else {
    Value().encode(w);
  }
}

WalRecord decodeRecord(std::string_view payload) {
  WireReader r(payload);
  WalRecord rec;
  const auto kind = r.readU64();
  if (kind > WalRecord::kErase) {
    throw SerializationError("wal: unknown record kind");
  }
  rec.kind = static_cast<WalRecord::Kind>(kind);
  rec.seq = r.readU64();
  rec.lamport = r.readU64();
  rec.key = r.readString();
  rec.value = Value::decode(r);
  return rec;
}

void appendVarint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

/// Parses a LEB128 varint; returns false on truncation/overflow (what a
/// torn binary frame header looks like).
bool parseVarint(std::string_view data, std::size_t& pos,
                 std::uint64_t& out) {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (pos >= data.size()) return false;
    const auto byte = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && byte > 1) return false;
      out = v;
      return true;
    }
  }
  return false;
}

/// Parses the decimal after a leading `u`; returns false on any mismatch
/// (that is what a torn frame header looks like).
bool parseU64Token(std::string_view data, std::size_t& pos,
                   std::uint64_t& out) {
  if (pos >= data.size() || data[pos] != 'u') return false;
  ++pos;
  const std::size_t start = pos;
  std::uint64_t v = 0;
  while (pos < data.size() && data[pos] >= '0' && data[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(data[pos] - '0');
    ++pos;
  }
  if (pos == start) return false;
  if (pos >= data.size() || data[pos] != ' ') return false;
  ++pos;
  out = v;
  return true;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, Options opts)
    : path_(std::move(path)), opts_(opts) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw StateError("wal: cannot open '" + path_ +
                     "': " + std::strerror(errno));
  }
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WriteAheadLog::ReplayResult WriteAheadLog::replayAll() {
  std::scoped_lock lock(mutex_);
  ReplayResult out;

  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = std::move(buf).str();
  }

  std::size_t pos = 0;
  std::size_t lastGood = 0;
  while (pos < data.size()) {
    // Per-frame codec auto-detect: 'u' opens a text frame, the 0xDB
    // preamble a binary one; anything else is a torn tail.  Pre-existing
    // text journals replay transparently under a binary-configured log.
    std::size_t p = pos;
    std::uint64_t len = 0;
    std::uint64_t crc = 0;
    std::size_t frameEnd = 0;
    if (data[pos] == 'u') {
      if (!parseU64Token(data, p, len) || !parseU64Token(data, p, crc)) break;
      if (p + len + 1 > data.size()) break;  // length points past EOF: torn
      if (data[p + len] != '\n') break;
      frameEnd = p + len + 1;
    } else if (static_cast<unsigned char>(data[pos]) ==
               static_cast<unsigned char>(kBinaryPreamble)) {
      ++p;
      if (!parseVarint(data, p, len)) break;
      if (data.size() - p < 8) break;  // torn before the checksum
      crc = 0;
      for (int i = 0; i < 8; ++i) {
        crc |= static_cast<std::uint64_t>(
                   static_cast<unsigned char>(data[p + i]))
               << (8 * i);
      }
      p += 8;
      if (len > data.size() - p) break;  // length points past EOF: torn
      frameEnd = p + len;
    } else {
      break;  // unrecognizable frame byte: torn
    }
    const std::string_view payload(data.data() + p, len);
    if (fnv1a(payload) != crc) break;
    WalRecord rec;
    try {
      rec = decodeRecord(payload);
    } catch (const Error&) {
      break;  // checksum passed but content unparseable — treat as torn
    }
    out.records.push_back(std::move(rec));
    pos = frameEnd;
    lastGood = pos;
  }

  if (lastGood < data.size()) {
    out.tornTail = true;
    out.truncatedBytes = data.size() - lastGood;
    if (::ftruncate(fd_, static_cast<off_t>(lastGood)) != 0) {
      throw StateError("wal: truncate '" + path_ +
                       "' failed: " + std::strerror(errno));
    }
    if (opts_.fsyncEachAppend) ::fsync(fd_);
  }

  bytes_ = lastGood;
  if (!out.records.empty()) nextSeq_ = out.records.back().seq + 1;
  return out;
}

std::uint64_t WriteAheadLog::append(WalRecord::Kind kind,
                                    const std::string& key,
                                    const Value* value,
                                    std::uint64_t lamport) {
  std::scoped_lock lock(mutex_);
  const std::uint64_t seq = nextSeq_++;
  encodeRecordInto(opts_.codec, payloadScratch_, kind, seq, lamport, key,
                   value);
  const std::string& payload = payloadScratch_;
  std::string& frame = frameScratch_;
  frame.clear();
  const std::uint64_t crc = fnv1a(payload);
  if (opts_.codec == WireCodec::kBinary) {
    frame.push_back(kBinaryPreamble);
    appendVarint(frame, payload.size());
    for (int i = 0; i < 8; ++i) {
      frame.push_back(static_cast<char>((crc >> (8 * i)) & 0xff));
    }
    frame.append(payload);
  } else {
    frame.append("u").append(std::to_string(payload.size()));
    frame.append(" u").append(std::to_string(crc)).append(" ");
    frame.append(payload);
    frame.push_back('\n');
  }
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StateError("wal: append to '" + path_ +
                       "' failed: " + std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (opts_.fsyncEachAppend && ::fsync(fd_) != 0) {
    throw StateError("wal: fsync '" + path_ +
                     "' failed: " + std::strerror(errno));
  }
  bytes_ += frame.size();
  ++appends_;
  return seq;
}

void WriteAheadLog::reset() {
  std::scoped_lock lock(mutex_);
  if (::ftruncate(fd_, 0) != 0) {
    throw StateError("wal: truncate '" + path_ +
                     "' failed: " + std::strerror(errno));
  }
  ::fsync(fd_);
  bytes_ = 0;
}

std::uint64_t WriteAheadLog::sizeBytes() const {
  std::scoped_lock lock(mutex_);
  return bytes_;
}

std::uint64_t WriteAheadLog::appendCount() const {
  std::scoped_lock lock(mutex_);
  return appends_;
}

}  // namespace dapple::recovery
