#include "dapple/services/recovery/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "dapple/serial/wire.hpp"
#include "dapple/util/error.hpp"

namespace dapple::recovery {

namespace {

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string encodeRecord(WalRecord::Kind kind, std::uint64_t seq,
                         std::uint64_t lamport, const std::string& key,
                         const Value* value) {
  TextWriter w;
  w.writeU64(kind);
  w.writeU64(seq);
  w.writeU64(lamport);
  w.writeString(key);
  if (value) {
    value->encode(w);
  } else {
    Value().encode(w);
  }
  return std::move(w).str();
}

WalRecord decodeRecord(std::string_view payload) {
  TextReader r(payload);
  WalRecord rec;
  const auto kind = r.readU64();
  if (kind > WalRecord::kErase) {
    throw SerializationError("wal: unknown record kind");
  }
  rec.kind = static_cast<WalRecord::Kind>(kind);
  rec.seq = r.readU64();
  rec.lamport = r.readU64();
  rec.key = r.readString();
  rec.value = Value::decode(r);
  return rec;
}

/// Parses the decimal after a leading `u`; returns false on any mismatch
/// (that is what a torn frame header looks like).
bool parseU64Token(std::string_view data, std::size_t& pos,
                   std::uint64_t& out) {
  if (pos >= data.size() || data[pos] != 'u') return false;
  ++pos;
  const std::size_t start = pos;
  std::uint64_t v = 0;
  while (pos < data.size() && data[pos] >= '0' && data[pos] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(data[pos] - '0');
    ++pos;
  }
  if (pos == start) return false;
  if (pos >= data.size() || data[pos] != ' ') return false;
  ++pos;
  out = v;
  return true;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, Options opts)
    : path_(std::move(path)), opts_(opts) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) {
    throw StateError("wal: cannot open '" + path_ +
                     "': " + std::strerror(errno));
  }
}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

WriteAheadLog::ReplayResult WriteAheadLog::replayAll() {
  std::scoped_lock lock(mutex_);
  ReplayResult out;

  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    data = std::move(buf).str();
  }

  std::size_t pos = 0;
  std::size_t lastGood = 0;
  while (pos < data.size()) {
    std::size_t p = pos;
    std::uint64_t len = 0;
    std::uint64_t crc = 0;
    if (!parseU64Token(data, p, len) || !parseU64Token(data, p, crc)) break;
    if (p + len + 1 > data.size()) break;  // length points past EOF: torn
    const std::string_view payload(data.data() + p, len);
    if (data[p + len] != '\n') break;
    if (fnv1a(payload) != crc) break;
    WalRecord rec;
    try {
      rec = decodeRecord(payload);
    } catch (const Error&) {
      break;  // checksum passed but content unparseable — treat as torn
    }
    out.records.push_back(std::move(rec));
    pos = p + len + 1;
    lastGood = pos;
  }

  if (lastGood < data.size()) {
    out.tornTail = true;
    out.truncatedBytes = data.size() - lastGood;
    if (::ftruncate(fd_, static_cast<off_t>(lastGood)) != 0) {
      throw StateError("wal: truncate '" + path_ +
                       "' failed: " + std::strerror(errno));
    }
    if (opts_.fsyncEachAppend) ::fsync(fd_);
  }

  bytes_ = lastGood;
  if (!out.records.empty()) nextSeq_ = out.records.back().seq + 1;
  return out;
}

std::uint64_t WriteAheadLog::append(WalRecord::Kind kind,
                                    const std::string& key,
                                    const Value* value,
                                    std::uint64_t lamport) {
  std::scoped_lock lock(mutex_);
  const std::uint64_t seq = nextSeq_++;
  const std::string payload = encodeRecord(kind, seq, lamport, key, value);
  std::string frame = "u" + std::to_string(payload.size()) + " u" +
                      std::to_string(fnv1a(payload)) + " " + payload + "\n";
  const char* p = frame.data();
  std::size_t left = frame.size();
  while (left > 0) {
    const ssize_t n = ::write(fd_, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StateError("wal: append to '" + path_ +
                       "' failed: " + std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  if (opts_.fsyncEachAppend && ::fsync(fd_) != 0) {
    throw StateError("wal: fsync '" + path_ +
                     "' failed: " + std::strerror(errno));
  }
  bytes_ += frame.size();
  ++appends_;
  return seq;
}

void WriteAheadLog::reset() {
  std::scoped_lock lock(mutex_);
  if (::ftruncate(fd_, 0) != 0) {
    throw StateError("wal: truncate '" + path_ +
                     "' failed: " + std::strerror(errno));
  }
  ::fsync(fd_);
  bytes_ = 0;
}

std::uint64_t WriteAheadLog::sizeBytes() const {
  std::scoped_lock lock(mutex_);
  return bytes_;
}

std::uint64_t WriteAheadLog::appendCount() const {
  std::scoped_lock lock(mutex_);
  return appends_;
}

}  // namespace dapple::recovery
