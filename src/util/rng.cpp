#include "dapple/util/rng.hpp"

#include <cmath>

namespace dapple {

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  // Inverse-CDF sampling; 1 - u avoids log(0).
  return -mean * std::log(1.0 - uniform01());
}

}  // namespace dapple
