#include "dapple/util/time.hpp"

#include <thread>

namespace dapple {

namespace {

/// Production clock: steady_clock reads and ordinary condvar waits.  The
/// notify members intentionally mirror the raw condition-variable calls so
/// routing through the clock costs one virtual dispatch and nothing else.
class SystemClockSource final : public ClockSource {
 public:
  TimePoint now() const override { return Clock::now(); }

  void sleepFor(Duration d) override { std::this_thread::sleep_for(d); }

  bool waitUntilImpl(std::unique_lock<std::mutex>& lock,
                     std::condition_variable& cv, TimePoint deadline,
                     PredFn pred, void* ctx) override {
    if (deadline == TimePoint::max()) {
      cv.wait(lock, [&] { return pred(ctx); });
      return true;
    }
    return cv.wait_until(lock, deadline, [&] { return pred(ctx); });
  }

  void parkUntil(std::unique_lock<std::mutex>& lock,
                 std::condition_variable& cv, TimePoint deadline) override {
    if (deadline == TimePoint::max()) {
      cv.wait(lock);
    } else {
      cv.wait_until(lock, deadline);
    }
  }

  void notifyOne(std::condition_variable& cv) override { cv.notify_one(); }
  void notifyAll(std::condition_variable& cv) override { cv.notify_all(); }
};

}  // namespace

ClockSource& ClockSource::system() {
  static SystemClockSource instance;
  return instance;
}

}  // namespace dapple
