#include "dapple/util/log.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

namespace dapple::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};

std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

std::function<void(Level, std::string_view)>& sinkRef() {
  static std::function<void(Level, std::string_view)> sink;
  return sink;
}

const char* levelName(Level lvl) {
  switch (lvl) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?????";
}

void defaultSink(Level lvl, std::string_view line) {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
  std::fprintf(stderr, "[%9lld.%06llds %s] %.*s\n",
               static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000), levelName(lvl),
               static_cast<int>(line.size()), line.data());
}

}  // namespace

Level level() noexcept {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

void setLevel(Level lvl) noexcept {
  g_level.store(static_cast<int>(lvl), std::memory_order_relaxed);
}

void setSink(std::function<void(Level, std::string_view)> sink) {
  std::scoped_lock lock(sinkMutex());
  sinkRef() = std::move(sink);
}

void write(Level lvl, std::string_view component, std::string_view text) {
  if (!enabled(lvl)) return;
  std::string line;
  line.reserve(component.size() + text.size() + 3);
  line.append(component);
  line.append(": ");
  line.append(text);
  std::scoped_lock lock(sinkMutex());
  if (sinkRef()) {
    sinkRef()(lvl, line);
  } else {
    defaultSink(lvl, line);
  }
}

}  // namespace dapple::log
