#include "dapple/util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "dapple/util/error.hpp"

namespace dapple {

namespace {

std::string errnoText() { return std::strerror(errno); }

void writeAll(int fd, std::string_view bytes, const std::string& path) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw StateError("fsio: write '" + path + "' failed: " + errnoText());
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

}  // namespace

void fsyncParentDir(const std::string& path) {
  std::filesystem::path dir = std::filesystem::path(path).parent_path();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);  // best effort: some filesystems reject directory fsync
  ::close(fd);
}

void atomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw StateError("fsio: cannot create '" + tmp + "': " + errnoText());
  }
  try {
    writeAll(fd, bytes, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  if (::fsync(fd) != 0) {
    const std::string why = errnoText();
    ::close(fd);
    ::unlink(tmp.c_str());
    throw StateError("fsio: fsync '" + tmp + "' failed: " + why);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errnoText();
    ::unlink(tmp.c_str());
    throw StateError("fsio: rename '" + tmp + "' -> '" + path +
                     "' failed: " + why);
  }
  fsyncParentDir(path);
}

}  // namespace dapple
