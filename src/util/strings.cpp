#include "dapple/util/strings.hpp"

#include <cctype>

namespace dapple {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string toHex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

}  // namespace dapple
