#include "dapple/testkit/virtual_clock.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

namespace dapple::testkit {

namespace {
/// Set for the duration of a registered worker thread's body; decides
/// whether this thread's clocked waits count toward quiescence.
thread_local bool tlsWorker = false;
}  // namespace

/// One thread parked in a clocked wait.  Lives on the waiter's stack; the
/// registry only holds pointers between register/unregister.  `signaled` is
/// the lost-wakeup guard: every wake-up routed through the clock sets it
/// under the registry mutex *before* notifying, and the parked thread's
/// condition-variable predicate checks it, so a notify that fires between
/// "decided to park" and "actually parked" is never lost.
struct Waiter {
  std::condition_variable* cv = nullptr;
  TimePoint deadline = TimePoint::max();
  bool worker = false;
  std::atomic<bool> signaled{false};
};

struct VirtualClock::Impl {
  explicit Impl(Options opts)
      : nowTicks(opts.start.time_since_epoch().count()) {}

  mutable std::mutex m;
  /// Scheduler and settle() park here; poked on every registry change.
  std::condition_variable_any changed;

  std::atomic<Duration::rep> nowTicks;
  std::vector<Waiter*> waiters;
  std::multimap<TimePoint, std::function<void()>> alarms;
  std::size_t workers = 0;
  /// Workers whose spawn was announced but whose thread has not yet run
  /// `beginWorker()`.  While nonzero the system is never quiescent — the
  /// pending thread is about to do real work the clock cannot see.
  std::size_t announced = 0;

  // Declared last: joined first, while the rest of Impl is still alive.
  std::jthread scheduler;

  TimePoint nowTP() const {
    return TimePoint(Duration(nowTicks.load(std::memory_order_acquire)));
  }

  void setNowLocked(TimePoint t) {
    nowTicks.store(t.time_since_epoch().count(), std::memory_order_release);
  }

  /// True when nothing can happen except by time passing: every registered
  /// worker is parked in a clocked wait and no waiter has been woken but
  /// not yet resumed.
  bool quiescentLocked() const {
    if (announced != 0) return false;
    std::size_t parkedWorkers = 0;
    for (const Waiter* w : waiters) {
      if (w->signaled.load(std::memory_order_acquire)) return false;
      if (w->worker) ++parkedWorkers;
    }
    return parkedWorkers == workers;
  }

  /// Earliest pending deadline or alarm; TimePoint::max() when none.
  TimePoint nextEventLocked() const {
    TimePoint next = TimePoint::max();
    for (const Waiter* w : waiters) {
      if (!w->signaled.load(std::memory_order_acquire)) {
        next = std::min(next, w->deadline);
      }
    }
    if (!alarms.empty()) next = std::min(next, alarms.begin()->first);
    return next;
  }

  /// Wakes every waiter whose deadline has been reached.
  void fireDueWaitersLocked() {
    const TimePoint t = nowTP();
    std::vector<std::condition_variable*> cvs;
    for (Waiter* w : waiters) {
      if (w->deadline <= t && !w->signaled.load(std::memory_order_relaxed)) {
        w->signaled.store(true, std::memory_order_release);
        cvs.push_back(w->cv);
      }
    }
    for (std::condition_variable* cv : cvs) cv->notify_all();
  }

  std::vector<std::function<void()>> takeDueAlarmsLocked() {
    std::vector<std::function<void()>> due;
    const TimePoint t = nowTP();
    auto it = alarms.begin();
    while (it != alarms.end() && it->first <= t) {
      due.push_back(std::move(it->second));
      it = alarms.erase(it);
    }
    return due;
  }

  void registerWaiter(Waiter* w) {
    {
      std::scoped_lock lock(m);
      waiters.push_back(w);
    }
    changed.notify_all();
  }

  void unregisterWaiter(Waiter* w) {
    {
      std::scoped_lock lock(m);
      waiters.erase(std::find(waiters.begin(), waiters.end(), w));
    }
    changed.notify_all();
  }

  void markAllOn(std::condition_variable& cv) {
    {
      std::scoped_lock lock(m);
      for (Waiter* w : waiters) {
        if (w->cv == &cv) w->signaled.store(true, std::memory_order_release);
      }
    }
    cv.notify_all();
    changed.notify_all();
  }

  /// One advancement step: jump to the earliest event, wake due waiters,
  /// run due alarms (without the registry lock — they call arbitrary code).
  /// `cap` bounds the jump; returns false when no event is pending.
  bool stepLocked(std::unique_lock<std::mutex>& lock, TimePoint cap) {
    const TimePoint next = nextEventLocked();
    if (next == TimePoint::max()) return false;
    const TimePoint target = std::min(next, cap);
    if (target > nowTP()) setNowLocked(target);
    fireDueWaitersLocked();
    auto due = takeDueAlarmsLocked();
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();
      lock.lock();
    }
    return next <= cap;
  }

  /// Closes a cross-mutex lost-wakeup race: `signaled` is set and the cv
  /// notified without holding the *waiter's* mutex, so a notify can land in
  /// the instant between the waiter's predicate check and its actual park —
  /// and be lost, with nothing ever notifying that cv again.  Re-notifying
  /// every signaled-but-still-registered waiter (holding the registry lock,
  /// which pins the Waiter and its cv) converts that permanent hang into a
  /// bounded retry.
  void renotifySignaledLocked() {
    for (Waiter* w : waiters) {
      if (w->signaled.load(std::memory_order_acquire)) w->cv->notify_all();
    }
  }

  /// One-shot stall diagnostic: a system that stays non-quiescent for tens
  /// of real seconds has a worker stuck outside the clock (a plain mutex or
  /// un-clocked wait), which freezes virtual time and hangs every virtual
  /// timeout.  Dumping the registry makes that hang diagnosable.
  void dumpStallLocked() const {
    std::fprintf(stderr,
                 "[virtual-clock] STALL: non-quiescent for 20s of real time; "
                 "workers=%zu announced=%zu waiters=%zu now=%lld\n",
                 workers, announced, waiters.size(),
                 static_cast<long long>(nowTicks.load()));
    std::size_t parkedWorkers = 0;
    for (const Waiter* w : waiters) {
      if (w->worker) ++parkedWorkers;
      std::fprintf(stderr,
                   "[virtual-clock]   waiter cv=%p worker=%d signaled=%d "
                   "deadline=%lld\n",
                   static_cast<const void*>(w->cv), w->worker ? 1 : 0,
                   w->signaled.load() ? 1 : 0,
                   w->deadline == TimePoint::max()
                       ? -1LL
                       : static_cast<long long>(
                             w->deadline.time_since_epoch().count()));
    }
    std::fprintf(stderr,
                 "[virtual-clock]   parked workers %zu/%zu, alarms=%zu — "
                 "the %zu unparked worker(s) are blocked outside the clock\n",
                 parkedWorkers, workers, alarms.size(),
                 workers - parkedWorkers);
    std::fflush(stderr);
  }

  void schedulerLoop(std::stop_token stop) {
    std::unique_lock lock(m);
    int stuckIters = 0;
    while (!stop.stop_requested()) {
      const bool ready =
          changed.wait_for(lock, stop, std::chrono::milliseconds(10), [&] {
            return quiescentLocked() && nextEventLocked() != TimePoint::max();
          });
      if (stop.stop_requested()) break;
      if (!ready) {
        renotifySignaledLocked();
        // Idle clocks (no workers, nothing due) are fine; only a registered
        // worker that never parks indicates a wedge.  Report once per stall,
        // after ~20s of real time.
        if (workers > 0 && !quiescentLocked()) {
          if (++stuckIters == 2000) dumpStallLocked();
        } else {
          stuckIters = 0;
        }
        continue;
      }
      stuckIters = 0;
      stepLocked(lock, TimePoint::max());
    }
  }
};

VirtualClock::VirtualClock() : VirtualClock(Options{}) {}

VirtualClock::VirtualClock(Options options)
    : impl_(std::make_unique<Impl>(options)) {
  if (options.autoAdvance) {
    impl_->scheduler = std::jthread(
        [impl = impl_.get()](std::stop_token stop) {
          impl->schedulerLoop(stop);
        });
  }
}

VirtualClock::~VirtualClock() {
  if (impl_->scheduler.joinable()) {
    impl_->scheduler.request_stop();
    impl_->changed.notify_all();
  }
}

TimePoint VirtualClock::now() const { return impl_->nowTP(); }

bool VirtualClock::waitUntilImpl(std::unique_lock<std::mutex>& lock,
                                 std::condition_variable& cv,
                                 TimePoint deadline, PredFn pred, void* ctx) {
  for (;;) {
    if (pred(ctx)) return true;
    if (now() >= deadline) return pred(ctx);
    Waiter w;
    w.cv = &cv;
    w.deadline = deadline;
    w.worker = tlsWorker;
    impl_->registerWaiter(&w);
    // `pred`/deadline in the park predicate is belt-and-braces: a stray
    // un-routed notify still makes progress instead of sleeping forever.
    cv.wait(lock, [&] {
      return w.signaled.load(std::memory_order_acquire) || pred(ctx) ||
             now() >= deadline;
    });
    impl_->unregisterWaiter(&w);
  }
}

void VirtualClock::parkUntil(std::unique_lock<std::mutex>& lock,
                             std::condition_variable& cv, TimePoint deadline) {
  if (now() >= deadline) return;
  Waiter w;
  w.cv = &cv;
  w.deadline = deadline;
  w.worker = tlsWorker;
  impl_->registerWaiter(&w);
  cv.wait(lock, [&] {
    return w.signaled.load(std::memory_order_acquire) || now() >= deadline;
  });
  impl_->unregisterWaiter(&w);
}

void VirtualClock::sleepFor(Duration d) {
  std::mutex mx;
  std::condition_variable cv;
  std::unique_lock lock(mx);
  const TimePoint deadline = saturatingDeadline(now(), d);
  while (now() < deadline) parkUntil(lock, cv, deadline);
}

/// Virtual notifyOne deliberately wakes every waiter on the cv: waiters
/// re-check their predicates anyway, and "exactly one" semantics would make
/// wake-up order schedule-dependent — the opposite of what tests want.
void VirtualClock::notifyOne(std::condition_variable& cv) {
  impl_->markAllOn(cv);
}

void VirtualClock::notifyAll(std::condition_variable& cv) {
  impl_->markAllOn(cv);
}

void VirtualClock::interruptAll() {
  std::vector<std::condition_variable*> cvs;
  {
    std::scoped_lock lock(impl_->m);
    for (Waiter* w : impl_->waiters) {
      w->signaled.store(true, std::memory_order_release);
      cvs.push_back(w->cv);
    }
  }
  for (std::condition_variable* cv : cvs) cv->notify_all();
  impl_->changed.notify_all();
}

void VirtualClock::beginWorker() {
  tlsWorker = true;
  {
    std::scoped_lock lock(impl_->m);
    ++impl_->workers;
    if (impl_->announced > 0) --impl_->announced;
  }
  impl_->changed.notify_all();
}

void VirtualClock::announceWorker() {
  {
    std::scoped_lock lock(impl_->m);
    ++impl_->announced;
  }
  impl_->changed.notify_all();
}

void VirtualClock::endWorker() {
  tlsWorker = false;
  {
    std::scoped_lock lock(impl_->m);
    --impl_->workers;
  }
  impl_->changed.notify_all();
}

void VirtualClock::at(TimePoint t, std::function<void()> fn) {
  {
    std::scoped_lock lock(impl_->m);
    impl_->alarms.emplace(t, std::move(fn));
  }
  impl_->changed.notify_all();
}

void VirtualClock::after(Duration d, std::function<void()> fn) {
  at(saturatingDeadline(now(), d), std::move(fn));
}

void VirtualClock::advanceTo(TimePoint t) {
  std::unique_lock lock(impl_->m);
  impl_->renotifySignaledLocked();
  while (impl_->stepLocked(lock, t)) {
  }
  if (t > impl_->nowTP()) {
    impl_->setNowLocked(t);
    impl_->fireDueWaitersLocked();
  }
}

void VirtualClock::advanceBy(Duration d) {
  advanceTo(saturatingDeadline(now(), d));
}

bool VirtualClock::settle(Duration realTimeout) {
  std::unique_lock lock(impl_->m);
  const TimePoint deadline = Clock::now() + realTimeout;  // real time
  while (!impl_->quiescentLocked()) {
    if (Clock::now() >= deadline) return false;
    impl_->renotifySignaledLocked();
    impl_->changed.wait_for(lock, std::chrono::milliseconds(10),
                            [&] { return impl_->quiescentLocked(); });
  }
  return true;
}

std::size_t VirtualClock::workerCount() const {
  std::scoped_lock lock(impl_->m);
  return impl_->workers;
}

}  // namespace dapple::testkit
