#include "dapple/obs/metrics.hpp"

#include <cstdio>
#include <sstream>

#include "dapple/util/error.hpp"

namespace dapple::obs {

namespace {

/// Minimal JSON string escaping — metric names are dotted identifiers, but
/// trace details may carry arbitrary reasons.
void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    throw MetricsError("metric '" + name + "' already exists with another kind");
  }
  Counter& c = counterStore_.emplace_back();
  counters_.emplace(name, &c);
  return c;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    throw MetricsError("metric '" + name + "' already exists with another kind");
  }
  Gauge& g = gaugeStore_.emplace_back();
  gauges_.emplace(name, &g);
  return g;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    throw MetricsError("metric '" + name + "' already exists with another kind");
  }
  Histogram& h = histogramStore_.emplace_back();
  histograms_.emplace(name, &h);
  return h;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  std::scoped_lock lock(mutex_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = h->snapshot();
  }
  return out;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other,
                            const std::string& prefix) {
  for (const auto& [name, v] : other.counters) counters[prefix + name] += v;
  for (const auto& [name, v] : other.gauges) {
    auto [it, inserted] = gauges.emplace(prefix + name, v);
    if (!inserted && v > it->second) it->second = v;
  }
  for (const auto& [name, h] : other.histograms) {
    HistogramSnapshot& mine = histograms[prefix + name];
    mine.count += h.count;
    mine.sum += h.sum;
    if (h.max > mine.max) mine.max = h.max;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      mine.buckets[i] += h.buckets[i];
    }
  }
}

std::string MetricsSnapshot::toText() const {
  std::ostringstream out;
  for (const auto& [name, v] : counters) out << name << " " << v << "\n";
  for (const auto& [name, v] : gauges) out << name << " " << v << "\n";
  for (const auto& [name, h] : histograms) {
    out << name << " count=" << h.count << " mean=" << h.mean()
        << " p50=" << h.quantile(0.5) << " p99=" << h.quantile(0.99)
        << " max=" << h.max << "\n";
  }
  return out.str();
}

std::string MetricsSnapshot::toJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out += ',';
    first = false;
    appendJsonString(out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out += ',';
    first = false;
    appendJsonString(out, name);
    out += ':';
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    appendJsonString(out, name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + std::to_string(h.sum) +
           ",\"max\":" + std::to_string(h.max) +
           ",\"p50\":" + std::to_string(h.quantile(0.5)) +
           ",\"p99\":" + std::to_string(h.quantile(0.99)) + ",\"buckets\":[";
    bool firstBucket = true;
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!firstBucket) out += ',';
      firstBucket = false;
      out += '[' + std::to_string(HistogramSnapshot::bucketUpperBound(i)) +
             ',' + std::to_string(h.buckets[i]) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace dapple::obs
