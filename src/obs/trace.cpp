#include "dapple/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace dapple::obs {

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)), epoch_(Clock::now()) {}

void TraceRing::emit(const char* category, std::string name,
                     std::string detail, std::int64_t a, std::int64_t b) {
  TraceEvent ev;
  ev.atMicros = std::chrono::duration_cast<microseconds>(Clock::now() - epoch_)
                    .count();
  ev.category = category;
  ev.name = std::move(name);
  ev.detail = std::move(detail);
  ev.a = a;
  ev.b = b;
  std::scoped_lock lock(mutex_);
  ev.seq = next_++;
  ring_.push_back(std::move(ev));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<TraceEvent> TraceRing::events() const {
  std::scoped_lock lock(mutex_);
  return {ring_.begin(), ring_.end()};
}

std::uint64_t TraceRing::emitted() const {
  std::scoped_lock lock(mutex_);
  return next_;
}

std::uint64_t TraceRing::overwritten() const {
  std::scoped_lock lock(mutex_);
  return next_ - ring_.size();
}

void TraceRing::clear() {
  std::scoped_lock lock(mutex_);
  ring_.clear();
}

namespace {
void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}
}  // namespace

std::string TraceRing::toJson() const {
  const std::vector<TraceEvent> evs = events();
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) out += ',';
    first = false;
    out += "{\"seq\":" + std::to_string(ev.seq) +
           ",\"at_us\":" + std::to_string(ev.atMicros) + ",\"category\":";
    appendJsonString(out, ev.category);
    out += ",\"name\":";
    appendJsonString(out, ev.name);
    out += ",\"detail\":";
    appendJsonString(out, ev.detail);
    out += ",\"a\":" + std::to_string(ev.a) +
           ",\"b\":" + std::to_string(ev.b) + "}";
  }
  out += "]";
  return out;
}

}  // namespace dapple::obs
