#include "dapple/net/address.hpp"

#include <charconv>

#include "dapple/util/error.hpp"

namespace dapple {

std::string NodeAddress::toString() const {
  std::string out;
  out.reserve(21);
  out += std::to_string((host >> 24) & 0xff);
  out += '.';
  out += std::to_string((host >> 16) & 0xff);
  out += '.';
  out += std::to_string((host >> 8) & 0xff);
  out += '.';
  out += std::to_string(host & 0xff);
  out += ':';
  out += std::to_string(port);
  return out;
}

NodeAddress NodeAddress::parse(std::string_view text) {
  const auto bad = [&] {
    throw AddressError("malformed address '" + std::string(text) + "'");
  };
  NodeAddress addr;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  std::uint32_t host = 0;
  for (int octet = 0; octet < 4; ++octet) {
    unsigned value = 256;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) bad();
    host = (host << 8) | value;
    p = next;
    const char expect = octet < 3 ? '.' : ':';
    if (p >= end || *p != expect) bad();
    ++p;
  }
  unsigned port = 0;
  auto [next, ec] = std::from_chars(p, end, port);
  if (ec != std::errc{} || port > 0xffff || next != end) bad();
  addr.host = host;
  addr.port = static_cast<std::uint16_t>(port);
  return addr;
}

}  // namespace dapple
