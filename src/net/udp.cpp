#include "dapple/net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "dapple/util/error.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {

constexpr const char* kLog = "udp";
constexpr std::size_t kMaxDatagram = 65507;  // UDP/IPv4 payload limit

[[noreturn]] void throwErrno(const char* what) {
  throw NetworkError(std::string(what) + ": " + std::strerror(errno));
}

sockaddr_in toSockaddr(const NodeAddress& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  sa.sin_addr.s_addr = htonl(addr.host);
  return sa;
}

NodeAddress fromSockaddr(const sockaddr_in& sa) {
  return NodeAddress{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

/// Shared across the network's endpoints (wait-free relaxed atomics, same
/// discipline as obs::Counter).
struct UdpNetwork::Counters {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> sendErrors{0};
};

class UdpNetwork::EndpointImpl final : public Endpoint {
 public:
  EndpointImpl(std::uint16_t port, std::shared_ptr<Counters> counters)
      : counters_(std::move(counters)) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd_ < 0) throwErrno("socket");
    sockaddr_in bindAddr{};
    bindAddr.sin_family = AF_INET;
    bindAddr.sin_port = htons(port);
    bindAddr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&bindAddr),
               sizeof bindAddr) != 0) {
      const int err = errno;
      ::close(fd_);
      errno = err;
      throwErrno("bind");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      const int err = errno;
      ::close(fd_);
      errno = err;
      throwErrno("getsockname");
    }
    addr_ = fromSockaddr(bound);
    // A short receive timeout lets the receiver thread poll its stop token.
    timeval tv{};
    tv.tv_sec = 0;
    tv.tv_usec = 50'000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    receiver_ = std::jthread([this](std::stop_token stop) { run(stop); });
  }

  ~EndpointImpl() override { close(); }

  NodeAddress address() const override { return addr_; }

  std::size_t maxDatagramSize() const override { return kMaxDatagram; }

  /// One sendto.  Transient errors are treated as loss, which the reliable
  /// layer above absorbs.  Callers have already checked closed_ and size.
  void sendOne(const NodeAddress& dst, const std::string& payload) {
    const sockaddr_in sa = toSockaddr(dst);
    const ssize_t n =
        ::sendto(fd_, payload.data(), payload.size(), 0,
                 reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    if (n < 0) {
      counters_->sendErrors.fetch_add(1, std::memory_order_relaxed);
      DAPPLE_LOG(kDebug, kLog)
          << "sendto " << dst.toString() << " failed: " << std::strerror(errno);
    } else {
      counters_->sent.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void sendBatch(std::vector<Datagram> batch) override {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return;
    }
#ifdef __linux__
    // One sendmmsg syscall per (up to) kBatch datagrams instead of one
    // sendto each.  Oversize datagrams are counted and skipped — the batch
    // paths (retransmit sweep, ack flush) run on the timer thread, where a
    // throw has nowhere useful to go; loss semantics match a dropped
    // datagram, which the reliable layer absorbs.
    constexpr std::size_t kBatch = 64;
    std::size_t i = 0;
    while (i < batch.size()) {
      sockaddr_in sas[kBatch];
      iovec iovs[kBatch];
      mmsghdr msgs[kBatch];
      std::size_t n = 0;
      while (i < batch.size() && n < kBatch) {
        Datagram& d = batch[i++];
        if (d.payload.size() > kMaxDatagram) {
          // Counted as loss per the sendBatch contract, but an oversize
          // frame is an application bug (the reliable layer's admission
          // check rejects doomed payloads up front), so warn, not debug.
          counters_->sendErrors.fetch_add(1, std::memory_order_relaxed);
          DAPPLE_LOG(kWarn, kLog) << "dropping oversize datagram ("
                                  << d.payload.size() << " > " << kMaxDatagram
                                  << " bytes): counted as loss";
          continue;
        }
        sas[n] = toSockaddr(d.dst);
        iovs[n] = {const_cast<char*>(d.payload.data()), d.payload.size()};
        msgs[n] = mmsghdr{};
        msgs[n].msg_hdr.msg_name = &sas[n];
        msgs[n].msg_hdr.msg_namelen = sizeof sas[n];
        msgs[n].msg_hdr.msg_iov = &iovs[n];
        msgs[n].msg_hdr.msg_iovlen = 1;
        ++n;
      }
      if (n == 0) continue;
      std::size_t done = 0;
      while (done < n) {
        const int sent = ::sendmmsg(fd_, msgs + done,
                                    static_cast<unsigned>(n - done), 0);
        if (sent < 0) {
          if (errno == EINTR) continue;
          // Transient errors are loss; the reliable layer retransmits.
          counters_->sendErrors.fetch_add(n - done,
                                          std::memory_order_relaxed);
          DAPPLE_LOG(kDebug, kLog)
              << "sendmmsg failed: " << std::strerror(errno);
          break;
        }
        counters_->sent.fetch_add(static_cast<std::uint64_t>(sent),
                                  std::memory_order_relaxed);
        done += static_cast<std::size_t>(sent);
      }
    }
#else
    for (Datagram& d : batch) {
      if (d.payload.size() > kMaxDatagram) {
        counters_->sendErrors.fetch_add(1, std::memory_order_relaxed);
        DAPPLE_LOG(kWarn, kLog) << "dropping oversize datagram ("
                                << d.payload.size() << " > " << kMaxDatagram
                                << " bytes): counted as loss";
        continue;
      }
      sendOne(d.dst, d.payload);
    }
#endif
  }

  void setHandler(Handler handler) override {
    std::scoped_lock lock(mutex_);
    handler_ = std::move(handler);
  }

  void close() override {
    {
      std::scoped_lock lock(mutex_);
      if (closed_) return;
      closed_ = true;
      handler_ = nullptr;
    }
    receiver_.request_stop();
    if (receiver_.joinable() &&
        receiver_.get_id() != std::this_thread::get_id()) {
      receiver_.join();
    }
    ::close(fd_);
    fd_ = -1;
  }

 private:
#ifdef __linux__
  void run(std::stop_token stop) {
    // Drain bursts with one recvmmsg syscall into preallocated buffers and
    // hand the handler views into them (zero-copy receive).  MSG_WAITFORONE
    // blocks (honoring SO_RCVTIMEO, which keeps the stop-token poll alive)
    // until at least one datagram lands, then grabs whatever else is queued.
    constexpr std::size_t kBatch = 16;
    std::vector<std::vector<char>> bufs(kBatch,
                                        std::vector<char>(kMaxDatagram));
    sockaddr_in froms[kBatch];
    iovec iovs[kBatch];
    mmsghdr msgs[kBatch];
    while (!stop.stop_requested()) {
      for (std::size_t i = 0; i < kBatch; ++i) {
        iovs[i] = {bufs[i].data(), bufs[i].size()};
        msgs[i] = mmsghdr{};
        msgs[i].msg_hdr.msg_name = &froms[i];
        msgs[i].msg_hdr.msg_namelen = sizeof froms[i];
        msgs[i].msg_hdr.msg_iov = &iovs[i];
        msgs[i].msg_hdr.msg_iovlen = 1;
      }
      const int n = ::recvmmsg(fd_, msgs, kBatch, MSG_WAITFORONE, nullptr);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        if (stop.stop_requested()) break;
        DAPPLE_LOG(kDebug, kLog) << "recvmmsg: " << std::strerror(errno);
        continue;
      }
      Handler handler;
      {
        std::scoped_lock lock(mutex_);
        if (closed_) break;
        handler = handler_;
      }
      if (!handler) continue;
      counters_->received.fetch_add(static_cast<std::uint64_t>(n),
                                    std::memory_order_relaxed);
      for (int i = 0; i < n; ++i) {
        handler(fromSockaddr(froms[i]),
                std::string_view(bufs[i].data(), msgs[i].msg_len));
      }
    }
  }
#else
  void run(std::stop_token stop) {
    std::vector<char> buf(kMaxDatagram);
    while (!stop.stop_requested()) {
      sockaddr_in from{};
      socklen_t fromLen = sizeof from;
      const ssize_t n =
          ::recvfrom(fd_, buf.data(), buf.size(), 0,
                     reinterpret_cast<sockaddr*>(&from), &fromLen);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;
        }
        if (stop.stop_requested()) break;
        DAPPLE_LOG(kDebug, kLog) << "recvfrom: " << std::strerror(errno);
        continue;
      }
      Handler handler;
      {
        std::scoped_lock lock(mutex_);
        if (closed_) break;
        handler = handler_;
      }
      if (handler) {
        counters_->received.fetch_add(1, std::memory_order_relaxed);
        handler(fromSockaddr(from),
                std::string_view(buf.data(), static_cast<std::size_t>(n)));
      }
    }
  }
#endif

  std::shared_ptr<Counters> counters_;
  int fd_ = -1;
  NodeAddress addr_;
  mutable std::mutex mutex_;
  Handler handler_;
  bool closed_ = false;
  std::jthread receiver_;
};

UdpNetwork::UdpNetwork() : counters_(std::make_shared<Counters>()) {}
UdpNetwork::~UdpNetwork() = default;

std::shared_ptr<Endpoint> UdpNetwork::open(std::uint16_t port) {
  return std::make_shared<EndpointImpl>(port, counters_);
}

UdpNetwork::Stats UdpNetwork::stats() const {
  Stats s;
  s.sent = counters_->sent.load(std::memory_order_relaxed);
  s.received = counters_->received.load(std::memory_order_relaxed);
  s.sendErrors = counters_->sendErrors.load(std::memory_order_relaxed);
  return s;
}

obs::MetricsSnapshot UdpNetwork::metrics() const {
  const Stats s = stats();
  obs::MetricsSnapshot snap;
  snap.counters["udp.sent"] = s.sent;
  snap.counters["udp.received"] = s.received;
  snap.counters["udp.send_errors"] = s.sendErrors;
  return snap;
}

}  // namespace dapple
