#include "dapple/net/sim.hpp"

#include <condition_variable>
#include <map>
#include <mutex>
#include <queue>
#include <set>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dapple/util/error.hpp"
#include "dapple/util/log.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "sim";

using HostPair = std::pair<std::uint32_t, std::uint32_t>;

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}
}  // namespace

/// Endpoint attached to a SimNetwork.  Delivery is serialized through the
/// per-endpoint mutex so close() can guarantee no handler runs afterwards.
class SimNetwork::EndpointImpl final
    : public Endpoint,
      public std::enable_shared_from_this<SimNetwork::EndpointImpl> {
 public:
  EndpointImpl(Impl& net, NodeAddress addr) : net_(net), addr_(addr) {}

  NodeAddress address() const override { return addr_; }

  void sendBatch(std::vector<Datagram> batch) override;

  void setHandler(Handler handler) override {
    std::scoped_lock lock(mutex_);
    handler_ = std::move(handler);
  }

  void close() override;

  /// Called by the delivery thread.  Holds the endpoint mutex across the
  /// handler call so close() can guarantee no invocation after it returns.
  /// The handler may call send() on this same endpoint (e.g. to ACK):
  /// send() deliberately takes no endpoint lock (closed_ is atomic).
  void deliver(const NodeAddress& src, std::string_view payload) {
    std::scoped_lock lock(mutex_);
    if (closed_.load(std::memory_order_acquire) || !handler_) return;
    handler_(src, payload);
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

 private:
  Impl& net_;
  const NodeAddress addr_;
  mutable std::mutex mutex_;
  Handler handler_;
  std::atomic<bool> closed_{false};
};

struct SimNetwork::Impl {
  Impl(std::uint64_t seed, const Options& options)
      : rootRng(seed),
        seed(seed),
        timeScale(options.timeScale),
        hashedRandomness(options.hashedLinkRandomness),
        clk(options.clock != nullptr ? options.clock
                                     : &ClockSource::system()) {}

  // ---- shared state, guarded by `mutex` -------------------------------
  mutable std::mutex mutex;
  std::condition_variable wake;
  std::condition_variable quiescent;

  std::unordered_map<NodeAddress, std::weak_ptr<EndpointImpl>> endpoints;
  std::unordered_map<std::uint32_t, std::uint16_t> nextPort;

  LinkParams defaultLink;
  std::map<HostPair, LinkParams> hostLinks;
  std::set<HostPair> partitions;
  std::map<HostPair, Rng> linkRngs;
  Rng rootRng;

  struct Event {
    TimePoint due;
    std::uint64_t hash;  ///< content hash tie-break (0 in sequential mode)
    std::uint64_t seq;
    NodeAddress src;
    NodeAddress dst;
    std::string payload;
    bool operator>(const Event& other) const {
      return std::tie(due, hash, seq) > std::tie(other.due, other.hash,
                                                 other.seq);
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  std::uint64_t nextSeq = 0;

  Stats stats;
  const std::uint64_t seed;
  const double timeScale;
  const bool hashedRandomness;
  ClockSource* const clk;
  /// Hashed mode: ordinal per identical (src, dst, payload) datagram so a
  /// retransmission's fate differs from the original's without depending on
  /// what other traffic interleaved between them.
  std::unordered_map<std::uint64_t, std::uint32_t> occurrences;

  // The delivery thread is last so it is destroyed (joined) first.
  std::jthread worker;

  // ---------------------------------------------------------------------

  Rng& linkRng(HostPair key) {
    auto it = linkRngs.find(key);
    if (it == linkRngs.end()) {
      it = linkRngs.emplace(key, rootRng.split()).first;
    }
    return it->second;
  }

  const LinkParams& linkParams(HostPair key) const {
    const auto it = hostLinks.find(key);
    return it == hostLinks.end() ? defaultLink : it->second;
  }

  void route(const NodeAddress& src, const NodeAddress& dst,
             std::string payload) {
    {
      std::scoped_lock lock(mutex);
      routeLocked(src, dst, std::move(payload));
    }
    clk->notifyAll(wake);
  }

  /// Batched counterpart: every datagram is enqueued under ONE lock
  /// acquisition and the delivery thread is woken once, so a fan-out burst
  /// or retransmission sweep costs O(1) synchronization instead of O(n).
  void routeBatch(const NodeAddress& src, std::vector<Datagram> batch) {
    {
      std::scoped_lock lock(mutex);
      for (Datagram& d : batch) routeLocked(src, d.dst, std::move(d.payload));
    }
    clk->notifyAll(wake);
  }

  /// Loss/duplication/delay decisions + enqueue for one datagram.  Caller
  /// holds `mutex` and wakes the delivery thread afterwards.
  void routeLocked(const NodeAddress& src, const NodeAddress& dst,
                   std::string payload) {
    ++stats.sent;
    const HostPair key{src.host, dst.host};
    if (partitions.count(normalized(key)) != 0) {
      ++stats.dropped;
      return;
    }
    const LinkParams& link = linkParams(key);
    // Sequential mode draws from the shared per-link RNG (historical
    // behaviour, preserved so existing seeded tests replay unchanged);
    // hashed mode derives a private RNG from the datagram's identity so
    // the decision sequence is independent of send interleaving.
    std::uint64_t contentHash = 0;
    Rng hashedRng(0);
    Rng* rng;
    if (hashedRandomness) {
      contentHash = mix64(fnv1a(payload) ^ mix64(src.packed()) ^
                          mix64(mix64(dst.packed())));
      const std::uint32_t ordinal = occurrences[contentHash]++;
      hashedRng = Rng(mix64(seed ^ mix64(contentHash + ordinal)));
      rng = &hashedRng;
    } else {
      rng = &linkRng(key);
    }
    if (rng->chance(link.lossProb)) {
      ++stats.dropped;
      DAPPLE_LOG(kTrace, kLog) << "drop " << src.toString() << " -> "
                               << dst.toString();
      return;
    }
    const int copies = rng->chance(link.dupProb) ? 2 : 1;
    if (copies == 2) ++stats.duplicated;
    for (int i = 0; i < copies; ++i) {
      const auto jitterUs =
          link.jitter.count() > 0
              ? static_cast<std::int64_t>(rng->below(
                    static_cast<std::uint64_t>(link.jitter.count())))
              : 0;
      const double delayUs =
          static_cast<double>(link.delay.count() + jitterUs) * timeScale;
      Event ev;
      ev.due =
          clk->now() + microseconds(static_cast<std::int64_t>(delayUs));
      ev.hash = contentHash;
      ev.seq = nextSeq++;
      ev.src = src;
      ev.dst = dst;
      ev.payload = payload;
      queue.push(std::move(ev));
    }
  }

  static HostPair normalized(HostPair key) {
    return key.first <= key.second ? key
                                   : HostPair{key.second, key.first};
  }

  void run(std::stop_token stop) {
    // Registered as a clock worker: while this thread is parked waiting for
    // the next due datagram, a virtual clock may jump straight to it.
    ClockSource::WorkerScope workerScope(*clk);
    std::unique_lock lock(mutex);
    while (!stop.stop_requested()) {
      if (queue.empty()) {
        clk->notifyAll(quiescent);
        clk->wait(lock, wake, [this, &stop] {
          return stop.stop_requested() || !queue.empty();
        });
        if (stop.stop_requested()) break;
        continue;
      }
      const TimePoint due = queue.top().due;
      const TimePoint now = clk->now();
      if (due > now) {
        clk->waitUntil(lock, wake, due, [this, &stop, due] {
          return stop.stop_requested() ||
                 (!queue.empty() && queue.top().due < due);
        });
        continue;
      }
      // Collect all due events plus their target endpoints under the lock,
      // then deliver without it so handlers may send.
      std::vector<std::pair<Event, std::shared_ptr<EndpointImpl>>> ready;
      while (!queue.empty() && queue.top().due <= now) {
        Event ev = queue.top();
        queue.pop();
        std::shared_ptr<EndpointImpl> target;
        const auto it = endpoints.find(ev.dst);
        if (it != endpoints.end()) target = it->second.lock();
        if (target) {
          ++stats.delivered;
        } else {
          ++stats.undeliverable;
        }
        ready.emplace_back(std::move(ev), std::move(target));
      }
      lock.unlock();
      for (auto& [ev, target] : ready) {
        if (target) target->deliver(ev.src, std::move(ev.payload));
      }
      lock.lock();
    }
  }
};

void SimNetwork::EndpointImpl::sendBatch(std::vector<Datagram> batch) {
  // Lock-free closed check: sends may run from inside deliver()'s handler
  // (ACKs), which already holds the endpoint mutex.
  if (closed_.load(std::memory_order_acquire)) return;
  net_.routeBatch(addr_, std::move(batch));
}

void SimNetwork::EndpointImpl::close() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  {
    // Barrier: wait out any handler currently running in deliver().
    std::scoped_lock lock(mutex_);
    handler_ = nullptr;
  }
  std::scoped_lock netLock(net_.mutex);
  net_.endpoints.erase(addr_);
}

SimNetwork::SimNetwork(std::uint64_t seed, double timeScale)
    : SimNetwork(seed, Options{.timeScale = timeScale}) {}

SimNetwork::SimNetwork(std::uint64_t seed, const Options& options)
    : impl_(std::make_unique<Impl>(seed, options)) {
  // Announce before spawn: a virtual clock must not advance during the
  // window where the delivery thread exists but has not yet registered.
  impl_->clk->announceWorker();
  impl_->worker =
      std::jthread([this](std::stop_token stop) { impl_->run(stop); });
}

SimNetwork::~SimNetwork() {
  impl_->worker.request_stop();
  impl_->clk->notifyAll(impl_->wake);
}

std::shared_ptr<Endpoint> SimNetwork::open(std::uint16_t port) {
  return openAt(1, port);
}

std::shared_ptr<Endpoint> SimNetwork::openAt(std::uint32_t host,
                                             std::uint16_t port) {
  std::scoped_lock lock(impl_->mutex);
  if (port == 0) {
    std::uint16_t& next = impl_->nextPort[host];
    if (next == 0) next = 1024;
    while (impl_->endpoints.count(NodeAddress{host, next}) != 0) ++next;
    port = next++;
  } else if (impl_->endpoints.count(NodeAddress{host, port}) != 0) {
    throw AddressError("sim port " + std::to_string(port) +
                       " already in use on host " + std::to_string(host));
  }
  const NodeAddress addr{host, port};
  auto ep = std::make_shared<EndpointImpl>(*impl_, addr);
  impl_->endpoints[addr] = ep;
  return ep;
}

void SimNetwork::setDefaultLink(const LinkParams& params) {
  std::scoped_lock lock(impl_->mutex);
  impl_->defaultLink = params;
}

void SimNetwork::setHostLink(std::uint32_t srcHost, std::uint32_t dstHost,
                             const LinkParams& params) {
  std::scoped_lock lock(impl_->mutex);
  impl_->hostLinks[{srcHost, dstHost}] = params;
}

void SimNetwork::setHostLinkBetween(std::uint32_t hostA, std::uint32_t hostB,
                                    const LinkParams& params) {
  std::scoped_lock lock(impl_->mutex);
  impl_->hostLinks[{hostA, hostB}] = params;
  impl_->hostLinks[{hostB, hostA}] = params;
}

void SimNetwork::setPartition(std::uint32_t hostA, std::uint32_t hostB,
                              bool partitioned) {
  std::scoped_lock lock(impl_->mutex);
  const HostPair key = Impl::normalized({hostA, hostB});
  if (partitioned) {
    impl_->partitions.insert(key);
  } else {
    impl_->partitions.erase(key);
  }
}

bool SimNetwork::kill(const NodeAddress& addr) {
  // Grab the shared_ptr under the net lock, close outside it: close() takes
  // the endpoint mutex (handler barrier) and then re-takes the net mutex.
  std::shared_ptr<EndpointImpl> target;
  {
    std::scoped_lock lock(impl_->mutex);
    const auto it = impl_->endpoints.find(addr);
    if (it != impl_->endpoints.end()) target = it->second.lock();
  }
  if (!target) return false;
  target->close();
  return true;
}

std::size_t SimNetwork::killHost(std::uint32_t host) {
  std::vector<std::shared_ptr<EndpointImpl>> targets;
  {
    std::scoped_lock lock(impl_->mutex);
    for (const auto& [addr, weak] : impl_->endpoints) {
      if (addr.host != host) continue;
      if (auto ep = weak.lock()) targets.push_back(std::move(ep));
    }
  }
  for (const auto& ep : targets) ep->close();
  return targets.size();
}

SimNetwork::Stats SimNetwork::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

obs::MetricsSnapshot SimNetwork::metrics() const {
  const Stats s = stats();
  obs::MetricsSnapshot snap;
  snap.counters["sim.sent"] = s.sent;
  snap.counters["sim.delivered"] = s.delivered;
  snap.counters["sim.dropped"] = s.dropped;
  snap.counters["sim.duplicated"] = s.duplicated;
  snap.counters["sim.undeliverable"] = s.undeliverable;
  snap.gauges["sim.in_flight"] = static_cast<std::int64_t>(inFlight());
  return snap;
}

std::size_t SimNetwork::inFlight() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->queue.size();
}

bool SimNetwork::awaitQuiescent(Duration timeout) {
  std::unique_lock lock(impl_->mutex);
  return impl_->clk->waitFor(lock, impl_->quiescent, timeout,
                             [this] { return impl_->queue.empty(); });
}

}  // namespace dapple
