#include "dapple/core/session_msgs.hpp"

namespace dapple {

namespace wiredetail {

void encodeStrings(WireWriter& w, const std::vector<std::string>& v) {
  w.beginList(v.size());
  for (const std::string& s : v) w.writeString(s);
}

std::vector<std::string> decodeStrings(WireReader& r) {
  const std::size_t n = r.beginList();
  std::vector<std::string> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(r.readString());
  return out;
}

void encodeRefMap(WireWriter& w, const std::map<std::string, InboxRef>& m) {
  w.beginMap(m.size());
  for (const auto& [name, ref] : m) {
    w.writeString(name);
    ref.encode(w);
  }
}

std::map<std::string, InboxRef> decodeRefMap(WireReader& r) {
  const std::size_t n = r.beginMap();
  std::map<std::string, InboxRef> out;
  for (std::size_t i = 0; i < n; ++i) {
    std::string name = r.readString();
    out.emplace(std::move(name), InboxRef::decode(r));
  }
  return out;
}

namespace {

void encodeBindings(WireWriter& w, const std::vector<Binding>& bindings) {
  w.beginList(bindings.size());
  for (const Binding& b : bindings) {
    w.writeString(b.outboxName);
    w.beginList(b.targets.size());
    for (const InboxRef& ref : b.targets) ref.encode(w);
  }
}

std::vector<Binding> decodeBindings(WireReader& r) {
  const std::size_t n = r.beginList();
  std::vector<Binding> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Binding b;
    b.outboxName = r.readString();
    const std::size_t t = r.beginList();
    b.targets.reserve(t);
    for (std::size_t j = 0; j < t; ++j) b.targets.push_back(InboxRef::decode(r));
    out.push_back(std::move(b));
  }
  return out;
}

}  // namespace
}  // namespace wiredetail

using namespace wiredetail;

void InviteMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(app);
  w.writeString(initiatorName);
  w.writeString(memberName);
  replyTo.encode(w);
  encodeStrings(w, inboxesToCreate);
  encodeStrings(w, readKeys);
  encodeStrings(w, writeKeys);
  params.encode(w);
  livenessRef.encode(w);
}

void InviteMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  app = r.readString();
  initiatorName = r.readString();
  memberName = r.readString();
  replyTo = InboxRef::decode(r);
  inboxesToCreate = decodeStrings(r);
  readKeys = decodeStrings(r);
  writeKeys = decodeStrings(r);
  params = Value::decode(r);
  livenessRef = InboxRef::decode(r);
}

void InviteReplyMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  w.writeBool(accepted);
  w.writeString(reason);
  encodeRefMap(w, inboxRefs);
  livenessRef.encode(w);
}

void InviteReplyMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  accepted = r.readBool();
  reason = r.readString();
  inboxRefs = decodeRefMap(r);
  livenessRef = InboxRef::decode(r);
}

void WireMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  encodeBindings(w, bindings);
}

void WireMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  bindings = decodeBindings(r);
}

void WireReplyMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  w.writeBool(ok);
  w.writeString(reason);
}

void WireReplyMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  ok = r.readBool();
  reason = r.readString();
}

void StartMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  encodeStrings(w, peers);
  params.encode(w);
}

void StartMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  peers = decodeStrings(r);
  params = Value::decode(r);
}

void DoneMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  result.encode(w);
}

void DoneMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  result = Value::decode(r);
}

void UnlinkMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(reason);
}

void UnlinkMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  reason = r.readString();
}

void MemberDownMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  w.writeU64(node);
  w.writeString(reason);
}

void MemberDownMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  node = r.readU64();
  reason = r.readString();
}

void RejoinMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  w.writeU64(incarnation);
  control.encode(w);
  encodeRefMap(w, inboxRefs);
  livenessRef.encode(w);
}

void RejoinMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  incarnation = r.readU64();
  control = InboxRef::decode(r);
  inboxRefs = decodeRefMap(r);
  livenessRef = InboxRef::decode(r);
}

void RejoinAckMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  w.writeU64(incarnation);
  w.writeBool(accepted);
  w.writeString(reason);
}

void RejoinAckMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  incarnation = r.readU64();
  accepted = r.readBool();
  reason = r.readString();
}

void MemberUpMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  w.writeString(memberName);
  w.writeU64(node);
  w.writeU64(incarnation);
}

void MemberUpMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  memberName = r.readString();
  node = r.readU64();
  incarnation = r.readU64();
}

void UnbindMsg::encodeFields(WireWriter& w) const {
  w.writeString(sessionId);
  wiredetail::encodeBindings(w, bindings);
}

void UnbindMsg::decodeFields(WireReader& r) {
  sessionId = r.readString();
  bindings = wiredetail::decodeBindings(r);
}

DAPPLE_REGISTER_MESSAGE(InviteMsg)
DAPPLE_REGISTER_MESSAGE(InviteReplyMsg)
DAPPLE_REGISTER_MESSAGE(WireMsg)
DAPPLE_REGISTER_MESSAGE(WireReplyMsg)
DAPPLE_REGISTER_MESSAGE(StartMsg)
DAPPLE_REGISTER_MESSAGE(DoneMsg)
DAPPLE_REGISTER_MESSAGE(UnlinkMsg)
DAPPLE_REGISTER_MESSAGE(UnbindMsg)
DAPPLE_REGISTER_MESSAGE(MemberDownMsg)
DAPPLE_REGISTER_MESSAGE(RejoinMsg)
DAPPLE_REGISTER_MESSAGE(RejoinAckMsg)
DAPPLE_REGISTER_MESSAGE(MemberUpMsg)

}  // namespace dapple
