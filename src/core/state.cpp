#include "dapple/core/state.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "dapple/util/fsio.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

StateStore::StateStore(std::string filePath, WarnFn warn)
    : filePath_(std::move(filePath)), warn_(std::move(warn)) {
  if (!filePath_.empty() && std::filesystem::exists(filePath_)) {
    load();
  }
}

Value StateStore::get(const std::string& key) const {
  std::scoped_lock lock(mutex_);
  const auto it = data_.find(key);
  if (it == data_.end()) throw StateError("state: missing key '" + key + "'");
  return it->second;
}

Value StateStore::getOr(const std::string& key, Value fallback) const {
  std::scoped_lock lock(mutex_);
  const auto it = data_.find(key);
  return it == data_.end() ? std::move(fallback) : it->second;
}

void StateStore::put(const std::string& key, Value value) {
  std::scoped_lock lock(mutex_);
  auto& slot = data_[key];
  slot = std::move(value);
  afterMutationLocked(key, &slot);
}

bool StateStore::has(const std::string& key) const {
  std::scoped_lock lock(mutex_);
  return data_.count(key) != 0;
}

void StateStore::erase(const std::string& key) {
  std::scoped_lock lock(mutex_);
  data_.erase(key);
  afterMutationLocked(key, nullptr);
}

void StateStore::afterMutationLocked(const std::string& key,
                                     const Value* value) {
  if (hook_) hook_(key, value);
  if (autosaveOnMutate_) saveLocked();
}

void StateStore::setMutationHook(MutationHook hook, bool autosaveOnMutate) {
  std::scoped_lock lock(mutex_);
  hook_ = std::move(hook);
  autosaveOnMutate_ = hook_ ? autosaveOnMutate : true;
}

ValueMap StateStore::snapshot() const {
  std::scoped_lock lock(mutex_);
  return data_;
}

void StateStore::withSnapshot(
    const std::function<void(const ValueMap&)>& fn) const {
  std::scoped_lock lock(mutex_);
  fn(data_);
}

void StateStore::replaceAll(ValueMap data) {
  std::scoped_lock lock(mutex_);
  data_ = std::move(data);
}

std::vector<std::string> StateStore::keys() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [key, value] : data_) out.push_back(key);
  return out;
}

void StateStore::save() const {
  std::scoped_lock lock(mutex_);
  saveLocked();
}

void StateStore::saveLocked() const {
  if (filePath_.empty()) return;
  // Temp file + fsync + rename + directory fsync: a crash at any point
  // leaves either the previous image or the new one, never a torn file.
  atomicWriteFile(filePath_, Value(data_).toWire());
}

void StateStore::load() {
  std::scoped_lock lock(mutex_);
  std::ifstream in(filePath_, std::ios::binary);
  if (!in) throw StateError("state: cannot read '" + filePath_ + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    data_ = Value::fromWire(buf.str()).asMap();
  } catch (const Error& err) {
    // A torn or garbled image (e.g. written by a crashed pre-atomic-save
    // process).  Persistence must degrade, not wedge: move the evidence
    // aside and start empty — the next save writes a clean image.
    const std::string why = std::string("state: corrupt store '") +
                            filePath_ + "' (" + err.what() +
                            "); moved aside to .corrupt, starting empty";
    std::error_code ec;
    std::filesystem::rename(filePath_, filePath_ + ".corrupt", ec);
    data_.clear();
    if (warn_) {
      warn_(why);
    } else {
      DAPPLE_LOG(kWarn, "state") << why;
    }
  }
}

bool AccessSets::interferesWith(const AccessSets& other) const {
  const auto intersects = [](const std::set<std::string>& a,
                             const std::set<std::string>& b) {
    // Walk the smaller set.
    const auto& small = a.size() <= b.size() ? a : b;
    const auto& large = a.size() <= b.size() ? b : a;
    return std::any_of(small.begin(), small.end(), [&large](const auto& k) {
      return large.count(k) != 0;
    });
  };
  // One session's writes against the other's reads or writes, both ways.
  return intersects(writes, other.writes) || intersects(writes, other.reads) ||
         intersects(reads, other.writes);
}

bool InterferenceGuard::tryClaim(const std::string& sessionId,
                                 AccessSets sets) {
  std::scoped_lock lock(mutex_);
  for (const auto& [liveId, liveSets] : active_) {
    if (liveId == sessionId) continue;  // re-claim by the same session
    if (sets.interferesWith(liveSets)) return false;
  }
  active_[sessionId] = std::move(sets);
  return true;
}

void InterferenceGuard::release(const std::string& sessionId) {
  std::scoped_lock lock(mutex_);
  active_.erase(sessionId);
}

std::vector<std::string> InterferenceGuard::active() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(active_.size());
  for (const auto& [id, sets] : active_) out.push_back(id);
  return out;
}

void StateView::checkRead(const std::string& key) const {
  if (sets_.reads.count(key) == 0 && sets_.writes.count(key) == 0) {
    throw StateError("session view: key '" + key + "' is outside this "
                     "session's read set");
  }
}

void StateView::checkWrite(const std::string& key) const {
  if (sets_.writes.count(key) == 0) {
    throw StateError("session view: key '" + key + "' is outside this "
                     "session's write set");
  }
}

Value StateView::get(const std::string& key) const {
  checkRead(key);
  return store_.get(key);
}

Value StateView::getOr(const std::string& key, Value fallback) const {
  checkRead(key);
  return store_.getOr(key, std::move(fallback));
}

void StateView::put(const std::string& key, Value value) {
  checkWrite(key);
  store_.put(key, std::move(value));
}

bool StateView::has(const std::string& key) const {
  checkRead(key);
  return store_.has(key);
}

}  // namespace dapple
