#include <condition_variable>
#include <cstring>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "dapple/core/session.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "session";

/// Reserved state-store key prefix for journaled session metadata
/// (Config::durableSessions).  Roles cannot touch these keys: session
/// access sets go through StateView, which only admits declared keys.
constexpr const char* kJournalPrefix = "dapple.sess/";

AccessSets toSets(const std::vector<std::string>& reads,
                  const std::vector<std::string>& writes) {
  AccessSets sets;
  sets.reads.insert(reads.begin(), reads.end());
  sets.writes.insert(writes.begin(), writes.end());
  return sets;
}

Value stringsToValue(const std::vector<std::string>& v) {
  ValueList out;
  out.reserve(v.size());
  for (const std::string& s : v) out.emplace_back(s);
  return Value(std::move(out));
}

std::vector<std::string> stringsFromValue(const Value& v) {
  std::vector<std::string> out;
  for (const Value& s : v.asList()) out.push_back(s.asString());
  return out;
}
}  // namespace

/// Shared state of one linked session at a member.
struct SessionContext::Record {
  std::string sessionId;
  std::string app;
  std::string memberName;
  std::string initiatorName;
  InboxRef initiatorReply;

  std::map<std::string, Inbox*> inboxes;    // session-local name -> inbox
  std::map<std::string, Outbox*> outboxes;  // session-local name -> outbox
  Outbox* replyOutbox = nullptr;            // bound to initiatorReply

  std::optional<StateView> stateView;
  std::vector<std::string> peers;
  Value memberParams;
  Value sessionParams;
  std::string livenessKey;  // monitor watch key for the initiator ("" = none)

  std::stop_source stopSource;

  std::mutex mutex;  // guards the mutable fields below
  Value result;
  bool started = false;
  bool roleFinished = false;
  bool unlinked = false;
  /// Crash recovery: true while this record is a restarted session waiting
  /// for the initiator's REJOIN verdict; acked flips when it arrives.
  bool rejoinPending = false;
  bool rejoinAcked = false;
};

SessionContext::SessionContext(Dapplet& dapplet, std::shared_ptr<Record> rec)
    : dapplet_(dapplet),
      record_(std::move(rec)),
      sessionId_(record_->sessionId),
      app_(record_->app),
      self_(record_->memberName),
      peers_(record_->peers),
      params_(record_->memberParams) {}

const Value& SessionContext::sessionParams() const {
  return record_->sessionParams;
}

Inbox& SessionContext::inbox(const std::string& name) const {
  const auto it = record_->inboxes.find(name);
  if (it == record_->inboxes.end()) {
    throw AddressError("session " + sessionId_ + ": no inbox '" + name + "'");
  }
  return *it->second;
}

Outbox& SessionContext::outbox(const std::string& name) const {
  const auto it = record_->outboxes.find(name);
  if (it == record_->outboxes.end()) {
    throw AddressError("session " + sessionId_ + ": no outbox '" + name +
                       "'");
  }
  return *it->second;
}

bool SessionContext::hasInbox(const std::string& name) const {
  return record_->inboxes.count(name) != 0;
}

bool SessionContext::hasOutbox(const std::string& name) const {
  return record_->outboxes.count(name) != 0;
}

StateView& SessionContext::state() const {
  if (!record_->stateView) {
    throw StateError("session " + sessionId_ +
                     ": member has no persistent state store");
  }
  return *record_->stateView;
}

std::stop_token SessionContext::stopToken() const {
  return record_->stopSource.get_token();
}

void SessionContext::setResult(Value result) {
  std::scoped_lock lock(record_->mutex);
  record_->result = std::move(result);
}

// ===========================================================================

struct SessionAgent::Impl : std::enable_shared_from_this<SessionAgent::Impl> {
  Impl(Dapplet& dapplet, Config config)
      : d(dapplet),
        cfg(std::move(config)),
        mInvitesAccepted(&d.metricsRegistry().counter("session.invites_accepted")),
        mInvitesRejected(&d.metricsRegistry().counter("session.invites_rejected")),
        mSessionsCompleted(
            &d.metricsRegistry().counter("session.sessions_completed")),
        mSessionsUnlinked(
            &d.metricsRegistry().counter("session.sessions_unlinked")),
        mInitiatorsLost(&d.metricsRegistry().counter("session.initiators_lost")),
        mPeersEvicted(&d.metricsRegistry().counter("session.peers_evicted")),
        mRejoinRequests(
            &d.metricsRegistry().counter("recovery.rejoin_requests")),
        mRejoinAccepted(
            &d.metricsRegistry().counter("recovery.rejoin_accepted")),
        mRejoinRejected(
            &d.metricsRegistry().counter("recovery.rejoin_rejected")),
        mPeersRejoined(&d.metricsRegistry().counter("recovery.peer_rejoined")),
        trace(&d.trace()) {}

  Dapplet& d;
  Config cfg;

  // Counters registered once on the owning dapplet; a Stats struct mirror is
  // kept for the pre-observability stats() accessor.
  obs::Counter* mInvitesAccepted;
  obs::Counter* mInvitesRejected;
  obs::Counter* mSessionsCompleted;
  obs::Counter* mSessionsUnlinked;
  obs::Counter* mInitiatorsLost;
  obs::Counter* mPeersEvicted;
  obs::Counter* mRejoinRequests;
  obs::Counter* mRejoinAccepted;
  obs::Counter* mRejoinRejected;
  obs::Counter* mPeersRejoined;
  obs::TraceRing* trace;

  mutable std::mutex mutex;
  std::condition_variable loopExited;
  bool loopDone = false;
  /// Reactor mode (dapplet configured with runtime.reactor): control
  /// messages are dispatched from an Inbox::onMessage handler and rejoin
  /// retries are an after() chain — no dispatch thread, no retry threads.
  bool reactorMode = false;
  // Set by ~SessionAgent under `journalMutex`: background rejoin workers
  // hold Impl alive past the agent (and past cfg.store, which is only
  // guaranteed to outlive the *agent*), so journal access must stop here.
  std::mutex journalMutex;
  bool closed = false;
  /// Reactor-mode rejoin retry chains in flight, keyed by session id and
  /// guarded by `journalMutex`.  Unlike the legacy spawn workers (joined in
  /// Dapplet::stop), the shared reactor outlives the dapplet by contract, so
  /// every pending step's TimerHandle is retained here for ~SessionAgent to
  /// cancel — otherwise a step firing after teardown would touch the
  /// dangling `d` reference.
  std::map<std::string, Reactor::TimerHandle> rejoinTimers;

  std::map<std::string, RoleFn> roles;
  std::map<std::string, std::shared_ptr<SessionContext::Record>> sessions;
  InterferenceGuard interference;
  Stats stats;

  Inbox* control = nullptr;

  // Cache of outboxes keyed by reply target, reused across sessions so each
  // initiator sees one FIFO stream from this agent.
  std::map<std::uint64_t, Outbox*> replyOutboxes;
  std::mutex replyMutex;

  // -- helpers -----------------------------------------------------------

  /// Sends `msg` to `target` over a cached dedicated outbox.
  void reply(const InboxRef& target, const Message& msg) {
    Outbox* box = nullptr;
    {
      std::scoped_lock lock(replyMutex);
      const std::uint64_t key =
          target.node.packed() * 1000003u + target.localId;
      const auto it = replyOutboxes.find(key);
      if (it != replyOutboxes.end()) {
        box = it->second;
      } else {
        box = &d.createOutbox();
        box->add(target);
        replyOutboxes.emplace(key, box);
      }
    }
    box->send(msg);
  }

  /// Clears a failed cached reply stream so the next reply() can retry
  /// (used by the rejoin retry loop, which must survive transient
  /// delivery failures to the initiator).
  void resetReply(const InboxRef& target) {
    std::scoped_lock lock(replyMutex);
    const std::uint64_t key = target.node.packed() * 1000003u + target.localId;
    const auto it = replyOutboxes.find(key);
    if (it != replyOutboxes.end()) it->second->reset();
  }

  /// How many times a restarted member re-sends its REJOIN before declaring
  /// the initiator unreachable and discarding the journaled session.
  static constexpr int kRejoinAttempts = 8;

  /// Reactor-mode rejoin retry: one send per step, rescheduled through the
  /// timer wheel with the same linear backoff the legacy thread loop uses.
  /// Each step holds Impl alive via shared_from_this, but Impl's `d` is a
  /// plain reference and the shared reactor outlives the dapplet by
  /// contract, so every step re-checks `closed` before touching `d` and the
  /// armed TimerHandle is retained in `rejoinTimers` — ~SessionAgent cancels
  /// it (cancel additionally waits out an in-flight step) so no step can run
  /// once the agent is gone.
  void rejoinRetryStep(std::shared_ptr<SessionContext::Record> rec,
                       RejoinMsg rj, int attempt) {
    const std::string sessionId = rec->sessionId;
    {
      std::scoped_lock lock(journalMutex);
      if (closed) {  // agent destroyed: `d` may be next — never touch it
        rejoinTimers.erase(sessionId);
        return;
      }
    }
    bool settled;
    {
      std::scoped_lock lock(rec->mutex);
      settled = rec->rejoinAcked || rec->unlinked;
    }
    if (settled || attempt >= kRejoinAttempts) {
      {
        std::scoped_lock lock(journalMutex);
        rejoinTimers.erase(sessionId);
        if (closed) return;  // agent destroyed: leave the journal be
      }
      if (settled) return;  // verdict arrived: chain retired
      trace->emit("recovery", "rejoin.giveup", sessionId);
      eraseJournal(sessionId);
      unlinkLocal(rec, true);
      return;
    }
    try {
      reply(rec->initiatorReply, rj);
    } catch (const Error&) {
      resetReply(rec->initiatorReply);
    }
    auto self = shared_from_this();
    const Duration delay = milliseconds(100) * (attempt + 1);
    std::scoped_lock lock(journalMutex);
    if (closed) {  // destroyed while we were sending: do not re-arm
      rejoinTimers.erase(sessionId);
      return;
    }
    rejoinTimers[sessionId] =
        d.after(delay, [self, rec = std::move(rec), rj = std::move(rj),
                        attempt] { self->rejoinRetryStep(rec, rj, attempt + 1); });
  }

  // -- crash-recovery journal (Config::durableSessions) -------------------

  bool journaling() const {
    return cfg.durableSessions && cfg.store != nullptr;
  }

  static std::string journalKey(const std::string& sessionId) {
    return kJournalPrefix + sessionId;
  }

  /// Persists everything a restarted process needs to re-enter the
  /// session: identity, the initiator's reply/liveness refs, the inbox
  /// names to re-create, the declared access sets, and the member params.
  void journalSession(const InviteMsg& m) {
    ValueMap meta;
    meta["app"] = Value(m.app);
    meta["member"] = Value(m.memberName);
    meta["initiator"] = Value(m.initiatorName);
    meta["reply"] = inboxRefToValue(m.replyTo);
    meta["liveness"] = inboxRefToValue(m.livenessRef);
    meta["inboxes"] = stringsToValue(m.inboxesToCreate);
    meta["reads"] = stringsToValue(m.readKeys);
    meta["writes"] = stringsToValue(m.writeKeys);
    meta["params"] = m.params;
    std::scoped_lock lock(journalMutex);
    if (!closed) cfg.store->put(journalKey(m.sessionId), Value(std::move(meta)));
  }

  void eraseJournal(const std::string& sessionId) {
    std::scoped_lock lock(journalMutex);
    if (closed) return;  // the store may already be gone
    if (journaling()) cfg.store->erase(journalKey(sessionId));
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = control->receive();  // throws ShutdownError at stop
      try {
        dispatch(del);
      } catch (const ShutdownError&) {
        throw;
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog)
            << d.name() << ": control dispatch failed: " << e.what();
      }
    }
  }

  void dispatch(const Delivery& del) {
    const Message& m = *del.message;
    if (const auto* invite = dynamic_cast<const InviteMsg*>(&m)) {
      onInvite(*invite);
    } else if (const auto* wire = dynamic_cast<const WireMsg*>(&m)) {
      onWire(*wire);
    } else if (const auto* start = dynamic_cast<const StartMsg*>(&m)) {
      onStart(*start);
    } else if (const auto* unlink = dynamic_cast<const UnlinkMsg*>(&m)) {
      onUnlink(*unlink);
    } else if (const auto* unbind = dynamic_cast<const UnbindMsg*>(&m)) {
      onUnbind(*unbind);
    } else if (const auto* down = dynamic_cast<const MemberDownMsg*>(&m)) {
      onMemberDown(*down);
    } else if (const auto* ack = dynamic_cast<const RejoinAckMsg*>(&m)) {
      onRejoinAck(*ack);
    } else if (const auto* up = dynamic_cast<const MemberUpMsg*>(&m)) {
      onMemberUp(*up);
    } else {
      DAPPLE_LOG(kDebug, kLog) << d.name() << ": unexpected control message "
                               << m.typeName();
    }
  }

  void onInvite(const InviteMsg& m) {
    InviteReplyMsg out;
    out.sessionId = m.sessionId;
    out.memberName = m.memberName;
    {
      std::scoped_lock lock(mutex);
      const auto existing = sessions.find(m.sessionId);
      if (existing != sessions.end()) {
        // Duplicate invite (e.g. initiator retry): re-confirm idempotently.
        out.accepted = true;
        for (const auto& [name, box] : existing->second->inboxes) {
          out.inboxRefs[name] = box->ref();
        }
        if (cfg.monitor != nullptr) out.livenessRef = cfg.monitor->ref();
      } else if (!cfg.acl.empty() && cfg.acl.count(m.initiatorName) == 0) {
        out.accepted = false;
        out.reason = "initiator '" + m.initiatorName +
                     "' is not on the access control list";
        ++stats.invitesRejectedAcl;
        mInvitesRejected->inc();
        trace->emit("session", "invite.reject", out.reason);
      } else if (roles.count(m.app) == 0) {
        out.accepted = false;
        out.reason = "unknown application '" + m.app + "'";
        ++stats.invitesRejectedUnknownApp;
        mInvitesRejected->inc();
        trace->emit("session", "invite.reject", out.reason);
      } else if (!interference.tryClaim(
                     m.sessionId, toSets(m.readKeys, m.writeKeys))) {
        // Paper §3.1: "it is already participating in a session and another
        // concurrent session would cause interference".
        out.accepted = false;
        out.reason = "interference with a concurrent session";
        ++stats.invitesRejectedInterference;
        mInvitesRejected->inc();
        trace->emit("session", "invite.reject",
                    m.sessionId + ": " + out.reason);
      } else {
        auto rec = std::make_shared<SessionContext::Record>();
        rec->sessionId = m.sessionId;
        rec->app = m.app;
        rec->memberName = m.memberName;
        rec->initiatorName = m.initiatorName;
        rec->initiatorReply = m.replyTo;
        rec->memberParams = m.params;
        for (const std::string& name : m.inboxesToCreate) {
          Inbox& box = d.createInbox();
          rec->inboxes[name] = &box;
          out.inboxRefs[name] = box.ref();
        }
        if (cfg.store != nullptr) {
          rec->stateView.emplace(*cfg.store,
                                 toSets(m.readKeys, m.writeKeys));
        }
        if (cfg.monitor != nullptr) {
          out.livenessRef = cfg.monitor->ref();
          if (m.livenessRef.valid()) {
            // Watch the initiator back: if it dies, the session is headless
            // and this member unlinks itself (see the onSuspect hook).
            rec->livenessKey = "init/" + m.sessionId;
            cfg.monitor->watch(rec->livenessKey, m.livenessRef);
          }
        }
        sessions[m.sessionId] = rec;
        out.accepted = true;
        ++stats.invitesAccepted;
        mInvitesAccepted->inc();
        if (journaling()) journalSession(m);
      }
    }
    reply(m.replyTo, out);
  }

  void onWire(const WireMsg& m) {
    WireReplyMsg out;
    out.sessionId = m.sessionId;
    std::shared_ptr<SessionContext::Record> rec;
    {
      std::scoped_lock lock(mutex);
      const auto it = sessions.find(m.sessionId);
      if (it != sessions.end()) rec = it->second;
    }
    if (!rec) {
      out.ok = false;
      out.reason = "unknown session";
      DAPPLE_LOG(kDebug, kLog) << d.name() << ": WIRE for unknown session "
                               << m.sessionId;
      return;  // nowhere to reply without a record
    }
    out.memberName = rec->memberName;
    {
      std::scoped_lock lock(mutex);
      for (const Binding& binding : m.bindings) {
        Outbox*& box = rec->outboxes[binding.outboxName];
        if (box == nullptr) box = &d.createOutbox();
        for (const InboxRef& target : binding.targets) box->add(target);
      }
      out.ok = true;
    }
    reply(rec->initiatorReply, out);
  }

  void onUnbind(const UnbindMsg& m) {
    std::scoped_lock lock(mutex);
    const auto it = sessions.find(m.sessionId);
    if (it == sessions.end()) return;
    auto& rec = it->second;
    for (const Binding& binding : m.bindings) {
      const auto boxIt = rec->outboxes.find(binding.outboxName);
      if (boxIt == rec->outboxes.end()) continue;
      for (const InboxRef& target : binding.targets) {
        try {
          boxIt->second->remove(target);
        } catch (const AddressError&) {
          // Already unbound; shrink is idempotent.
        }
      }
    }
  }

  void onStart(const StartMsg& m) {
    std::shared_ptr<SessionContext::Record> rec;
    RoleFn role;
    {
      std::scoped_lock lock(mutex);
      const auto it = sessions.find(m.sessionId);
      if (it == sessions.end()) {
        DAPPLE_LOG(kDebug, kLog) << d.name() << ": START for unknown session "
                                 << m.sessionId;
        return;
      }
      rec = it->second;
      {
        std::scoped_lock recLock(rec->mutex);
        if (rec->started) return;  // duplicate START
        rec->started = true;
      }
      rec->peers = m.peers;
      rec->sessionParams = m.params;
      role = roles.at(rec->app);
    }
    auto self = shared_from_this();
    d.spawn([self, rec, role](std::stop_token) {
      self->runRole(rec, role);
    });
  }

  void runRole(const std::shared_ptr<SessionContext::Record>& rec,
               const RoleFn& role) {
    SessionContext ctx(d, rec);
    try {
      role(ctx);
    } catch (const ShutdownError&) {
      // Session unlinked (or dapplet stopping) while the role was blocked.
    } catch (const Error& e) {
      DAPPLE_LOG(kWarn, kLog) << d.name() << ": role for session "
                              << rec->sessionId << " failed: " << e.what();
      std::scoped_lock lock(rec->mutex);
      ValueMap err;
      err["error"] = Value(std::string(e.what()));
      rec->result = Value(std::move(err));
    }
    bool sendDone = false;
    {
      std::scoped_lock lock(rec->mutex);
      rec->roleFinished = true;
      sendDone = !rec->unlinked;
    }
    if (sendDone) {
      DoneMsg done;
      done.sessionId = rec->sessionId;
      done.memberName = rec->memberName;
      {
        std::scoped_lock lock(rec->mutex);
        done.result = rec->result;
      }
      try {
        reply(rec->initiatorReply, done);
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog) << d.name() << ": DONE send failed: "
                                << e.what();
      }
      {
        std::scoped_lock lock(mutex);
        ++stats.sessionsCompleted;
      }
      mSessionsCompleted->inc();
      trace->emit("session", "session.done", rec->sessionId);
    }
    maybeCleanup(rec);
  }

  void onUnlink(const UnlinkMsg& m) {
    std::shared_ptr<SessionContext::Record> rec;
    {
      std::scoped_lock lock(mutex);
      const auto it = sessions.find(m.sessionId);
      if (it == sessions.end()) return;
      rec = it->second;
    }
    unlinkLocal(rec, false);
  }

  /// Tears a linked session down from this side: used for UNLINK and when
  /// the session's initiator is declared dead (headless sessions cannot
  /// complete — nobody would collect DONE or send UNLINK).
  void unlinkLocal(const std::shared_ptr<SessionContext::Record>& rec,
                   bool initiatorLost) {
    {
      std::scoped_lock lock(mutex);
      if (sessions.count(rec->sessionId) == 0) return;
      ++stats.sessionsUnlinked;
      if (initiatorLost) ++stats.initiatorsLost;
    }
    mSessionsUnlinked->inc();
    if (initiatorLost) {
      mInitiatorsLost->inc();
      trace->emit("session", "initiator.lost", rec->sessionId);
    }
    {
      std::scoped_lock lock(rec->mutex);
      rec->unlinked = true;
    }
    rec->stopSource.request_stop();
    // Wake any role blocked on a session inbox.
    for (const auto& [name, box] : rec->inboxes) box->close();
    maybeCleanup(rec);
  }

  /// A peer dapplet at `node` crash-stopped: drop this session's bindings to
  /// it, clear the resulting stream failures so survivor channels keep
  /// working, and fail blocked receives fast.  Every session inbox gets one
  /// PeerDownError alert — the agent cannot know which inboxes the dead peer
  /// fed, so roles must treat the error as "session degraded, a peer is
  /// gone" and re-enter receive if they still expect survivor traffic.
  void evictNode(const std::shared_ptr<SessionContext::Record>& rec,
                 const NodeAddress& node, const std::string& reason) {
    std::vector<Outbox*> outboxes;
    {
      std::scoped_lock lock(mutex);
      if (sessions.count(rec->sessionId) == 0) return;  // already unlinked
      for (const auto& [name, box] : rec->outboxes) {
        if (box != nullptr) outboxes.push_back(box);
      }
      ++stats.peersEvicted;
    }
    for (Outbox* box : outboxes) {
      if (box->removeNode(node) > 0) box->reset();
    }
    for (const auto& [name, box] : rec->inboxes) box->raise(reason);
    mPeersEvicted->inc();
    trace->emit("session", "member.evict",
                rec->sessionId + ": " + node.toString() + ": " + reason);
    DAPPLE_LOG(kInfo, kLog) << d.name() << ": session " << rec->sessionId
                            << ": evicted peer at " << node.toString() << " ("
                            << reason << ")";
  }

  void onMemberDown(const MemberDownMsg& m) {
    std::shared_ptr<SessionContext::Record> rec;
    {
      std::scoped_lock lock(mutex);
      const auto it = sessions.find(m.sessionId);
      if (it == sessions.end()) return;
      rec = it->second;
    }
    evictNode(rec, NodeAddress::fromPacked(m.node),
              "member '" + m.memberName + "' down: " + m.reason);
  }

  /// Crash recovery: the evicted peer came back at a new address.  The
  /// accompanying WIRE already re-pointed this member's outboxes; this is
  /// the observable narration of the un-evict.
  void onMemberUp(const MemberUpMsg& m) {
    {
      std::scoped_lock lock(mutex);
      if (sessions.count(m.sessionId) == 0) return;
    }
    mPeersRejoined->inc();
    {
      std::scoped_lock lock(mutex);
      ++stats.peersRejoined;
    }
    trace->emit("recovery", "member.rejoined",
                m.sessionId + ": '" + m.memberName + "' incarnation " +
                    std::to_string(m.incarnation) + " at " +
                    NodeAddress::fromPacked(m.node).toString());
    DAPPLE_LOG(kInfo, kLog) << d.name() << ": session " << m.sessionId
                            << ": member '" << m.memberName
                            << "' rejoined (incarnation " << m.incarnation
                            << ")";
  }

  /// Initiator's verdict on a REJOIN this agent sent from rejoinPersisted.
  void onRejoinAck(const RejoinAckMsg& m) {
    std::shared_ptr<SessionContext::Record> rec;
    {
      std::scoped_lock lock(mutex);
      const auto it = sessions.find(m.sessionId);
      if (it == sessions.end()) return;
      rec = it->second;
    }
    bool fresh = false;
    {
      std::scoped_lock lock(rec->mutex);
      if (!rec->rejoinPending) return;  // not a rejoining record
      fresh = !rec->rejoinAcked;
      if (m.accepted) rec->rejoinAcked = true;
    }
    if (!m.accepted) {
      // The initiator will not have us back (session completed, stale
      // incarnation, ...): discard the journaled session for good.
      if (fresh) {
        mRejoinRejected->inc();
        trace->emit("recovery", "rejoin.rejected",
                    m.sessionId + ": " + m.reason);
      }
      eraseJournal(m.sessionId);
      unlinkLocal(rec, false);
      return;
    }
    if (fresh) {
      mRejoinAccepted->inc();
      trace->emit("recovery", "rejoin.accepted", m.sessionId);
      DAPPLE_LOG(kInfo, kLog) << d.name() << ": session " << m.sessionId
                              << ": rejoin accepted (incarnation "
                              << m.incarnation << ")";
    }
  }

  /// Re-enters every journaled session (see SessionAgent::rejoinPersisted).
  std::vector<std::string> rejoinPersisted() {
    std::vector<std::string> out;
    if (!journaling()) return out;
    for (const std::string& key : cfg.store->keys()) {
      if (key.rfind(kJournalPrefix, 0) != 0) continue;
      const std::string sessionId = key.substr(std::strlen(kJournalPrefix));
      Value meta;
      try {
        meta = cfg.store->get(key);
      } catch (const Error&) {
        continue;
      }
      std::shared_ptr<SessionContext::Record> rec;
      RejoinMsg rj;
      try {
        std::scoped_lock lock(mutex);
        if (sessions.count(sessionId) != 0) continue;
        const std::string app = meta.at("app").asString();
        if (roles.count(app) == 0) {
          trace->emit("recovery", "rejoin.skip",
                      sessionId + ": role '" + app + "' not registered");
          continue;
        }
        rec = std::make_shared<SessionContext::Record>();
        rec->sessionId = sessionId;
        rec->app = app;
        rec->memberName = meta.at("member").asString();
        rec->initiatorName = meta.at("initiator").asString();
        rec->initiatorReply = inboxRefFromValue(meta.at("reply"));
        rec->memberParams = meta.at("params");
        rec->rejoinPending = true;
        const auto sets = toSets(stringsFromValue(meta.at("reads")),
                                 stringsFromValue(meta.at("writes")));
        for (const std::string& name : stringsFromValue(meta.at("inboxes"))) {
          Inbox& box = d.createInbox();
          rec->inboxes[name] = &box;
          rj.inboxRefs[name] = box.ref();
        }
        rec->stateView.emplace(*cfg.store, sets);
        interference.tryClaim(sessionId, sets);  // fresh process: no rivals
        if (cfg.monitor != nullptr) {
          const InboxRef initLive = inboxRefFromValue(meta.at("liveness"));
          if (initLive.valid()) {
            rec->livenessKey = "init/" + sessionId;
            cfg.monitor->watch(rec->livenessKey, initLive);
          }
        }
        sessions[sessionId] = rec;
      } catch (const Error& e) {
        trace->emit("recovery", "rejoin.skip",
                    sessionId + ": bad journal entry: " + e.what());
        continue;
      }
      rj.sessionId = sessionId;
      rj.memberName = rec->memberName;
      rj.incarnation = cfg.incarnation;
      rj.control = control->ref();
      if (cfg.monitor != nullptr) rj.livenessRef = cfg.monitor->ref();
      mRejoinRequests->inc();
      {
        std::scoped_lock lock(mutex);
        ++stats.rejoinsSent;
      }
      trace->emit("recovery", "rejoin.request",
                  sessionId + " incarnation " +
                      std::to_string(cfg.incarnation));
      // Retry until the initiator answers: the restart races MEMBER_DOWN
      // eviction and the initiator may still be mid-broadcast, so one send
      // is not enough.  Backoff is linear and clock-routed (virtual-time
      // safe).  Reactor mode walks the same schedule as a timer chain.
      if (reactorMode) {
        rejoinRetryStep(rec, rj, 0);
      } else {
        auto self = shared_from_this();
        d.spawn([self, rec, rj](std::stop_token st) {
          for (int attempt = 0;
               attempt < kRejoinAttempts && !st.stop_requested(); ++attempt) {
            {
              std::scoped_lock lock(rec->mutex);
              if (rec->rejoinAcked || rec->unlinked) return;
            }
            try {
              self->reply(rec->initiatorReply, rj);
            } catch (const Error&) {
              self->resetReply(rec->initiatorReply);
            }
            self->d.clockSource().sleepFor(milliseconds(100) * (attempt + 1));
          }
          {
            std::scoped_lock lock(rec->mutex);
            if (rec->rejoinAcked || rec->unlinked) return;
          }
          {
            std::scoped_lock lock(self->journalMutex);
            if (self->closed) return;  // agent destroyed: leave the journal be
          }
          // No verdict: the initiator is gone or unreachable.  Give up and
          // discard, as a headless session can never complete.
          self->trace->emit("recovery", "rejoin.giveup", rec->sessionId);
          self->eraseJournal(rec->sessionId);
          self->unlinkLocal(rec, true);
        });
      }
      out.push_back(sessionId);
    }
    return out;
  }

  /// Reliable-stream failure hook: a send stream from this dapplet timed
  /// out.  When it is one of a session's data outboxes, evict the dead node
  /// locally (the initiator's MEMBER_DOWN may lag or never come if the
  /// initiator died too).  When it is a cached reply stream, every session
  /// whose initiator lives at `dst` just lost its head — unlink them.
  void onPeerFailure(const NodeAddress& dst, std::uint64_t outboxId,
                     const std::string& reason) {
    bool isReplyStream = false;
    {
      std::scoped_lock lock(replyMutex);
      for (const auto& [key, box] : replyOutboxes) {
        if (box->id() == outboxId) {
          isReplyStream = true;
          break;
        }
      }
    }
    std::vector<std::shared_ptr<SessionContext::Record>> evict;
    std::vector<std::shared_ptr<SessionContext::Record>> headless;
    {
      std::scoped_lock lock(mutex);
      for (const auto& [id, rec] : sessions) {
        if (isReplyStream) {
          if (rec->initiatorReply.node == dst) headless.push_back(rec);
          continue;
        }
        for (const auto& [name, box] : rec->outboxes) {
          if (box != nullptr && box->id() == outboxId) {
            evict.push_back(rec);
            break;
          }
        }
      }
    }
    for (const auto& rec : evict) {
      evictNode(rec, dst, "stream failure: " + reason);
    }
    for (const auto& rec : headless) unlinkLocal(rec, true);
  }

  /// Destroys the session's ports and forgets it once both (a) it has been
  /// unlinked or its role finished, and (b) no role thread can still touch
  /// the ports.
  void maybeCleanup(const std::shared_ptr<SessionContext::Record>& rec) {
    {
      std::scoped_lock lock(rec->mutex);
      const bool roleDone = rec->roleFinished || !rec->started;
      if (!(rec->unlinked && roleDone)) return;
    }
    {
      std::scoped_lock lock(mutex);
      if (sessions.erase(rec->sessionId) == 0) return;  // already cleaned
      for (const auto& [name, box] : rec->inboxes) d.destroyInbox(*box);
      for (const auto& [name, box] : rec->outboxes) {
        if (box != nullptr) d.destroyOutbox(*box);
      }
      interference.release(rec->sessionId);
      eraseJournal(rec->sessionId);
    }
    if (cfg.monitor != nullptr && !rec->livenessKey.empty()) {
      cfg.monitor->unwatch(rec->livenessKey);
    }
    DAPPLE_LOG(kDebug, kLog) << d.name() << ": session " << rec->sessionId
                             << " unlinked";
  }
};

SessionAgent::SessionAgent(Dapplet& dapplet, Config config)
    : impl_(std::make_shared<Impl>(dapplet, std::move(config))) {
  impl_->control = &dapplet.createInbox(kSessionControlInbox);
  // Failure hooks capture weak_ptrs: the monitor and the dapplet may both
  // outlive this agent, and neither supports callback removal.
  std::weak_ptr<Impl> weak = impl_;
  dapplet.addPeerFailureListener(
      [weak](const NodeAddress& dst, std::uint64_t outboxId,
             const std::string& reason) {
        if (auto impl = weak.lock()) impl->onPeerFailure(dst, outboxId, reason);
      });
  if (impl_->cfg.monitor != nullptr) {
    impl_->cfg.monitor->onSuspect(
        [weak](const std::string& key, const InboxRef&) {
          auto impl = weak.lock();
          if (!impl || key.rfind("init/", 0) != 0) return;
          std::shared_ptr<SessionContext::Record> rec;
          {
            std::scoped_lock lock(impl->mutex);
            const auto it = impl->sessions.find(key.substr(5));
            if (it == impl->sessions.end()) return;
            rec = it->second;
          }
          impl->unlinkLocal(rec, true);
        });
  }
  auto impl = impl_;
  if (dapplet.config().runtime.reactor != nullptr) {
    // Reactor mode: control messages are dispatched straight from the
    // inbox handler strand — same serialization guarantee as the legacy
    // single dispatch thread, zero threads.  (Role functions registered via
    // registerApp still run on spawned threads; they are arbitrary
    // user code and may block.)
    impl_->reactorMode = true;
    impl_->control->onMessage([impl](Delivery del) {
      try {
        impl->dispatch(del);
      } catch (const ShutdownError&) {
        // Dapplet stopping under us; remaining messages drain harmlessly.
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog)
            << impl->d.name() << ": control dispatch failed: " << e.what();
      }
    });
    return;
  }
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->loopExited.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->loopExited.notify_all();
  });
}

SessionAgent::~SessionAgent() {
  // Reactor mode: onMessage(nullptr) is the dispatch barrier — it returns
  // only once any in-flight handler invocation has finished, the same
  // guarantee the loopExited wait below gives for the legacy thread.
  if (impl_->reactorMode) impl_->control->onMessage(nullptr);
  // Close the control inbox so the dispatch loop exits, then wait for it;
  // role threads hold their own shared_ptr to Impl and finish on their own.
  try {
    impl_->d.destroyInbox(kSessionControlInbox);
  } catch (const Error&) {
    // Dapplet already stopped.
  }
  std::unique_lock lock(impl_->mutex);
  if (!impl_->reactorMode) {
    impl_->loopExited.wait_for(lock, seconds(5),
                               [&] { return impl_->loopDone; });
  }
  lock.unlock();
  // Fence off the journal: rejoin retry workers may outlive this agent (and
  // cfg.store only has to outlive the agent, not the dapplet).
  std::map<std::string, Reactor::TimerHandle> rejoinTimers;
  {
    std::scoped_lock gate(impl_->journalMutex);
    impl_->closed = true;
    rejoinTimers.swap(impl_->rejoinTimers);
  }
  // Reactor mode: retire the rejoin retry chains.  `closed` stops any step
  // from re-arming (or touching `d`), and cancel() waits out a step already
  // in flight, so after this loop no chain callback runs again — required
  // because the shared reactor outlives both this agent and the dapplet.
  for (auto& [id, handle] : rejoinTimers) handle.cancel();
}

void SessionAgent::registerApp(const std::string& app, RoleFn role) {
  std::scoped_lock lock(impl_->mutex);
  impl_->roles[app] = std::move(role);
}

InboxRef SessionAgent::controlRef() const { return impl_->control->ref(); }

InterferenceGuard& SessionAgent::guard() { return impl_->interference; }

std::vector<std::string> SessionAgent::activeSessions() const {
  std::scoped_lock lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->sessions.size());
  for (const auto& [id, rec] : impl_->sessions) out.push_back(id);
  return out;
}

SessionAgent::Stats SessionAgent::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

std::vector<std::string> SessionAgent::rejoinPersisted() {
  return impl_->rejoinPersisted();
}

}  // namespace dapple
