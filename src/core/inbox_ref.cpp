#include "dapple/core/inbox_ref.hpp"

#include "dapple/serial/value.hpp"

namespace dapple {

Value inboxRefToValue(const InboxRef& ref) {
  ValueMap map;
  map["node"] = Value(static_cast<long long>(ref.node.packed()));
  map["id"] = Value(static_cast<long long>(ref.localId));
  map["name"] = Value(ref.name);
  return Value(std::move(map));
}

InboxRef inboxRefFromValue(const Value& value) {
  InboxRef ref;
  ref.node = NodeAddress::fromPacked(
      static_cast<std::uint64_t>(value.at("node").asInt()));
  ref.localId = static_cast<std::uint32_t>(value.at("id").asInt());
  ref.name = value.at("name").asString();
  return ref;
}

}  // namespace dapple
