#include <algorithm>
#include <atomic>
#include <mutex>

#include "dapple/core/session.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "initiator";
std::atomic<std::uint64_t> g_sessionCounter{0};
}  // namespace

struct Initiator::Impl {
  explicit Impl(Dapplet& dapplet) : d(dapplet) {}

  Dapplet& d;
  mutable std::mutex mutex;

  struct SessRec {
    std::string app;
    std::vector<MemberPlan> members;
    std::vector<Edge> edges;
    Value params;
    Duration phaseTimeout{seconds(10)};

    Inbox* reply = nullptr;  // per-session reply inbox
    std::map<std::string, Outbox*> memberOutbox;
    std::map<std::string, std::map<std::string, InboxRef>> memberRefs;
    std::map<std::string, Value> doneResults;
  };
  std::map<std::string, std::shared_ptr<SessRec>> sessions;

  std::shared_ptr<SessRec> find(const std::string& sessionId) {
    std::scoped_lock lock(mutex);
    const auto it = sessions.find(sessionId);
    if (it == sessions.end()) {
      throw SessionError("unknown session '" + sessionId + "'");
    }
    return it->second;
  }

  /// Receives from `rec->reply` until `deadline`; throws TimeoutError.
  Delivery receiveBy(SessRec& rec, TimePoint deadline) {
    const auto now = Clock::now();
    if (deadline <= now) throw TimeoutError("session phase timed out");
    return rec.reply->receive(
        std::chrono::duration_cast<Duration>(deadline - now));
  }

  InviteMsg makeInvite(const std::string& sessionId, const std::string& app,
                       const MemberPlan& member, const InboxRef& replyRef) {
    InviteMsg invite;
    invite.sessionId = sessionId;
    invite.app = app;
    invite.initiatorName = d.name();
    invite.memberName = member.name;
    invite.replyTo = replyRef;
    invite.inboxesToCreate = member.inboxes;
    invite.readKeys = member.readKeys;
    invite.writeKeys = member.writeKeys;
    invite.params = member.params;
    return invite;
  }

  /// Groups `edges` into per-member WireMsg bindings using collected refs.
  std::map<std::string, std::vector<Binding>> planBindings(
      const SessRec& rec, const std::vector<Edge>& edges) const {
    std::map<std::string, std::vector<Binding>> out;
    for (const Edge& edge : edges) {
      const auto refsIt = rec.memberRefs.find(edge.toMember);
      if (refsIt == rec.memberRefs.end()) {
        throw SessionError("edge targets unknown member '" + edge.toMember +
                           "'");
      }
      const auto inboxIt = refsIt->second.find(edge.toInbox);
      if (inboxIt == refsIt->second.end()) {
        throw SessionError("member '" + edge.toMember + "' has no inbox '" +
                           edge.toInbox + "'");
      }
      std::vector<Binding>& bindings = out[edge.fromMember];
      auto found = std::find_if(
          bindings.begin(), bindings.end(),
          [&](const Binding& b) { return b.outboxName == edge.fromOutbox; });
      if (found == bindings.end()) {
        bindings.push_back(Binding{edge.fromOutbox, {}});
        found = bindings.end() - 1;
      }
      found->targets.push_back(inboxIt->second);
    }
    return out;
  }

  void destroy(const std::string& sessionId,
               const std::shared_ptr<SessRec>& rec) {
    {
      std::scoped_lock lock(mutex);
      sessions.erase(sessionId);
    }
    for (auto& [name, box] : rec->memberOutbox) d.destroyOutbox(*box);
    if (rec->reply != nullptr) d.destroyInbox(*rec->reply);
  }
};

Initiator::Initiator(Dapplet& dapplet)
    : impl_(std::make_unique<Impl>(dapplet)) {}

Initiator::~Initiator() = default;

Initiator::MemberPlan Initiator::member(const Directory& directory,
                                        const std::string& name,
                                        std::vector<std::string> inboxes,
                                        Value params) {
  MemberPlan plan;
  plan.name = name;
  plan.control = directory.lookup(name);
  plan.inboxes = std::move(inboxes);
  plan.params = std::move(params);
  return plan;
}

Initiator::Result Initiator::establish(const Plan& plan) {
  Dapplet& d = impl_->d;
  Result result;
  result.sessionId =
      d.name() + "-" + std::to_string(g_sessionCounter.fetch_add(1)) + "-" +
      std::to_string(d.id() & 0xffff);

  auto rec = std::make_shared<Impl::SessRec>();
  rec->app = plan.app;
  rec->members = plan.members;
  rec->edges = plan.edges;
  rec->params = plan.params;
  rec->phaseTimeout = plan.phaseTimeout;
  rec->reply = &d.createInbox();

  {
    std::scoped_lock lock(impl_->mutex);
    impl_->sessions[result.sessionId] = rec;
  }

  // ---- Phase 1: INVITE --------------------------------------------------
  for (const MemberPlan& member : plan.members) {
    Outbox& box = d.createOutbox();
    box.add(member.control);
    rec->memberOutbox[member.name] = &box;
    InviteMsg invite =
        impl_->makeInvite(result.sessionId, plan.app, member,
                          rec->reply->ref());
    box.send(invite);
  }

  const TimePoint inviteDeadline = Clock::now() + plan.phaseTimeout;
  std::size_t replies = 0;
  try {
    while (replies < plan.members.size()) {
      Delivery del = impl_->receiveBy(*rec, inviteDeadline);
      const auto* reply = dynamic_cast<const InviteReplyMsg*>(del.message.get());
      if (reply == nullptr || reply->sessionId != result.sessionId) continue;
      ++replies;
      if (reply->accepted) {
        rec->memberRefs[reply->memberName] = reply->inboxRefs;
      } else {
        result.rejections[reply->memberName] = reply->reason;
      }
    }
  } catch (const TimeoutError&) {
    for (const MemberPlan& member : plan.members) {
      if (rec->memberRefs.count(member.name) == 0 &&
          result.rejections.count(member.name) == 0) {
        result.rejections[member.name] = "no reply (timeout)";
      }
    }
  }
  if (!result.rejections.empty()) {
    // Paper §3.1 leaves the initiator's reaction open; we roll back.
    UnlinkMsg abortMsg;
    abortMsg.sessionId = result.sessionId;
    abortMsg.reason = "session aborted during setup";
    for (const auto& [name, refs] : rec->memberRefs) {
      rec->memberOutbox.at(name)->send(abortMsg);
    }
    impl_->destroy(result.sessionId, rec);
    result.ok = false;
    return result;
  }

  // ---- Phase 2: WIRE ------------------------------------------------------
  auto bindingPlan = impl_->planBindings(*rec, plan.edges);
  for (const MemberPlan& member : plan.members) {
    WireMsg wire;
    wire.sessionId = result.sessionId;
    const auto it = bindingPlan.find(member.name);
    if (it != bindingPlan.end()) wire.bindings = it->second;
    rec->memberOutbox.at(member.name)->send(wire);
  }
  const TimePoint wireDeadline = Clock::now() + plan.phaseTimeout;
  std::size_t wired = 0;
  try {
    while (wired < plan.members.size()) {
      Delivery del = impl_->receiveBy(*rec, wireDeadline);
      const auto* reply = dynamic_cast<const WireReplyMsg*>(del.message.get());
      if (reply == nullptr || reply->sessionId != result.sessionId) continue;
      if (!reply->ok) {
        result.rejections[reply->memberName] = reply->reason;
      }
      ++wired;
    }
  } catch (const TimeoutError&) {
    result.rejections["(wire)"] = "wiring timed out";
  }
  if (!result.rejections.empty()) {
    UnlinkMsg abortMsg;
    abortMsg.sessionId = result.sessionId;
    abortMsg.reason = "session aborted during wiring";
    for (auto& [name, box] : rec->memberOutbox) box->send(abortMsg);
    impl_->destroy(result.sessionId, rec);
    result.ok = false;
    return result;
  }

  // ---- Phase 3: START -----------------------------------------------------
  StartMsg start;
  start.sessionId = result.sessionId;
  for (const MemberPlan& member : plan.members) {
    start.peers.push_back(member.name);
  }
  start.params = plan.params;
  for (auto& [name, box] : rec->memberOutbox) box->send(start);

  result.ok = true;
  return result;
}

std::map<std::string, Value> Initiator::awaitCompletion(
    const std::string& sessionId, Duration timeout) {
  auto rec = impl_->find(sessionId);
  const TimePoint deadline = Clock::now() + timeout;
  while (rec->doneResults.size() < rec->members.size()) {
    Delivery del = impl_->receiveBy(*rec, deadline);  // throws TimeoutError
    const auto* done = dynamic_cast<const DoneMsg*>(del.message.get());
    if (done == nullptr || done->sessionId != sessionId) continue;
    rec->doneResults[done->memberName] = done->result;
  }
  return rec->doneResults;
}

void Initiator::terminate(const std::string& sessionId,
                          const std::string& reason) {
  std::shared_ptr<Impl::SessRec> rec;
  {
    std::scoped_lock lock(impl_->mutex);
    const auto it = impl_->sessions.find(sessionId);
    if (it == impl_->sessions.end()) return;  // idempotent
    rec = it->second;
  }
  UnlinkMsg unlink;
  unlink.sessionId = sessionId;
  unlink.reason = reason;
  for (auto& [name, box] : rec->memberOutbox) {
    try {
      box->send(unlink);
    } catch (const Error& e) {
      DAPPLE_LOG(kDebug, kLog) << "unlink to " << name
                               << " failed: " << e.what();
    }
  }
  impl_->d.flush(seconds(2));
  impl_->destroy(sessionId, rec);
}

bool Initiator::addMember(const std::string& sessionId,
                          const MemberPlan& member,
                          const std::vector<Edge>& newEdges,
                          Duration timeout) {
  auto rec = impl_->find(sessionId);
  Dapplet& d = impl_->d;

  Outbox& box = d.createOutbox();
  box.add(member.control);
  InviteMsg invite = impl_->makeInvite(sessionId, rec->app, member,
                                       rec->reply->ref());
  box.send(invite);

  const TimePoint deadline = Clock::now() + timeout;
  bool accepted = false;
  try {
    while (true) {
      Delivery del = impl_->receiveBy(*rec, deadline);
      if (const auto* done = dynamic_cast<const DoneMsg*>(del.message.get());
          done != nullptr && done->sessionId == sessionId) {
        rec->doneResults[done->memberName] = done->result;  // stash
        continue;
      }
      const auto* reply = dynamic_cast<const InviteReplyMsg*>(del.message.get());
      if (reply == nullptr || reply->sessionId != sessionId ||
          reply->memberName != member.name) {
        continue;
      }
      if (reply->accepted) {
        rec->memberRefs[member.name] = reply->inboxRefs;
        accepted = true;
      }
      break;
    }
  } catch (const TimeoutError&) {
  }
  if (!accepted) {
    d.destroyOutbox(box);
    return false;
  }
  rec->memberOutbox[member.name] = &box;
  rec->members.push_back(member);

  // Wire the new edges (existing members get incremental WireMsgs).
  auto bindingPlan = impl_->planBindings(*rec, newEdges);
  std::size_t expectWired = 0;
  for (const auto& [target, bindings] : bindingPlan) {
    WireMsg wire;
    wire.sessionId = sessionId;
    wire.bindings = bindings;
    rec->memberOutbox.at(target)->send(wire);
    ++expectWired;
  }
  // New member must always be wired (possibly with zero bindings) before
  // START so the session protocol stays uniform.
  if (bindingPlan.count(member.name) == 0) {
    WireMsg wire;
    wire.sessionId = sessionId;
    rec->memberOutbox.at(member.name)->send(wire);
    ++expectWired;
  }
  std::size_t wired = 0;
  try {
    while (wired < expectWired) {
      Delivery del = impl_->receiveBy(*rec, deadline);
      if (const auto* done = dynamic_cast<const DoneMsg*>(del.message.get());
          done != nullptr && done->sessionId == sessionId) {
        rec->doneResults[done->memberName] = done->result;
        continue;
      }
      const auto* reply = dynamic_cast<const WireReplyMsg*>(del.message.get());
      if (reply == nullptr || reply->sessionId != sessionId) continue;
      ++wired;
    }
  } catch (const TimeoutError&) {
    return false;
  }
  for (const Edge& edge : newEdges) rec->edges.push_back(edge);

  StartMsg start;
  start.sessionId = sessionId;
  for (const MemberPlan& m : rec->members) start.peers.push_back(m.name);
  start.params = rec->params;
  rec->memberOutbox.at(member.name)->send(start);
  return true;
}

void Initiator::removeMember(const std::string& sessionId,
                             const std::string& member) {
  auto rec = impl_->find(sessionId);
  Dapplet& d = impl_->d;

  // Drop every binding that targets the departing member's inboxes.
  const auto refsIt = rec->memberRefs.find(member);
  if (refsIt != rec->memberRefs.end()) {
    std::map<std::string, std::vector<Binding>> unbinds;
    for (const Edge& edge : rec->edges) {
      if (edge.toMember != member || edge.fromMember == member) continue;
      const auto inboxIt = refsIt->second.find(edge.toInbox);
      if (inboxIt == refsIt->second.end()) continue;
      std::vector<Binding>& bindings = unbinds[edge.fromMember];
      auto found = std::find_if(
          bindings.begin(), bindings.end(),
          [&](const Binding& b) { return b.outboxName == edge.fromOutbox; });
      if (found == bindings.end()) {
        bindings.push_back(Binding{edge.fromOutbox, {}});
        found = bindings.end() - 1;
      }
      found->targets.push_back(inboxIt->second);
    }
    for (const auto& [target, bindings] : unbinds) {
      const auto boxIt = rec->memberOutbox.find(target);
      if (boxIt == rec->memberOutbox.end()) continue;
      UnbindMsg unbind;
      unbind.sessionId = sessionId;
      unbind.bindings = bindings;
      boxIt->second->send(unbind);
    }
  }

  const auto boxIt = rec->memberOutbox.find(member);
  if (boxIt != rec->memberOutbox.end()) {
    UnlinkMsg unlink;
    unlink.sessionId = sessionId;
    unlink.reason = "removed from session";
    boxIt->second->send(unlink);
    d.flush(seconds(2));
    d.destroyOutbox(*boxIt->second);
    rec->memberOutbox.erase(boxIt);
  }
  rec->memberRefs.erase(member);
  std::erase_if(rec->members,
                [&](const MemberPlan& m) { return m.name == member; });
  std::erase_if(rec->edges, [&](const Edge& e) {
    return e.fromMember == member || e.toMember == member;
  });
}

}  // namespace dapple
