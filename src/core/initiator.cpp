#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <set>
#include <utility>

#include "dapple/core/session.hpp"
#include "dapple/util/log.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "initiator";
}  // namespace

struct Initiator::Impl {
  Impl(Dapplet& dapplet, PeerMonitor* mon)
      : d(dapplet),
        monitor(mon),
        rng(dapplet.id() ^ 0x5e551041u),
        mInviteRoundUs(&d.metricsRegistry().histogram("session.invite_round_us")),
        mWireRoundUs(&d.metricsRegistry().histogram("session.wire_round_us")),
        mStartRoundUs(&d.metricsRegistry().histogram("session.start_round_us")),
        mRejoinHandled(&d.metricsRegistry().counter("recovery.rejoin_handled")),
        mRejoinRefused(&d.metricsRegistry().counter("recovery.rejoin_refused")),
        trace(&d.trace()) {}

  Dapplet& d;
  PeerMonitor* monitor;
  mutable std::mutex mutex;
  Rng rng;  // jitter source; guarded by `mutex`
  // Per-initiator (not process-global) so session ids are reproducible run
  // to run; the initiator's name + node id keep them unique on the wire.
  std::atomic<std::uint64_t> sessionCounter{0};

  // Setup-phase round latencies (send -> all replies / flush), per session.
  obs::Histogram* mInviteRoundUs;
  obs::Histogram* mWireRoundUs;
  obs::Histogram* mStartRoundUs;
  obs::Counter* mRejoinHandled;  ///< REJOINs accepted (DESIGN.md §12)
  obs::Counter* mRejoinRefused;  ///< REJOINs rejected
  obs::TraceRing* trace;

  /// failMember() incarnation sentinel: "evict regardless of restarts".
  static constexpr std::uint64_t kAnyIncarnation = ~std::uint64_t{0};

  /// Session timeouts and backoff all pace on the dapplet's clock.
  TimePoint now() const { return d.clockSource().now(); }

  std::uint64_t microsSince(TimePoint start) const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(now() - start)
            .count());
  }

  struct SessRec {
    std::string app;
    std::vector<MemberPlan> members;
    std::vector<Edge> edges;
    Value params;
    Duration phaseTimeout{seconds(10)};

    Inbox* reply = nullptr;  // per-session reply inbox

    // `mtx` guards everything below: establish() runs single-threaded, but
    // once `established` is set, failure hooks (liveness suspicion, stream
    // failures) mutate membership from detector threads.
    mutable std::mutex mtx;
    std::map<std::string, Outbox*> memberOutbox;
    std::map<std::string, std::map<std::string, InboxRef>> memberRefs;
    std::map<std::string, InboxRef> memberLiveness;
    std::map<std::string, NodeAddress> memberNodes;
    /// Restart counter per member (DESIGN.md §12): set by REJOIN, consulted
    /// by failMember() so eviction verdicts aimed at an earlier process of
    /// the same member are recognized as stale and dropped.
    std::map<std::string, std::uint64_t> memberIncarnation;
    /// Exact liveness-watch key per member ("sid/name" at establish,
    /// "sid/name#inc" after a rejoin); unwatch must use the watched key.
    std::map<std::string, std::string> watchKeys;
    std::map<std::string, Value> doneResults;
    std::map<std::string, std::string> down;  // evicted member -> reason
    // Dead members' outboxes are parked here (sends may race with eviction)
    // and destroyed with the session.
    std::vector<Outbox*> retired;
    bool established = false;
  };
  std::map<std::string, std::shared_ptr<SessRec>> sessions;

  std::shared_ptr<SessRec> find(const std::string& sessionId) {
    std::scoped_lock lock(mutex);
    const auto it = sessions.find(sessionId);
    if (it == sessions.end()) {
      throw SessionError("unknown session '" + sessionId + "'");
    }
    return it->second;
  }

  std::shared_ptr<SessRec> tryFind(const std::string& sessionId) {
    std::scoped_lock lock(mutex);
    const auto it = sessions.find(sessionId);
    return it == sessions.end() ? nullptr : it->second;
  }

  /// Receives from `rec->reply` until `deadline`; nullopt once the deadline
  /// passes (the phase loops treat that as "this attempt is over", so it is
  /// flow control, not an error — see inbox.hpp's receive conventions).
  std::optional<Delivery> receiveBy(SessRec& rec, TimePoint deadline) {
    const TimePoint t = now();
    if (deadline <= t) return std::nullopt;
    return rec.reply->receiveFor(
        std::chrono::duration_cast<Duration>(deadline - t));
  }

  /// Jittered exponential backoff: base * 2^attempt, scaled by a uniform
  /// factor in [0.75, 1.25) so retrying initiators do not synchronize.
  Duration backoff(const Plan& plan, std::size_t attempt) {
    double factor;
    {
      std::scoped_lock lock(mutex);
      factor = 0.75 + rng.uniform01() * 0.5;
    }
    const auto base = std::chrono::duration_cast<std::chrono::nanoseconds>(
        plan.retryBase);
    const double ns =
        static_cast<double>(base.count()) *
        static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(attempt, 16)) *
        factor;
    return std::chrono::duration_cast<Duration>(
        std::chrono::nanoseconds(static_cast<std::int64_t>(ns)));
  }

  /// Sends `msg` on `box`, resetting a failed stream once and retrying; the
  /// reliable layer's retransmission handles packet loss below this.
  bool sendOn(Outbox& box, const Message& msg) {
    try {
      box.send(msg);
      return true;
    } catch (const DeliveryError&) {
      box.reset();
    } catch (const Error&) {
      return false;
    }
    try {
      box.send(msg);
      return true;
    } catch (const Error&) {
      return false;
    }
  }

  InviteMsg makeInvite(const std::string& sessionId, const std::string& app,
                       const MemberPlan& member, const InboxRef& replyRef) {
    InviteMsg invite;
    invite.sessionId = sessionId;
    invite.app = app;
    invite.initiatorName = d.name();
    invite.memberName = member.name;
    invite.replyTo = replyRef;
    invite.inboxesToCreate = member.inboxes;
    invite.readKeys = member.readKeys;
    invite.writeKeys = member.writeKeys;
    invite.params = member.params;
    if (monitor != nullptr) invite.livenessRef = monitor->ref();
    return invite;
  }

  /// Groups `edges` into per-member WireMsg bindings using collected refs.
  std::map<std::string, std::vector<Binding>> planBindings(
      const SessRec& rec, const std::vector<Edge>& edges) const {
    std::map<std::string, std::vector<Binding>> out;
    for (const Edge& edge : edges) {
      const auto refsIt = rec.memberRefs.find(edge.toMember);
      if (refsIt == rec.memberRefs.end()) {
        throw SessionError("edge targets unknown member '" + edge.toMember +
                           "'");
      }
      const auto inboxIt = refsIt->second.find(edge.toInbox);
      if (inboxIt == refsIt->second.end()) {
        throw SessionError("member '" + edge.toMember + "' has no inbox '" +
                           edge.toInbox + "'");
      }
      std::vector<Binding>& bindings = out[edge.fromMember];
      auto found = std::find_if(
          bindings.begin(), bindings.end(),
          [&](const Binding& b) { return b.outboxName == edge.fromOutbox; });
      if (found == bindings.end()) {
        bindings.push_back(Binding{edge.fromOutbox, {}});
        found = bindings.end() - 1;
      }
      found->targets.push_back(inboxIt->second);
    }
    return out;
  }

  void failMember(const std::string& sessionId, const std::string& member,
                  const std::string& reason,
                  std::uint64_t incarnation = kAnyIncarnation) {
    auto rec = tryFind(sessionId);
    if (!rec) return;
    MemberDownMsg notice;
    notice.sessionId = sessionId;
    notice.memberName = member;
    notice.reason = reason;
    std::string watchKey;
    {
      std::scoped_lock lock(rec->mtx);
      // Mid-setup failures are owned by the phase retry/timeout logic; a
      // hook firing then must not mutate maps establish() is iterating.
      if (!rec->established) return;
      // A verdict carrying an incarnation older than the member's current
      // one condemns a process that already died and was replaced by a
      // rejoin; evicting the replacement for its predecessor's death would
      // double-punish the restart (DESIGN.md §12).
      const auto incIt = rec->memberIncarnation.find(member);
      if (incarnation != kAnyIncarnation &&
          incIt != rec->memberIncarnation.end() &&
          incIt->second > incarnation) {
        return;
      }
      if (rec->down.count(member) != 0) return;
      // A member whose result is already in has completed its role; it
      // stops heartbeating afterwards, so late suspicion is expected and
      // must not evict it.
      if (rec->doneResults.count(member) != 0) return;
      const bool known =
          std::any_of(rec->members.begin(), rec->members.end(),
                      [&](const MemberPlan& m) { return m.name == member; });
      if (!known) return;
      rec->down[member] = reason;
      const auto nodeIt = rec->memberNodes.find(member);
      if (nodeIt != rec->memberNodes.end()) {
        notice.node = nodeIt->second.packed();
      }
      const auto boxIt = rec->memberOutbox.find(member);
      if (boxIt != rec->memberOutbox.end()) {
        rec->retired.push_back(boxIt->second);
        rec->memberOutbox.erase(boxIt);
      }
      if (const auto wkIt = rec->watchKeys.find(member);
          wkIt != rec->watchKeys.end()) {
        watchKey = wkIt->second;
        rec->watchKeys.erase(wkIt);
      }
      DAPPLE_LOG(kInfo, kLog) << d.name() << ": session " << sessionId
                              << ": member '" << member << "' declared down ("
                              << reason << ")";
      // Broadcast MEMBER_DOWN to the survivors while still holding `mtx` so
      // a concurrent terminate() cannot free the outboxes mid-send.
      for (const auto& [name, box] : rec->memberOutbox) {
        if (!sendOn(*box, notice)) {
          DAPPLE_LOG(kDebug, kLog)
              << d.name() << ": MEMBER_DOWN to '" << name << "' failed";
        }
      }
    }
    if (monitor != nullptr && !watchKey.empty()) monitor->unwatch(watchKey);
  }

  /// REJOIN handshake (DESIGN.md §12): a restarted member asks to be
  /// re-admitted at its new address.  Accept = re-point the member's
  /// outbox/refs/node/liveness at the new process, replay WIRE + START to
  /// it, re-wire the survivors' edges into its re-created inboxes, and
  /// broadcast MEMBER_UP.  Idempotent per incarnation: duplicate requests
  /// converge, and requests racing a not-yet-processed eviction of the old
  /// process win (the eviction becomes stale via `memberIncarnation`).
  void onRejoin(const RejoinMsg& m) {
    auto rec = tryFind(m.sessionId);
    if (!rec) return;  // unknown session: the requester times out and unjournals

    RejoinAckMsg ack;
    ack.sessionId = m.sessionId;
    ack.memberName = m.memberName;
    ack.incarnation = m.incarnation;

    std::string oldWatchKey;
    std::string newWatchKey;
    InboxRef liveRef;
    {
      std::scoped_lock lock(rec->mtx);
      const bool known = std::any_of(
          rec->members.begin(), rec->members.end(),
          [&](const MemberPlan& mp) { return mp.name == m.memberName; });
      const auto incIt = rec->memberIncarnation.find(m.memberName);
      const std::uint64_t cur =
          incIt == rec->memberIncarnation.end() ? 0 : incIt->second;
      if (!known) {
        ack.reason = "unknown member";
      } else if (!rec->established) {
        ack.reason = "session not established";
      } else if (rec->doneResults.count(m.memberName) != 0) {
        ack.reason = "member already completed";
      } else if (m.incarnation < cur) {
        ack.reason = "stale incarnation (current " + std::to_string(cur) + ")";
      }
      if (ack.reason.empty()) {
        const bool wasDown = rec->down.erase(m.memberName) != 0;
        const auto oldNodeIt = rec->memberNodes.find(m.memberName);
        const bool nodeChanged =
            oldNodeIt == rec->memberNodes.end() ||
            oldNodeIt->second.packed() != m.control.node.packed();
        // Satellite race: the restart beat the eviction.  Survivors never
        // saw MEMBER_DOWN for the dead process, so their outboxes still
        // target its address — tell them to drop it before re-wiring.
        if (!wasDown && nodeChanged && oldNodeIt != rec->memberNodes.end()) {
          MemberDownMsg stale;
          stale.sessionId = m.sessionId;
          stale.memberName = m.memberName;
          stale.node = oldNodeIt->second.packed();
          stale.reason = "superseded by rejoin (incarnation " +
                         std::to_string(m.incarnation) + ")";
          for (const auto& [name, box] : rec->memberOutbox) {
            if (name != m.memberName) sendOn(*box, stale);
          }
        }
        // Never reuse the dead process's outbox: park it (sends may still
        // race) and re-register under the same member name, so the member
        // list gains no duplicate entry however the race resolved.
        if (const auto boxIt = rec->memberOutbox.find(m.memberName);
            boxIt != rec->memberOutbox.end()) {
          rec->retired.push_back(boxIt->second);
          rec->memberOutbox.erase(boxIt);
        }
        Outbox& box = d.createOutbox();
        box.add(m.control);
        rec->memberOutbox[m.memberName] = &box;
        rec->memberRefs[m.memberName] = m.inboxRefs;
        rec->memberNodes[m.memberName] = m.control.node;
        rec->memberIncarnation[m.memberName] = m.incarnation;
        if (m.livenessRef.valid()) {
          rec->memberLiveness[m.memberName] = m.livenessRef;
          liveRef = m.livenessRef;
        } else {
          rec->memberLiveness.erase(m.memberName);
        }
        // Swap the liveness watch to an incarnation-scoped key so verdicts
        // already in flight against the old process miss the new one.
        if (const auto wkIt = rec->watchKeys.find(m.memberName);
            wkIt != rec->watchKeys.end()) {
          oldWatchKey = wkIt->second;
        }
        if (liveRef.valid()) {
          newWatchKey = m.sessionId + "/" + m.memberName + "#" +
                        std::to_string(m.incarnation);
          rec->watchKeys[m.memberName] = newWatchKey;
        } else {
          rec->watchKeys.erase(m.memberName);
        }

        // Edges touching the rejoiner, restricted to endpoints that still
        // resolve (a co-member may have died or left meanwhile).
        std::vector<Edge> touched;
        for (const Edge& e : rec->edges) {
          if (e.fromMember != m.memberName && e.toMember != m.memberName) {
            continue;
          }
          const auto refs = rec->memberRefs.find(e.toMember);
          if (refs == rec->memberRefs.end() ||
              refs->second.count(e.toInbox) == 0) {
            continue;
          }
          touched.push_back(e);
        }
        const auto rewire = planBindings(*rec, touched);

        ack.accepted = true;
        sendOn(box, ack);
        // WIRE precedes START so the role never runs un-wired; the agent's
        // `started` latch makes the replayed START idempotent.
        WireMsg wire;
        wire.sessionId = m.sessionId;
        if (const auto it = rewire.find(m.memberName); it != rewire.end()) {
          wire.bindings = it->second;
        }
        sendOn(box, wire);
        StartMsg start;
        start.sessionId = m.sessionId;
        for (const MemberPlan& mp : rec->members) start.peers.push_back(mp.name);
        start.params = rec->params;
        sendOn(box, start);

        MemberUpMsg up;
        up.sessionId = m.sessionId;
        up.memberName = m.memberName;
        up.node = m.control.node.packed();
        up.incarnation = m.incarnation;
        for (const auto& [name, peerBox] : rec->memberOutbox) {
          if (name == m.memberName) continue;
          if (const auto it = rewire.find(name); it != rewire.end()) {
            WireMsg peerWire;
            peerWire.sessionId = m.sessionId;
            peerWire.bindings = it->second;
            sendOn(*peerBox, peerWire);
          }
          sendOn(*peerBox, up);
        }
        DAPPLE_LOG(kInfo, kLog)
            << d.name() << ": session " << m.sessionId << ": member '"
            << m.memberName << "' rejoined (incarnation " << m.incarnation
            << ")";
      }
    }
    if (!ack.accepted) {
      // NACK on a throwaway outbox so the requester stops retrying and
      // discards its journal; parked with the session like other retirees.
      Outbox& nack = d.createOutbox();
      nack.add(m.control);
      sendOn(nack, ack);
      {
        std::scoped_lock lock(rec->mtx);
        rec->retired.push_back(&nack);
      }
      mRejoinRefused->inc();
      trace->emit("recovery", "rejoin.refused",
                  m.sessionId + "/" + m.memberName + ": " + ack.reason);
      return;
    }
    if (monitor != nullptr) {
      if (!oldWatchKey.empty() && oldWatchKey != newWatchKey) {
        monitor->unwatch(oldWatchKey);
      }
      if (!newWatchKey.empty()) monitor->watch(newWatchKey, liveRef);
    }
    mRejoinHandled->inc();
    trace->emit("recovery", "member.rejoin",
                m.sessionId + "/" + m.memberName +
                    " inc=" + std::to_string(m.incarnation));
  }

  void destroy(const std::string& sessionId,
               const std::shared_ptr<SessRec>& rec) {
    {
      std::scoped_lock lock(mutex);
      sessions.erase(sessionId);
    }
    if (monitor != nullptr) {
      std::vector<std::string> keys;
      {
        std::scoped_lock lock(rec->mtx);
        for (const auto& [name, key] : rec->watchKeys) keys.push_back(key);
        rec->watchKeys.clear();
      }
      for (const std::string& key : keys) monitor->unwatch(key);
    }
    std::scoped_lock lock(rec->mtx);
    for (auto& [name, box] : rec->memberOutbox) d.destroyOutbox(*box);
    rec->memberOutbox.clear();
    for (Outbox* box : rec->retired) d.destroyOutbox(*box);
    rec->retired.clear();
    if (rec->reply != nullptr) d.destroyInbox(*rec->reply);
  }
};

Initiator::Initiator(Dapplet& dapplet, PeerMonitor* monitor)
    : impl_(std::make_shared<Impl>(dapplet, monitor)) {
  // Failure hooks use weak references: the dapplet and monitor may outlive
  // this initiator and offer no callback removal.
  std::weak_ptr<Impl> weak = impl_;
  dapplet.addPeerFailureListener(
      [weak](const NodeAddress& dst, std::uint64_t outboxId,
             const std::string& reason) {
        auto impl = weak.lock();
        if (!impl) return;
        (void)dst;
        std::string sessionId;
        std::string member;
        std::uint64_t inc = 0;
        {
          std::scoped_lock lock(impl->mutex);
          for (const auto& [id, rec] : impl->sessions) {
            std::scoped_lock recLock(rec->mtx);
            for (const auto& [name, box] : rec->memberOutbox) {
              if (box->id() == outboxId) {
                sessionId = id;
                member = name;
                // Pin the verdict to the incarnation the stream belonged
                // to: if the member rejoins before failMember runs, the
                // verdict is stale and must not evict the new process.
                const auto it = rec->memberIncarnation.find(name);
                inc = it == rec->memberIncarnation.end() ? 0 : it->second;
                break;
              }
            }
            if (!member.empty()) break;
          }
        }
        if (!member.empty()) {
          impl->failMember(sessionId, member, "stream failure: " + reason,
                           inc);
        }
      });
  if (monitor != nullptr) {
    monitor->onSuspect([weak](const std::string& key, const InboxRef&) {
      auto impl = weak.lock();
      if (!impl) return;
      // Initiator watch keys are "<sessionId>/<memberName>" or, after a
      // rejoin, "<sessionId>/<memberName>#<incarnation>" — the suffix pins
      // the verdict to the process generation it condemns.
      const auto slash = key.find('/');
      if (slash == std::string::npos) return;
      std::string member = key.substr(slash + 1);
      std::uint64_t inc = 0;
      if (const auto hash = member.rfind('#'); hash != std::string::npos) {
        inc = std::strtoull(member.c_str() + hash + 1, nullptr, 10);
        member.resize(hash);
      }
      impl->failMember(key.substr(0, slash), member,
                       "liveness: peer suspected dead", inc);
    });
  }
}

Initiator::~Initiator() = default;

Initiator::MemberPlan Initiator::member(const Directory& directory,
                                        const std::string& name,
                                        std::vector<std::string> inboxes,
                                        Value params) {
  MemberPlan plan;
  plan.name = name;
  plan.control = directory.lookup(name);
  plan.inboxes = std::move(inboxes);
  plan.params = std::move(params);
  return plan;
}

Initiator::Result Initiator::establish(const Plan& plan) {
  Dapplet& d = impl_->d;
  Result result;
  result.sessionId =
      d.name() + "-" + std::to_string(impl_->sessionCounter.fetch_add(1)) + "-" +
      std::to_string(d.id() & 0xffff);

  auto rec = std::make_shared<Impl::SessRec>();
  rec->app = plan.app;
  rec->members = plan.members;
  rec->edges = plan.edges;
  rec->params = plan.params;
  rec->phaseTimeout = plan.phaseTimeout;
  rec->reply = &d.createInbox();

  {
    std::scoped_lock lock(impl_->mutex);
    impl_->sessions[result.sessionId] = rec;
  }

  const std::size_t attempts = std::max<std::size_t>(1, plan.setupAttempts);

  // ---- Phase 1: INVITE --------------------------------------------------
  // Retry loop: each attempt (re)sends INVITE to every member that has not
  // answered yet, then waits out a jittered exponential backoff for the
  // replies.  Duplicate invites are idempotent at the agent, and answers
  // dedup naturally through the per-member maps.
  for (const MemberPlan& member : plan.members) {
    Outbox& box = d.createOutbox();
    box.add(member.control);
    rec->memberOutbox[member.name] = &box;
  }
  const TimePoint inviteStart = impl_->now();
  const TimePoint inviteDeadline = inviteStart + plan.phaseTimeout;
  const auto inviteAnswered = [&](const MemberPlan& member) {
    return rec->memberRefs.count(member.name) != 0 ||
           result.rejections.count(member.name) != 0;
  };
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    bool all = true;
    for (const MemberPlan& member : plan.members) {
      if (inviteAnswered(member)) continue;
      all = false;
      InviteMsg invite = impl_->makeInvite(result.sessionId, plan.app, member,
                                           rec->reply->ref());
      impl_->sendOn(*rec->memberOutbox.at(member.name), invite);
    }
    if (all) break;
    const TimePoint attemptDeadline =
        attempt + 1 == attempts
            ? inviteDeadline
            : std::min(inviteDeadline,
                       impl_->now() + impl_->backoff(plan, attempt));
    bool attemptTimedOut = false;
    for (;;) {
      bool answered = true;
      for (const MemberPlan& member : plan.members) {
        if (!inviteAnswered(member)) {
          answered = false;
          break;
        }
      }
      if (answered) break;
      auto del = impl_->receiveBy(*rec, attemptDeadline);
      if (!del) {
        attemptTimedOut = true;
        break;
      }
      const auto* reply =
          dynamic_cast<const InviteReplyMsg*>(del->message.get());
      if (reply == nullptr || reply->sessionId != result.sessionId) continue;
      if (reply->accepted) {
        rec->memberRefs[reply->memberName] = reply->inboxRefs;
        if (reply->livenessRef.valid()) {
          rec->memberLiveness[reply->memberName] = reply->livenessRef;
        }
      } else {
        result.rejections[reply->memberName] = reply->reason;
      }
    }
    if (!attemptTimedOut) break;  // everyone answered
    if (impl_->now() >= inviteDeadline) break;
    DAPPLE_LOG(kDebug, kLog)
        << d.name() << ": INVITE attempt " << (attempt + 1) << "/"
        << attempts << " incomplete, retrying";
  }
  impl_->mInviteRoundUs->record(impl_->microsSince(inviteStart));
  for (const MemberPlan& member : plan.members) {
    if (!inviteAnswered(member)) {
      result.rejections[member.name] = "no reply (timeout)";
    }
  }
  if (!result.rejections.empty()) {
    // Paper §3.1 leaves the initiator's reaction open; we roll back.
    UnlinkMsg abortMsg;
    abortMsg.sessionId = result.sessionId;
    abortMsg.reason = "session aborted during setup";
    for (const auto& [name, refs] : rec->memberRefs) {
      impl_->sendOn(*rec->memberOutbox.at(name), abortMsg);
    }
    impl_->destroy(result.sessionId, rec);
    result.ok = false;
    return result;
  }

  // ---- Phase 2: WIRE ------------------------------------------------------
  auto bindingPlan = impl_->planBindings(*rec, plan.edges);
  const TimePoint wireStart = impl_->now();
  const TimePoint wireDeadline = wireStart + plan.phaseTimeout;
  std::set<std::string> wiredOk;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    bool all = true;
    for (const MemberPlan& member : plan.members) {
      if (wiredOk.count(member.name) != 0 ||
          result.rejections.count(member.name) != 0) {
        continue;
      }
      all = false;
      WireMsg wire;
      wire.sessionId = result.sessionId;
      const auto it = bindingPlan.find(member.name);
      if (it != bindingPlan.end()) wire.bindings = it->second;
      impl_->sendOn(*rec->memberOutbox.at(member.name), wire);
    }
    if (all) break;
    const TimePoint attemptDeadline =
        attempt + 1 == attempts
            ? wireDeadline
            : std::min(wireDeadline,
                       impl_->now() + impl_->backoff(plan, attempt));
    bool attemptTimedOut = false;
    while (wiredOk.size() + result.rejections.size() < plan.members.size()) {
      auto del = impl_->receiveBy(*rec, attemptDeadline);
      if (!del) {
        attemptTimedOut = true;
        break;
      }
      const auto* reply =
          dynamic_cast<const WireReplyMsg*>(del->message.get());
      if (reply == nullptr || reply->sessionId != result.sessionId) continue;
      if (reply->ok) {
        wiredOk.insert(reply->memberName);
      } else {
        result.rejections[reply->memberName] = reply->reason;
      }
    }
    if (!attemptTimedOut) break;
    if (impl_->now() >= wireDeadline) break;
    DAPPLE_LOG(kDebug, kLog)
        << d.name() << ": WIRE attempt " << (attempt + 1) << "/" << attempts
        << " incomplete, retrying";
  }
  impl_->mWireRoundUs->record(impl_->microsSince(wireStart));
  if (wiredOk.size() < plan.members.size() && result.rejections.empty()) {
    result.rejections["(wire)"] = "wiring timed out";
  }
  if (!result.rejections.empty()) {
    UnlinkMsg abortMsg;
    abortMsg.sessionId = result.sessionId;
    abortMsg.reason = "session aborted during wiring";
    for (auto& [name, box] : rec->memberOutbox) impl_->sendOn(*box, abortMsg);
    impl_->destroy(result.sessionId, rec);
    result.ok = false;
    return result;
  }

  // ---- Phase 3: START -----------------------------------------------------
  // START has no reply; confirmation is transport-level.  Send, then flush;
  // a failed stream gets reset and START re-sent (duplicate STARTs are
  // ignored by the agent's `started` latch).
  StartMsg start;
  start.sessionId = result.sessionId;
  for (const MemberPlan& member : plan.members) {
    start.peers.push_back(member.name);
  }
  start.params = plan.params;
  const TimePoint startStart = impl_->now();
  const TimePoint startDeadline = startStart + plan.phaseTimeout;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    for (auto& [name, box] : rec->memberOutbox) impl_->sendOn(*box, start);
    const TimePoint flushBy =
        attempt + 1 == attempts
            ? startDeadline
            : std::min(startDeadline,
                       impl_->now() + impl_->backoff(plan, attempt));
    const auto now = impl_->now();
    if (d.flush(flushBy > now ? flushBy - now : Duration::zero())) break;
    if (impl_->now() >= startDeadline) break;
    for (auto& [name, box] : rec->memberOutbox) box->reset();
  }
  impl_->mStartRoundUs->record(impl_->microsSince(startStart));
  impl_->trace->emit("session", "session.established", result.sessionId,
                     static_cast<std::int64_t>(plan.members.size()));

  // The session is live: start watching member liveness.
  {
    std::scoped_lock lock(rec->mtx);
    for (const MemberPlan& member : plan.members) {
      rec->memberNodes[member.name] = member.control.node;
    }
    rec->established = true;
  }
  if (impl_->monitor != nullptr) {
    std::vector<std::pair<std::string, InboxRef>> watches;
    {
      std::scoped_lock lock(rec->mtx);
      for (const auto& [name, ref] : rec->memberLiveness) {
        rec->watchKeys[name] = result.sessionId + "/" + name;
        watches.emplace_back(rec->watchKeys[name], ref);
      }
    }
    for (const auto& [key, ref] : watches) impl_->monitor->watch(key, ref);
  }

  result.ok = true;
  return result;
}

std::map<std::string, Value> Initiator::awaitCompletion(
    const std::string& sessionId, Duration timeout) {
  auto rec = impl_->find(sessionId);
  const TimePoint deadline = impl_->now() + timeout;
  // Poll in short slices: evictions arrive from detector threads, not from
  // the reply inbox, so a blocked receive alone could miss "everyone left
  // alive is done".
  for (;;) {
    bool complete;
    {
      std::scoped_lock lock(rec->mtx);
      std::size_t settled = 0;
      for (const MemberPlan& member : rec->members) {
        if (rec->doneResults.count(member.name) != 0 ||
            rec->down.count(member.name) != 0) {
          ++settled;
        }
      }
      complete = settled >= rec->members.size();
    }
    if (complete) break;
    const TimePoint now = impl_->now();
    if (now >= deadline) {
      throw TimeoutError("session '" + sessionId +
                         "' did not complete in time");
    }
    const Duration slice =
        std::min<Duration>(milliseconds(50), deadline - now);
    // An empty slice just means "re-check eviction state".
    if (auto del = rec->reply->receiveFor(slice)) {
      // Crash recovery (DESIGN.md §12): a killed member's restart asks to
      // be re-admitted through the same reply inbox its journal recorded.
      if (const auto* rejoin =
              dynamic_cast<const RejoinMsg*>(del->message.get());
          rejoin != nullptr && rejoin->sessionId == sessionId) {
        impl_->onRejoin(*rejoin);
        continue;
      }
      const auto* done = dynamic_cast<const DoneMsg*>(del->message.get());
      if (done == nullptr || done->sessionId != sessionId) continue;
      std::scoped_lock lock(rec->mtx);
      rec->doneResults[done->memberName] = done->result;
    }
  }
  std::map<std::string, Value> out;
  std::scoped_lock lock(rec->mtx);
  out = rec->doneResults;
  for (const auto& [name, reason] : rec->down) {
    if (out.count(name) != 0) continue;  // finished before the verdict
    ValueMap ann;
    ann["peerDown"] = Value(true);
    ann["member"] = Value(name);
    ann["reason"] = Value(reason);
    out[name] = Value(std::move(ann));
  }
  return out;
}

void Initiator::failMember(const std::string& sessionId,
                           const std::string& member,
                           const std::string& reason) {
  impl_->failMember(sessionId, member, reason);
}

std::map<std::string, std::string> Initiator::downMembers(
    const std::string& sessionId) const {
  std::shared_ptr<Impl::SessRec> rec;
  {
    std::scoped_lock lock(impl_->mutex);
    const auto it = impl_->sessions.find(sessionId);
    if (it == impl_->sessions.end()) return {};
    rec = it->second;
  }
  std::scoped_lock lock(rec->mtx);
  return rec->down;
}

void Initiator::terminate(const std::string& sessionId,
                          const std::string& reason) {
  std::shared_ptr<Impl::SessRec> rec;
  {
    std::scoped_lock lock(impl_->mutex);
    const auto it = impl_->sessions.find(sessionId);
    if (it == impl_->sessions.end()) return;  // idempotent
    rec = it->second;
  }
  UnlinkMsg unlink;
  unlink.sessionId = sessionId;
  unlink.reason = reason;
  {
    std::scoped_lock lock(rec->mtx);
    for (auto& [name, box] : rec->memberOutbox) {
      try {
        box->send(unlink);
      } catch (const Error& e) {
        DAPPLE_LOG(kDebug, kLog) << "unlink to " << name
                                 << " failed: " << e.what();
      }
    }
  }
  impl_->d.flush(seconds(2));
  impl_->destroy(sessionId, rec);
}

bool Initiator::addMember(const std::string& sessionId,
                          const MemberPlan& member,
                          const std::vector<Edge>& newEdges,
                          Duration timeout) {
  auto rec = impl_->find(sessionId);
  Dapplet& d = impl_->d;

  Outbox& box = d.createOutbox();
  box.add(member.control);
  InviteMsg invite = impl_->makeInvite(sessionId, rec->app, member,
                                       rec->reply->ref());
  box.send(invite);

  const TimePoint deadline = impl_->now() + timeout;
  bool accepted = false;
  InboxRef liveRef;
  while (auto del = impl_->receiveBy(*rec, deadline)) {
    if (const auto* done = dynamic_cast<const DoneMsg*>(del->message.get());
        done != nullptr && done->sessionId == sessionId) {
      std::scoped_lock lock(rec->mtx);
      rec->doneResults[done->memberName] = done->result;  // stash
      continue;
    }
    const auto* reply = dynamic_cast<const InviteReplyMsg*>(del->message.get());
    if (reply == nullptr || reply->sessionId != sessionId ||
        reply->memberName != member.name) {
      continue;
    }
    if (reply->accepted) {
      rec->memberRefs[member.name] = reply->inboxRefs;
      liveRef = reply->livenessRef;
      accepted = true;
    }
    break;
  }
  if (!accepted) {
    d.destroyOutbox(box);
    return false;
  }
  {
    std::scoped_lock lock(rec->mtx);
    rec->memberOutbox[member.name] = &box;
    rec->members.push_back(member);
    rec->memberNodes[member.name] = member.control.node;
    if (liveRef.valid()) rec->memberLiveness[member.name] = liveRef;
  }

  // Wire the new edges (existing members get incremental WireMsgs).
  auto bindingPlan = impl_->planBindings(*rec, newEdges);
  std::size_t expectWired = 0;
  {
    std::scoped_lock lock(rec->mtx);
    for (const auto& [target, bindings] : bindingPlan) {
      WireMsg wire;
      wire.sessionId = sessionId;
      wire.bindings = bindings;
      rec->memberOutbox.at(target)->send(wire);
      ++expectWired;
    }
    // New member must always be wired (possibly with zero bindings) before
    // START so the session protocol stays uniform.
    if (bindingPlan.count(member.name) == 0) {
      WireMsg wire;
      wire.sessionId = sessionId;
      rec->memberOutbox.at(member.name)->send(wire);
      ++expectWired;
    }
  }
  std::size_t wired = 0;
  while (wired < expectWired) {
    auto del = impl_->receiveBy(*rec, deadline);
    if (!del) return false;  // wiring window closed
    if (const auto* done = dynamic_cast<const DoneMsg*>(del->message.get());
        done != nullptr && done->sessionId == sessionId) {
      std::scoped_lock lock(rec->mtx);
      rec->doneResults[done->memberName] = done->result;
      continue;
    }
    const auto* reply = dynamic_cast<const WireReplyMsg*>(del->message.get());
    if (reply == nullptr || reply->sessionId != sessionId) continue;
    ++wired;
  }
  for (const Edge& edge : newEdges) rec->edges.push_back(edge);

  StartMsg start;
  start.sessionId = sessionId;
  {
    std::scoped_lock lock(rec->mtx);
    for (const MemberPlan& m : rec->members) start.peers.push_back(m.name);
    start.params = rec->params;
    rec->memberOutbox.at(member.name)->send(start);
  }
  if (impl_->monitor != nullptr && liveRef.valid()) {
    const std::string key = sessionId + "/" + member.name;
    {
      std::scoped_lock lock(rec->mtx);
      rec->watchKeys[member.name] = key;
    }
    impl_->monitor->watch(key, liveRef);
  }
  return true;
}

void Initiator::removeMember(const std::string& sessionId,
                             const std::string& member) {
  auto rec = impl_->find(sessionId);
  Dapplet& d = impl_->d;

  // Drop every binding that targets the departing member's inboxes.
  const auto refsIt = rec->memberRefs.find(member);
  if (refsIt != rec->memberRefs.end()) {
    std::map<std::string, std::vector<Binding>> unbinds;
    for (const Edge& edge : rec->edges) {
      if (edge.toMember != member || edge.fromMember == member) continue;
      const auto inboxIt = refsIt->second.find(edge.toInbox);
      if (inboxIt == refsIt->second.end()) continue;
      std::vector<Binding>& bindings = unbinds[edge.fromMember];
      auto found = std::find_if(
          bindings.begin(), bindings.end(),
          [&](const Binding& b) { return b.outboxName == edge.fromOutbox; });
      if (found == bindings.end()) {
        bindings.push_back(Binding{edge.fromOutbox, {}});
        found = bindings.end() - 1;
      }
      found->targets.push_back(inboxIt->second);
    }
    std::scoped_lock lock(rec->mtx);
    for (const auto& [target, bindings] : unbinds) {
      const auto boxIt = rec->memberOutbox.find(target);
      if (boxIt == rec->memberOutbox.end()) continue;
      UnbindMsg unbind;
      unbind.sessionId = sessionId;
      unbind.bindings = bindings;
      boxIt->second->send(unbind);
    }
  }

  {
    std::scoped_lock lock(rec->mtx);
    const auto boxIt = rec->memberOutbox.find(member);
    if (boxIt != rec->memberOutbox.end()) {
      UnlinkMsg unlink;
      unlink.sessionId = sessionId;
      unlink.reason = "removed from session";
      boxIt->second->send(unlink);
      // Park the outbox instead of freeing it under a failure hook's feet.
      rec->retired.push_back(boxIt->second);
      rec->memberOutbox.erase(boxIt);
    }
    rec->memberNodes.erase(member);
    rec->memberLiveness.erase(member);
    rec->memberIncarnation.erase(member);
  }
  std::string watchKey;
  {
    std::scoped_lock lock(rec->mtx);
    if (const auto it = rec->watchKeys.find(member);
        it != rec->watchKeys.end()) {
      watchKey = it->second;
      rec->watchKeys.erase(it);
    }
  }
  d.flush(seconds(2));
  if (impl_->monitor != nullptr && !watchKey.empty()) {
    impl_->monitor->unwatch(watchKey);
  }
  rec->memberRefs.erase(member);
  {
    std::scoped_lock lock(rec->mtx);
    std::erase_if(rec->members,
                  [&](const MemberPlan& m) { return m.name == member; });
  }
  std::erase_if(rec->edges, [&](const Edge& e) {
    return e.fromMember == member || e.toMember == member;
  });
}

}  // namespace dapple
