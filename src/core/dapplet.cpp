#include "dapple/core/dapplet.hpp"

#include <algorithm>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "dapple/serial/value.hpp"
#include "dapple/serial/wire.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "dapplet";
}  // namespace

struct Dapplet::Impl {
  mutable std::mutex mutex;

  std::uint32_t nextInboxId = 1;
  std::uint64_t nextOutboxId = 1;

  // Inboxes are owned here (shared: reactor drain tasks pin them via
  // shared_from_this); named lookup is by the inbox's own name field.
  std::unordered_map<std::uint32_t, std::shared_ptr<Inbox>> inboxesById;
  std::unordered_map<std::string, Inbox*> inboxesByName;
  // Destroyed inboxes are parked here (closed) rather than freed: delivery
  // and taps run without the dapplet lock, so Inbox storage must stay valid
  // for the dapplet's lifetime.  Sessions create a handful of inboxes each,
  // so the cost is negligible.
  std::vector<std::shared_ptr<Inbox>> inboxGraveyard;

  std::unordered_map<std::uint64_t, std::unique_ptr<Outbox>> outboxesById;
  std::unordered_map<std::string, Outbox*> outboxesByName;

  DeliveryTap tap;
  Stats stats;
  std::vector<PeerFailureListener> peerFailureListeners;

  obs::Histogram* mFanout = nullptr;  ///< destinations per outbox send

  bool stopped = false;
  std::vector<std::jthread> workers;

  /// Wheel timer pacing reliable_->tick() when the dapplet runs on a shared
  /// reactor (DappletConfig::runtime.reactor); inert otherwise.
  Reactor::TimerHandle reliableTick;

  // Declared LAST so it is destroyed FIRST: the owned reactor's loops must
  // stop (joining any in-flight drain task) before the inbox maps and the
  // graveyard above are freed.
  std::unique_ptr<Reactor> ownedReactor;
};

Dapplet::Dapplet(Network& network, std::string name, DappletConfig config)
    : name_(std::move(name)),
      config_(config.normalized()),
      clockSource_(config_.clock != nullptr ? config_.clock
                                            : &ClockSource::system()),
      metricsRegistry_(config_.traceCapacity),
      impl_(std::make_unique<Impl>()) {
  impl_->mFanout = &metricsRegistry_.histogram("core.fanout");
  auto endpoint = network.openAt(config_.host, config_.port);
  reliable_ = std::make_unique<ReliableEndpoint>(
      std::move(endpoint), config_.reliable, &metricsRegistry_, clockSource_);
  reliable_->setDeliver([this](const NodeAddress& src, std::uint64_t streamId,
                               std::string_view payload) {
    onDeliver(src, streamId, payload);
  });
  reliable_->setOnFailure([this](const NodeAddress& dst,
                                 std::uint64_t streamId,
                                 const std::string& reason) {
    onStreamFailure(dst, streamId, reason);
  });
  if (config_.runtime.reactor != nullptr) {
    // Reactor mode: normalized() switched the endpoint to externalTick, so
    // its retransmission scan is paced here, on the shared timer wheel —
    // zero dedicated threads per dapplet.  tick() is a no-op after close(),
    // so a firing that races teardown is harmless.
    impl_->reliableTick = config_.runtime.reactor->every(
        config_.reliable.tickInterval,
        [rel = reliable_.get()] { rel->tick(); });
  }
}

Dapplet::~Dapplet() { stop(); }

NodeAddress Dapplet::address() const { return reliable_->address(); }

Inbox& Dapplet::createInbox(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->stopped) throw ShutdownError("dapplet stopped");
  if (!name.empty() && impl_->inboxesByName.count(name) != 0) {
    throw AddressError("duplicate inbox name '" + name + "'");
  }
  const std::uint32_t id = impl_->nextInboxId++;
  InboxRef ref{address(), id, name};
  auto inboxPtr = std::shared_ptr<Inbox>(new Inbox(id, name, std::move(ref)));
  inboxPtr->setClockSource(clockSource_);
  if (config_.runtime.reactor != nullptr) {
    // The poster must not capture the dapplet: on a shared reactor a drain
    // task (which pins the inbox) can run after this dapplet is gone, and
    // its tail re-check re-posts through this lambda.  The configured
    // reactor outlives the dapplet by contract.
    inboxPtr->setScheduler(
        [r = config_.runtime.reactor](std::function<void()> task) {
          r->post(std::move(task));
        });
  } else {
    // Owned-reactor mode: the lazily-created reactor is stopped before the
    // inboxes are freed (Impl member order), so `this` stays valid for as
    // long as any drain task can run.
    inboxPtr->setScheduler([this](std::function<void()> task) {
      reactor().post(std::move(task));
    });
  }
  Inbox& result = *inboxPtr;
  impl_->inboxesById.emplace(id, std::move(inboxPtr));
  if (!name.empty()) impl_->inboxesByName.emplace(name, &result);
  return result;
}

Inbox& Dapplet::inbox(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->inboxesByName.find(name);
  if (it == impl_->inboxesByName.end()) {
    throw AddressError("no inbox named '" + name + "' in dapplet " + name_);
  }
  return *it->second;
}

bool Dapplet::hasInbox(const std::string& name) const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->inboxesByName.count(name) != 0;
}

void Dapplet::destroyInbox(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->inboxesByName.find(name);
  if (it == impl_->inboxesByName.end()) {
    throw AddressError("no inbox named '" + name + "' in dapplet " + name_);
  }
  Inbox* box = it->second;
  box->close();
  impl_->inboxesByName.erase(it);
  auto node = impl_->inboxesById.extract(box->localId());
  if (node) impl_->inboxGraveyard.push_back(std::move(node.mapped()));
}

void Dapplet::destroyInbox(Inbox& box) {
  std::scoped_lock lock(impl_->mutex);
  box.close();
  if (!box.name().empty()) impl_->inboxesByName.erase(box.name());
  auto node = impl_->inboxesById.extract(box.localId());
  if (node) impl_->inboxGraveyard.push_back(std::move(node.mapped()));
}

Outbox& Dapplet::createOutbox(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->stopped) throw ShutdownError("dapplet stopped");
  if (!name.empty() && impl_->outboxesByName.count(name) != 0) {
    throw AddressError("duplicate outbox name '" + name + "'");
  }
  const std::uint64_t id = impl_->nextOutboxId++;
  auto outboxPtr = std::unique_ptr<Outbox>(new Outbox(*this, id, name));
  Outbox& result = *outboxPtr;
  impl_->outboxesById.emplace(id, std::move(outboxPtr));
  if (!name.empty()) impl_->outboxesByName.emplace(name, &result);
  return result;
}

Outbox& Dapplet::outbox(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->outboxesByName.find(name);
  if (it == impl_->outboxesByName.end()) {
    throw AddressError("no outbox named '" + name + "' in dapplet " + name_);
  }
  return *it->second;
}

bool Dapplet::hasOutbox(const std::string& name) const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->outboxesByName.count(name) != 0;
}

void Dapplet::destroyOutbox(const std::string& name) {
  std::scoped_lock lock(impl_->mutex);
  const auto it = impl_->outboxesByName.find(name);
  if (it == impl_->outboxesByName.end()) {
    throw AddressError("no outbox named '" + name + "' in dapplet " + name_);
  }
  Outbox* box = it->second;
  impl_->outboxesByName.erase(it);
  impl_->outboxesById.erase(box->id());
}

void Dapplet::destroyOutbox(Outbox& box) {
  std::scoped_lock lock(impl_->mutex);
  if (!box.name().empty()) impl_->outboxesByName.erase(box.name());
  impl_->outboxesById.erase(box.id());
}

void Dapplet::spawn(std::function<void(std::stop_token)> fn) {
  std::scoped_lock lock(impl_->mutex);
  if (impl_->stopped) throw ShutdownError("dapplet stopped");
  // Wrap so a ShutdownError thrown out of a blocking receive during stop()
  // ends the worker quietly instead of terminating the process.  Worker
  // registration tells a virtual clock this thread's waits gate time
  // advancement (compute between waits is instantaneous in virtual time);
  // announced first so the clock cannot advance before the thread is up.
  clockSource_->announceWorker();
  impl_->workers.emplace_back(
      [fn = std::move(fn), this](std::stop_token stop) {
        ClockSource::WorkerScope workerScope(*clockSource_);
        try {
          fn(stop);
        } catch (const ShutdownError&) {
          // normal during stop()
        } catch (const Error& e) {
          DAPPLE_LOG(kWarn, kLog)
              << name_ << ": worker exited with error: " << e.what();
        }
      });
}

Reactor& Dapplet::reactor() {
  if (config_.runtime.reactor != nullptr) return *config_.runtime.reactor;
  std::scoped_lock lock(impl_->mutex);
  if (!impl_->ownedReactor) {
    Reactor::Options opts;
    opts.threads = config_.runtime.ownedThreads;
    opts.clock = clockSource_;
    impl_->ownedReactor = std::make_unique<Reactor>(opts);
  }
  return *impl_->ownedReactor;
}

Reactor::TimerHandle Dapplet::after(Duration delay,
                                    std::function<void()> fn) {
  return reactor().after(delay, std::move(fn));
}

Reactor::TimerHandle Dapplet::every(Duration period,
                                    std::function<void()> fn) {
  return reactor().every(period, std::move(fn));
}

void Dapplet::stop() {
  std::vector<std::jthread> workers;
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
    for (auto& [id, box] : impl_->inboxesById) box->close();
    workers.swap(impl_->workers);
  }
  for (auto& worker : workers) worker.request_stop();
  // Workers parked in timed clocked waits (heartbeat pacing, probe loops)
  // re-check their stop tokens only when woken; under a virtual clock that
  // wake must be routed, not waited out.
  clockSource_->interruptAll();
  workers.clear();  // joins
  // cancel() waits out any in-flight tick, so after it returns no loop
  // thread is still inside reliable_->tick() and reliable_ can be torn down
  // safely.  That wait only happens off loop threads, which is why stop()
  // (and ~Dapplet) must not be called from a reactor callback — there the
  // cancel degrades to asynchronous and a tick in flight on another loop
  // would race the teardown below (see the header contract).
  impl_->reliableTick.cancel();
  reliable_->close();
  Reactor* owned = nullptr;
  {
    std::scoped_lock lock(impl_->mutex);
    owned = impl_->ownedReactor.get();
  }
  if (owned) owned->stop();
}

void Dapplet::crash() {
  // Crash-stop semantics: the endpoint dies FIRST, so nothing — not even the
  // retransmission/ACK machinery — escapes after this line.  stop() is the
  // graceful inverse (drain, then close).
  reliable_->close();
  impl_->reliableTick.cancel();  // after close: ticks are already no-ops
  std::vector<std::jthread> workers;
  {
    std::scoped_lock lock(impl_->mutex);
    if (impl_->stopped) return;
    impl_->stopped = true;
    for (auto& [id, box] : impl_->inboxesById) box->close();
    workers.swap(impl_->workers);
  }
  for (auto& worker : workers) worker.request_stop();
  clockSource_->interruptAll();
  workers.clear();  // joins
  Reactor* owned = nullptr;
  {
    std::scoped_lock lock(impl_->mutex);
    owned = impl_->ownedReactor.get();
  }
  if (owned) owned->stop();
}

void Dapplet::addPeerFailureListener(PeerFailureListener listener) {
  std::scoped_lock lock(impl_->mutex);
  impl_->peerFailureListeners.push_back(std::move(listener));
}

void Dapplet::setDeliveryTap(DeliveryTap tap) {
  std::scoped_lock lock(impl_->mutex);
  impl_->tap = std::move(tap);
}

bool Dapplet::flush(Duration timeout) { return reliable_->flush(timeout); }

Dapplet::Stats Dapplet::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

obs::MetricsSnapshot Dapplet::metrics() const {
  obs::MetricsSnapshot snap = metricsRegistry_.snapshot();

  // The ordering layer keeps its own Stats struct (cheap, always on);
  // project it into the snapshot so one dump covers every layer.
  const ReliableEndpoint::Stats rs = reliable_->stats();
  snap.counters["reliable.data_sent"] += rs.dataSent;
  snap.counters["reliable.retransmits"] += rs.retransmits;
  snap.counters["reliable.fast_retransmits"] += rs.fastRetransmits;
  snap.counters["reliable.rtt_samples"] += rs.rttSamples;
  snap.counters["reliable.window_deferred"] += rs.windowDeferred;
  snap.counters["reliable.data_bytes"] += rs.dataBytes;
  snap.counters["reliable.retransmit_bytes"] += rs.retransmitBytes;
  snap.counters["reliable.delivered_bytes"] += rs.deliveredBytes;
  snap.counters["reliable.delivered"] += rs.delivered;
  snap.counters["reliable.duplicates"] += rs.duplicates;
  snap.counters["reliable.acks_sent"] += rs.acksSent;
  snap.counters["reliable.ack_frames_sent"] += rs.ackFramesSent;
  snap.counters["reliable.acks_coalesced"] += rs.acksCoalesced;
  snap.counters["reliable.dup_acks_suppressed"] += rs.dupAcksSuppressed;
  snap.counters["reliable.payload_copies"] += rs.payloadCopies;
  snap.counters["reliable.out_of_order_buffered"] += rs.outOfOrderBuffered;
  snap.counters["reliable.stream_failures"] += rs.failures;

  std::scoped_lock lock(impl_->mutex);
  snap.counters["core.messages_sent"] += impl_->stats.messagesSent;
  snap.counters["core.messages_delivered"] += impl_->stats.messagesDelivered;
  snap.counters["core.unroutable"] += impl_->stats.unroutable;
  snap.counters["core.consumed_by_tap"] += impl_->stats.consumedByTap;
  snap.gauges["core.inboxes"] =
      static_cast<std::int64_t>(impl_->inboxesById.size());
  snap.gauges["core.outboxes"] =
      static_cast<std::int64_t>(impl_->outboxesById.size());

  // Backlog high-water across every inbox this dapplet ever had (destroyed
  // inboxes park in the graveyard, so their peaks still count).
  std::int64_t hwm = 0;
  const auto consider = [&hwm](const Inbox& box) {
    const auto peak = static_cast<std::int64_t>(box.queueHighWater());
    if (peak > hwm) hwm = peak;
  };
  for (const auto& [id, box] : impl_->inboxesById) consider(*box);
  for (const auto& box : impl_->inboxGraveyard) consider(*box);
  snap.gauges["core.inbox_queue_hwm"] =
      std::max(snap.gauges["core.inbox_queue_hwm"], hwm);
  return snap;
}

void Dapplet::sendFromOutbox(std::uint64_t outboxId,
                             const std::vector<InboxRef>& destinations,
                             const Message& msg) {
  const std::uint64_t ts = clock_.tick();
  // Encode ONCE; every destination shares the refcounted body and adds only
  // its small addressing head (the string header written by beginString is
  // completed by the body bytes at frame-assembly time).
  const Payload body(encodeMessage(msg, config_.wireCodec));
  impl_->mFanout->record(destinations.size());
  std::vector<OutSend> sends;
  sends.reserve(destinations.size());
  for (const InboxRef& dst : destinations) {
    WireWriter w(config_.wireCodec);
    w.writeU64(dst.localId);
    w.writeString(dst.name);
    w.writeU64(ts);
    w.beginString(body.size());
    sends.push_back(OutSend{dst.node, std::move(w).str()});
  }
  reliable_->sendMany(std::move(sends), outboxId, body);
  std::scoped_lock lock(impl_->mutex);
  impl_->stats.messagesSent += destinations.size();
}

void Dapplet::onDeliver(const NodeAddress& src, std::uint64_t streamId,
                        std::string_view payload) {
  try {
    // Zero-copy envelope decode: every field is a view into the frame the
    // reliable layer handed us; decodeMessage copies only the leaf values.
    WireReader r(payload);
    const auto dstLocal = static_cast<std::uint32_t>(r.readU64());
    const std::string_view dstName = r.readStringView();
    const std::uint64_t sentAt = r.readU64();
    const std::string_view wire = r.readStringView();

    Delivery delivery;
    delivery.message = decodeMessage(wire);
    delivery.sentAt = sentAt;
    delivery.receivedAt = clock_.observe(sentAt);
    delivery.srcNode = src;
    delivery.srcOutbox = streamId;

    Inbox* target = nullptr;
    DeliveryTap tap;
    {
      std::scoped_lock lock(impl_->mutex);
      if (dstLocal != 0) {
        const auto it = impl_->inboxesById.find(dstLocal);
        if (it != impl_->inboxesById.end()) target = it->second.get();
      } else if (!dstName.empty()) {
        // Name routing is the rare path (refs minted by createInbox carry a
        // local id); only it pays the key materialization.
        const auto it = impl_->inboxesByName.find(std::string(dstName));
        if (it != impl_->inboxesByName.end()) target = it->second;
      }
      if (!target) {
        ++impl_->stats.unroutable;
        DAPPLE_LOG(kDebug, kLog)
            << name_ << ": unroutable message for inbox #" << dstLocal << "/'"
            << dstName << "' from " << src.toString();
        return;
      }
      tap = impl_->tap;
    }
    // The tap runs WITHOUT the dapplet lock: snapshot taps send markers,
    // which re-enters the send path.  Inbox storage is lock-free safe (see
    // inboxGraveyard) and push() on a closed inbox is a harmless drop.
    if (tap && tap(*target, delivery)) {
      std::scoped_lock lock(impl_->mutex);
      ++impl_->stats.consumedByTap;
      return;
    }
    {
      // Count before push: a receiver unblocked by the push may read
      // metrics immediately, and the tally must already include it.
      std::scoped_lock lock(impl_->mutex);
      ++impl_->stats.messagesDelivered;
    }
    target->push(std::move(delivery));
  } catch (const Error& e) {
    DAPPLE_LOG(kWarn, kLog) << name_ << ": dropping malformed envelope from "
                            << src.toString() << ": " << e.what();
  }
}

void Dapplet::onStreamFailure(const NodeAddress& dst, std::uint64_t streamId,
                              const std::string& reason) {
  std::vector<PeerFailureListener> listeners;
  {
    std::scoped_lock lock(impl_->mutex);
    const auto it = impl_->outboxesById.find(streamId);
    if (it != impl_->outboxesById.end()) {
      Outbox* box = it->second.get();
      std::scoped_lock boxLock(box->mutex_);
      box->failed_ = true;
      box->failReason_ = reason + " (to " + dst.toString() + ")";
    }
    listeners = impl_->peerFailureListeners;
  }
  // Listeners run without the dapplet lock (the reliable layer already
  // invokes failure callbacks outside its own lock), so they may reset
  // streams, unbind outboxes, or raise inbox alerts.
  for (const auto& listener : listeners) listener(dst, streamId, reason);
}


Value Dapplet::describe() const {
  std::scoped_lock lock(impl_->mutex);
  ValueMap out;
  out["name"] = Value(name_);
  out["address"] = Value(address().toString());
  out["clock"] = Value(static_cast<long long>(clock_.now()));
  out["stopped"] = Value(impl_->stopped);

  ValueMap stats;
  stats["sent"] = Value(static_cast<long long>(impl_->stats.messagesSent));
  stats["delivered"] =
      Value(static_cast<long long>(impl_->stats.messagesDelivered));
  stats["unroutable"] =
      Value(static_cast<long long>(impl_->stats.unroutable));
  out["stats"] = Value(std::move(stats));

  ValueList inboxes;
  for (const auto& [id, box] : impl_->inboxesById) {
    ValueMap entry;
    entry["id"] = Value(static_cast<long long>(box->localId()));
    entry["name"] = Value(box->name());
    entry["queued"] = Value(static_cast<long long>(box->size()));
    entry["closed"] = Value(box->isClosed());
    inboxes.push_back(Value(std::move(entry)));
  }
  out["inboxes"] = Value(std::move(inboxes));

  ValueList outboxes;
  for (const auto& [id, box] : impl_->outboxesById) {
    ValueMap entry;
    entry["id"] = Value(static_cast<long long>(box->id()));
    entry["name"] = Value(box->name());
    entry["fanout"] = Value(static_cast<long long>(box->fanout()));
    outboxes.push_back(Value(std::move(entry)));
  }
  out["outboxes"] = Value(std::move(outboxes));
  return Value(std::move(out));
}

}  // namespace dapple
