#include "dapple/core/rpc.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "dapple/serial/data_message.hpp"
#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "rpc";
constexpr const char* kRequestKind = "rpc.req";
constexpr const char* kReplyKind = "rpc.rsp";
}  // namespace

struct RpcServer::Impl : std::enable_shared_from_this<RpcServer::Impl> {
  explicit Impl(Dapplet& dapplet) : d(dapplet) {}

  Dapplet& d;
  Inbox* inbox = nullptr;

  mutable std::mutex mutex;
  std::condition_variable loopExited;
  bool loopDone = false;
  /// Reactor mode: requests are served from an Inbox::onMessage handler —
  /// no serve thread.  Bound methods then run on a reactor loop and must
  /// not block for long.
  bool reactorMode = false;
  std::map<std::string, Method> methods;
  Stats stats;

  // Outboxes for replies, one per caller reply-inbox.
  std::map<std::uint64_t, Outbox*> replyOutboxes;

  void sendReply(const InboxRef& target, const DataMessage& msg) {
    Outbox* box = nullptr;
    {
      std::scoped_lock lock(mutex);
      const std::uint64_t key =
          target.node.packed() * 1000003u + target.localId;
      const auto it = replyOutboxes.find(key);
      if (it != replyOutboxes.end()) {
        box = it->second;
      } else {
        box = &d.createOutbox();
        box->add(target);
        replyOutboxes.emplace(key, box);
      }
    }
    box->send(msg);
  }

  void serveOne(const Delivery& del) {
    const auto* req = dynamic_cast<const DataMessage*>(del.message.get());
    if (req == nullptr || req->kind() != kRequestKind) {
      DAPPLE_LOG(kDebug, kLog) << d.name() << ": ignoring non-request "
                               << del.message->typeName();
      return;
    }
    const std::string method = req->get("method").asString();
    const Value& args = req->get("args");
    const bool wantsReply = req->has("replyTo");

    Method fn;
    {
      std::scoped_lock lock(mutex);
      const auto it = methods.find(method);
      if (it != methods.end()) fn = it->second;
      if (wantsReply) {
        ++stats.callsServed;
      } else {
        ++stats.notifiesServed;
      }
    }

    Value result;
    std::string error;
    if (!fn) {
      error = "no such method '" + method + "'";
    } else {
      try {
        result = fn(args);
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    if (!error.empty()) {
      std::scoped_lock lock(mutex);
      ++stats.errors;
    }
    if (!wantsReply) return;

    DataMessage rsp(kReplyKind);
    rsp.set("id", req->get("id"));
    if (error.empty()) {
      rsp.set("ok", Value(true));
      rsp.set("value", result);
    } else {
      rsp.set("ok", Value(false));
      rsp.set("error", Value(error));
    }
    sendReply(inboxRefFromValue(req->get("replyTo")), rsp);
  }

  void run(std::stop_token stop) {
    while (!stop.stop_requested()) {
      Delivery del = inbox->receive();  // ShutdownError ends the loop
      try {
        serveOne(del);
      } catch (const ShutdownError&) {
        throw;
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog) << d.name() << ": rpc dispatch error: "
                                << e.what();
      }
    }
  }
};

RpcServer::RpcServer(Dapplet& dapplet, const std::string& inboxName)
    : impl_(std::make_shared<Impl>(dapplet)) {
  impl_->inbox = &dapplet.createInbox(inboxName);
  auto impl = impl_;
  if (dapplet.config().runtime.reactor != nullptr) {
    impl_->reactorMode = true;
    impl_->inbox->onMessage([impl](Delivery del) {
      try {
        impl->serveOne(del);
      } catch (const ShutdownError&) {
        // Dapplet stopping under us; remaining requests drain harmlessly.
      } catch (const Error& e) {
        DAPPLE_LOG(kWarn, kLog)
            << impl->d.name() << ": rpc dispatch error: " << e.what();
      }
    });
    return;
  }
  dapplet.spawn([impl](std::stop_token stop) {
    try {
      impl->run(stop);
    } catch (...) {
      std::scoped_lock lock(impl->mutex);
      impl->loopDone = true;
      impl->loopExited.notify_all();
      throw;
    }
    std::scoped_lock lock(impl->mutex);
    impl->loopDone = true;
    impl->loopExited.notify_all();
  });
}

RpcServer::~RpcServer() {
  // onMessage(nullptr) returns only once any in-flight serveOne has
  // finished — the reactor-mode equivalent of the loopExited wait below.
  if (impl_->reactorMode) impl_->inbox->onMessage(nullptr);
  try {
    impl_->d.destroyInbox(*impl_->inbox);
  } catch (const Error&) {
  }
  if (impl_->reactorMode) return;
  std::unique_lock lock(impl_->mutex);
  impl_->loopExited.wait_for(lock, seconds(5),
                             [&] { return impl_->loopDone; });
}

void RpcServer::bind(const std::string& method, Method fn) {
  std::scoped_lock lock(impl_->mutex);
  impl_->methods[method] = std::move(fn);
}

InboxRef RpcServer::ref() const { return impl_->inbox->ref(); }

RpcServer::Stats RpcServer::stats() const {
  std::scoped_lock lock(impl_->mutex);
  return impl_->stats;
}

// ===========================================================================

struct RpcClient::Impl {
  Impl(Dapplet& dapplet, InboxRef serverRef)
      : d(dapplet), server(std::move(serverRef)) {}

  Dapplet& d;
  InboxRef server;
  Inbox* replyInbox = nullptr;
  Outbox* requestOutbox = nullptr;

  std::mutex mutex;  // serializes call bookkeeping across threads
  std::condition_variable stashChanged;
  bool someoneReceiving = false;  // leader/follower: one receiver at a time
  std::uint64_t nextId = 1;
  std::map<std::uint64_t, Value> stashedReplies;
};

RpcClient::RpcClient(Dapplet& dapplet, InboxRef server)
    : impl_(std::make_unique<Impl>(dapplet, std::move(server))) {
  impl_->replyInbox = &dapplet.createInbox();
  impl_->requestOutbox = &dapplet.createOutbox();
  impl_->requestOutbox->add(impl_->server);
}

RpcClient::~RpcClient() {
  try {
    impl_->d.destroyInbox(*impl_->replyInbox);
    impl_->d.destroyOutbox(*impl_->requestOutbox);
  } catch (const Error&) {
  }
}

void RpcClient::addServer(InboxRef server) {
  impl_->requestOutbox->add(server);
}

void RpcClient::notify(const std::string& method, const Value& args) {
  DataMessage req(kRequestKind);
  req.set("method", Value(method));
  req.set("args", args);
  req.set("id", Value(0));
  impl_->requestOutbox->send(req);
}

Value RpcClient::call(const std::string& method, const Value& args,
                      Duration timeout) {
  std::uint64_t id = 0;
  {
    std::scoped_lock lock(impl_->mutex);
    id = impl_->nextId++;
  }
  DataMessage req(kRequestKind);
  req.set("method", Value(method));
  req.set("args", args);
  req.set("id", Value(static_cast<long long>(id)));
  req.set("replyTo", inboxRefToValue(impl_->replyInbox->ref()));
  impl_->requestOutbox->send(req);

  // Several threads may call concurrently over the one reply inbox, so a
  // single "leader" drains the inbox into the stash while the others wait
  // on the stash; every arrival wakes everyone to re-check.
  ClockSource& clk = impl_->d.clockSource();
  const TimePoint deadline = clk.now() + timeout;
  std::unique_lock lock(impl_->mutex);
  while (true) {
    const auto it = impl_->stashedReplies.find(id);
    if (it != impl_->stashedReplies.end()) {
      Value rsp = std::move(it->second);
      impl_->stashedReplies.erase(it);
      return unpack(rsp, method);
    }
    if (clk.now() >= deadline) {
      throw TimeoutError("rpc call '" + method + "' timed out");
    }
    if (impl_->someoneReceiving) {
      clk.parkUntil(lock, impl_->stashChanged, deadline);
      continue;
    }
    impl_->someoneReceiving = true;
    lock.unlock();
    std::optional<Delivery> del;
    try {
      del = impl_->replyInbox->receiveFor(milliseconds(20));
    } catch (...) {
      lock.lock();
      impl_->someoneReceiving = false;
      clk.notifyAll(impl_->stashChanged);
      throw;
    }
    lock.lock();
    impl_->someoneReceiving = false;
    if (del) {
      const auto* rsp = dynamic_cast<const DataMessage*>(del->message.get());
      if (rsp != nullptr && rsp->kind() == kReplyKind) {
        const auto rspId =
            static_cast<std::uint64_t>(rsp->get("id").asInt());
        impl_->stashedReplies.emplace(rspId, Value(rsp->body()));
      }
    }
    clk.notifyAll(impl_->stashChanged);
  }
}

Value RpcClient::unpack(const Value& rsp, const std::string& method) {
  if (rsp.at("ok").asBool()) return rsp.at("value");
  throw Error("rpc call '" + method + "' failed: " +
              rsp.at("error").asString());
}

}  // namespace dapple
