#include "dapple/core/directory.hpp"

namespace dapple {

Directory::Directory(const Directory& other) {
  std::scoped_lock lock(other.mutex_);
  entries_ = other.entries_;
}

Directory& Directory::operator=(const Directory& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mutex_, other.mutex_);
  entries_ = other.entries_;
  return *this;
}

void Directory::put(const std::string& name, const InboxRef& ref) {
  std::scoped_lock lock(mutex_);
  entries_[name] = ref;
}

InboxRef Directory::lookup(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) {
    throw AddressError("directory: no entry for '" + name + "'");
  }
  return it->second;
}

bool Directory::has(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  return entries_.count(name) != 0;
}

void Directory::removeEntry(const std::string& name) {
  std::scoped_lock lock(mutex_);
  entries_.erase(name);
}

std::vector<std::string> Directory::names() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, ref] : entries_) out.push_back(name);
  return out;
}

std::size_t Directory::size() const {
  std::scoped_lock lock(mutex_);
  return entries_.size();
}

Value Directory::toValue() const {
  std::scoped_lock lock(mutex_);
  ValueMap map;
  for (const auto& [name, ref] : entries_) {
    ValueMap entry;
    entry["node"] = Value(static_cast<long long>(ref.node.packed()));
    entry["id"] = Value(static_cast<long long>(ref.localId));
    entry["name"] = Value(ref.name);
    map[name] = Value(std::move(entry));
  }
  return Value(std::move(map));
}

Directory Directory::fromValue(const Value& value) {
  Directory dir;
  for (const auto& [name, entry] : value.asMap()) {
    InboxRef ref;
    ref.node = NodeAddress::fromPacked(
        static_cast<std::uint64_t>(entry.at("node").asInt()));
    ref.localId = static_cast<std::uint32_t>(entry.at("id").asInt());
    ref.name = entry.at("name").asString();
    dir.put(name, ref);
  }
  return dir;
}

}  // namespace dapple
