#include "dapple/core/reactor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "dapple/util/log.hpp"

namespace dapple {

namespace {
constexpr const char* kLog = "reactor";
constexpr std::uint64_t kNoTick = std::numeric_limits<std::uint64_t>::max();
}  // namespace

/// One scheduled timer.  Owned by its loop's wheel while scheduled (and by
/// the fire batch while executing); handles hold weak references.
struct Reactor::TimerHandle::Timer {
  std::function<void()> fn;
  std::uint64_t deadlineTick = 0;  ///< absolute wheel tick
  std::uint64_t periodTicks = 0;   ///< 0 = one-shot
  std::uint64_t seq = 0;           ///< arm order, deterministic fire tie-break
  std::shared_ptr<Loop> owner;
  std::atomic<bool> cancelled{false};
  std::atomic<bool> scheduled{false};
};

/// One event-loop shard: a ready queue plus a hashed timer wheel, serviced
/// by one thread.  Shared-owned by the reactor and by every timer armed on
/// it, so a straggling TimerHandle can still cancel safely after the
/// reactor is gone.
struct Reactor::Loop {
  using Timer = Reactor::TimerHandle::Timer;

  explicit Loop(std::size_t slotCount) : slots(slotCount) {}

  mutable std::mutex m;
  std::condition_variable cv;      ///< loop wakeups (tasks, timers, stop)
  std::condition_variable idleCv;  ///< signalled when a callback finishes
  std::deque<std::function<void()>> ready;
  std::vector<std::vector<std::shared_ptr<Timer>>> slots;
  std::uint64_t currentTick = 0;  ///< last tick the wheel advanced through
  std::size_t timerCount = 0;
  std::uint64_t earliest = kNoTick;  ///< min-deadline hint (see earliestDirty)
  bool earliestDirty = false;
  bool timersChanged = false;  ///< set on insert; re-evaluates a timed park
  bool stopping = false;
  Timer* running = nullptr;  ///< timer whose callback is executing now
  std::uint64_t nextSeq = 0;
  ClockSource* clk = nullptr;
  // Stats.
  std::uint64_t tasksRun = 0;
  std::uint64_t timersFired = 0;
  std::uint64_t timersCancelled = 0;
  // Last member: joined before the rest is torn down.
  std::jthread thread;

  /// Caller holds `m`.  Deadline ticks are clamped forward so a timer is
  /// never inserted into a slot the wheel has already swept past.
  void insertLocked(const std::shared_ptr<Timer>& t) {
    if (t->deadlineTick <= currentTick) t->deadlineTick = currentTick + 1;
    slots[t->deadlineTick % slots.size()].push_back(t);
    ++timerCount;
    if (!earliestDirty) earliest = std::min(earliest, t->deadlineTick);
    timersChanged = true;
  }

  /// Caller holds `m`.  Earliest pending deadline, recomputed lazily after
  /// an expiry sweep invalidates the hint.
  std::uint64_t nextDueTick() {
    if (timerCount == 0) {
      earliest = kNoTick;
      earliestDirty = false;
      return kNoTick;
    }
    if (earliestDirty) {
      std::uint64_t e = kNoTick;
      for (const auto& slot : slots) {
        for (const auto& t : slot) e = std::min(e, t->deadlineTick);
      }
      earliest = e;
      earliestDirty = false;
    }
    return earliest;
  }

  /// Caller holds `m`.  Advances the wheel to `nowTick` and removes every
  /// timer due at or before it, returned in deterministic
  /// (deadline, arm-order) order.  When the loop slept past a whole wheel
  /// revolution, one full sweep replaces the per-tick walk.
  std::vector<std::shared_ptr<Timer>> collectExpired(std::uint64_t nowTick) {
    std::vector<std::shared_ptr<Timer>> out;
    if (timerCount != 0) {
      auto takeDue = [&](std::vector<std::shared_ptr<Timer>>& slot) {
        for (auto it = slot.begin(); it != slot.end();) {
          if ((*it)->deadlineTick <= nowTick) {
            out.push_back(std::move(*it));
            it = slot.erase(it);
          } else {
            ++it;
          }
        }
      };
      if (nowTick - currentTick >= slots.size()) {
        for (auto& slot : slots) takeDue(slot);
      } else {
        for (std::uint64_t t = currentTick + 1; t <= nowTick; ++t) {
          takeDue(slots[t % slots.size()]);
        }
      }
      timerCount -= out.size();
      if (!out.empty()) earliestDirty = true;
      std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
        return std::tie(a->deadlineTick, a->seq) <
               std::tie(b->deadlineTick, b->seq);
      });
    }
    currentTick = nowTick;
    return out;
  }
};

struct Reactor::Impl {
  /// Set while a thread executes a reactor loop; TimerHandle::cancel uses it
  /// to avoid self-deadlocking waits from inside callbacks.
  static thread_local Loop* currentLoop;

  ClockSource* clk = nullptr;
  TimePoint epoch{};
  Duration granularity{};
  std::vector<std::shared_ptr<Loop>> loops;
  std::atomic<std::size_t> rr{0};
  std::atomic<bool> stopped{false};

  std::uint64_t tickOf(TimePoint when) const {
    if (when <= epoch) return 0;
    if (when == TimePoint::max()) return kNoTick / 2;
    const auto diff = static_cast<std::uint64_t>((when - epoch).count());
    const auto g = static_cast<std::uint64_t>(granularity.count());
    return (diff + g - 1) / g;
  }

  std::uint64_t ticksOf(Duration d) const {
    if (d <= Duration::zero()) return 1;
    const auto g = static_cast<std::uint64_t>(granularity.count());
    const auto n = (static_cast<std::uint64_t>(d.count()) + g - 1) / g;
    return n == 0 ? 1 : n;
  }

  TimePoint timeOf(std::uint64_t tick) const {
    const auto maxTicks = static_cast<std::uint64_t>(
        (TimePoint::max() - epoch).count() /
        granularity.count());
    if (tick >= maxTicks) return TimePoint::max();
    return epoch + granularity * static_cast<std::int64_t>(tick);
  }

  const std::shared_ptr<Loop>& pick() {
    return loops[rr.fetch_add(1) % loops.size()];
  }

  TimerHandle arm(Duration delay, std::uint64_t periodTicks,
                  std::function<void()> fn);
  void runLoop(Loop& loop, std::stop_token stop);
};

thread_local Reactor::Loop* Reactor::Impl::currentLoop = nullptr;

void Reactor::Impl::runLoop(Loop& loop, std::stop_token stop) {
  ClockSource::WorkerScope workerScope(*clk);
  currentLoop = &loop;
  std::unique_lock lock(loop.m);
  while (true) {
    while (!loop.ready.empty() && !stop.stop_requested()) {
      auto fn = std::move(loop.ready.front());
      loop.ready.pop_front();
      ++loop.tasksRun;
      lock.unlock();
      try {
        fn();
      } catch (const std::exception& e) {
        DAPPLE_LOG(kWarn, kLog) << "posted task threw: " << e.what();
      } catch (...) {
        DAPPLE_LOG(kWarn, kLog) << "posted task threw";
      }
      lock.lock();
    }
    if (stop.stop_requested()) break;

    const std::uint64_t due = loop.nextDueTick();
    if (due == kNoTick) {
      clk->wait(lock, loop.cv, [&] {
        return stop.stop_requested() || !loop.ready.empty() ||
               loop.timerCount > 0;
      });
      continue;
    }
    const TimePoint target = timeOf(due);
    if (clk->now() < target) {
      loop.timersChanged = false;
      clk->waitUntil(lock, loop.cv, target, [&] {
        return stop.stop_requested() || !loop.ready.empty() ||
               loop.timersChanged;
      });
      continue;  // re-evaluate: tasks, an earlier timer, or the deadline
    }

    auto fired = loop.collectExpired(tickOf(clk->now()));
    for (std::size_t fi = 0; fi < fired.size(); ++fi) {
      const auto& t = fired[fi];
      if (stop.stop_requested()) {
        // Stop mid-batch: the rest of the batch was already pulled off the
        // wheel, so stop()'s slot sweep cannot reach it — retire it here or
        // TimerHandle::active() would report these timers live forever.
        for (; fi < fired.size(); ++fi) {
          fired[fi]->scheduled.store(false, std::memory_order_release);
        }
        break;
      }
      if (t->cancelled.load(std::memory_order_acquire)) {
        t->scheduled.store(false, std::memory_order_release);
        ++loop.timersCancelled;
        continue;
      }
      loop.running = t.get();
      ++loop.timersFired;
      lock.unlock();
      try {
        t->fn();
      } catch (const std::exception& e) {
        DAPPLE_LOG(kWarn, kLog) << "timer callback threw: " << e.what();
      } catch (...) {
        DAPPLE_LOG(kWarn, kLog) << "timer callback threw";
      }
      lock.lock();
      loop.running = nullptr;
      clk->notifyAll(loop.idleCv);
      const bool rearm = t->periodTicks != 0 &&
                         !t->cancelled.load(std::memory_order_acquire) &&
                         !loop.stopping;
      if (rearm) {
        // Fixed-rate with catch-up skipping: land on the next multiple of
        // the period past the wheel's current tick, never in the past.
        std::uint64_t next = t->deadlineTick + t->periodTicks;
        if (next <= loop.currentTick) {
          const std::uint64_t behind = loop.currentTick - t->deadlineTick;
          next = t->deadlineTick +
                 (behind / t->periodTicks + 1) * t->periodTicks;
        }
        t->deadlineTick = next;
        loop.insertLocked(t);
      } else {
        // A periodic that stops because it was cancelled (possibly from
        // inside its own callback) is a cancellation, not a fire-out.
        if (t->periodTicks != 0 &&
            t->cancelled.load(std::memory_order_acquire)) {
          ++loop.timersCancelled;
        }
        t->scheduled.store(false, std::memory_order_release);
      }
    }
  }
  currentLoop = nullptr;
}

Reactor::TimerHandle Reactor::Impl::arm(Duration delay,
                                        std::uint64_t periodTicks,
                                        std::function<void()> fn) {
  const std::shared_ptr<Loop>& loop = pick();
  auto timer = std::make_shared<TimerHandle::Timer>();
  timer->fn = std::move(fn);
  timer->periodTicks = periodTicks;
  timer->owner = loop;
  const TimePoint deadline = saturatingDeadline(clk->now(), delay);
  {
    std::scoped_lock lock(loop->m);
    if (loop->stopping) return TimerHandle{};
    timer->seq = loop->nextSeq++;
    timer->deadlineTick = tickOf(deadline);
    timer->scheduled.store(true, std::memory_order_release);
    loop->insertLocked(timer);
  }
  clk->notifyOne(loop->cv);
  return TimerHandle(std::move(timer));
}

Reactor::Reactor() : Reactor(Options()) {}

Reactor::Reactor(const Options& options) : impl_(std::make_unique<Impl>()) {
  impl_->clk =
      options.clock != nullptr ? options.clock : &ClockSource::system();
  impl_->epoch = impl_->clk->now();
  impl_->granularity =
      options.tickGranularity > Duration::zero()
          ? options.tickGranularity
          : std::chrono::duration_cast<Duration>(milliseconds(1));
  unsigned threads = options.threads;
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t slots = std::max<std::size_t>(2, options.wheelSlots);
  impl_->loops.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    auto loop = std::make_shared<Loop>(slots);
    loop->clk = impl_->clk;
    impl_->loops.push_back(std::move(loop));
  }
  // Announce before spawn: under a virtual clock the window between thread
  // creation and worker registration must not look quiescent.
  for (auto& loop : impl_->loops) {
    impl_->clk->announceWorker();
    loop->thread = std::jthread([impl = impl_.get(), raw = loop.get()](
                                    std::stop_token stop) {
      impl->runLoop(*raw, stop);
    });
  }
}

Reactor::~Reactor() { stop(); }

void Reactor::stop() {
  if (impl_->stopped.exchange(true)) return;
  for (auto& loop : impl_->loops) {
    {
      std::scoped_lock lock(loop->m);
      loop->stopping = true;
    }
    loop->thread.request_stop();
    impl_->clk->notifyAll(loop->cv);
  }
  for (auto& loop : impl_->loops) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : impl_->loops) {
    std::scoped_lock lock(loop->m);
    for (auto& slot : loop->slots) {
      for (auto& t : slot) t->scheduled.store(false, std::memory_order_release);
      slot.clear();
    }
    loop->timerCount = 0;
    loop->earliest = kNoTick;
    loop->ready.clear();
  }
}

void Reactor::post(std::function<void()> fn) {
  const std::shared_ptr<Loop>& loop = impl_->pick();
  {
    std::scoped_lock lock(loop->m);
    if (loop->stopping) return;
    loop->ready.push_back(std::move(fn));
  }
  impl_->clk->notifyOne(loop->cv);
}

Reactor::TimerHandle Reactor::after(Duration delay, std::function<void()> fn) {
  return impl_->arm(delay, 0, std::move(fn));
}

Reactor::TimerHandle Reactor::every(Duration period, std::function<void()> fn) {
  return impl_->arm(period, impl_->ticksOf(period), std::move(fn));
}

std::size_t Reactor::threadCount() const { return impl_->loops.size(); }

ClockSource& Reactor::clock() const { return *impl_->clk; }

Reactor::Stats Reactor::stats() const {
  Stats out;
  for (const auto& loop : impl_->loops) {
    std::scoped_lock lock(loop->m);
    out.tasksRun += loop->tasksRun;
    out.timersFired += loop->timersFired;
    out.timersCancelled += loop->timersCancelled;
    out.timersPending += loop->timerCount;
  }
  return out;
}

void Reactor::TimerHandle::cancel() {
  auto t = timer_.lock();
  if (!t) return;
  t->cancelled.store(true, std::memory_order_release);
  auto loop = t->owner;
  if (!loop) return;
  // From a reactor loop thread the wait below would self-deadlock (the
  // running callback IS this thread, or two loops could wait on each
  // other), so cancellation is asynchronous there: the flag alone
  // guarantees no further firing and no re-arm.
  if (Impl::currentLoop != nullptr) return;
  std::unique_lock lock(loop->m);
  loop->clk->wait(lock, loop->idleCv,
                  [&] { return loop->running != t.get(); });
}

bool Reactor::TimerHandle::active() const {
  auto t = timer_.lock();
  if (!t) return false;
  return t->scheduled.load(std::memory_order_acquire) &&
         !t->cancelled.load(std::memory_order_acquire);
}

}  // namespace dapple
