#include "dapple/core/outbox.hpp"

#include <algorithm>

#include "dapple/core/dapplet.hpp"

namespace dapple {

void Outbox::add(const InboxRef& ref) {
  if (!ref.valid()) throw AddressError("add: invalid inbox address");
  std::scoped_lock lock(mutex_);
  if (std::find(destinations_->begin(), destinations_->end(), ref) !=
      destinations_->end()) {
    return;  // "appends the specified inbox ... if it is not already on it"
  }
  auto next = std::make_shared<std::vector<InboxRef>>(*destinations_);
  next->push_back(ref);
  destinations_ = std::move(next);
  ++version_;
}

void Outbox::remove(const InboxRef& ref) {
  std::scoped_lock lock(mutex_);
  const auto it =
      std::find(destinations_->begin(), destinations_->end(), ref);
  if (it == destinations_->end()) {
    throw AddressError("delete: " + ref.toString() +
                       " is not bound to this outbox");
  }
  auto next = std::make_shared<std::vector<InboxRef>>(*destinations_);
  next->erase(next->begin() + (it - destinations_->begin()));
  destinations_ = std::move(next);
  ++version_;
}

std::size_t Outbox::removeNode(const NodeAddress& node) {
  std::scoped_lock lock(mutex_);
  auto next = std::make_shared<std::vector<InboxRef>>(*destinations_);
  const std::size_t dropped = std::erase_if(
      *next, [&](const InboxRef& ref) { return ref.node == node; });
  if (dropped != 0) {
    destinations_ = std::move(next);
    ++version_;
  }
  return dropped;
}

void Outbox::send(const Message& msg) {
  std::shared_ptr<const std::vector<InboxRef>> destinations;
  {
    std::scoped_lock lock(mutex_);
    if (failed_) throw DeliveryError(failReason_);
    destinations = destinations_;  // ref bump; the list itself is immutable
  }
  owner_.sendFromOutbox(id_, *destinations, msg);
}

void Outbox::reset() {
  std::shared_ptr<const std::vector<InboxRef>> destinations;
  {
    std::scoped_lock lock(mutex_);
    failed_ = false;
    failReason_.clear();
    destinations = destinations_;
  }
  for (const InboxRef& dst : *destinations) {
    owner_.transport().resetStream(dst.node, id_);
  }
}

std::vector<InboxRef> Outbox::destinations() const {
  std::scoped_lock lock(mutex_);
  return *destinations_;
}

std::size_t Outbox::fanout() const {
  std::scoped_lock lock(mutex_);
  return destinations_->size();
}

std::uint64_t Outbox::destinationsVersion() const {
  std::scoped_lock lock(mutex_);
  return version_;
}

}  // namespace dapple
