file(REMOVE_RECURSE
  "CMakeFiles/bench_totalorder.dir/bench_totalorder.cpp.o"
  "CMakeFiles/bench_totalorder.dir/bench_totalorder.cpp.o.d"
  "bench_totalorder"
  "bench_totalorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_totalorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
