# Empty compiler generated dependencies file for bench_totalorder.
# This may be replaced when dependencies are built.
