file(REMOVE_RECURSE
  "CMakeFiles/bench_calendar.dir/bench_calendar.cpp.o"
  "CMakeFiles/bench_calendar.dir/bench_calendar.cpp.o.d"
  "bench_calendar"
  "bench_calendar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calendar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
