# Empty dependencies file for bench_calendar.
# This may be replaced when dependencies are built.
