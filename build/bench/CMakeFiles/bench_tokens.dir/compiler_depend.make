# Empty compiler generated dependencies file for bench_tokens.
# This may be replaced when dependencies are built.
