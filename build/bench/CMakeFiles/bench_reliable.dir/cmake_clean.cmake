file(REMOVE_RECURSE
  "CMakeFiles/bench_reliable.dir/bench_reliable.cpp.o"
  "CMakeFiles/bench_reliable.dir/bench_reliable.cpp.o.d"
  "bench_reliable"
  "bench_reliable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
