# Empty compiler generated dependencies file for bench_reliable.
# This may be replaced when dependencies are built.
