
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_clocks.cpp" "bench/CMakeFiles/bench_clocks.dir/bench_clocks.cpp.o" "gcc" "bench/CMakeFiles/bench_clocks.dir/bench_clocks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/services/CMakeFiles/dapple_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/dapple_snapshot.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/dapple_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/dapple_termination.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/dapple_directory.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/dapple_liveness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/dapple_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/dapple_tokens.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dapple_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reliable/CMakeFiles/dapple_reliable.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dapple_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dapple_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dapple_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
