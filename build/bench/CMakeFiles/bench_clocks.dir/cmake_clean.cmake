file(REMOVE_RECURSE
  "CMakeFiles/bench_clocks.dir/bench_clocks.cpp.o"
  "CMakeFiles/bench_clocks.dir/bench_clocks.cpp.o.d"
  "bench_clocks"
  "bench_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
