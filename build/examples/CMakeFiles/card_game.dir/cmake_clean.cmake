file(REMOVE_RECURSE
  "CMakeFiles/card_game.dir/card_game.cpp.o"
  "CMakeFiles/card_game.dir/card_game.cpp.o.d"
  "card_game"
  "card_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/card_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
