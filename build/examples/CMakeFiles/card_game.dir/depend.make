# Empty dependencies file for card_game.
# This may be replaced when dependencies are built.
