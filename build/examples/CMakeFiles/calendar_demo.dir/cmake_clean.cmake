file(REMOVE_RECURSE
  "CMakeFiles/calendar_demo.dir/calendar_demo.cpp.o"
  "CMakeFiles/calendar_demo.dir/calendar_demo.cpp.o.d"
  "calendar_demo"
  "calendar_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calendar_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
