# Empty dependencies file for calendar_demo.
# This may be replaced when dependencies are built.
