file(REMOVE_RECURSE
  "CMakeFiles/dynamic_session.dir/dynamic_session.cpp.o"
  "CMakeFiles/dynamic_session.dir/dynamic_session.cpp.o.d"
  "dynamic_session"
  "dynamic_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
