# Empty dependencies file for dynamic_session.
# This may be replaced when dependencies are built.
