file(REMOVE_RECURSE
  "CMakeFiles/design_collab.dir/design_collab.cpp.o"
  "CMakeFiles/design_collab.dir/design_collab.cpp.o.d"
  "design_collab"
  "design_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
