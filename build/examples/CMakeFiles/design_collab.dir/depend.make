# Empty dependencies file for design_collab.
# This may be replaced when dependencies are built.
