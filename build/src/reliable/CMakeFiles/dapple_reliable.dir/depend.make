# Empty dependencies file for dapple_reliable.
# This may be replaced when dependencies are built.
