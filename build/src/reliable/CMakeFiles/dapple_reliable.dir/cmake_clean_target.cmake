file(REMOVE_RECURSE
  "libdapple_reliable.a"
)
