file(REMOVE_RECURSE
  "CMakeFiles/dapple_reliable.dir/reliable.cpp.o"
  "CMakeFiles/dapple_reliable.dir/reliable.cpp.o.d"
  "libdapple_reliable.a"
  "libdapple_reliable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_reliable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
