# Empty dependencies file for dapple_apps.
# This may be replaced when dependencies are built.
