file(REMOVE_RECURSE
  "libdapple_apps.a"
)
