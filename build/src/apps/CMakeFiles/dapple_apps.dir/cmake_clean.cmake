file(REMOVE_RECURSE
  "CMakeFiles/dapple_apps.dir/calendar.cpp.o"
  "CMakeFiles/dapple_apps.dir/calendar.cpp.o.d"
  "CMakeFiles/dapple_apps.dir/cardgame.cpp.o"
  "CMakeFiles/dapple_apps.dir/cardgame.cpp.o.d"
  "CMakeFiles/dapple_apps.dir/design.cpp.o"
  "CMakeFiles/dapple_apps.dir/design.cpp.o.d"
  "libdapple_apps.a"
  "libdapple_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
