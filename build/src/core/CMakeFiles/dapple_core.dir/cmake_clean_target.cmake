file(REMOVE_RECURSE
  "libdapple_core.a"
)
