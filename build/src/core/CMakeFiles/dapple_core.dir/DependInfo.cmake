
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dapplet.cpp" "src/core/CMakeFiles/dapple_core.dir/dapplet.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/dapplet.cpp.o.d"
  "/root/repo/src/core/directory.cpp" "src/core/CMakeFiles/dapple_core.dir/directory.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/directory.cpp.o.d"
  "/root/repo/src/core/inbox_ref.cpp" "src/core/CMakeFiles/dapple_core.dir/inbox_ref.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/inbox_ref.cpp.o.d"
  "/root/repo/src/core/initiator.cpp" "src/core/CMakeFiles/dapple_core.dir/initiator.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/initiator.cpp.o.d"
  "/root/repo/src/core/outbox.cpp" "src/core/CMakeFiles/dapple_core.dir/outbox.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/outbox.cpp.o.d"
  "/root/repo/src/core/rpc.cpp" "src/core/CMakeFiles/dapple_core.dir/rpc.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/rpc.cpp.o.d"
  "/root/repo/src/core/session_agent.cpp" "src/core/CMakeFiles/dapple_core.dir/session_agent.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/session_agent.cpp.o.d"
  "/root/repo/src/core/session_msgs.cpp" "src/core/CMakeFiles/dapple_core.dir/session_msgs.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/session_msgs.cpp.o.d"
  "/root/repo/src/core/state.cpp" "src/core/CMakeFiles/dapple_core.dir/state.cpp.o" "gcc" "src/core/CMakeFiles/dapple_core.dir/state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reliable/CMakeFiles/dapple_reliable.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dapple_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dapple_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dapple_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
