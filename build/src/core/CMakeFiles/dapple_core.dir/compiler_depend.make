# Empty compiler generated dependencies file for dapple_core.
# This may be replaced when dependencies are built.
