file(REMOVE_RECURSE
  "CMakeFiles/dapple_core.dir/dapplet.cpp.o"
  "CMakeFiles/dapple_core.dir/dapplet.cpp.o.d"
  "CMakeFiles/dapple_core.dir/directory.cpp.o"
  "CMakeFiles/dapple_core.dir/directory.cpp.o.d"
  "CMakeFiles/dapple_core.dir/inbox_ref.cpp.o"
  "CMakeFiles/dapple_core.dir/inbox_ref.cpp.o.d"
  "CMakeFiles/dapple_core.dir/initiator.cpp.o"
  "CMakeFiles/dapple_core.dir/initiator.cpp.o.d"
  "CMakeFiles/dapple_core.dir/outbox.cpp.o"
  "CMakeFiles/dapple_core.dir/outbox.cpp.o.d"
  "CMakeFiles/dapple_core.dir/rpc.cpp.o"
  "CMakeFiles/dapple_core.dir/rpc.cpp.o.d"
  "CMakeFiles/dapple_core.dir/session_agent.cpp.o"
  "CMakeFiles/dapple_core.dir/session_agent.cpp.o.d"
  "CMakeFiles/dapple_core.dir/session_msgs.cpp.o"
  "CMakeFiles/dapple_core.dir/session_msgs.cpp.o.d"
  "CMakeFiles/dapple_core.dir/state.cpp.o"
  "CMakeFiles/dapple_core.dir/state.cpp.o.d"
  "libdapple_core.a"
  "libdapple_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
