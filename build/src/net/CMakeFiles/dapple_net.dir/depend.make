# Empty dependencies file for dapple_net.
# This may be replaced when dependencies are built.
