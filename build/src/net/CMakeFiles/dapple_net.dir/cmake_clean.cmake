file(REMOVE_RECURSE
  "CMakeFiles/dapple_net.dir/address.cpp.o"
  "CMakeFiles/dapple_net.dir/address.cpp.o.d"
  "CMakeFiles/dapple_net.dir/sim.cpp.o"
  "CMakeFiles/dapple_net.dir/sim.cpp.o.d"
  "CMakeFiles/dapple_net.dir/udp.cpp.o"
  "CMakeFiles/dapple_net.dir/udp.cpp.o.d"
  "libdapple_net.a"
  "libdapple_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
