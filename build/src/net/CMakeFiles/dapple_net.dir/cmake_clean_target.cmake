file(REMOVE_RECURSE
  "libdapple_net.a"
)
