file(REMOVE_RECURSE
  "CMakeFiles/dapple_serial.dir/builtin_messages.cpp.o"
  "CMakeFiles/dapple_serial.dir/builtin_messages.cpp.o.d"
  "CMakeFiles/dapple_serial.dir/message.cpp.o"
  "CMakeFiles/dapple_serial.dir/message.cpp.o.d"
  "CMakeFiles/dapple_serial.dir/value.cpp.o"
  "CMakeFiles/dapple_serial.dir/value.cpp.o.d"
  "CMakeFiles/dapple_serial.dir/wire.cpp.o"
  "CMakeFiles/dapple_serial.dir/wire.cpp.o.d"
  "libdapple_serial.a"
  "libdapple_serial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_serial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
