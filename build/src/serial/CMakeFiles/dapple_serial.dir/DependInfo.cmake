
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serial/builtin_messages.cpp" "src/serial/CMakeFiles/dapple_serial.dir/builtin_messages.cpp.o" "gcc" "src/serial/CMakeFiles/dapple_serial.dir/builtin_messages.cpp.o.d"
  "/root/repo/src/serial/message.cpp" "src/serial/CMakeFiles/dapple_serial.dir/message.cpp.o" "gcc" "src/serial/CMakeFiles/dapple_serial.dir/message.cpp.o.d"
  "/root/repo/src/serial/value.cpp" "src/serial/CMakeFiles/dapple_serial.dir/value.cpp.o" "gcc" "src/serial/CMakeFiles/dapple_serial.dir/value.cpp.o.d"
  "/root/repo/src/serial/wire.cpp" "src/serial/CMakeFiles/dapple_serial.dir/wire.cpp.o" "gcc" "src/serial/CMakeFiles/dapple_serial.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dapple_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
