# Empty dependencies file for dapple_serial.
# This may be replaced when dependencies are built.
