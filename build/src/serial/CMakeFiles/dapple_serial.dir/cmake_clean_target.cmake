file(REMOVE_RECURSE
  "libdapple_serial.a"
)
