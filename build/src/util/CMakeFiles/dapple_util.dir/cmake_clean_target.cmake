file(REMOVE_RECURSE
  "libdapple_util.a"
)
