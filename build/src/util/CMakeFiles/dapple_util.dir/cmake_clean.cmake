file(REMOVE_RECURSE
  "CMakeFiles/dapple_util.dir/log.cpp.o"
  "CMakeFiles/dapple_util.dir/log.cpp.o.d"
  "CMakeFiles/dapple_util.dir/rng.cpp.o"
  "CMakeFiles/dapple_util.dir/rng.cpp.o.d"
  "CMakeFiles/dapple_util.dir/strings.cpp.o"
  "CMakeFiles/dapple_util.dir/strings.cpp.o.d"
  "libdapple_util.a"
  "libdapple_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
