# Empty dependencies file for dapple_util.
# This may be replaced when dependencies are built.
