file(REMOVE_RECURSE
  "libdapple_termination.a"
)
