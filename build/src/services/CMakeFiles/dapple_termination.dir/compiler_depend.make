# Empty compiler generated dependencies file for dapple_termination.
# This may be replaced when dependencies are built.
