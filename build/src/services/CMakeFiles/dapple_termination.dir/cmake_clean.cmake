file(REMOVE_RECURSE
  "CMakeFiles/dapple_termination.dir/termination/termination.cpp.o"
  "CMakeFiles/dapple_termination.dir/termination/termination.cpp.o.d"
  "libdapple_termination.a"
  "libdapple_termination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
