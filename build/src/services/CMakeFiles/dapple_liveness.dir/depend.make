# Empty dependencies file for dapple_liveness.
# This may be replaced when dependencies are built.
