file(REMOVE_RECURSE
  "libdapple_liveness.a"
)
