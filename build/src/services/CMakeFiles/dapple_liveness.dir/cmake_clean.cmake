file(REMOVE_RECURSE
  "CMakeFiles/dapple_liveness.dir/liveness/liveness.cpp.o"
  "CMakeFiles/dapple_liveness.dir/liveness/liveness.cpp.o.d"
  "libdapple_liveness.a"
  "libdapple_liveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_liveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
