
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/clocks/causal_order.cpp" "src/services/CMakeFiles/dapple_clocks.dir/clocks/causal_order.cpp.o" "gcc" "src/services/CMakeFiles/dapple_clocks.dir/clocks/causal_order.cpp.o.d"
  "/root/repo/src/services/clocks/dist_mutex.cpp" "src/services/CMakeFiles/dapple_clocks.dir/clocks/dist_mutex.cpp.o" "gcc" "src/services/CMakeFiles/dapple_clocks.dir/clocks/dist_mutex.cpp.o.d"
  "/root/repo/src/services/clocks/total_order.cpp" "src/services/CMakeFiles/dapple_clocks.dir/clocks/total_order.cpp.o" "gcc" "src/services/CMakeFiles/dapple_clocks.dir/clocks/total_order.cpp.o.d"
  "/root/repo/src/services/clocks/vector_clock.cpp" "src/services/CMakeFiles/dapple_clocks.dir/clocks/vector_clock.cpp.o" "gcc" "src/services/CMakeFiles/dapple_clocks.dir/clocks/vector_clock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dapple_core.dir/DependInfo.cmake"
  "/root/repo/build/src/reliable/CMakeFiles/dapple_reliable.dir/DependInfo.cmake"
  "/root/repo/build/src/serial/CMakeFiles/dapple_serial.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dapple_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dapple_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
