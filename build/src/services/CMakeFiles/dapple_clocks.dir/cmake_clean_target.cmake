file(REMOVE_RECURSE
  "libdapple_clocks.a"
)
