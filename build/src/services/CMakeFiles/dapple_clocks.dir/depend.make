# Empty dependencies file for dapple_clocks.
# This may be replaced when dependencies are built.
