file(REMOVE_RECURSE
  "CMakeFiles/dapple_clocks.dir/clocks/causal_order.cpp.o"
  "CMakeFiles/dapple_clocks.dir/clocks/causal_order.cpp.o.d"
  "CMakeFiles/dapple_clocks.dir/clocks/dist_mutex.cpp.o"
  "CMakeFiles/dapple_clocks.dir/clocks/dist_mutex.cpp.o.d"
  "CMakeFiles/dapple_clocks.dir/clocks/total_order.cpp.o"
  "CMakeFiles/dapple_clocks.dir/clocks/total_order.cpp.o.d"
  "CMakeFiles/dapple_clocks.dir/clocks/vector_clock.cpp.o"
  "CMakeFiles/dapple_clocks.dir/clocks/vector_clock.cpp.o.d"
  "libdapple_clocks.a"
  "libdapple_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
