# Empty dependencies file for dapple_tokens.
# This may be replaced when dependencies are built.
