file(REMOVE_RECURSE
  "CMakeFiles/dapple_tokens.dir/tokens/token_manager.cpp.o"
  "CMakeFiles/dapple_tokens.dir/tokens/token_manager.cpp.o.d"
  "libdapple_tokens.a"
  "libdapple_tokens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
