file(REMOVE_RECURSE
  "libdapple_tokens.a"
)
