file(REMOVE_RECURSE
  "CMakeFiles/dapple_directory.dir/directory/directory_service.cpp.o"
  "CMakeFiles/dapple_directory.dir/directory/directory_service.cpp.o.d"
  "libdapple_directory.a"
  "libdapple_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
