file(REMOVE_RECURSE
  "libdapple_directory.a"
)
