# Empty compiler generated dependencies file for dapple_directory.
# This may be replaced when dependencies are built.
