file(REMOVE_RECURSE
  "CMakeFiles/dapple_sync.dir/sync/distributed.cpp.o"
  "CMakeFiles/dapple_sync.dir/sync/distributed.cpp.o.d"
  "libdapple_sync.a"
  "libdapple_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
