# Empty compiler generated dependencies file for dapple_sync.
# This may be replaced when dependencies are built.
