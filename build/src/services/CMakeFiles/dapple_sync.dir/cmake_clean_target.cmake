file(REMOVE_RECURSE
  "libdapple_sync.a"
)
