# Empty compiler generated dependencies file for dapple_snapshot.
# This may be replaced when dependencies are built.
