file(REMOVE_RECURSE
  "libdapple_snapshot.a"
)
