file(REMOVE_RECURSE
  "CMakeFiles/dapple_snapshot.dir/snapshot/snapshot.cpp.o"
  "CMakeFiles/dapple_snapshot.dir/snapshot/snapshot.cpp.o.d"
  "libdapple_snapshot.a"
  "libdapple_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dapple_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
