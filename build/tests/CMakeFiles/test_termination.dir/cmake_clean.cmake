file(REMOVE_RECURSE
  "CMakeFiles/test_termination.dir/test_termination.cpp.o"
  "CMakeFiles/test_termination.dir/test_termination.cpp.o.d"
  "test_termination"
  "test_termination.pdb"
  "test_termination[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_termination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
