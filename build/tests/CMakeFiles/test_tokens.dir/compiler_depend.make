# Empty compiler generated dependencies file for test_tokens.
# This may be replaced when dependencies are built.
