file(REMOVE_RECURSE
  "CMakeFiles/test_tokens.dir/test_tokens.cpp.o"
  "CMakeFiles/test_tokens.dir/test_tokens.cpp.o.d"
  "test_tokens"
  "test_tokens.pdb"
  "test_tokens[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tokens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
