file(REMOVE_RECURSE
  "CMakeFiles/test_udp_stack.dir/test_udp_stack.cpp.o"
  "CMakeFiles/test_udp_stack.dir/test_udp_stack.cpp.o.d"
  "test_udp_stack"
  "test_udp_stack.pdb"
  "test_udp_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_udp_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
