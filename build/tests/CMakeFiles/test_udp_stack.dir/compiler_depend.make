# Empty compiler generated dependencies file for test_udp_stack.
# This may be replaced when dependencies are built.
