# Empty compiler generated dependencies file for test_total_order.
# This may be replaced when dependencies are built.
