file(REMOVE_RECURSE
  "CMakeFiles/test_total_order.dir/test_total_order.cpp.o"
  "CMakeFiles/test_total_order.dir/test_total_order.cpp.o.d"
  "test_total_order"
  "test_total_order.pdb"
  "test_total_order[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_total_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
