# Empty dependencies file for test_causal.
# This may be replaced when dependencies are built.
