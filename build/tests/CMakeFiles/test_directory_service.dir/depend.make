# Empty dependencies file for test_directory_service.
# This may be replaced when dependencies are built.
