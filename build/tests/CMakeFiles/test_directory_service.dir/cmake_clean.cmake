file(REMOVE_RECURSE
  "CMakeFiles/test_directory_service.dir/test_directory_service.cpp.o"
  "CMakeFiles/test_directory_service.dir/test_directory_service.cpp.o.d"
  "test_directory_service"
  "test_directory_service.pdb"
  "test_directory_service[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_directory_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
