# Empty compiler generated dependencies file for test_introspection.
# This may be replaced when dependencies are built.
