file(REMOVE_RECURSE
  "CMakeFiles/test_introspection.dir/test_introspection.cpp.o"
  "CMakeFiles/test_introspection.dir/test_introspection.cpp.o.d"
  "test_introspection"
  "test_introspection.pdb"
  "test_introspection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_introspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
