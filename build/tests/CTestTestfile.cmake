# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_serial[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_reliable[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_session[1]_include.cmake")
include("/root/repo/build/tests/test_tokens[1]_include.cmake")
include("/root/repo/build/tests/test_clocks[1]_include.cmake")
include("/root/repo/build/tests/test_snapshot[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_termination[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_udp_stack[1]_include.cmake")
include("/root/repo/build/tests/test_directory_service[1]_include.cmake")
include("/root/repo/build/tests/test_total_order[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
include("/root/repo/build/tests/test_liveness[1]_include.cmake")
include("/root/repo/build/tests/test_causal[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_introspection[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
