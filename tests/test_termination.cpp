// Tests for Dijkstra–Scholten termination detection: the detector must
// fire exactly when the diffusing computation is globally quiet — never
// early (messages still in flight) and always eventually.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/termination/termination.hpp"
#include "dapple/util/rng.hpp"

namespace dapple {
namespace {

/// A diffusing computation: "work" messages carry a TTL; a member that
/// receives work with ttl > 0 forwards `fan` copies with ttl-1 to random
/// members.  Total work is finite, so the computation terminates.
struct DiffusionRig {
  explicit DiffusionRig(std::size_t n, std::uint64_t seed) : net(seed) {
    net.setDefaultLink(
        LinkParams{microseconds(500), microseconds(500), 0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
      members.push_back(std::make_unique<Member>());
      members[i]->dapplet =
          std::make_unique<Dapplet>(net, "dc" + std::to_string(i));
      members[i]->work = &members[i]->dapplet->createInbox("work");
      members[i]->detector =
          std::make_unique<TerminationDetector>(*members[i]->dapplet);
    }
    std::vector<InboxRef> refs;
    for (auto& m : members) refs.push_back(m->detector->ref());
    for (std::size_t i = 0; i < n; ++i) {
      members[i]->detector->attach(refs, i, /*rootIndex=*/0);
      for (std::size_t j = 0; j < n; ++j) {
        Outbox& box = members[i]->dapplet->createOutbox();
        box.add(members[j]->work->ref());
        members[i]->peers.push_back(&box);
      }
    }
  }

  struct Member {
    std::unique_ptr<Dapplet> dapplet;
    Inbox* work = nullptr;
    std::unique_ptr<TerminationDetector> detector;
    std::vector<Outbox*> peers;
    std::atomic<long long> processed{0};
  };

  void sendWork(std::size_t from, std::size_t to, long long ttl) {
    members[from]->detector->onSend(to);
    DataMessage msg("work");
    msg.set("ttl", Value(ttl));
    members[from]->peers[to]->send(msg);
  }

  /// Starts the worker loops; each processes work, forwards children, and
  /// reports quiet whenever its inbox drains.
  void startWorkers(int fan) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      Member* m = members[i].get();
      const std::size_t self = i;
      m->dapplet->spawn([this, m, self, fan](std::stop_token stop) {
        Rng rng(self * 7919 + 13);
        while (!stop.stop_requested()) {
          auto del = m->work->tryReceive();
          if (!del) {
            m->detector->onQuiet();
            del = m->work->tryReceive();
            if (!del) {
              std::this_thread::sleep_for(microseconds(300));
              continue;
            }
          }
          const auto* msg =
              dynamic_cast<const DataMessage*>(del->message.get());
          if (msg == nullptr) continue;
          const std::size_t src = senderOf(del->srcNode);
          m->detector->onReceive(src);
          ++m->processed;
          const long long ttl = msg->get("ttl").asInt();
          if (ttl > 0) {
            for (int c = 0; c < fan; ++c) {
              sendWork(self, rng.below(members.size()), ttl - 1);
            }
          }
          m->detector->onQuiet();
        }
      });
    }
  }

  std::size_t senderOf(const NodeAddress& addr) const {
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (members[i]->dapplet->address() == addr) return i;
    }
    return 0;
  }

  long long totalProcessed() const {
    long long total = 0;
    for (const auto& m : members) total += m->processed;
    return total;
  }

  ~DiffusionRig() {
    // Join the worker threads (they use the detectors) before destroying
    // the detectors.
    for (auto& m : members) m->dapplet->stop();
    for (auto& m : members) m->detector.reset();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Member>> members;
};

TEST(Termination, TrivialComputationTerminatesImmediately) {
  DiffusionRig rig(3, 41);
  rig.startWorkers(/*fan=*/2);
  rig.members[0]->detector->start();
  // Root seeds nothing and goes quiet: detection must be near-instant.
  rig.members[0]->detector->onQuiet();
  rig.members[0]->detector->awaitTermination(seconds(5));
  EXPECT_TRUE(rig.members[0]->detector->terminated());
}

class TerminationDiffusion
    : public ::testing::TestWithParam<std::tuple<std::size_t, long long>> {};

TEST_P(TerminationDiffusion, DetectsExactlyWhenAllWorkIsDone) {
  const auto [n, ttl] = GetParam();
  DiffusionRig rig(n, 42 + n);
  // Seed BEFORE the workers run, so a worker's early onQuiet() cannot see
  // the root engaged-but-deficit-free and declare termination too soon.
  rig.members[0]->detector->start();
  rig.sendWork(0, 1 % n, ttl);
  rig.sendWork(0, (n - 1), ttl);
  rig.startWorkers(/*fan=*/2);

  rig.members[0]->detector->awaitTermination(seconds(30));
  // Binary diffusion with TTL t seeds 2 messages: total = 2*(2^(t+1)-1).
  const long long expected = 2 * ((1LL << (ttl + 1)) - 1);
  EXPECT_EQ(rig.totalProcessed(), expected)
      << "termination declared before all work was processed";
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDepths, TerminationDiffusion,
    ::testing::Values(std::make_tuple(std::size_t{2}, 3LL),
                      std::make_tuple(std::size_t{3}, 4LL),
                      std::make_tuple(std::size_t{5}, 5LL),
                      std::make_tuple(std::size_t{4}, 6LL)));

TEST(Termination, NotDeclaredWhileWorkOutstanding) {
  DiffusionRig rig(2, 43);
  // No workers: a sent message is never processed, so termination must NOT
  // be detected.
  rig.members[0]->detector->start();
  rig.sendWork(0, 1, 0);
  rig.members[0]->detector->onQuiet();
  EXPECT_THROW(rig.members[0]->detector->awaitTermination(milliseconds(300)),
               TimeoutError);
  EXPECT_FALSE(rig.members[0]->detector->terminated());
}

TEST(Termination, OnlyRootMayStartOrAwait) {
  DiffusionRig rig(2, 44);
  EXPECT_THROW(rig.members[1]->detector->start(), SessionError);
  EXPECT_THROW(rig.members[1]->detector->awaitTermination(milliseconds(50)),
               SessionError);
}

TEST(Termination, EngagementTreeStatsPopulate) {
  DiffusionRig rig(3, 45);
  rig.members[0]->detector->start();
  rig.sendWork(0, 1, 3);
  rig.startWorkers(2);
  rig.members[0]->detector->awaitTermination(seconds(30));
  std::uint64_t engagements = 0;
  std::uint64_t acks = 0;
  for (auto& m : rig.members) {
    engagements += m->detector->stats().engagements;
    acks += m->detector->stats().acksSent;
  }
  EXPECT_GE(engagements, 2u);  // root + at least one engaged member
  EXPECT_GT(acks, 0u);
}

}  // namespace
}  // namespace dapple
