// Tests for the synchronization constructs (§4.3): intra-dapplet
// (semaphore, barrier, single-assignment, bounded channel) and
// inter-dapplet (distributed barrier, distributed single-assignment).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "dapple/net/sim.hpp"
#include "dapple/services/sync/distributed.hpp"
#include "dapple/services/sync/local.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// Semaphore
// ---------------------------------------------------------------------------

TEST(Semaphore, AcquireConsumesRelease) {
  Semaphore sem(2);
  EXPECT_EQ(sem.value(), 2);
  sem.acquire();
  sem.acquire();
  EXPECT_EQ(sem.value(), 0);
  EXPECT_FALSE(sem.tryAcquire());
  sem.release();
  EXPECT_TRUE(sem.tryAcquire());
}

TEST(Semaphore, TryAcquireForTimesOut) {
  Semaphore sem(0);
  EXPECT_FALSE(sem.tryAcquireFor(milliseconds(30)));
  sem.release();
  EXPECT_TRUE(sem.tryAcquireFor(milliseconds(30)));
}

TEST(Semaphore, BlocksUntilReleased) {
  Semaphore sem(0);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    sem.acquire();
    acquired = true;
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(acquired);
  sem.release();
  t.join();
  EXPECT_TRUE(acquired);
}

TEST(Semaphore, BoundsConcurrency) {
  Semaphore sem(3);
  std::atomic<int> inside{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int r = 0; r < 50; ++r) {
        sem.acquire();
        if (++inside > 3) violated = true;
        --inside;
        sem.release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated);
  EXPECT_EQ(sem.value(), 3);
}

TEST(Semaphore, NegativeInitialThrows) {
  EXPECT_THROW(Semaphore(-1), Error);
}

// ---------------------------------------------------------------------------
// Barrier
// ---------------------------------------------------------------------------

TEST(Barrier, AllPartiesMeetRepeatedly) {
  constexpr std::size_t kParties = 4;
  constexpr int kRounds = 20;
  Barrier barrier(kParties);
  std::atomic<int> phase{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  std::vector<std::atomic<int>> arrived(kRounds);
  for (std::size_t p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        ++arrived[r];
        const std::size_t gen = barrier.arriveAndWait();
        // When released, everyone must have arrived at this round.
        if (arrived[r] != static_cast<int>(kParties)) violated = true;
        if (gen != static_cast<std::size_t>(r)) violated = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated);
  (void)phase;
}

TEST(Barrier, ZeroPartiesThrows) { EXPECT_THROW(Barrier(0), Error); }

// ---------------------------------------------------------------------------
// SingleAssignment
// ---------------------------------------------------------------------------

TEST(SingleAssignment, GetBlocksUntilSet) {
  SingleAssignment<int> var;
  EXPECT_FALSE(var.isSet());
  std::thread setter([&] {
    std::this_thread::sleep_for(milliseconds(20));
    var.set(42);
  });
  EXPECT_EQ(var.get(), 42);
  setter.join();
  EXPECT_TRUE(var.isSet());
  EXPECT_EQ(var.get(), 42);  // repeat reads fine
}

TEST(SingleAssignment, SecondSetThrows) {
  SingleAssignment<std::string> var;
  var.set("first");
  EXPECT_THROW(var.set("second"), Error);
  EXPECT_EQ(var.get(), "first");
}

TEST(SingleAssignment, TimedGetThrows) {
  SingleAssignment<int> var;
  EXPECT_THROW(var.get(milliseconds(30)), TimeoutError);
}

TEST(SingleAssignment, ManyConcurrentReadersSeeSameValue) {
  SingleAssignment<int> var;
  std::atomic<bool> ok{true};
  std::vector<std::thread> readers;
  for (int i = 0; i < 6; ++i) {
    readers.emplace_back([&] {
      if (var.get() != 7) ok = false;
    });
  }
  var.set(7);
  for (auto& t : readers) t.join();
  EXPECT_TRUE(ok);
}

// ---------------------------------------------------------------------------
// BoundedChannel
// ---------------------------------------------------------------------------

TEST(BoundedChannel, FifoAndCapacity) {
  BoundedChannel<int> ch(2);
  ch.put(1);
  ch.put(2);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.take(), 1);
  EXPECT_EQ(ch.take(), 2);
  EXPECT_FALSE(ch.tryTake().has_value());
}

TEST(BoundedChannel, PutBlocksWhenFull) {
  BoundedChannel<int> ch(1);
  ch.put(1);
  std::atomic<bool> done{false};
  std::thread t([&] {
    ch.put(2);  // blocks until a take
    done = true;
  });
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_FALSE(done);
  EXPECT_EQ(ch.take(), 1);
  t.join();
  EXPECT_TRUE(done);
  EXPECT_EQ(ch.take(), 2);
}

TEST(BoundedChannel, CloseWakesEveryone) {
  BoundedChannel<int> ch(1);
  std::thread taker([&] { EXPECT_THROW(ch.take(), ShutdownError); });
  std::this_thread::sleep_for(milliseconds(20));
  ch.close();
  taker.join();
  EXPECT_THROW(ch.put(1), ShutdownError);
}

TEST(BoundedChannel, ProducerConsumerPipeline) {
  BoundedChannel<int> ch(4);
  long long sum = 0;
  std::thread consumer([&] {
    for (int i = 0; i < 200; ++i) sum += ch.take();
  });
  for (int i = 0; i < 200; ++i) ch.put(i);
  consumer.join();
  EXPECT_EQ(sum, 199LL * 200 / 2);
}

// ---------------------------------------------------------------------------
// DistributedBarrier
// ---------------------------------------------------------------------------

struct BarrierRig {
  explicit BarrierRig(std::size_t n) : net(88) {
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "db" + std::to_string(i)));
      barriers.push_back(
          std::make_unique<DistributedBarrier>(*dapplets.back(), "b"));
    }
    std::vector<InboxRef> refs;
    for (auto& b : barriers) refs.push_back(b->ref());
    for (std::size_t i = 0; i < n; ++i) barriers[i]->attach(refs, i);
  }

  ~BarrierRig() {
    barriers.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<DistributedBarrier>> barriers;
};

TEST(DistributedBarrier, SynchronizesAcrossDapplets) {
  constexpr std::size_t kMembers = 4;
  constexpr int kRounds = 10;
  BarrierRig rig(kMembers);
  std::vector<std::atomic<int>> counters(kRounds);
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kMembers; ++i) {
    threads.emplace_back([&, i] {
      for (int r = 0; r < kRounds; ++r) {
        ++counters[r];
        const auto gen = rig.barriers[i]->arriveAndWait(seconds(30));
        if (counters[r] != static_cast<int>(kMembers)) violated = true;
        if (gen != static_cast<std::uint64_t>(r)) violated = true;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated) << "a member passed the barrier early";
}

TEST(DistributedBarrier, TimesOutWhenAMemberNeverArrives) {
  BarrierRig rig(2);
  EXPECT_THROW(rig.barriers[0]->arriveAndWait(milliseconds(200)),
               TimeoutError);
}

// ---------------------------------------------------------------------------
// DistributedSingleAssignment
// ---------------------------------------------------------------------------

struct SavRig {
  explicit SavRig(std::size_t n) : net(99) {
    for (std::size_t i = 0; i < n; ++i) {
      dapplets.push_back(
          std::make_unique<Dapplet>(net, "sv" + std::to_string(i)));
      vars.push_back(std::make_unique<DistributedSingleAssignment>(
          *dapplets.back(), "v"));
    }
    std::vector<InboxRef> refs;
    for (auto& v : vars) refs.push_back(v->ref());
    for (std::size_t i = 0; i < n; ++i) vars[i]->attach(refs, i);
  }

  ~SavRig() {
    vars.clear();
    for (auto& d : dapplets) d->stop();
  }

  SimNetwork net;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<DistributedSingleAssignment>> vars;
};

TEST(DistributedSingleAssignment, SetPropagatesToAllMembers) {
  SavRig rig(3);
  EXPECT_FALSE(rig.vars[2]->isSet());
  EXPECT_TRUE(rig.vars[1]->set(Value("answer")));
  for (auto& var : rig.vars) {
    EXPECT_EQ(var->get(seconds(5)).asString(), "answer");
  }
}

TEST(DistributedSingleAssignment, ExactlyOneProposerWins) {
  SavRig rig(4);
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      if (rig.vars[i]->set(Value(static_cast<long long>(i)))) ++winners;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(winners.load(), 1) << "single assignment accepted twice";
  // Every member converged on the same winner value.
  const auto v0 = rig.vars[0]->get(seconds(5)).asInt();
  for (auto& var : rig.vars) {
    EXPECT_EQ(var->get(seconds(5)).asInt(), v0);
  }
}

TEST(DistributedSingleAssignment, GetTimesOutWhenNeverSet) {
  SavRig rig(2);
  EXPECT_THROW(rig.vars[0]->get(milliseconds(200)), TimeoutError);
}

}  // namespace
}  // namespace dapple
