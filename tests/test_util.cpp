// Unit tests for the util substrate: RNG, SyncQueue, strings, errors.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "dapple/util/error.hpp"
#include "dapple/util/rng.hpp"
#include "dapple/util/strings.hpp"
#include "dapple/util/sync_queue.hpp"
#include "dapple/util/time.hpp"

namespace dapple {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BetweenIsInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / 20000.0, 5.0, 0.3);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(23);
  Rng child = a.split();
  Rng a2(23);
  Rng child2 = a2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child(), child2());
  EXPECT_NE(child(), a());  // overwhelmingly likely
}

// ---------------------------------------------------------------------------
// SyncQueue
// ---------------------------------------------------------------------------

TEST(SyncQueue, FifoOrder) {
  SyncQueue<int> q;
  for (int i = 0; i < 100; ++i) q.push(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(q.pop(), i);
}

TEST(SyncQueue, TryPopEmpty) {
  SyncQueue<int> q;
  EXPECT_FALSE(q.tryPop().has_value());
  q.push(1);
  EXPECT_EQ(q.tryPop().value(), 1);
}

TEST(SyncQueue, PopForTimesOut) {
  SyncQueue<int> q;
  Stopwatch watch;
  EXPECT_FALSE(q.popFor(milliseconds(30)).has_value());
  EXPECT_GE(watch.elapsedMicros(), 25000);
}

TEST(SyncQueue, CloseWakesBlockedPopWithShutdown) {
  SyncQueue<int> q;
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    q.close();
  });
  EXPECT_THROW(q.pop(), ShutdownError);
  closer.join();
}

TEST(SyncQueue, CloseDrainsRemainingItemsFirst) {
  SyncQueue<int> q;
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_THROW(q.pop(), ShutdownError);
}

TEST(SyncQueue, PushAfterCloseThrows) {
  SyncQueue<int> q;
  q.close();
  EXPECT_THROW(q.push(1), ShutdownError);
  EXPECT_FALSE(q.tryPush(1));
}

TEST(SyncQueue, RaiseDrainsDataBeforeThrowingEvenWhenPushedAfter) {
  SyncQueue<int> q;
  q.push(1);
  q.raise("peer died");
  // Data pushed *after* the alert still drains first (late deliveries from
  // surviving peers must not be lost).
  q.push(2);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_THROW(q.pop(), PeerDownError);
}

TEST(SyncQueue, RaiseIsConsumeOnce) {
  SyncQueue<int> q;
  q.raise("peer died");
  EXPECT_EQ(q.pendingAlerts(), 1u);
  EXPECT_THROW(q.pop(), PeerDownError);
  EXPECT_EQ(q.pendingAlerts(), 0u);
  // The alert is spent: a later pop blocks/times out instead of re-throwing.
  EXPECT_FALSE(q.popFor(milliseconds(30)).has_value());
}

TEST(SyncQueue, HighWaterTracksDeepestQueue) {
  SyncQueue<int> q;
  EXPECT_EQ(q.highWater(), 0u);
  q.push(1);
  q.push(2);
  q.push(3);
  (void)q.pop();
  (void)q.pop();
  q.push(4);  // depth 2 now; high water stays 3
  EXPECT_EQ(q.highWater(), 3u);
}

TEST(SyncQueue, AwaitNonEmpty) {
  SyncQueue<int> q;
  std::thread pusher([&] {
    std::this_thread::sleep_for(milliseconds(20));
    q.push(42);
  });
  EXPECT_TRUE(q.awaitNonEmpty());
  EXPECT_EQ(q.size(), 1u);
  pusher.join();
}

TEST(SyncQueue, ForEachVisitsInOrder) {
  SyncQueue<int> q;
  for (int i = 0; i < 5; ++i) q.push(i);
  std::vector<int> seen;
  q.forEach([&](const int& v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(q.size(), 5u);  // non-consuming
}

TEST(SyncQueue, ManyProducersManyConsumers) {
  SyncQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::atomic<int> consumed{0};
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (true) {
        auto v = q.popFor(seconds(2));
        if (!v) break;
        sum += *v;
        if (++consumed == kPerProducer * kProducers) break;
      }
    });
  }
  for (auto& t : threads) t.join();
  const long long n = kPerProducer * kProducers;
  EXPECT_EQ(consumed.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---------------------------------------------------------------------------
// strings
// ---------------------------------------------------------------------------

TEST(Strings, SplitBasic) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, SplitEmptyFields) {
  EXPECT_EQ(split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, JoinInvertsSplit) {
  const std::string text = "x|yy|zzz";
  EXPECT_EQ(join(split(text, '|'), "|"), text);
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("foobar", "bar"));
  EXPECT_TRUE(startsWith("x", ""));
  EXPECT_FALSE(startsWith("", "x"));
}

TEST(Strings, ToHex) {
  EXPECT_EQ(toHex(std::string("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(toHex(""), "");
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

TEST(Errors, HierarchyCatchableAsError) {
  EXPECT_THROW(throw TimeoutError("t"), Error);
  EXPECT_THROW(throw DeadlockError("d"), Error);
  EXPECT_THROW(throw TokenError("k"), Error);
  EXPECT_THROW(throw AddressError("a"), std::runtime_error);
}

TEST(Errors, MessagePreserved) {
  try {
    throw DeliveryError("channel 7 timed out");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "channel 7 timed out");
  }
}

}  // namespace
}  // namespace dapple
