// Tests for the session layer: establishment, rejection paths (ACL,
// unknown app, interference), results, unlink cleanup, growth & shrink.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"

namespace dapple {
namespace {

/// Test fixture: N member dapplets with agents + one initiator dapplet.
class SessionRig : public ::testing::Test {
 protected:
  void makeMembers(std::size_t n, SessionAgent::Config config = {}) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::string name = "m" + std::to_string(i);
      dapplets.push_back(std::make_unique<Dapplet>(net, name));
      agents.push_back(
          std::make_unique<SessionAgent>(*dapplets.back(), config));
      directory.put(name, agents.back()->controlRef());
    }
  }

  void registerEchoApp() {
    // Ping/echo role: the first peer opens the exchange, the other echoes —
    // someone has to send first or both sides block forever.
    for (auto& agent : agents) {
      agent->registerApp("echo", [](SessionContext& ctx) {
        const bool leader =
            !ctx.peers().empty() && ctx.peers().front() == ctx.self();
        if (leader && ctx.hasOutbox("out")) {
          DataMessage hello("hello");
          ctx.outbox("out").send(hello);
        }
        if (ctx.hasInbox("in")) {
          Delivery del = ctx.inbox("in").receive();
          if (!leader && ctx.hasOutbox("out")) {
            ctx.outbox("out").send(*del.message);
          }
        }
        ValueMap r;
        r["member"] = Value(ctx.self());
        ctx.setResult(Value(std::move(r)));
      });
    }
  }

  SimNetwork net{101};
  Directory directory;
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;

  void TearDown() override {
    agents.clear();
    for (auto& d : dapplets) d->stop();
  }
};

TEST_F(SessionRig, EstablishLinkRunCollectResults) {
  makeMembers(2);
  registerEchoApp();
  Dapplet init(net, "init");
  Initiator initiator(init);

  Initiator::Plan plan;
  plan.app = "echo";
  plan.members.push_back(Initiator::member(directory, "m0", {"in"}));
  plan.members.push_back(Initiator::member(directory, "m1", {"in"}));
  plan.edges.push_back({"m0", "out", "m1", "in"});
  plan.edges.push_back({"m1", "out", "m0", "in"});

  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  EXPECT_FALSE(result.sessionId.empty());

  auto done = initiator.awaitCompletion(result.sessionId, seconds(10));
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done.at("m0").at("member").asString(), "m0");
  EXPECT_EQ(done.at("m1").at("member").asString(), "m1");

  initiator.terminate(result.sessionId);
  // Unlink must clean member-side session state.  UNLINKs race each other,
  // so wait for both members, not just the first.
  for (int i = 0; i < 100 && !(agents[0]->activeSessions().empty() &&
                               agents[1]->activeSessions().empty());
       ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_TRUE(agents[0]->activeSessions().empty());
  EXPECT_TRUE(agents[1]->activeSessions().empty());
  EXPECT_EQ(agents[0]->stats().sessionsUnlinked, 1u);
  init.stop();
}

TEST_F(SessionRig, AclRejectsUnlistedInitiator) {
  SessionAgent::Config config;
  config.acl = {"trusted-director"};  // our initiator is not on it
  makeMembers(1, config);
  registerEchoApp();
  Dapplet init(net, "stranger");
  Initiator initiator(init);

  Initiator::Plan plan;
  plan.app = "echo";
  plan.members.push_back(Initiator::member(directory, "m0", {"in"}));
  auto result = initiator.establish(plan);
  EXPECT_FALSE(result.ok);
  ASSERT_TRUE(result.rejections.count("m0"));
  EXPECT_NE(result.rejections["m0"].find("access control"),
            std::string::npos);
  EXPECT_EQ(agents[0]->stats().invitesRejectedAcl, 1u);
  init.stop();
}

TEST_F(SessionRig, UnknownAppRejected) {
  makeMembers(1);
  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "not-registered";
  plan.members.push_back(Initiator::member(directory, "m0", {"in"}));
  auto result = initiator.establish(plan);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.rejections["m0"].find("unknown application"),
            std::string::npos);
  init.stop();
}

TEST_F(SessionRig, UnreachableMemberTimesOutAndAbortsOthers) {
  makeMembers(1);
  registerEchoApp();
  directory.put("ghost", InboxRef{NodeAddress{88, 88}, 1, ""});
  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "echo";
  plan.phaseTimeout = milliseconds(300);
  plan.members.push_back(Initiator::member(directory, "m0", {"in"}));
  plan.members.push_back(Initiator::member(directory, "ghost", {"in"}));
  auto result = initiator.establish(plan);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.rejections["ghost"].find("timeout"), std::string::npos);
  // The accepted member must have been rolled back.
  for (int i = 0; i < 100 && !agents[0]->activeSessions().empty(); ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_TRUE(agents[0]->activeSessions().empty());
  init.stop();
}

TEST_F(SessionRig, InterferenceBlocksThenReleases) {
  StateStore store;
  SessionAgent::Config config;
  config.store = &store;
  makeMembers(1, config);

  // A long-running role that exits when told.
  std::atomic<bool> release{false};
  agents[0]->registerApp("holder", [&](SessionContext& ctx) {
    while (!release && !ctx.stopToken().stop_requested()) {
      std::this_thread::sleep_for(milliseconds(5));
    }
  });

  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan planA;
  planA.app = "holder";
  auto memberA = Initiator::member(directory, "m0", {});
  memberA.writeKeys = {"doc"};
  planA.members.push_back(memberA);
  auto resA = initiator.establish(planA);
  ASSERT_TRUE(resA.ok);

  // Second session writing the same key must be rejected...
  auto resB = initiator.establish(planA);
  EXPECT_FALSE(resB.ok);
  EXPECT_NE(resB.rejections["m0"].find("interference"), std::string::npos);

  // ...but a disjoint session is fine concurrently.
  Initiator::Plan planC = planA;
  planC.members[0].writeKeys = {"other"};
  auto resC = initiator.establish(planC);
  EXPECT_TRUE(resC.ok);

  // After the first session ends, the key is claimable again.
  release = true;
  initiator.awaitCompletion(resA.sessionId, seconds(10));
  initiator.terminate(resA.sessionId);
  for (int i = 0; i < 200; ++i) {
    if (agents[0]->activeSessions().size() == 1) break;
    std::this_thread::sleep_for(milliseconds(10));
  }
  auto resD = initiator.establish(planA);
  EXPECT_TRUE(resD.ok);
  initiator.awaitCompletion(resC.sessionId, seconds(10));
  initiator.awaitCompletion(resD.sessionId, seconds(10));
  initiator.terminate(resC.sessionId);
  initiator.terminate(resD.sessionId);
  init.stop();
}

TEST_F(SessionRig, SessionsGrow) {
  // Paper §1: "after initiation they may grow and shrink as required".
  makeMembers(3);
  // Accumulator role: m0 collects greetings forever (until unlinked);
  // greeter roles send one greeting to m0 and finish.
  std::atomic<int> greetings{0};
  agents[0]->registerApp("grow", [&](SessionContext& ctx) {
    while (true) {
      Delivery del = ctx.inbox("in").receive();  // Shutdown on unlink
      (void)del;
      ++greetings;
    }
  });
  for (std::size_t i = 1; i < 3; ++i) {
    agents[i]->registerApp("grow", [](SessionContext& ctx) {
      DataMessage hello("hello");
      ctx.outbox("out").send(hello);
    });
  }

  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "grow";
  plan.members.push_back(Initiator::member(directory, "m0", {"in"}));
  plan.members.push_back(Initiator::member(directory, "m1", {}));
  plan.edges.push_back({"m1", "out", "m0", "in"});
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);

  for (int i = 0; i < 200 && greetings < 1; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_EQ(greetings.load(), 1);

  // Grow: add m2 with an edge into m0's existing inbox.
  auto newMember = Initiator::member(directory, "m2", {});
  const bool grown = initiator.addMember(
      result.sessionId, newMember, {{"m2", "out", "m0", "in"}}, seconds(5));
  EXPECT_TRUE(grown);
  for (int i = 0; i < 200 && greetings < 2; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_EQ(greetings.load(), 2);

  initiator.terminate(result.sessionId);
  init.stop();
}

TEST_F(SessionRig, SessionsShrink) {
  makeMembers(2);
  std::atomic<int> beats{0};
  // m0 beats into m1 until m1 is removed; m1 counts.
  agents[0]->registerApp("shrink", [&](SessionContext& ctx) {
    Outbox& out = ctx.outbox("out");
    while (!ctx.stopToken().stop_requested()) {
      if (out.fanout() > 0) {
        DataMessage beat("beat");
        out.send(beat);
      }
      std::this_thread::sleep_for(milliseconds(5));
    }
  });
  agents[1]->registerApp("shrink", [&](SessionContext& ctx) {
    while (true) {
      Delivery del = ctx.inbox("in").receive();
      (void)del;
      ++beats;
    }
  });

  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "shrink";
  plan.members.push_back(Initiator::member(directory, "m0", {}));
  plan.members.push_back(Initiator::member(directory, "m1", {"in"}));
  plan.edges.push_back({"m0", "out", "m1", "in"});
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  for (int i = 0; i < 200 && beats < 3; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_GE(beats.load(), 3);

  // Shrink: remove m1; its binding is dropped at m0.
  initiator.removeMember(result.sessionId, "m1");
  for (int i = 0; i < 100 && !agents[1]->activeSessions().empty(); ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_TRUE(agents[1]->activeSessions().empty());
  // m0's outbox lost the target, so no more sends reach m1.
  Outbox* unused = nullptr;
  (void)unused;
  initiator.terminate(result.sessionId);
  init.stop();
}

TEST_F(SessionRig, ConcurrentSessionsOnDisjointMembers) {
  makeMembers(4);
  registerEchoApp();
  Dapplet init(net, "init");
  Initiator initiator(init);

  const auto makePlan = [&](const std::string& x, const std::string& y) {
    Initiator::Plan plan;
    plan.app = "echo";
    plan.members.push_back(Initiator::member(directory, x, {"in"}));
    plan.members.push_back(Initiator::member(directory, y, {"in"}));
    plan.edges.push_back({x, "out", y, "in"});
    plan.edges.push_back({y, "out", x, "in"});
    return plan;
  };
  auto r1 = initiator.establish(makePlan("m0", "m1"));
  auto r2 = initiator.establish(makePlan("m2", "m3"));
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(initiator.awaitCompletion(r1.sessionId, seconds(10)).size(), 2u);
  EXPECT_EQ(initiator.awaitCompletion(r2.sessionId, seconds(10)).size(), 2u);
  initiator.terminate(r1.sessionId);
  initiator.terminate(r2.sessionId);
  init.stop();
}

TEST_F(SessionRig, MemberParamsAndSessionParamsReachRoles) {
  makeMembers(1);
  std::atomic<long long> got{0};
  agents[0]->registerApp("params", [&](SessionContext& ctx) {
    got = ctx.params().at("mine").asInt() * 1000 +
          ctx.sessionParams().at("shared").asInt();
  });
  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "params";
  ValueMap shared;
  shared["shared"] = Value(7);
  plan.params = Value(std::move(shared));
  ValueMap mine;
  mine["mine"] = Value(3);
  plan.members.push_back(
      Initiator::member(directory, "m0", {}, Value(std::move(mine))));
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  initiator.awaitCompletion(result.sessionId, seconds(10));
  EXPECT_EQ(got.load(), 3007);
  initiator.terminate(result.sessionId);
  init.stop();
}

TEST_F(SessionRig, RoleErrorsAreReportedInDoneResult) {
  makeMembers(1);
  agents[0]->registerApp("bad", [](SessionContext&) {
    throw TokenError("role exploded");
  });
  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "bad";
  plan.members.push_back(Initiator::member(directory, "m0", {}));
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto done = initiator.awaitCompletion(result.sessionId, seconds(10));
  ASSERT_TRUE(done.at("m0").contains("error"));
  EXPECT_NE(done.at("m0").at("error").asString().find("role exploded"),
            std::string::npos);
  initiator.terminate(result.sessionId);
  init.stop();
}

}  // namespace
}  // namespace dapple
