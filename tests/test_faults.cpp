// Failure injection: the paper's §2.2 requires coping "with faults in the
// network such as undelivered messages".  These tests run the full stack
// under loss, duplication, heavy jitter, and partitions, and check both
// that protocols still complete and that unreachable peers surface as the
// specified exceptions.
#include <gtest/gtest.h>

#include <memory>

#include "dapple/apps/calendar.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/tokens/token_manager.hpp"

namespace dapple {
namespace {

DappletConfig lossTolerant() {
  DappletConfig cfg;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(120);
  cfg.reliable.deliveryTimeout = seconds(10);
  return cfg;
}

class FaultySessions
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FaultySessions, CalendarCompletesDespiteLossAndDuplication) {
  const auto [loss, dup] = GetParam();
  SimNetwork net(777);
  net.setDefaultLink(
      LinkParams{microseconds(300), microseconds(800), loss, dup});

  const std::vector<std::string> names = {"f0", "f1", "f2"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  Rng rng(11);
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name, lossTolerant()));
    stores.push_back(std::make_unique<StateStore>());
    apps::CalendarBook::populate(*stores.back(), rng, 30, 0.4);
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet director(net, "director", lossTolerant());
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  directory.put("director", directorAgent.controlRef());

  Initiator initiator(director);
  auto plan = apps::flatCalendarPlan(directory, "director", names, 0, 15,
                                     3);
  plan.phaseTimeout = seconds(30);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok) << "setup failed under loss=" << loss;
  auto outcome = apps::parseOutcome(
      initiator.awaitCompletion(result.sessionId, seconds(60))
          .at("director"));
  EXPECT_TRUE(outcome.scheduled);
  initiator.terminate(result.sessionId);

  agents.clear();
  director.stop();
  for (auto& d : dapplets) d->stop();
}

INSTANTIATE_TEST_SUITE_P(LossDup, FaultySessions,
                         ::testing::Values(std::make_tuple(0.05, 0.0),
                                           std::make_tuple(0.10, 0.05),
                                           std::make_tuple(0.0, 0.25),
                                           std::make_tuple(0.15, 0.1)));

TEST(Faults, PartitionSurfacesDeliveryErrorThenHeals) {
  SimNetwork net(778);
  DappletConfig cfg;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(10);
  cfg.reliable.deliveryTimeout = milliseconds(250);
  cfg.host = 1;
  Dapplet a(net, "a", cfg);
  cfg.host = 2;
  Dapplet b(net, "b", cfg);
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());

  // Healthy first.
  out.send(DataMessage("one"));
  EXPECT_NO_THROW(in.receive(seconds(5)));

  // Partition: the paper's delivery exception must fire on the sender.
  net.setPartition(1, 2, true);
  out.send(DataMessage("lost"));
  bool failed = false;
  for (int i = 0; i < 100; ++i) {
    std::this_thread::sleep_for(milliseconds(20));
    try {
      out.send(DataMessage("probe"));
    } catch (const DeliveryError&) {
      failed = true;
      break;
    }
  }
  EXPECT_TRUE(failed) << "no DeliveryError raised across the partition";

  // Heal + reset: the channel works again.
  net.setPartition(1, 2, false);
  out.reset();
  out.send(DataMessage("after-heal"));
  Delivery del = in.receive(seconds(5));
  EXPECT_EQ(del.as<DataMessage>().kind(), "after-heal");

  a.stop();
  b.stop();
}

TEST(Faults, TokensSurviveLossyNetwork) {
  SimNetwork net(779);
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(400), 0.08, 0.05});
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
  constexpr std::size_t kMembers = 3;
  for (std::size_t i = 0; i < kMembers; ++i) {
    dapplets.push_back(std::make_unique<Dapplet>(
        net, "tk" + std::to_string(i), lossTolerant()));
    managers.push_back(std::make_unique<TokenManager>(*dapplets.back()));
  }
  std::vector<InboxRef> refs;
  for (auto& m : managers) refs.push_back(m->ref());
  for (std::size_t i = 0; i < kMembers; ++i) {
    TokenBag mine;
    if (TokenManager::homeOfColor("gold", kMembers) == i) mine["gold"] = 3;
    managers[i]->attach(refs, i, mine);
  }
  // Token churn across the lossy fabric; conservation must hold.
  for (int round = 0; round < 10; ++round) {
    managers[round % kMembers]->request({{"gold", 2}}, seconds(30));
    managers[round % kMembers]->release({{"gold", 2}});
  }
  EXPECT_EQ(managers[0]->totalTokens(seconds(20)).at("gold"), 3);
  managers.clear();
  for (auto& d : dapplets) d->stop();
}

TEST(Faults, AgentIgnoresMalformedControlTraffic) {
  // Random application messages aimed at the session-control inbox must
  // not crash or wedge the agent.
  SimNetwork net(780);
  Dapplet member(net, "m");
  SessionAgent agent(member);
  agent.registerApp("noop", [](SessionContext&) {});
  Dapplet attacker(net, "attacker");
  Outbox& out = attacker.createOutbox();
  out.add(agent.controlRef());
  for (int i = 0; i < 20; ++i) {
    DataMessage junk("junk.kind");
    junk.set("i", Value(i));
    out.send(junk);
  }
  ASSERT_TRUE(attacker.flush(seconds(5)));

  // The agent still works.
  Directory directory;
  directory.put("m", agent.controlRef());
  Dapplet init(net, "init");
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "noop";
  plan.members.push_back(Initiator::member(directory, "m", {}));
  auto result = initiator.establish(plan);
  EXPECT_TRUE(result.ok);
  initiator.awaitCompletion(result.sessionId, seconds(10));
  initiator.terminate(result.sessionId);
  init.stop();
  attacker.stop();
  member.stop();
}

TEST(Faults, MalformedWireBytesNeverCrashTheDecoder) {
  // Fuzz-ish: random byte strings must raise SerializationError (or decode
  // cleanly), never crash.
  Rng rng(781);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes;
    const auto len = rng.below(40);
    for (std::uint64_t k = 0; k < len; ++k) {
      bytes.push_back(static_cast<char>(rng.below(256)));
    }
    try {
      (void)decodeMessage(bytes);
    } catch (const SerializationError&) {
      // expected for almost every input
    }
  }
  // Truncations of a VALID message must also fail cleanly.
  DataMessage msg("probe");
  msg.set("k", Value("v"));
  const std::string wire = encodeMessage(msg);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    try {
      (void)decodeMessage(wire.substr(0, cut));
    } catch (const SerializationError&) {
    }
  }
  SUCCEED();
}

TEST(Faults, SessionUnderHeavyJitterStillAgrees) {
  SimNetwork net(782);
  net.setDefaultLink(
      LinkParams{microseconds(100), milliseconds(8), 0.0, 0.0});
  const std::vector<std::string> names = {"j0", "j1"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  Rng rng(5);
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name));
    stores.push_back(std::make_unique<StateStore>());
    apps::CalendarBook::populate(*stores.back(), rng, 20, 0.3);
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet director(net, "director");
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  directory.put("director", directorAgent.controlRef());
  Initiator initiator(director);
  auto plan = apps::flatCalendarPlan(directory, "director", names, 0, 15, 3);
  plan.phaseTimeout = seconds(30);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto outcome = apps::parseOutcome(
      initiator.awaitCompletion(result.sessionId, seconds(60))
          .at("director"));
  EXPECT_TRUE(outcome.scheduled);
  initiator.terminate(result.sessionId);
  agents.clear();
  director.stop();
  for (auto& d : dapplets) d->stop();
}

}  // namespace
}  // namespace dapple
