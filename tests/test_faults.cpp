// Failure injection: the paper's §2.2 requires coping "with faults in the
// network such as undelivered messages".  These tests run the full stack
// under loss, duplication, heavy jitter, and partitions, and check both
// that protocols still complete and that unreachable peers surface as the
// specified exceptions.
#include <gtest/gtest.h>

#include <memory>

#include "dapple/apps/calendar.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/liveness/liveness.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/testkit/seed.hpp"
#include "dapple/testkit/virtual_clock.hpp"

namespace dapple {
namespace {

// Every fault test runs on a VirtualClock: the clock jumps to the next
// retransmission tick or timeout the moment all workers park, so seconds of
// simulated fault time cost milliseconds of wall time.
SimNetwork::Options simOn(testkit::VirtualClock& clock) {
  SimNetwork::Options opts;
  opts.clock = &clock;
  return opts;
}

DappletConfig lossTolerant(testkit::VirtualClock& clock) {
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(120);
  cfg.reliable.deliveryTimeout = seconds(10);
  return cfg;
}

class FaultySessions
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FaultySessions, CalendarCompletesDespiteLossAndDuplication) {
  const auto [loss, dup] = GetParam();
  const std::uint64_t seed = testkit::testSeed(777);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  net.setDefaultLink(
      LinkParams{microseconds(300), microseconds(800), loss, dup});

  const std::vector<std::string> names = {"f0", "f1", "f2"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  Rng rng(11);
  for (const auto& name : names) {
    dapplets.push_back(
        std::make_unique<Dapplet>(net, name, lossTolerant(clock)));
    stores.push_back(std::make_unique<StateStore>());
    apps::CalendarBook::populate(*stores.back(), rng, 30, 0.4);
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet director(net, "director", lossTolerant(clock));
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  directory.put("director", directorAgent.controlRef());

  Initiator initiator(director);
  auto plan = apps::flatCalendarPlan(directory, "director", names, 0, 15,
                                     3);
  plan.phaseTimeout = seconds(30);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok) << "setup failed under loss=" << loss;
  auto outcome = apps::parseOutcome(
      initiator.awaitCompletion(result.sessionId, seconds(60))
          .at("director"));
  EXPECT_TRUE(outcome.scheduled);
  initiator.terminate(result.sessionId);

  agents.clear();
  director.stop();
  for (auto& d : dapplets) d->stop();
}

INSTANTIATE_TEST_SUITE_P(LossDup, FaultySessions,
                         ::testing::Values(std::make_tuple(0.05, 0.0),
                                           std::make_tuple(0.10, 0.05),
                                           std::make_tuple(0.0, 0.25),
                                           std::make_tuple(0.15, 0.1)));

TEST(Faults, PartitionSurfacesDeliveryErrorThenHeals) {
  const std::uint64_t seed = testkit::testSeed(778);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(10);
  cfg.reliable.deliveryTimeout = milliseconds(250);
  cfg.host = 1;
  Dapplet a(net, "a", cfg);
  cfg.host = 2;
  Dapplet b(net, "b", cfg);
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());

  // Healthy first.
  out.send(DataMessage("one"));
  EXPECT_TRUE(in.receiveFor(seconds(5)).has_value());

  // Partition: the paper's delivery exception must fire on the sender.
  net.setPartition(1, 2, true);
  out.send(DataMessage("lost"));
  bool failed = false;
  for (int i = 0; i < 100; ++i) {
    clock.sleepFor(milliseconds(20));
    try {
      out.send(DataMessage("probe"));
    } catch (const DeliveryError&) {
      failed = true;
      break;
    }
  }
  EXPECT_TRUE(failed) << "no DeliveryError raised across the partition";

  // Heal + reset: the channel works again.
  net.setPartition(1, 2, false);
  out.reset();
  out.send(DataMessage("after-heal"));
  EXPECT_EQ(in.receiveAs<DataMessage>(seconds(5)).kind(), "after-heal");

  a.stop();
  b.stop();
}

TEST(Faults, TokensSurviveLossyNetwork) {
  const std::uint64_t seed = testkit::testSeed(779);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  net.setDefaultLink(
      LinkParams{microseconds(200), microseconds(400), 0.08, 0.05});
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<TokenManager>> managers;
  constexpr std::size_t kMembers = 3;
  for (std::size_t i = 0; i < kMembers; ++i) {
    dapplets.push_back(std::make_unique<Dapplet>(
        net, "tk" + std::to_string(i), lossTolerant(clock)));
    managers.push_back(std::make_unique<TokenManager>(*dapplets.back()));
  }
  std::vector<InboxRef> refs;
  for (auto& m : managers) refs.push_back(m->ref());
  for (std::size_t i = 0; i < kMembers; ++i) {
    TokenBag mine;
    if (TokenManager::homeOfColor("gold", kMembers) == i) mine["gold"] = 3;
    managers[i]->attach(refs, i, mine);
  }
  // Token churn across the lossy fabric; conservation must hold.
  for (int round = 0; round < 10; ++round) {
    managers[round % kMembers]->request({{"gold", 2}}, seconds(30));
    managers[round % kMembers]->release({{"gold", 2}});
  }
  EXPECT_EQ(managers[0]->totalTokens(seconds(20)).at("gold"), 3);
  managers.clear();
  for (auto& d : dapplets) d->stop();
}

TEST(Faults, AgentIgnoresMalformedControlTraffic) {
  // Random application messages aimed at the session-control inbox must
  // not crash or wedge the agent.
  const std::uint64_t seed = testkit::testSeed(780);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  DappletConfig cfg;
  cfg.clock = &clock;
  Dapplet member(net, "m", cfg);
  SessionAgent agent(member);
  agent.registerApp("noop", [](SessionContext&) {});
  Dapplet attacker(net, "attacker", cfg);
  Outbox& out = attacker.createOutbox();
  out.add(agent.controlRef());
  for (int i = 0; i < 20; ++i) {
    DataMessage junk("junk.kind");
    junk.set("i", Value(i));
    out.send(junk);
  }
  ASSERT_TRUE(attacker.flush(seconds(5)));

  // The agent still works.
  Directory directory;
  directory.put("m", agent.controlRef());
  Dapplet init(net, "init", cfg);
  Initiator initiator(init);
  Initiator::Plan plan;
  plan.app = "noop";
  plan.members.push_back(Initiator::member(directory, "m", {}));
  auto result = initiator.establish(plan);
  EXPECT_TRUE(result.ok);
  initiator.awaitCompletion(result.sessionId, seconds(10));
  initiator.terminate(result.sessionId);
  init.stop();
  attacker.stop();
  member.stop();
}

TEST(Faults, MalformedWireBytesNeverCrashTheDecoder) {
  // Fuzz-ish: random byte strings must raise SerializationError (or decode
  // cleanly), never crash.
  Rng rng(781);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes;
    const auto len = rng.below(40);
    for (std::uint64_t k = 0; k < len; ++k) {
      bytes.push_back(static_cast<char>(rng.below(256)));
    }
    try {
      (void)decodeMessage(bytes);
    } catch (const SerializationError&) {
      // expected for almost every input
    }
  }
  // Truncations of a VALID message must also fail cleanly.
  DataMessage msg("probe");
  msg.set("k", Value("v"));
  const std::string wire = encodeMessage(msg);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    try {
      (void)decodeMessage(wire.substr(0, cut));
    } catch (const SerializationError&) {
    }
  }
  SUCCEED();
}

TEST(Faults, SessionUnderHeavyJitterStillAgrees) {
  const std::uint64_t seed = testkit::testSeed(782);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  net.setDefaultLink(
      LinkParams{microseconds(100), milliseconds(8), 0.0, 0.0});
  DappletConfig jcfg;
  jcfg.clock = &clock;
  const std::vector<std::string> names = {"j0", "j1"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<StateStore>> stores;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  Rng rng(5);
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name, jcfg));
    stores.push_back(std::make_unique<StateStore>());
    apps::CalendarBook::populate(*stores.back(), rng, 20, 0.3);
    SessionAgent::Config cfg;
    cfg.store = stores.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), cfg));
    apps::registerCalendarApp(*agents.back());
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet director(net, "director", jcfg);
  SessionAgent directorAgent(director);
  apps::registerCalendarApp(directorAgent);
  directory.put("director", directorAgent.controlRef());
  Initiator initiator(director);
  auto plan = apps::flatCalendarPlan(directory, "director", names, 0, 15, 3);
  plan.phaseTimeout = seconds(30);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);
  auto outcome = apps::parseOutcome(
      initiator.awaitCompletion(result.sessionId, seconds(60))
          .at("director"));
  EXPECT_TRUE(outcome.scheduled);
  initiator.terminate(result.sessionId);
  agents.clear();
  director.stop();
  for (auto& d : dapplets) d->stop();
}

// ---------------------------------------------------------------------------
// Crash-stop fault tolerance: a member process dies mid-session.  The
// liveness layer must turn its silence into MEMBER_DOWN, survivors' blocked
// receives must fail fast with PeerDownError (not the delivery timeout), and
// the initiator must return partial results naming the failed member.

TEST(CrashStop, SessionSurvivesMemberCrashWithPartialResults) {
  const std::uint64_t seed = testkit::testSeed(790);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  DappletConfig cfg = lossTolerant(clock);
  cfg.liveness.heartbeatInterval = milliseconds(25);
  cfg.liveness.suspectTimeout = milliseconds(300);

  const std::vector<std::string> names = {"c0", "c1", "c2", "c3"};
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<LivenessMonitor>> monitors;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (const auto& name : names) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name, cfg));
    monitors.push_back(std::make_unique<LivenessMonitor>(*dapplets.back()));
    SessionAgent::Config acfg;
    acfg.monitor = monitors.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), acfg));
    // The crasher ("c1") feeds everyone else; survivors block on a message
    // that will never come and must be released by eviction, not by the
    // receive timeout.
    agents.back()->registerApp("crashdemo", [name](SessionContext& ctx) {
      if (name == "c1") {
        try {
          (void)ctx.inbox("in").receiveFor(seconds(30));
        } catch (const Error&) {
          // crash() fires first; nothing to do
        }
        return;
      }
      ValueMap r;
      try {
        (void)ctx.inbox("in").receiveFor(seconds(30));
        r["sawPeerDown"] = Value(false);
      } catch (const PeerDownError& e) {
        r["sawPeerDown"] = Value(true);
        r["verdict"] = Value(std::string(e.what()));
      }
      ctx.setResult(Value(std::move(r)));
    });
    directory.put(name, agents.back()->controlRef());
  }

  Dapplet director(net, "director", cfg);
  LivenessMonitor directorMonitor(director);
  Initiator initiator(director, &directorMonitor);

  Initiator::Plan plan;
  plan.app = "crashdemo";
  for (const auto& name : names) {
    plan.members.push_back(Initiator::member(directory, name, {"in"}));
  }
  for (const auto& name : names) {
    if (name == "c1") continue;
    plan.edges.push_back({"c1", "feed", name, "in"});
  }
  plan.phaseTimeout = seconds(30);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);

  // Crash-stop c1 mid-protocol: every survivor is now blocked in receive().
  clock.sleepFor(milliseconds(100));
  dapplets[1]->crash();
  const TimePoint crashedAt = clock.now();

  // The detector must evict c1 within 2x the suspect timeout.
  const TimePoint detectBy = crashedAt + 2 * cfg.liveness.suspectTimeout;
  bool evicted = false;
  while (clock.now() < detectBy) {
    if (initiator.downMembers(result.sessionId).count("c1") != 0) {
      evicted = true;
      break;
    }
    clock.sleepFor(milliseconds(10));
  }
  EXPECT_TRUE(evicted) << "c1 not evicted within 2x suspect timeout";

  // Partial results: survivors report PeerDownError, c1's entry names it as
  // down.  Well under the roles' 30s receive timeout, proving fail-fast.
  auto results = initiator.awaitCompletion(result.sessionId, seconds(10));
  ASSERT_EQ(results.size(), names.size());
  for (const auto& name : names) {
    ASSERT_TRUE(results.count(name) != 0) << "missing entry for " << name;
    const Value& entry = results.at(name);
    if (name == "c1") {
      EXPECT_TRUE(entry.at("peerDown").asBool());
      EXPECT_EQ(entry.at("member").asString(), "c1");
      EXPECT_FALSE(entry.at("reason").asString().empty());
    } else {
      EXPECT_TRUE(entry.at("sawPeerDown").asBool())
          << name << " fell through to the receive timeout";
    }
  }
  const auto down = initiator.downMembers(result.sessionId);
  ASSERT_EQ(down.size(), 1u);
  EXPECT_TRUE(down.count("c1") != 0);

  initiator.terminate(result.sessionId);
  agents.clear();
  monitors.clear();
  director.stop();
  for (std::size_t i = 0; i < dapplets.size(); ++i) {
    if (i != 1) dapplets[i]->stop();  // c1 already crashed
  }
}

TEST(CrashStop, SurvivorAgentsRecordEviction) {
  // Same shape, smaller: assert the agent-side stats counter moves.
  const std::uint64_t seed = testkit::testSeed(791);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  DappletConfig cfg = lossTolerant(clock);
  cfg.liveness.heartbeatInterval = milliseconds(25);
  cfg.liveness.suspectTimeout = milliseconds(250);

  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<LivenessMonitor>> monitors;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (const std::string name : {"s0", "s1", "s2"}) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name, cfg));
    monitors.push_back(std::make_unique<LivenessMonitor>(*dapplets.back()));
    SessionAgent::Config acfg;
    acfg.monitor = monitors.back().get();
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back(), acfg));
    agents.back()->registerApp("wait", [name](SessionContext& ctx) {
      if (name == "s1") {
        try {
          (void)ctx.inbox("in").receiveFor(seconds(30));
        } catch (const Error&) {
        }
        return;
      }
      try {
        (void)ctx.inbox("in").receiveFor(seconds(30));
      } catch (const PeerDownError&) {
      }
      ctx.setResult(Value(ValueMap{}));
    });
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet director(net, "director", cfg);
  LivenessMonitor directorMonitor(director);
  Initiator initiator(director, &directorMonitor);
  Initiator::Plan plan;
  plan.app = "wait";
  for (const std::string name : {"s0", "s1", "s2"}) {
    plan.members.push_back(Initiator::member(directory, name, {"in"}));
  }
  plan.edges.push_back({"s1", "feed", "s0", "in"});
  plan.edges.push_back({"s1", "feed", "s2", "in"});
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok);

  clock.sleepFor(milliseconds(100));
  dapplets[1]->crash();
  (void)initiator.awaitCompletion(result.sessionId, seconds(10));

  // Survivor agents processed the MEMBER_DOWN broadcast.
  EXPECT_GE(agents[0]->stats().peersEvicted, 1u);
  EXPECT_GE(agents[2]->stats().peersEvicted, 1u);

  initiator.terminate(result.sessionId);
  agents.clear();
  monitors.clear();
  director.stop();
  dapplets[0]->stop();
  dapplets[2]->stop();
}

TEST(CrashStop, SetupRetriesThroughHeavyLoss) {
  // 20% loss with a deliberately small delivery timeout: single-shot setup
  // messages can die with their stream, so establishment must succeed via
  // the initiator's jittered retry/backoff (duplicate INVITEs/WIREs are
  // idempotent at the agent).
  const std::uint64_t seed = testkit::testSeed(792);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  net.setDefaultLink(
      LinkParams{microseconds(300), microseconds(900), 0.20, 0.0});
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(80);
  cfg.reliable.deliveryTimeout = milliseconds(400);

  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  Directory directory;
  for (const std::string name : {"r0", "r1", "r2", "r3"}) {
    dapplets.push_back(std::make_unique<Dapplet>(net, name, cfg));
    agents.push_back(std::make_unique<SessionAgent>(*dapplets.back()));
    agents.back()->registerApp("noop", [](SessionContext& ctx) {
      ctx.setResult(Value(ValueMap{}));
    });
    directory.put(name, agents.back()->controlRef());
  }
  Dapplet director(net, "director", cfg);
  Initiator initiator(director);
  Initiator::Plan plan;
  plan.app = "noop";
  for (const std::string name : {"r0", "r1", "r2", "r3"}) {
    plan.members.push_back(Initiator::member(directory, name, {}));
  }
  plan.phaseTimeout = seconds(30);
  plan.setupAttempts = 8;
  plan.retryBase = milliseconds(100);
  auto result = initiator.establish(plan);
  ASSERT_TRUE(result.ok) << "setup failed under 20% loss";
  auto results = initiator.awaitCompletion(result.sessionId, seconds(30));
  EXPECT_EQ(results.size(), 4u);
  initiator.terminate(result.sessionId);
  agents.clear();
  director.stop();
  for (auto& d : dapplets) d->stop();
}

TEST(CrashStop, SimNetworkKillDropsTheEndpoint) {
  // The injection primitive itself: kill() closes the victim's endpoint so
  // traffic to it starts failing at the reliable layer.
  const std::uint64_t seed = testkit::testSeed(793);
  DAPPLE_SEED_TRACE(seed);
  testkit::VirtualClock clock;
  SimNetwork net(seed, simOn(clock));
  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(10);
  cfg.reliable.deliveryTimeout = milliseconds(200);
  Dapplet a(net, "a", cfg);
  Dapplet b(net, "b", cfg);
  Inbox& in = b.createInbox("in");
  Outbox& out = a.createOutbox();
  out.add(in.ref());
  out.send(DataMessage("ping"));
  EXPECT_TRUE(in.receiveFor(seconds(5)).has_value());

  ASSERT_TRUE(net.kill(b.address()));
  bool failed = false;
  for (int i = 0; i < 200 && !failed; ++i) {
    clock.sleepFor(milliseconds(10));
    try {
      out.send(DataMessage("probe"));
    } catch (const DeliveryError&) {
      failed = true;
    }
  }
  EXPECT_TRUE(failed) << "no DeliveryError after the endpoint was killed";
  a.stop();
}

}  // namespace
}  // namespace dapple
