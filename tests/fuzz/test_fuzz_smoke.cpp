// Fuzz smoke: a handful of scenario seeds run on every `ctest` invocation
// (label `fuzz-smoke`).  Each seed runs TWICE and must produce a
// byte-identical digest — the repro guarantee behind `dapple_fuzz --seed N`.
// A separate test proves the canary bug (retransmit path disabled) is
// caught, i.e. the oracles can actually see faults.
#include <gtest/gtest.h>

#include "dapple/testkit/seed.hpp"
#include "scenario.hpp"

namespace dapple::testkit {
namespace {

TEST(FuzzSmoke, SeedsPassAndReplayToIdenticalDigest) {
  const std::uint64_t base = testSeed(0);
  for (std::uint64_t offset = 0; offset < 6; ++offset) {
    const std::uint64_t seed = base + offset;
    DAPPLE_SEED_TRACE(seed);
    const ScenarioResult first = runScenario(seed);
    EXPECT_TRUE(first.ok) << first.failure << "\n  repro: "
                          << reproLine(seed) << "\n  " << first.summary;
    const ScenarioResult second = runScenario(seed);
    EXPECT_EQ(first.digest, second.digest)
        << "same seed must replay to a byte-identical digest ("
        << reproLine(seed) << ")";
    EXPECT_EQ(first.ok, second.ok);
  }
}

TEST(FuzzSmoke, DigestIsCodecInvariant) {
  // The wire codec changes every byte on the wire — and, through the
  // content-hashed link faults, the loss/duplication schedule — but must
  // never change an outcome: same seed, forced text vs forced binary, must
  // pass every oracle and fold to the SAME digest.  This covers all five
  // modules (seed % 5 cycles through them).
  ScenarioOptions text, binary;
  text.codec = WireCodec::kText;
  binary.codec = WireCodec::kBinary;
  const std::uint64_t base = testSeed(3);
  for (std::uint64_t offset = 0; offset < 5; ++offset) {
    const std::uint64_t seed = base + offset;
    DAPPLE_SEED_TRACE(seed);
    const ScenarioResult t = runScenario(seed, text);
    EXPECT_TRUE(t.ok) << t.failure << "\n  repro: " << reproLine(seed)
                      << "\n  " << t.summary;
    const ScenarioResult b = runScenario(seed, binary);
    EXPECT_TRUE(b.ok) << b.failure << "\n  repro: " << reproLine(seed)
                      << "\n  " << b.summary;
    EXPECT_EQ(t.digest, b.digest)
        << "codec changed the outcome (" << reproLine(seed) << ")";
    EXPECT_EQ(t.recoveryDigest, b.recoveryDigest);
  }
}

TEST(FuzzSmoke, KillRestartMatchesControlOutcome) {
  // Crash-recovery equivalence (module 3): a kill-restart run's
  // deterministic outcomes — role results, token totals — must equal the
  // never-killed control run of the same seed.  Recovery has to be
  // outcome-invisible.
  ScenarioOptions control;
  control.suppressKillRestart = true;
  const std::uint64_t base = testSeed(1);
  int checked = 0;
  for (std::uint64_t seed = base; checked < 2; ++seed) {
    if (seed % 5 != 3) continue;  // module 3 seeds only
    DAPPLE_SEED_TRACE(seed);
    const ScenarioResult killed = runScenario(seed);
    EXPECT_TRUE(killed.ok) << killed.failure << "\n  repro: "
                           << reproLine(seed) << "\n  " << killed.summary;
    const ScenarioResult ctrl = runScenario(seed, control);
    EXPECT_TRUE(ctrl.ok) << ctrl.failure;
    EXPECT_NE(0u, killed.recoveryDigest);
    EXPECT_EQ(killed.recoveryDigest, ctrl.recoveryDigest)
        << "crash recovery changed the outcome (" << reproLine(seed) << ")";
    ++checked;
  }
}

TEST(FuzzSmoke, LeaseWorkloadConservesTokensAcrossKillRestart) {
  // Token-conservation oracle over the lease module (module 4), 20 seeds:
  // borrow/spend/release across N members with a kill-restart mid-run.
  // Every seed must wind down with balanced home ledgers (pool + cached
  // credit + in-flight grants == mint), and the kill run's outcome digest
  // must equal the never-killed control run's.
  ScenarioOptions control;
  control.suppressKillRestart = true;
  const std::uint64_t base = testSeed(2);
  int checked = 0;
  for (std::uint64_t seed = base; checked < 20; ++seed) {
    if (seed % 5 != 4) continue;  // module 4 seeds only
    DAPPLE_SEED_TRACE(seed);
    const ScenarioResult killed = runScenario(seed);
    EXPECT_TRUE(killed.ok) << killed.failure << "\n  repro: "
                           << reproLine(seed) << "\n  " << killed.summary;
    EXPECT_NE(0u, killed.recoveryDigest);
    // The kill-vs-control equivalence is the expensive half; spot-check it
    // on a quarter of the seeds to keep the smoke pass fast.
    if (checked % 4 == 0) {
      const ScenarioResult ctrl = runScenario(seed, control);
      EXPECT_TRUE(ctrl.ok) << ctrl.failure;
      EXPECT_EQ(killed.recoveryDigest, ctrl.recoveryDigest)
          << "kill-restart changed the lease outcome ("
          << reproLine(seed) << ")";
    }
    ++checked;
  }
}

TEST(FuzzSmoke, CanaryBugIsCaught) {
  // Disable the retransmit path; some seed in the first few must fail an
  // oracle.  If none does, the fuzzer has gone blind.
  ScenarioOptions options;
  options.canaryDisableRetransmit = true;
  const std::uint64_t base = testSeed(0);
  bool caught = false;
  std::uint64_t seed = base;
  for (; seed < base + 20 && !caught; ++seed) {
    DAPPLE_SEED_TRACE(seed);
    caught = !runScenario(seed, options).ok;
  }
  EXPECT_TRUE(caught)
      << "canary (disabled retransmits) not caught in 20 seeds";
}

}  // namespace
}  // namespace dapple::testkit
