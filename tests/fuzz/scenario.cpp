#include "scenario.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "dapple/apps/cardgame.hpp"
#include "dapple/core/session.hpp"
#include "dapple/net/sim.hpp"
#include "dapple/serial/data_message.hpp"
#include "dapple/services/liveness/liveness.hpp"
#include "dapple/services/tokens/token_manager.hpp"
#include "dapple/testkit/virtual_clock.hpp"
#include "dapple/util/rng.hpp"

namespace dapple::testkit {

namespace {

/// Canonical digest accumulator.  Everything observable about the run is
/// folded in as text, so a digest mismatch pinpoints a behavioural
/// divergence, not a formatting one.
class Digest {
 public:
  void add(std::string_view s) {
    // DAPPLE_FUZZ_DUMP=1 prints every digest line: diffing two runs of the
    // same seed pinpoints the exact divergence behind a digest mismatch.
    static const bool dump = std::getenv("DAPPLE_FUZZ_DUMP") != nullptr;
    if (dump) std::fprintf(stderr, "digest| %.*s\n",
                           static_cast<int>(s.size()), s.data());
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ull;
    }
    h_ ^= '\n';
    h_ *= 0x100000001b3ull;
  }

  template <typename... Args>
  void addf(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    add(os.str());
  }

  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ull;
};

struct Oracles {
  std::vector<std::string> failures;

  template <typename... Args>
  void fail(Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    failures.push_back(os.str());
  }
};

constexpr const char* kMeshKind = "fz.mesh";

/// The generated shape of one scenario.  Everything below derives from the
/// seed alone.
struct Shape {
  std::size_t n = 0;           // mesh dapplets
  LinkParams link;
  int module = 0;              // 0 tokens, 1 cardgame, 2 crash/eviction
  std::size_t rounds = 0;      // mesh messages per ordered pair
  struct Partition {
    std::uint32_t hostA = 0, hostB = 0;
    Duration at{}, heal{};
  };
  std::vector<Partition> partitions;
  // module 2 only: which mesh member is crash-stopped, and when.
  std::size_t victim = 0;
  Duration crashAt{};
};

Shape generate(std::uint64_t seed) {
  Rng rng(seed ^ 0xf00dfeedull);
  Shape s;
  s.n = 2 + rng.below(3);  // 2..4
  static constexpr double kLoss[] = {0.0, 0.05, 0.10, 0.20};
  static constexpr double kDup[] = {0.0, 0.05};
  s.link = LinkParams{microseconds(100 + rng.below(900)),
                      microseconds(rng.below(2000)),
                      kLoss[rng.below(4)], kDup[rng.below(2)]};
  s.module = static_cast<int>(seed % 3);
  s.rounds = 5 + rng.below(10);
  // Partitions always heal, well inside the 10s delivery timeout, so they
  // degrade channels without killing them.
  const std::size_t nparts = rng.below(3);  // 0..2
  for (std::size_t p = 0; p < nparts && s.n >= 2; ++p) {
    Shape::Partition part;
    part.hostA = static_cast<std::uint32_t>(1 + rng.below(s.n));
    part.hostB = static_cast<std::uint32_t>(1 + rng.below(s.n));
    if (part.hostA == part.hostB) {
      part.hostB = 1 + part.hostA % static_cast<std::uint32_t>(s.n);
    }
    part.at = milliseconds(50 + rng.below(400));
    part.heal = part.at + milliseconds(200 + rng.below(1800));
    s.partitions.push_back(part);
  }
  if (s.module == 2) {
    s.n = std::max<std::size_t>(s.n, 3);  // need survivors + a victim
    s.victim = 1 + rng.below(s.n - 1);    // never member 0
    s.crashAt = milliseconds(150 + rng.below(300));
  }
  return s;
}

const char* moduleName(int module) {
  switch (module) {
    case 0: return "tokens";
    case 1: return "cardgame";
    default: return "eviction";
  }
}

}  // namespace

std::string reproLine(std::uint64_t seed) {
  return "dapple_fuzz --seed " + std::to_string(seed);
}

namespace {
/// DAPPLE_FUZZ_TRACE=1: print stage transitions (hang localisation).
void mark(const char* stage) {
  static const bool on = std::getenv("DAPPLE_FUZZ_TRACE") != nullptr;
  if (on) {
    std::fprintf(stderr, "stage| %s\n", stage);
    std::fflush(stderr);
  }
}
}  // namespace

ScenarioResult runScenario(std::uint64_t seed,
                           const ScenarioOptions& options) {
  const Shape shape = generate(seed);
  Rng rng(seed ^ 0x5eedull);  // workload-side randomness
  Digest digest;
  Oracles oracles;

  VirtualClock clock;
  SimNetwork::Options netOpts;
  netOpts.clock = &clock;
  netOpts.hashedLinkRandomness = true;  // schedule-independent link faults
  SimNetwork net(seed, netOpts);
  net.setDefaultLink(shape.link);

  DappletConfig cfg;
  cfg.clock = &clock;
  cfg.reliable.tickInterval = milliseconds(2);
  cfg.reliable.rto = milliseconds(15);
  cfg.reliable.maxRto = milliseconds(120);
  cfg.reliable.deliveryTimeout = seconds(10);
  // Piggybacked ack blocks splice ack state into DATA frame bytes, which
  // would make the content-hashed link faults depend on ack timing (a
  // schedule artifact).  Standalone coalesced acks keep DATA bytes — and so
  // the fault pattern and digest — schedule-independent; the coalescing
  // machinery itself (ackEvery/ackDelay defaults) stays fully exercised.
  cfg.reliable.ackPiggyback = false;
  cfg.liveness.heartbeatInterval = milliseconds(25);
  cfg.liveness.suspectTimeout = milliseconds(300);
  if (options.canaryDisableRetransmit) {
    // Canary bug: the first transmission is the only one.  Lossy seeds must
    // now fail the delivery oracle.  The adaptive sender must be fully
    // pinned: minRto keeps the SRTT estimator from collapsing the RTO back
    // under the horizon, and fastRetransmitDups keeps dup-SACK evidence
    // from resurrecting lost frames without the timer.
    cfg.reliable.rto = seconds(30);
    cfg.reliable.minRto = seconds(30);
    cfg.reliable.maxRto = seconds(30);
    cfg.reliable.fastRetransmitDups = UINT32_MAX;
    cfg.reliable.deliveryTimeout = seconds(20);
  }

  digest.addf("shape n=", shape.n, " delay=", shape.link.delay.count(),
              " jitter=", shape.link.jitter.count(),
              " loss=", shape.link.lossProb, " dup=", shape.link.dupProb,
              " module=", moduleName(shape.module),
              " rounds=", shape.rounds);

  mark("dapplets");
  std::vector<std::unique_ptr<Dapplet>> dapplets;
  std::vector<Inbox*> meshIn;
  for (std::size_t i = 0; i < shape.n; ++i) {
    cfg.host = static_cast<std::uint32_t>(i + 1);
    dapplets.push_back(
        std::make_unique<Dapplet>(net, "fz" + std::to_string(i), cfg));
    meshIn.push_back(&dapplets.back()->createInbox("fz.mesh"));
  }
  cfg.host = static_cast<std::uint32_t>(shape.n + 1);

  // Full-mesh outboxes, one per ordered pair.
  std::map<std::pair<std::size_t, std::size_t>, Outbox*> meshOut;
  for (std::size_t i = 0; i < shape.n; ++i) {
    for (std::size_t j = 0; j < shape.n; ++j) {
      if (i == j) continue;
      Outbox& out = dapplets[i]->createOutbox();
      out.add(meshIn[j]->ref());
      meshOut[{i, j}] = &out;
    }
  }

  mark("module-setup");
  // ---- module setup (before faults start) --------------------------------
  std::vector<std::unique_ptr<TokenManager>> managers;
  std::vector<std::unique_ptr<LivenessMonitor>> monitors;
  std::vector<std::unique_ptr<SessionAgent>> agents;
  std::unique_ptr<Dapplet> director;
  std::unique_ptr<LivenessMonitor> directorMonitor;
  std::unique_ptr<Initiator> initiator;
  Directory directory;
  std::string sessionId;
  constexpr std::int64_t kGold = 4, kSilver = 3;

  if (shape.module == 0) {
    for (std::size_t i = 0; i < shape.n; ++i) {
      managers.push_back(std::make_unique<TokenManager>(*dapplets[i]));
    }
    std::vector<InboxRef> refs;
    for (auto& m : managers) refs.push_back(m->ref());
    for (std::size_t i = 0; i < shape.n; ++i) {
      TokenBag mine;
      if (TokenManager::homeOfColor("gold", shape.n) == i) {
        mine["gold"] = kGold;
      }
      if (TokenManager::homeOfColor("silver", shape.n) == i) {
        mine["silver"] = kSilver;
      }
      managers[i]->attach(refs, i, mine);
    }
  } else if (shape.module == 1) {
    for (std::size_t i = 0; i < shape.n; ++i) {
      agents.push_back(std::make_unique<SessionAgent>(*dapplets[i]));
      apps::registerCardGameApp(*agents.back());
      directory.put("fz" + std::to_string(i), agents.back()->controlRef());
    }
    director = std::make_unique<Dapplet>(net, "fzdir", cfg);
    initiator = std::make_unique<Initiator>(*director);
  } else {
    for (std::size_t i = 0; i < shape.n; ++i) {
      monitors.push_back(std::make_unique<LivenessMonitor>(*dapplets[i]));
      SessionAgent::Config acfg;
      acfg.monitor = monitors.back().get();
      agents.push_back(std::make_unique<SessionAgent>(*dapplets[i], acfg));
      const bool isVictim = i == shape.victim;
      agents.back()->registerApp("fz.evict", [isVictim](SessionContext& ctx) {
        if (isVictim) {
          try {
            ctx.inbox("in").receive(seconds(60));
          } catch (const Error&) {
          }
          return;
        }
        ValueMap r;
        try {
          ctx.inbox("in").receive(seconds(60));
          r["sawPeerDown"] = Value(false);
        } catch (const PeerDownError&) {
          r["sawPeerDown"] = Value(true);
        }
        ctx.setResult(Value(std::move(r)));
      });
      directory.put("fz" + std::to_string(i), agents.back()->controlRef());
    }
    director = std::make_unique<Dapplet>(net, "fzdir", cfg);
    directorMonitor = std::make_unique<LivenessMonitor>(*director);
    initiator = std::make_unique<Initiator>(*director, directorMonitor.get());
  }

  // ---- fault schedule (exact virtual times) ------------------------------
  for (const auto& part : shape.partitions) {
    clock.after(part.at, [&net, part] {
      net.setPartition(part.hostA, part.hostB, true);
    });
    clock.after(part.heal, [&net, part] {
      net.setPartition(part.hostA, part.hostB, false);
    });
  }

  mark("establish");
  // ---- establish sessions ------------------------------------------------
  if (shape.module == 1) {
    std::vector<std::string> players;
    for (std::size_t i = 0; i < shape.n; ++i) {
      players.push_back("fz" + std::to_string(i));
    }
    auto plan = apps::cardGamePlan(directory, players, 200, seed);
    plan.phaseTimeout = seconds(30);
    plan.setupAttempts = 8;
    auto result = initiator->establish(plan);
    if (!result.ok) {
      oracles.fail("cardgame: session setup failed");
    }
    sessionId = result.sessionId;
  } else if (shape.module == 2) {
    Initiator::Plan plan;
    plan.app = "fz.evict";
    for (std::size_t i = 0; i < shape.n; ++i) {
      plan.members.push_back(
          Initiator::member(directory, "fz" + std::to_string(i), {"in"}));
    }
    const std::string victimName = "fz" + std::to_string(shape.victim);
    for (std::size_t i = 0; i < shape.n; ++i) {
      if (i == shape.victim) continue;
      plan.edges.push_back(
          {victimName, "feed", "fz" + std::to_string(i), "in"});
    }
    plan.phaseTimeout = seconds(30);
    plan.setupAttempts = 8;
    auto result = initiator->establish(plan);
    if (!result.ok) {
      oracles.fail("eviction: session setup failed");
    }
    sessionId = result.sessionId;
  }

  mark("workload");
  // ---- mesh workload (interleaved with the fault schedule) ---------------
  // Channels that may legitimately lose messages: any touching the crashed
  // member.  Everything else must deliver fully and in order.
  std::set<std::size_t> dead;
  bool crashed = false;
  for (std::size_t round = 0; round < shape.rounds; ++round) {
    if (shape.module == 2 && !crashed && round * 2 >= shape.rounds) {
      // Crash mid-workload, at a seed-chosen virtual instant.
      clock.sleepFor(shape.crashAt);
      dapplets[shape.victim]->crash();
      dead.insert(shape.victim);
      crashed = true;
    }
    for (std::size_t i = 0; i < shape.n; ++i) {
      for (std::size_t j = 0; j < shape.n; ++j) {
        if (i == j || dead.count(i) != 0 || dead.count(j) != 0) continue;
        DataMessage m(kMeshKind);
        m.set("src", Value(static_cast<long long>(i)));
        m.set("seq", Value(static_cast<long long>(round)));
        m.set("pay", Value(static_cast<long long>(
                         seed ^ (i << 16) ^ (j << 8) ^ round)));
        try {
          meshOut.at({i, j})->send(m);
        } catch (const Error&) {
          // Stream died (partition outlasting the delivery timeout, or the
          // victim's endpoint); the channel is no longer held to the oracle.
          dead.insert(i == shape.victim ? i : j);
        }
      }
    }
    clock.sleepFor(milliseconds(5 + rng.below(20)));
  }
  if (shape.module == 2 && !crashed) {
    clock.sleepFor(shape.crashAt);
    dapplets[shape.victim]->crash();
    dead.insert(shape.victim);
    crashed = true;
  }

  mark("module-workload");
  // ---- module workloads --------------------------------------------------
  if (shape.module == 0) {
    for (int op = 0; op < 8; ++op) {
      auto& mgr = *managers[rng.below(shape.n)];
      const char* color = rng.below(2) == 0 ? "gold" : "silver";
      const std::int64_t want = 1 + static_cast<std::int64_t>(rng.below(2));
      try {
        mgr.request({{color, want}}, seconds(30));
        mgr.release({{color, want}});
      } catch (const Error& e) {
        oracles.fail("tokens: op ", op, " failed: ", e.what());
        break;
      }
    }
    try {
      const TokenBag totals = managers[0]->totalTokens(seconds(30));
      const std::int64_t gold =
          totals.count("gold") != 0 ? totals.at("gold") : 0;
      const std::int64_t silver =
          totals.count("silver") != 0 ? totals.at("silver") : 0;
      if (gold != kGold || silver != kSilver) {
        oracles.fail("tokens: conservation broken: gold=", gold, "/", kGold,
                     " silver=", silver, "/", kSilver);
      }
      digest.addf("tokens gold=", gold, " silver=", silver);
    } catch (const Error& e) {
      oracles.fail("tokens: totalTokens failed: ", e.what());
    }
  } else if (shape.module == 1 && !sessionId.empty()) {
    try {
      auto results = initiator->awaitCompletion(sessionId, seconds(120));
      std::int64_t agreedWinner = -2;
      std::size_t winners = 0;
      bool agree = true;
      for (std::size_t i = 0; i < shape.n; ++i) {
        const Value& r = results.at("fz" + std::to_string(i));
        const std::int64_t w = r.at("winner").asInt();
        if (r.at("won").asBool()) ++winners;
        if (agreedWinner == -2) {
          agreedWinner = w;
        } else if (w != agreedWinner) {
          agree = false;
        }
      }
      if (!agree) oracles.fail("cardgame: players disagree on the winner");
      if (winners > 1) {
        oracles.fail("cardgame: ", winners, " players claim the win");
      }
      // The winner's identity is consensus *output*: every run agrees
      // internally, but timing under loss may crown a different player.
      // The digest records the invariant (one winner, unanimous), not the
      // schedule-dependent identity.
      (void)agreedWinner;
      digest.addf("cardgame agree=", agree ? 1 : 0, " winners=", winners);
    } catch (const Error& e) {
      oracles.fail("cardgame: completion failed: ", e.what());
    }
    initiator->terminate(sessionId);
  } else if (shape.module == 2 && !sessionId.empty()) {
    try {
      auto results = initiator->awaitCompletion(sessionId, seconds(30));
      const std::string victimName = "fz" + std::to_string(shape.victim);
      const auto down = initiator->downMembers(sessionId);
      if (down.count(victimName) == 0) {
        oracles.fail("eviction: crashed member '", victimName,
                     "' never evicted");
      }
      if (results.size() != shape.n) {
        oracles.fail("eviction: ", results.size(), "/", shape.n,
                     " members settled");
      }
      for (std::size_t i = 0; i < shape.n; ++i) {
        if (i == shape.victim) continue;
        const Value& r = results.at("fz" + std::to_string(i));
        if (!r.at("sawPeerDown").asBool()) {
          oracles.fail("eviction: survivor fz", i,
                       " fell through to the receive timeout");
        }
      }
      digest.addf("eviction down=", down.size(), " settled=", results.size());
    } catch (const Error& e) {
      oracles.fail("eviction: completion failed: ", e.what());
    }
    initiator->terminate(sessionId);
  }

  mark("drain");
  // ---- drain the mesh and check FIFO + completeness ----------------------
  for (std::size_t j = 0; j < shape.n; ++j) {
    if (dead.count(j) != 0) continue;
    std::map<std::size_t, std::vector<std::int64_t>> perSender;
    std::map<std::size_t, std::uint64_t> paySum;
    for (;;) {
      std::optional<Delivery> del;
      try {
        del = meshIn[j]->receiveFor(seconds(15));
      } catch (const Error&) {
        break;  // inbox closed underneath us (crash racing the drain)
      }
      if (!del) break;
      const auto* m = dynamic_cast<const DataMessage*>(del->message.get());
      if (m == nullptr || m->kind() != kMeshKind) continue;
      const auto src = static_cast<std::size_t>(m->get("src").asInt());
      perSender[src].push_back(m->get("seq").asInt());
      paySum[src] += static_cast<std::uint64_t>(m->get("pay").asInt());
    }
    for (std::size_t i = 0; i < shape.n; ++i) {
      if (i == j) continue;
      const auto it = perSender.find(i);
      const std::size_t got = it == perSender.end() ? 0 : it->second.size();
      if (it != perSender.end()) {
        for (std::size_t k = 0; k < it->second.size(); ++k) {
          if (it->second[k] != static_cast<std::int64_t>(k)) {
            oracles.fail("fifo: channel fz", i, "->fz", j,
                         " out of order at position ", k, " (seq ",
                         it->second[k], ")");
            break;
          }
        }
      }
      if (dead.count(i) == 0 && got != shape.rounds) {
        oracles.fail("delivery: channel fz", i, "->fz", j, " delivered ",
                     got, "/", shape.rounds);
      }
      digest.addf("ch fz", i, "->fz", j, " got=", got,
                  " pay=", paySum[i]);
    }
  }

  mark("ack-discipline");
  // ---- ack economy oracle ------------------------------------------------
  // Delayed/coalesced acks must never stall delivery (the drain above already
  // proved completeness within the delivery timeout); here we check the
  // bookkeeping side: every ack block emission is justified by at least one
  // frame arrival, so coalescing can only ever *reduce* ack traffic.
  for (std::size_t i = 0; i < shape.n; ++i) {
    if (dead.count(i) != 0) continue;
    const ReliableEndpoint::Stats rs = dapplets[i]->transport().stats();
    if (rs.acksSent > rs.delivered + rs.duplicates + rs.outOfOrderBuffered) {
      oracles.fail("acks: fz", i, " emitted ", rs.acksSent,
                   " ack blocks for only ", rs.delivered, "+", rs.duplicates,
                   "+", rs.outOfOrderBuffered, " frame arrivals");
    }
    if (rs.dupAcksSuppressed != rs.duplicates) {
      oracles.fail("acks: fz", i, " suppressed ", rs.dupAcksSuppressed,
                   " dup re-acks but saw ", rs.duplicates, " duplicates");
    }
  }

  mark("retransmit-efficiency");
  // ---- retransmit-efficiency oracle --------------------------------------
  // The adaptive sender (SRTT-estimated RTO, congestion window, fast
  // retransmit) must spend retransmitted bytes commensurate with what the
  // link actually lost.  A loss in either direction (the DATA frame or the
  // ack block covering it) costs about one resend, so lossy links earn a
  // proportional allowance; on top of that a fixed slack covers traffic
  // retransmitted into dark links (partitions, and module 2's crashed
  // member, whose streams back off to maxRto until the delivery timeout
  // fails them).  The 3x headroom keeps the verdict schedule-stable.  A
  // fixed-RTO sender mis-tuned below the path RTT blows through this bound
  // (bench_transport quantifies the same ratio against that baseline).
  static const bool dumpRetx = std::getenv("DAPPLE_FUZZ_TRACE") != nullptr;
  for (std::size_t i = 0; i < shape.n; ++i) {
    if (dead.count(i) != 0) continue;
    const ReliableEndpoint::Stats rs = dapplets[i]->transport().stats();
    if (rs.dataBytes == 0) continue;
    const double faultRate =
        std::min(0.9, 2 * shape.link.lossProb + shape.link.dupProb);
    const double darkSlack =
        24.0 * 1024 *
        (1 + static_cast<double>(shape.partitions.size()) +
         (shape.module == 2 ? static_cast<double>(shape.n) : 0.0));
    const double allowance =
        3.0 * (faultRate / (1 - faultRate)) *
            static_cast<double>(rs.dataBytes) +
        darkSlack;
    if (dumpRetx) {
      std::fprintf(stderr, "retx| fz%zu data=%llu retx=%llu allowance=%.0f\n",
                   i, static_cast<unsigned long long>(rs.dataBytes),
                   static_cast<unsigned long long>(rs.retransmitBytes),
                   allowance);
    }
    if (static_cast<double>(rs.retransmitBytes) > allowance) {
      oracles.fail("retransmit-efficiency: fz", i, " resent ",
                   rs.retransmitBytes, " bytes against ", rs.dataBytes,
                   " first-transmission bytes (allowance ",
                   static_cast<std::uint64_t>(allowance), ")");
    }
  }

  mark("teardown");
  // ---- teardown, then the fabric-level conservation oracle ---------------
  managers.clear();
  agents.clear();
  monitors.clear();
  directorMonitor.reset();
  initiator.reset();
  if (director) director->stop();
  for (std::size_t i = 0; i < shape.n; ++i) {
    if (dead.count(i) == 0) dapplets[i]->stop();
  }
  mark("await-quiescent");
  if (!net.awaitQuiescent(seconds(30))) {
    oracles.fail("sim: network never went quiescent");
  }
  const obs::MetricsSnapshot sim = net.metrics();
  const auto c = [&sim](const char* k) {
    const auto it = sim.counters.find(k);
    return it == sim.counters.end() ? std::uint64_t{0} : it->second;
  };
  const bool conserved = c("sim.delivered") + c("sim.undeliverable") ==
                         c("sim.sent") - c("sim.dropped") + c("sim.duplicated");
  if (!conserved) {
    oracles.fail("sim: flow conservation broken: delivered=",
                 c("sim.delivered"), " undeliverable=", c("sim.undeliverable"),
                 " sent=", c("sim.sent"), " dropped=", c("sim.dropped"),
                 " duplicated=", c("sim.duplicated"));
  }
  // The raw fabric counters (retransmit and heartbeat volume) are schedule
  // noise even in virtual time — worker wake order varies run to run — so
  // the digest folds in only the schedule-independent verdict; the exact
  // counters surface in the oracle failure text when it breaks.
  digest.addf("sim conservation=", conserved ? "ok" : "broken");

  mark("done");
  ScenarioResult out;
  for (const std::string& f : oracles.failures) digest.add(f);
  out.digest = digest.value();
  out.ok = oracles.failures.empty();
  if (!out.ok) {
    std::ostringstream os;
    for (std::size_t i = 0; i < oracles.failures.size(); ++i) {
      if (i != 0) os << "; ";
      os << oracles.failures[i];
    }
    out.failure = os.str();
  }
  {
    std::ostringstream os;
    os << "n=" << shape.n << " loss=" << shape.link.lossProb
       << " dup=" << shape.link.dupProb << " module="
       << moduleName(shape.module) << " rounds=" << shape.rounds
       << " partitions=" << shape.partitions.size();
    out.summary = os.str();
  }
  return out;
}

}  // namespace dapple::testkit
